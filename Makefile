# Developer entry points. Everything runs from the repository root and
# injects PYTHONPATH=src so a clean checkout needs no install step.

PYTHON ?= python
PYTHONPATH_PREFIX := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke serve-smoke load-smoke incremental-smoke \
	kernels-smoke apps-smoke docs-check

# Tier-1 gate: the full unit/property suite.
test:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -x -q

# Quick perf sanity: batched-vs-serial ranking comparison (>= 20k nodes)
# plus a sharded-pipeline smoke run, both in statistics-free mode.
bench-smoke:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/bench_kernels.py \
		-q -s -k ranking --benchmark-disable
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/bench_sharding.py \
		-q -s --benchmark-disable

# Service sanity: boot the daemon on an ephemeral port, run one job
# round trip through the client, require a graceful SIGTERM drain —
# all under a 60 s budget.
serve-smoke:
	$(PYTHONPATH_PREFIX) $(PYTHON) tools/serve_smoke.py

# Service load sanity: tiny N-clients x M-graphs burst against both
# executors (thread and process), cold and warm-restart phases, under
# a 60 s budget; fails on any failed job or zero throughput.  Writes
# BENCH_service.json.
load-smoke:
	$(PYTHONPATH_PREFIX) $(PYTHON) tools/load_test.py --smoke

# Incremental sanity: replay a tiny edge stream through the
# EvolvingSparsifier under a 60 s budget; fails unless the delta path
# beats a per-batch full rebuild and the incrementally maintained
# kappa stays within the drift budget of a from-scratch run.  Writes
# BENCH_incremental.json.
incremental-smoke:
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/bench_incremental.py --smoke

# Kernel-tier sanity: every available repro.kernels tier must produce
# bitwise-identical outputs on each hot-path kernel, and the fastest
# non-reference tier must beat the pure-Python reference by >= 5x on
# the scoring kernel.  Writes BENCH_kernels.json.
kernels-smoke:
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/bench_kernels.py --smoke

# Application sanity: both application-level benchmarks (transient
# power-grid simulation and spectral clustering) at CI scale, under a
# combined 60 s budget.  Fails when the sparsifier-preconditioned
# transient diverges from the dense reference (> 16 mV) or clustering
# quality drops below the planted-partition ARI floor.  Writes the
# matching sections of BENCH_apps.json.
apps-smoke:
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/bench_app_transient.py \
		--smoke --budget 35
	$(PYTHONPATH_PREFIX) $(PYTHON) benchmarks/bench_app_clustering.py \
		--smoke --budget 25

# The documentation gate: the generated API reference must match the
# registries, the public API must be fully docstringed, and every
# runnable block in README.md + docs/*.md plus every example must
# execute cleanly.
docs-check:
	$(PYTHONPATH_PREFIX) $(PYTHON) tools/gen_api_docs.py --check
	$(PYTHONPATH_PREFIX) $(PYTHON) tools/check_docstrings.py
	$(PYTHONPATH_PREFIX) $(PYTHON) tools/check_docs.py
