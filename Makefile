# Developer entry points. Everything runs from the repository root and
# injects PYTHONPATH=src so a clean checkout needs no install step.

PYTHON ?= python
PYTHONPATH_PREFIX := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke docs-check

# Tier-1 gate: the full unit/property suite.
test:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -x -q

# Quick perf sanity: batched-vs-serial ranking comparison (>= 20k nodes)
# plus the kernel microbenches in statistics-free mode.
bench-smoke:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest benchmarks/bench_kernels.py \
		-q -s -k ranking --benchmark-disable

# Execute every runnable code block in the documentation; fails when a
# documented command stops working.
docs-check:
	$(PYTHONPATH_PREFIX) $(PYTHON) tools/check_docs.py README.md \
		docs/architecture.md docs/migration.md
