"""Ablation — BFS truncation depth beta (Eq. 12).

The paper fixes beta = 5 and argues the truncated sum captures the
dominant terms because potentials decay away from the injection nodes.
This ablation sweeps beta and records sparsifier quality (kappa) and
sparsification time: quality should saturate around beta ~ 5 while cost
grows with ball size.
"""

from __future__ import annotations

import pytest

from repro.core import evaluate_sparsifier, trace_reduction_sparsify
from repro.graph import make_case
from repro.utils.reporting import Table

from conftest import emit, run_once

BETAS = [1, 2, 3, 5, 8]
_rows: dict = {}
_cache: list = []


def _graph(scale):
    if not _cache:
        _cache.append(make_case("ecology2", scale=scale * 0.5, seed=0)[0])
    return _cache[0]


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not _rows:
        return
    table = Table(["beta", "kappa", "pcg_iters", "Ts_seconds"])
    for beta in BETAS:
        if beta in _rows:
            row = _rows[beta]
            table.add_row([beta, row["kappa"], row["Ni"], row["Ts"]])
    emit("ablation_beta", table.render())


@pytest.mark.parametrize("beta", BETAS)
def test_beta(benchmark, beta, scale):
    graph = _graph(scale)
    result = run_once(
        benchmark,
        lambda: trace_reduction_sparsify(
            graph, edge_fraction=0.10, rounds=5, beta=beta, seed=1
        ),
    )
    quality = evaluate_sparsifier(graph, result.sparsifier, seed=2)
    _rows[beta] = {
        "kappa": quality.kappa,
        "Ni": quality.pcg_iterations,
        "Ts": result.setup_seconds,
    }
