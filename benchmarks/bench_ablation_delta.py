"""Ablation — SPAI pruning threshold delta (Algorithm 1).

The paper reports nnz(Z~) ~ n log n at delta = 0.1.  This ablation
sweeps delta, recording nnz(Z~) for the sparsifier's final-round factor
and the resulting sparsifier quality.  Expected shape: nnz falls as
delta grows; quality is stable for small delta and degrades once the
columns get too sparse to rank edges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import evaluate_sparsifier, trace_reduction_sparsify
from repro.graph import make_case, regularization_shift, regularized_laplacian
from repro.linalg import cholesky, sparse_approximate_inverse
from repro.utils.reporting import Table

from conftest import emit, run_once

DELTAS = [0.02, 0.05, 0.1, 0.2, 0.5]
_rows: dict = {}
_cache: list = []


def _graph(scale):
    if not _cache:
        _cache.append(make_case("ecology2", scale=scale * 0.5, seed=0)[0])
    return _cache[0]


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not _rows:
        return
    graph = _cache[0]
    n_log_n = int(graph.n * np.log(graph.n))
    table = Table(["delta", "nnz(Z)", "nnz/(n log n)", "kappa", "Ts_seconds"])
    for delta in DELTAS:
        if delta in _rows:
            row = _rows[delta]
            table.add_row(
                [delta, row["nnz"], f"{row['nnz'] / n_log_n:.2f}",
                 row["kappa"], row["Ts"]]
            )
    emit("ablation_delta", table.render())


@pytest.mark.parametrize("delta", DELTAS)
def test_delta(benchmark, delta, scale):
    graph = _graph(scale)
    result = run_once(
        benchmark,
        lambda: trace_reduction_sparsify(
            graph, edge_fraction=0.10, rounds=5, delta=delta, seed=1
        ),
    )
    quality = evaluate_sparsifier(graph, result.sparsifier, seed=2)
    # Measure nnz(Z~) on the final sparsifier's factor.
    shift = regularization_shift(graph)
    factor = cholesky(regularized_laplacian(result.sparsifier, shift))
    Z = sparse_approximate_inverse(factor.L, delta=delta)
    _rows[delta] = {
        "nnz": int(Z.nnz),
        "kappa": quality.kappa,
        "Ts": result.setup_seconds,
    }


def test_nnz_matches_paper_claim_at_default(scale):
    """At delta=0.1, nnz(Z~) is O(n log n) (paper Sec. 3.2)."""
    if 0.1 not in _rows:
        pytest.skip("delta sweep did not run")
    graph = _cache[0]
    ratio = _rows[0.1]["nnz"] / (graph.n * np.log(graph.n))
    assert 0.3 < ratio < 3.0
