"""Ablation — similarity-exclusion ball radius gamma.

When an edge (p, q) is recovered, edges joining ``ball(p, gamma)`` to
``ball(q, gamma)`` in the current subgraph are excluded from recovery
(feGRASS's strategy [13]).  gamma = 0 marks only the recovered edge
itself; larger gamma spreads the budget over independent spectral
deficiencies.  The paper does not publish its radius; this ablation
justifies the default gamma = 2.
"""

from __future__ import annotations

import pytest

from repro.core import evaluate_sparsifier, trace_reduction_sparsify
from repro.graph import make_case
from repro.utils.reporting import Table

from conftest import emit, run_once

GAMMAS = [0, 1, 2, 3]
_rows: dict = {}
_cache: list = []


def _graph(scale):
    if not _cache:
        _cache.append(make_case("ecology2", scale=scale * 0.5, seed=0)[0])
    return _cache[0]


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not _rows:
        return
    table = Table(["gamma", "kappa", "pcg_iters", "Ts_seconds"])
    for gamma in GAMMAS:
        if gamma in _rows:
            row = _rows[gamma]
            table.add_row([gamma, row["kappa"], row["Ni"], row["Ts"]])
    emit("ablation_gamma", table.render())


@pytest.mark.parametrize("gamma", GAMMAS)
def test_gamma(benchmark, gamma, scale):
    graph = _graph(scale)
    result = run_once(
        benchmark,
        lambda: trace_reduction_sparsify(
            graph, edge_fraction=0.10, rounds=5, gamma=gamma, seed=1
        ),
    )
    quality = evaluate_sparsifier(graph, result.sparsifier, seed=2)
    _rows[gamma] = {
        "kappa": quality.kappa,
        "Ni": quality.pcg_iterations,
        "Ts": result.setup_seconds,
    }
