"""Ablation — densification rounds N_r (Algorithm 2).

The paper uses N_r = 5 (recover 2% |V| per round).  Sweeping N_r at a
fixed total budget shows the value of re-ranking against the growing
subgraph: N_r = 1 ranks every edge against the bare tree (and over-
recovers redundant edges); more rounds adapt the ranking.
"""

from __future__ import annotations

import pytest

from repro.core import evaluate_sparsifier, trace_reduction_sparsify
from repro.graph import make_case
from repro.utils.reporting import Table

from conftest import emit, run_once

ROUNDS = [1, 2, 5, 10]
_rows: dict = {}
_cache: list = []


def _graph(scale):
    if not _cache:
        _cache.append(make_case("ecology2", scale=scale * 0.5, seed=0)[0])
    return _cache[0]


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not _rows:
        return
    table = Table(["rounds", "kappa", "pcg_iters", "Ts_seconds"])
    for rounds in ROUNDS:
        if rounds in _rows:
            row = _rows[rounds]
            table.add_row([rounds, row["kappa"], row["Ni"], row["Ts"]])
    emit("ablation_rounds", table.render())


@pytest.mark.parametrize("rounds", ROUNDS)
def test_rounds(benchmark, rounds, scale):
    graph = _graph(scale)
    result = run_once(
        benchmark,
        lambda: trace_reduction_sparsify(
            graph, edge_fraction=0.10, rounds=rounds, seed=1
        ),
    )
    quality = evaluate_sparsifier(graph, result.sparsifier, seed=2)
    _rows[rounds] = {
        "kappa": quality.kappa,
        "Ni": quality.pcg_iterations,
        "Ts": result.setup_seconds,
    }
