"""Ablation — time-step policy for the transient solvers.

The paper's Sec. 4.2 argues the design space in words; this benchmark
measures it on one case:

* direct + fixed 10 ps steps  (one factorization, many steps);
* direct + variable steps     (few steps, but a refactorization per
  step-size change — the configuration the paper rules out);
* sparsifier-PCG + variable steps (the paper's solver).

Expected shape: direct-varied pays a factorization per distinct step
size and loses to direct-fixed; the PCG solver wins overall.
"""

from __future__ import annotations

import pytest

from repro.powergrid import (
    build_sparsifier_preconditioner,
    make_pg_case,
    simulate_transient_direct,
    simulate_transient_pcg,
)
from repro.powergrid.transient import simulate_transient_direct_varied
from repro.utils.reporting import Table

from conftest import emit, run_once

T_END = 5e-9
_rows: dict = {}
_cache: list = []


def _netlist(scale):
    if not _cache:
        _cache.append(make_pg_case("ibmpg3t", scale=scale, seed=0)[0])
    return _cache[0]


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not _rows:
        return
    table = Table(["policy", "steps", "refactorizations", "Ttr_seconds"])
    for key in ("direct-fixed", "direct-varied", "pcg-varied"):
        if key in _rows:
            row = _rows[key]
            table.add_row([key, row["steps"], row["refactor"], row["Ttr"]])
    emit("ablation_step_policy", table.render())


def test_direct_fixed(benchmark, scale):
    netlist = _netlist(scale)
    result = run_once(
        benchmark,
        lambda: simulate_transient_direct(netlist, t_end=T_END, step=10e-12),
    )
    _rows["direct-fixed"] = {
        "steps": result.steps,
        "refactor": 1,
        "Ttr": result.transient_seconds,
    }


def test_direct_varied(benchmark, scale):
    netlist = _netlist(scale)
    result = run_once(
        benchmark,
        lambda: simulate_transient_direct_varied(netlist, t_end=T_END),
    )
    _rows["direct-varied"] = {
        "steps": result.steps,
        "refactor": result.extra["refactorizations"],
        "Ttr": result.transient_seconds,
    }


def test_pcg_varied(benchmark, scale):
    netlist = _netlist(scale)
    factor, _, _ = build_sparsifier_preconditioner(
        netlist, method="proposed", edge_fraction=0.10, seed=1
    )
    result = run_once(
        benchmark,
        lambda: simulate_transient_pcg(netlist, factor, t_end=T_END),
    )
    _rows["pcg-varied"] = {
        "steps": result.steps,
        "refactor": 0,
        "Ttr": result.transient_seconds,
    }
