"""Ablation — spanning-tree choice (Algorithm 2, step 1).

The paper builds on feGRASS's maximum effective weight spanning tree
(MEWST).  This ablation swaps in a plain maximum-weight spanning tree
and a weight-oblivious BFS tree, recording total stretch of the tree
and final sparsifier quality: lower-stretch trees should start the
densification closer to the target and end with lower kappa.
"""

from __future__ import annotations

import pytest

from repro.core import evaluate_sparsifier, trace_reduction_sparsify
from repro.graph import make_case
from repro.tree import RootedForest, total_stretch
from repro.utils.reporting import Table

from conftest import emit, run_once

METHODS = ["mewst", "max_weight", "bfs"]
_rows: dict = {}
_cache: list = []


def _graph(scale):
    if not _cache:
        _cache.append(make_case("thermal2", scale=scale * 0.5, seed=0)[0])
    return _cache[0]


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not _rows:
        return
    table = Table(["tree", "total_stretch", "kappa", "pcg_iters", "Ts_seconds"])
    for method in METHODS:
        if method in _rows:
            row = _rows[method]
            table.add_row(
                [method, row["stretch"], row["kappa"], row["Ni"], row["Ts"]]
            )
    emit("ablation_tree", table.render())


@pytest.mark.parametrize("method", METHODS)
def test_tree_method(benchmark, method, scale):
    graph = _graph(scale)
    result = run_once(
        benchmark,
        lambda: trace_reduction_sparsify(
            graph, edge_fraction=0.10, rounds=5, tree_method=method, seed=1
        ),
    )
    quality = evaluate_sparsifier(graph, result.sparsifier, seed=2)
    forest = RootedForest(graph, result.tree_edge_ids)
    _rows[method] = {
        "stretch": total_stretch(graph, forest),
        "kappa": quality.kappa,
        "Ni": quality.pcg_iterations,
        "Ts": result.setup_seconds,
    }
