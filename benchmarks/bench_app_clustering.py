#!/usr/bin/env python
"""Application benchmark: spectral clustering on recommendation graphs.

The second place the sparsifier works as a *component*: k-way spectral
clustering (:mod:`repro.partitioning.clustering`) on bipartite
recommendation-style graphs with planted taste blocks
(:func:`repro.graph.bipartite_recommender`).  Each (scale, groups) cell
runs the same pipeline twice —

1. the dense reference: block inverse iteration with a direct
   factorization of the full Laplacian, and
2. the sparsifier path: every inner solve through PCG preconditioned
   with one factored sparsifier Laplacian
   (:func:`repro.partitioning.build_partition_preconditioner`).

Quality is judged downstream: adjusted Rand index against the planted
labels and worst-cluster conductance, recorded next to embedding /
setup timings and average inner PCG iterations in the ``"clustering"``
section of ``BENCH_apps.json``.

``--smoke`` shrinks the sweep, enforces a wall-clock budget and fails
when the sparsifier-preconditioned clustering drops below the planted
ARI floor or strays too far from the dense reference.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(BENCH_DIR))

import numpy as np  # noqa: E402

from conftest import emit_records  # noqa: E402
from repro.graph import bipartite_recommender, planted_labels  # noqa: E402
from repro.partitioning import (  # noqa: E402
    adjusted_rand_index,
    build_partition_preconditioner,
    cluster_conductances,
    spectral_clustering,
)

#: (n_users, n_items, groups, p_in, p_out) cells — the scale x
#: block-count sweep.  Densities shrink with scale so the mean degree
#: stays in a realistic ratings-matrix band (~30-55) instead of the
#: quadratic blowup a fixed p_in would give.
FULL_MATRIX = (
    (800, 800, 4, 0.25, 0.01),
    (800, 800, 8, 0.25, 0.01),
    (2000, 2000, 4, 0.05, 0.0025),
    (2000, 2000, 6, 0.05, 0.0025),
)
SMOKE_MATRIX = (
    (200, 200, 4, 0.25, 0.01),
    (300, 300, 6, 0.25, 0.01),
)

#: Smoke floor on the sparsifier path's planted-partition recovery.
ARI_FLOOR = 0.80
#: ... and on its gap to the dense reference.
ARI_GAP = 0.05


def run_cell(n_users: int, n_items: int, groups: int, *,
             p_in: float = 0.25, p_out: float = 0.01,
             method: str = "proposed", edge_fraction: float = 0.15,
             steps: int = 8, seed: int = 0) -> dict:
    """One (scale, groups) cell; returns the benchmark record dict."""
    graph = bipartite_recommender(n_users, n_items, groups=groups,
                                  p_in=p_in, p_out=p_out, seed=seed)
    truth = planted_labels(n_users, n_items, groups)

    dense = spectral_clustering(graph, groups, method="direct",
                                steps=steps, seed=seed + 1)
    setup_started = time.perf_counter()
    preconditioner, result = build_partition_preconditioner(
        graph, method=method, edge_fraction=edge_fraction, seed=seed + 2
    )
    sparsify_seconds = time.perf_counter() - setup_started
    sparse = spectral_clustering(graph, groups, method="pcg",
                                 preconditioner=preconditioner,
                                 steps=steps, seed=seed + 1)

    def side(clustering):
        conds = cluster_conductances(graph, clustering.labels)
        return {
            "ari": float(adjusted_rand_index(clustering.labels, truth)),
            "max_conductance": float(conds.max()),
            "mean_conductance": float(conds.mean()),
            "avg_pcg_iterations": float(clustering.avg_iterations),
            "embed_seconds": clustering.embedding.seconds,
            "setup_seconds": clustering.embedding.setup_seconds,
            "kmeans_seconds": clustering.kmeans_seconds,
            "memory_bytes": int(clustering.embedding.memory_bytes),
        }

    dense_side = side(dense)
    sparse_side = side(sparse)
    sparse_side["sparsify_seconds"] = sparsify_seconds
    return {
        "benchmark": "app_clustering",
        "family": "bipartite",
        "nodes": int(graph.n),
        "edges": int(graph.edge_count),
        "groups": groups,
        "p_in": p_in,
        "p_out": p_out,
        "method": method,
        "edge_fraction": edge_fraction,
        "quality": {
            "ari": sparse_side["ari"],
            "ari_dense": dense_side["ari"],
            "ari_gap": dense_side["ari"] - sparse_side["ari"],
            "max_conductance": sparse_side["max_conductance"],
            "avg_pcg_iterations": sparse_side["avg_pcg_iterations"],
            "sparsifier_edges": int(result.sparsifier.edge_count),
            "edge_ratio": float(
                result.sparsifier.edge_count / max(graph.edge_count, 1)
            ),
        },
        "direct": dense_side,
        "sparsifier_pcg": sparse_side,
        "vs_dense": {
            "embed_speedup": dense_side["embed_seconds"]
            / max(sparse_side["embed_seconds"], 1e-12),
            "memory_ratio": sparse_side["memory_bytes"]
            / max(dense_side["memory_bytes"], 1),
        },
    }


def main(argv=None) -> int:
    """Run the sweep; write the ``clustering`` BENCH_apps section."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-size sweep with hard assertions")
    parser.add_argument("--budget", type=float, default=None,
                        help="wall-clock budget in seconds "
                        "(default: 30 with --smoke, 900 otherwise)")
    parser.add_argument("--method", default="proposed",
                        help="registered sparsifier method")
    parser.add_argument("--fraction", type=float, default=0.15,
                        help="edge_fraction passed to the method")
    parser.add_argument("--output", default=None,
                        help="destination JSON (default: "
                        "<repo>/BENCH_apps.json)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    budget = args.budget if args.budget is not None else (
        30.0 if args.smoke else 900.0)
    matrix = SMOKE_MATRIX if args.smoke else FULL_MATRIX
    started = time.time()
    records = []
    for n_users, n_items, groups, p_in, p_out in matrix:
        record = run_cell(n_users, n_items, groups, p_in=p_in,
                          p_out=p_out, method=args.method,
                          edge_fraction=args.fraction, seed=args.seed)
        records.append(record)
        q = record["quality"]
        print(f"bipartite n={record['nodes']:6d} k={groups}: "
              f"ARI {q['ari']:.3f} (dense {q['ari_dense']:.3f}), "
              f"max cond {q['max_conductance']:.3f}, "
              f"avg PCG iters {q['avg_pcg_iterations']:5.1f}, "
              f"embed {record['sparsifier_pcg']['embed_seconds']:.2f}s "
              f"vs direct {record['direct']['embed_seconds']:.2f}s")
    elapsed = time.time() - started
    emit_records("BENCH_apps", records, section="clustering",
                 output=args.output)
    print(f"app-clustering sweep: {len(records)} records in {elapsed:.1f}s")
    if elapsed > budget:
        print(f"FAIL: exceeded {budget:.0f}s budget", file=sys.stderr)
        return 1
    if args.smoke:
        for record in records:
            q = record["quality"]
            if not np.isfinite(q["ari"]) or q["ari"] < ARI_FLOOR:
                print(f"FAIL: k={record['groups']} sparsifier-PCG ARI "
                      f"{q['ari']:.3f} below planted-partition floor "
                      f"{ARI_FLOOR}", file=sys.stderr)
                return 1
            if q["ari_gap"] > ARI_GAP:
                print(f"FAIL: k={record['groups']} ARI gap to the dense "
                      f"reference {q['ari_gap']:.3f} exceeds {ARI_GAP}",
                      file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
