#!/usr/bin/env python
"""Application benchmark: transient power-grid simulation per family.

The sparsifier as a *component*: every workload family from the
generator registry is dressed as a power-delivery network
(:func:`repro.powergrid.netlist_from_graph`), then simulated over the
same time window twice —

1. the dense reference: fixed-step backward Euler with a factor-once
   direct solver (``simulate_transient_direct``), and
2. the sparsifier path: variable-step backward Euler with PCG, where
   **one** sparsifier factorization built at DC is reused as the
   preconditioner across every time step
   (``build_sparsifier_preconditioner`` + ``simulate_transient_pcg``).

One record per (family, scale) lands in the ``"transient"`` section of
``BENCH_apps.json`` via :func:`conftest.emit_records`, carrying the
downstream-quality metrics (kappa, average PCG iterations, max probe
deviation against the dense reference) alongside setup/solve timings
and the sparsifier-vs-dense memory/time deltas — so a future speed PR
is always checked against what the sparsifier is *for*.

``--smoke`` shrinks the sweep to CI size, enforces a wall-clock budget
(default 60 s shared with the clustering smoke) and fails the run when
the sparsifier-preconditioned transient diverges from the dense
reference by more than the paper's 16 mV waveform bound.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(BENCH_DIR))

import numpy as np  # noqa: E402

from conftest import emit_records  # noqa: E402
from repro.core.metrics import evaluate_sparsifier  # noqa: E402
from repro.graph import make_family_graph  # noqa: E402
from repro.powergrid import (  # noqa: E402
    build_sparsifier_preconditioner,
    netlist_from_graph,
    simulate_transient_direct,
    simulate_transient_pcg,
)
from repro.powergrid.transient import max_probe_difference  # noqa: E402

#: (family, target nodes) pairs — the family x scale sweep.
FULL_MATRIX = (
    ("grid2d", 1600), ("grid2d", 6400),
    ("ba", 1600), ("ba", 6400),
    ("smallworld", 1600), ("smallworld", 6400),
    ("kronecker", 2048), ("kronecker", 8192),
    ("configmodel", 1600), ("configmodel", 6400),
)
SMOKE_MATRIX = (
    ("grid2d", 400),
    ("ba", 400),
    ("smallworld", 400),
    ("kronecker", 512),
    ("configmodel", 400),
)

#: Paper Fig. 1 acceptance bound on the waveform deviation.
DEVIATION_BOUND_V = 16e-3


def run_family(family: str, n: int, *, method: str = "proposed",
               edge_fraction: float = 0.10, t_end: float = 5e-9,
               direct_step: float = 10e-12, rtol: float = 1e-6,
               seed: int = 0) -> dict:
    """One (family, scale) cell; returns the benchmark record dict."""
    graph = make_family_graph(family, n, seed=seed)
    netlist = netlist_from_graph(graph, seed=seed + 1,
                                 name=f"{family}-{graph.n}")
    probe = int(netlist.loads[0].node)

    direct = simulate_transient_direct(
        netlist, t_end=t_end, step=direct_step, probes=[probe]
    )
    factor, sparsify_seconds, result = build_sparsifier_preconditioner(
        netlist, method=method, edge_fraction=edge_fraction, seed=seed + 2
    )
    iterative = simulate_transient_pcg(
        netlist, factor, t_end=t_end, rtol=rtol, probes=[probe]
    )
    quality = evaluate_sparsifier(
        netlist.graph, result.sparsifier, seed=seed + 3
    )
    deviation = max_probe_difference(direct, iterative, probe)
    return {
        "benchmark": "app_transient",
        "family": family,
        "nodes": int(netlist.n),
        "edges": int(netlist.graph.edge_count),
        "method": method,
        "edge_fraction": edge_fraction,
        "t_end": t_end,
        "quality": {
            "kappa": float(quality.kappa),
            "avg_pcg_iterations": float(iterative.avg_iterations),
            "max_probe_deviation_v": float(deviation),
            "deviation_bound_v": DEVIATION_BOUND_V,
            "sparsifier_edges": int(quality.sparsifier_edges),
            "edge_ratio": float(
                quality.sparsifier_edges / max(netlist.graph.edge_count, 1)
            ),
        },
        "direct": {
            "steps": int(direct.steps),
            "setup_seconds": direct.setup_seconds,
            "transient_seconds": direct.transient_seconds,
            "memory_bytes": int(direct.memory_bytes),
        },
        "sparsifier_pcg": {
            "steps": int(iterative.steps),
            "sparsify_seconds": sparsify_seconds,
            "setup_seconds": iterative.setup_seconds,
            "transient_seconds": iterative.transient_seconds,
            "memory_bytes": int(iterative.memory_bytes),
        },
        "vs_dense": {
            "transient_speedup": direct.transient_seconds
            / max(iterative.transient_seconds, 1e-12),
            "memory_ratio": iterative.memory_bytes
            / max(direct.memory_bytes, 1),
            "step_ratio": direct.steps / max(iterative.steps, 1),
        },
    }


def main(argv=None) -> int:
    """Run the family sweep; write the ``transient`` BENCH_apps section."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-size sweep with hard assertions")
    parser.add_argument("--budget", type=float, default=None,
                        help="wall-clock budget in seconds "
                        "(default: 45 with --smoke, 900 otherwise)")
    parser.add_argument("--method", default="proposed",
                        help="registered sparsifier method")
    parser.add_argument("--fraction", type=float, default=0.10,
                        help="edge_fraction passed to the method")
    parser.add_argument("--t-end", type=float, default=None,
                        help="simulated window (default: 1 ns with "
                        "--smoke, 5 ns otherwise)")
    parser.add_argument("--output", default=None,
                        help="destination JSON (default: "
                        "<repo>/BENCH_apps.json)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    budget = args.budget if args.budget is not None else (
        45.0 if args.smoke else 900.0)
    t_end = args.t_end if args.t_end is not None else (
        1e-9 if args.smoke else 5e-9)
    matrix = SMOKE_MATRIX if args.smoke else FULL_MATRIX
    started = time.time()
    records = []
    for family, n in matrix:
        record = run_family(family, n, method=args.method,
                            edge_fraction=args.fraction, t_end=t_end,
                            seed=args.seed)
        records.append(record)
        q = record["quality"]
        print(f"{family:12s} n={record['nodes']:6d}: "
              f"kappa {q['kappa']:8.1f}, "
              f"avg PCG iters {q['avg_pcg_iterations']:5.1f}, "
              f"deviation {q['max_probe_deviation_v'] * 1e3:6.2f} mV, "
              f"Ttr {record['sparsifier_pcg']['transient_seconds']:.2f}s "
              f"vs direct {record['direct']['transient_seconds']:.2f}s")
    elapsed = time.time() - started
    emit_records("BENCH_apps", records, section="transient",
                 output=args.output)
    print(f"app-transient sweep: {len(records)} records in {elapsed:.1f}s")
    if elapsed > budget:
        print(f"FAIL: exceeded {budget:.0f}s budget", file=sys.stderr)
        return 1
    if args.smoke:
        for record in records:
            deviation = record["quality"]["max_probe_deviation_v"]
            if not np.isfinite(deviation) or deviation > DEVIATION_BOUND_V:
                print(f"FAIL: {record['family']} sparsifier-PCG waveform "
                      f"diverged {deviation * 1e3:.2f} mV from the dense "
                      f"reference (bound "
                      f"{DEVIATION_BOUND_V * 1e3:.0f} mV)",
                      file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
