"""Figure 1 — transient waveforms: direct vs proposed iterative solver.

Regenerates the data behind the paper's Fig. 1: the voltage waveform of
one VDD-plane node and one GND-plane node of the "ibmpg4t" case over
5 ns, simulated with the direct solver (10 ps fixed step) and with the
sparsifier-preconditioned PCG solver (variable steps).  The paper
validates accuracy by the two solvers' waveforms overlapping with a
worst-case difference below 16 mV; the same check is asserted here and
the series are written to ``results/fig1_waveforms.csv``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.powergrid import (
    build_sparsifier_preconditioner,
    make_pg_case,
    simulate_transient_direct,
    simulate_transient_pcg,
)
from repro.powergrid.transient import max_probe_difference
from repro.utils.reporting import Table

from conftest import RESULTS_DIR, emit, run_once

T_END = 5e-9


@pytest.fixture(scope="module")
def setup(scale):
    netlist, _ = make_pg_case("ibmpg4t", scale=scale, seed=0)
    half = netlist.n // 2
    vdd_probe = next(l.node for l in netlist.loads if l.node < half)
    gnd_probe = next(l.node for l in netlist.loads if l.node >= half)
    return netlist, vdd_probe, gnd_probe


def test_fig1_waveforms(benchmark, setup):
    netlist, vdd_probe, gnd_probe = setup
    probes = [vdd_probe, gnd_probe]
    direct = simulate_transient_direct(
        netlist, t_end=T_END, step=10e-12, probes=probes
    )
    factor, _, _ = build_sparsifier_preconditioner(
        netlist, method="proposed", edge_fraction=0.10, seed=1
    )
    iterative = run_once(
        benchmark,
        lambda: simulate_transient_pcg(
            netlist, factor, t_end=T_END, probes=probes
        ),
    )

    vdd_diff = max_probe_difference(direct, iterative, vdd_probe)
    gnd_diff = max_probe_difference(direct, iterative, gnd_probe)
    # The paper reports < 16 mV for all cases.
    assert vdd_diff < 16e-3, f"VDD waveform deviates {vdd_diff*1e3:.2f} mV"
    assert gnd_diff < 16e-3, f"GND waveform deviates {gnd_diff*1e3:.2f} mV"

    # Persist the full series (CSV) + a readable summary table.
    grid = direct.times
    rows = np.column_stack(
        [
            grid,
            direct.probe(vdd_probe),
            np.interp(grid, iterative.times, iterative.probe(vdd_probe)),
            direct.probe(gnd_probe),
            np.interp(grid, iterative.times, iterative.probe(gnd_probe)),
        ]
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    np.savetxt(
        RESULTS_DIR / "fig1_waveforms.csv",
        rows,
        delimiter=",",
        header="time_s,vdd_direct,vdd_iterative,gnd_direct,gnd_iterative",
        comments="",
    )
    table = Table(["signal", "min_V", "max_V", "max_diff_mV"])
    table.add_row(
        ["VDD node", float(direct.probe(vdd_probe).min()),
         float(direct.probe(vdd_probe).max()), vdd_diff * 1e3]
    )
    table.add_row(
        ["GND node", float(direct.probe(gnd_probe).min()),
         float(direct.probe(gnd_probe).max()), gnd_diff * 1e3]
    )
    emit("fig1_waveforms", table.render())
