"""Figure 2 — sparsity/runtime trade-off for PG transient analysis.

Regenerates the paper's Fig. 2: transient runtime of the GRASS-based
and proposed iterative solvers on "ibmpg4t" as the proportion of
recovered off-tree edges sweeps 0.05 -> 0.20 of |V|.

Paper shape: runtime falls with more recovered edges (fewer PCG
iterations) with diminishing returns past ~10% |V|, and the proposed
curve sits below GRASS's, with the gap growing as edges are added.
"""

from __future__ import annotations

import pytest

from repro.powergrid import (
    build_sparsifier_preconditioner,
    make_pg_case,
    simulate_transient_pcg,
)
from repro.utils.reporting import Table

from conftest import emit, run_once

FRACTIONS = [0.05, 0.10, 0.15, 0.20]
T_END = 5e-9

_rows: dict = {}
_netlist_cache: list = []


def _netlist(scale):
    if not _netlist_cache:
        _netlist_cache.append(make_pg_case("ibmpg4t", scale=scale, seed=0)[0])
    return _netlist_cache[0]


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not _rows:
        return
    table = Table(
        ["fraction", "Ttr_grass", "Na_grass", "Ttr_proposed", "Na_proposed"]
    )
    for fraction in FRACTIONS:
        row = _rows.get(fraction, {})
        if "grass" not in row or "proposed" not in row:
            continue
        table.add_row(
            [fraction,
             row["grass"]["Ttr"], f"{row['grass']['Na']:.1f}",
             row["proposed"]["Ttr"], f"{row['proposed']['Na']:.1f}"]
        )
    emit("fig2_sparsity_tradeoff", table.render())


@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.parametrize("method", ["grass", "proposed"])
def test_tradeoff_point(benchmark, fraction, method, scale):
    netlist = _netlist(scale)
    factor, _, _ = build_sparsifier_preconditioner(
        netlist, method=method, edge_fraction=fraction, seed=1
    )
    result = run_once(
        benchmark,
        lambda: simulate_transient_pcg(netlist, factor, t_end=T_END),
    )
    _rows.setdefault(fraction, {})[method] = {
        "Ttr": result.transient_seconds,
        "Na": result.avg_iterations,
    }
    if method == "proposed":
        row = _rows[fraction]
        if "grass" in row:
            # Proposed preconditioner should not need more iterations.
            assert row["proposed"]["Na"] <= row["grass"]["Na"] * 1.15


def test_iterations_fall_with_density():
    """More recovered edges -> fewer PCG iterations (Fig. 2's driver)."""
    counts = [
        _rows[f]["proposed"]["Na"] for f in FRACTIONS if f in _rows
        and "proposed" in _rows[f]
    ]
    if len(counts) == len(FRACTIONS):
        assert counts[-1] <= counts[0]
