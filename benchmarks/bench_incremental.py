#!/usr/bin/env python
"""Replay an edge stream against the incremental sparsifier.

The ``make incremental-smoke`` gate and the generator of
``BENCH_incremental.json``: for each benchmark case this harness

1. builds the graph and opens an
   :class:`~repro.incremental.EvolvingSparsifier` on it,
2. replays a deterministic stream of edge-mutation batches (random
   new edges in, a fraction of the previously inserted edges back
   out — connectivity is never at risk, so every drift decision is
   the monitor's own),
3. times every batch twice: the delta path
   (:meth:`~repro.incremental.EvolvingSparsifier.apply_batch`) against
   a from-scratch :func:`repro.sparsify` on the same mutated graph,
4. measures quality both ways — ``kappa(L_G, L_P)`` of the
   incrementally maintained sparsifier vs the from-scratch one on the
   final mutated graph,

and emits one record per case with per-batch latency percentiles, the
delta-vs-rebuild speedup, the rebuild count the drift monitor charged,
and the kappa ratio.

``--smoke`` shrinks the stream to CI size, enforces a hard wall-clock
budget (default 60 s), and fails the run unless the delta path beats
the per-batch full rebuild and the incremental kappa stays within the
drift budget of the from-scratch kappa.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

import repro  # noqa: E402
from repro.core.metrics import evaluate_sparsifier  # noqa: E402
from repro.graph import make_case  # noqa: E402
from repro.incremental import EvolvingSparsifier  # noqa: E402

#: (case, scale, batches, inserts per batch, deletes per batch)
FULL_MATRIX = (
    ("ecology2", 0.10, 12, 6, 3),
    ("ecology2", 0.25, 8, 8, 4),
)
SMOKE_MATRIX = (
    ("ecology2", 0.05, 6, 4, 2),
)


def _percentile(values: list, q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def _stream(graph, rng, *, batches: int, inserts: int, deletes: int):
    """Yield ``(inserts, deletes)`` batches for a deterministic stream.

    Inserted edges close random 2-hop wedges (the locality real edge
    streams exhibit — a long-range random edge on a near-planar case
    is a worst case that mostly measures the rebuild path) weighted at
    the graph's median edge weight; deletions recycle earlier
    insertions, so the evolving graph stays connected by construction.
    """
    present = {(min(int(u), int(v)), max(int(u), int(v)))
               for u, v in zip(graph.u, graph.v)}
    weight = float(np.median(graph.w))
    pool: list = []
    for _ in range(batches):
        batch_in = []
        while len(batch_in) < inserts:
            u = int(rng.integers(0, graph.n))
            hop = graph.neighbors(int(rng.choice(graph.neighbors(u))))
            v = int(rng.choice(hop))
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in present:
                continue
            present.add(key)
            batch_in.append((key[0], key[1], weight))
        batch_out = []
        for _ in range(min(deletes, len(pool))):
            u, v, _ = pool.pop(int(rng.integers(0, len(pool))))
            present.discard((u, v))
            batch_out.append((u, v))
        pool.extend(batch_in)
        yield batch_in, batch_out


def replay(case: str, scale: float, *, batches: int, inserts: int,
           deletes: int, method: str = "proposed", seed: int = 0,
           drift_budget: float = 64.0, **options) -> dict:
    """Replay one edge stream; return the benchmark record dict."""
    graph, spec = make_case(case, scale=scale, seed=seed)
    evolving = EvolvingSparsifier(graph, method, label=spec.name,
                                  drift_budget=drift_budget,
                                  **options)
    rng = np.random.default_rng(seed)
    delta_seconds: list = []
    rebuild_seconds: list = []
    per_batch: list = []
    scratch = None
    for batch_in, batch_out in _stream(graph, rng, batches=batches,
                                       inserts=inserts,
                                       deletes=deletes):
        start = time.perf_counter()
        entry = evolving.apply_batch(inserts=batch_in,
                                     deletes=batch_out)
        delta = time.perf_counter() - start
        start = time.perf_counter()
        scratch = repro.sparsify(evolving.graph, method, **options)
        rebuild = time.perf_counter() - start
        delta_seconds.append(delta)
        rebuild_seconds.append(rebuild)
        per_batch.append({
            "batch": entry["batch"],
            "inserted": entry["inserted"],
            "deleted": entry["deleted"],
            "touched_nodes": entry["touched_nodes"],
            "reranked_edges": entry["reranked_edges"],
            "rebuild": entry["rebuild"],
            "drift_estimate": entry["drift_estimate"],
            "delta_seconds": delta,
            "full_rebuild_seconds": rebuild,
        })
    kappa_delta = evaluate_sparsifier(
        evolving.graph, evolving.sparsifier, seed=seed
    ).kappa
    kappa_scratch = evaluate_sparsifier(
        evolving.graph, scratch.sparsifier, seed=seed
    ).kappa
    return {
        "case": case,
        "scale": scale,
        "nodes": graph.n,
        "edges": graph.edge_count,
        "method": method,
        "options": dict(options),
        "batches": batches,
        "rebuilds": evolving.record.rebuilds,
        "drift_budget": evolving.drift_budget,
        "delta_seconds": {
            "total": sum(delta_seconds),
            "mean": sum(delta_seconds) / len(delta_seconds),
            "p50": _percentile(delta_seconds, 50),
            "p99": _percentile(delta_seconds, 99),
        },
        "full_rebuild_seconds": {
            "total": sum(rebuild_seconds),
            "mean": sum(rebuild_seconds) / len(rebuild_seconds),
            "p50": _percentile(rebuild_seconds, 50),
            "p99": _percentile(rebuild_seconds, 99),
        },
        "speedup": sum(rebuild_seconds) / max(sum(delta_seconds),
                                              1e-12),
        "kappa": {
            "incremental": kappa_delta,
            "from_scratch": kappa_scratch,
            "ratio": kappa_delta / max(kappa_scratch, 1e-12),
        },
        "per_batch": per_batch,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-size stream with hard assertions")
    parser.add_argument("--budget", type=float, default=None,
                        help="wall-clock budget in seconds "
                        "(default: 60 with --smoke, 900 otherwise)")
    parser.add_argument("--output",
                        default=str(REPO_ROOT /
                                    "BENCH_incremental.json"))
    parser.add_argument("--fraction", type=float, default=0.15,
                        help="edge_fraction passed to the method")
    parser.add_argument("--drift-budget", type=float, default=64.0,
                        help="condition-number inflation budget "
                        "before the monitor forces a rebuild")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    budget = args.budget if args.budget is not None else (
        60.0 if args.smoke else 900.0)
    matrix = SMOKE_MATRIX if args.smoke else FULL_MATRIX
    started = time.time()
    records = []
    for case, scale, batches, inserts, deletes in matrix:
        record = replay(case, scale, batches=batches, inserts=inserts,
                        deletes=deletes, seed=args.seed,
                        drift_budget=args.drift_budget,
                        edge_fraction=args.fraction)
        records.append(record)
        print(f"{case} x{scale}: {record['nodes']} nodes, "
              f"{batches} batches, {record['rebuilds']} rebuild(s), "
              f"delta mean {record['delta_seconds']['mean']*1e3:.1f} ms "
              f"vs rebuild {record['full_rebuild_seconds']['mean']*1e3:.1f} ms "
              f"({record['speedup']:.1f}x), "
              f"kappa ratio {record['kappa']['ratio']:.3f}")
    elapsed = time.time() - started
    payload = {
        "generated_by": "benchmarks/bench_incremental.py",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "smoke": bool(args.smoke),
        "elapsed_seconds": elapsed,
        "records": records,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2,
                                            sort_keys=True) + "\n")
    print(f"wrote {args.output} in {elapsed:.1f}s")
    if elapsed > budget:
        print(f"FAIL: exceeded {budget:.0f}s budget", file=sys.stderr)
        return 1
    if args.smoke:
        for record in records:
            if record["speedup"] <= 1.0:
                print(f"FAIL: delta path no faster than full rebuild "
                      f"on {record['case']} "
                      f"(speedup {record['speedup']:.2f}x)",
                      file=sys.stderr)
                return 1
            if record["kappa"]["ratio"] > record["drift_budget"]:
                print(f"FAIL: incremental kappa drifted "
                      f"{record['kappa']['ratio']:.2f}x past the "
                      f"from-scratch run (budget "
                      f"{record['drift_budget']:.0f})",
                      file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
