"""Micro-benchmarks of the package's hot kernels.

Unlike the table benchmarks (one-shot pipeline timings), these use
pytest-benchmark's statistical repetition to characterize the building
blocks: Cholesky factorization, SPAI construction, the two criticality
kernels, batch LCA, and a preconditioned PCG solve.

The kernel-tier section at the bottom compares the
:mod:`repro.kernels` tiers (pure-Python reference vs numpy vector vs
numba, where installed) on each hot-path kernel, asserts their outputs
bitwise identical, and writes the speedups to ``BENCH_kernels.json``.
Run it standalone as ``python benchmarks/bench_kernels.py --smoke``
(the ``make kernels-smoke`` gate): it fails unless the fastest
available tier beats the reference by >= 5x on the scoring kernel.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402
import pytest  # noqa: E402

from repro.core import (
    ApproxRanker,
    approximate_trace_reduction,
    score_edges,
    tree_truncated_trace_reduction,
)
from repro.graph import (
    BallFinder,
    grid2d,
    incidence_matrix,
    make_case,
    regularization_shift,
    regularized_laplacian,
)
from repro.kernels import (
    available_kernel_sets,
    get_kernels,
    kernel_capabilities,
    resolve_kernels,
)
from repro.linalg import cholesky, pcg, sparse_approximate_inverse
from repro.tree import RootedForest, batch_tree_resistances, mewst
from repro.utils.reporting import Table

from conftest import emit


@pytest.fixture(scope="module")
def setting(scale):
    graph, _ = make_case("ecology2", scale=scale * 0.4, seed=0)
    shift = regularization_shift(graph)
    laplacian_g = regularized_laplacian(graph, shift, fmt="csr")
    tree_ids = mewst(graph)
    forest = RootedForest(graph, tree_ids)
    tree = graph.subgraph(tree_ids)
    laplacian_t = regularized_laplacian(tree, shift)
    factor = cholesky(laplacian_t)
    off = np.flatnonzero(~forest.tree_edge_mask())
    return graph, laplacian_g, forest, tree, laplacian_t, factor, off


def test_cholesky_superlu(benchmark, setting):
    _, _, _, _, laplacian_t, _, _ = setting
    benchmark(lambda: cholesky(laplacian_t, backend="superlu"))


def test_spai_default_delta(benchmark, setting):
    _, _, _, _, _, factor, _ = setting
    benchmark(lambda: sparse_approximate_inverse(factor.L, delta=0.1))


def test_tree_phase_criticality(benchmark, setting):
    graph, _, forest, _, _, _, off = setting
    subset = off[: min(len(off), 2000)]
    benchmark(
        lambda: tree_truncated_trace_reduction(
            graph, forest, edge_ids=subset, beta=5
        )
    )


def test_approximate_criticality(benchmark, setting):
    graph, _, _, tree, _, factor, off = setting
    Z = sparse_approximate_inverse(factor.L, delta=0.1)
    subset = off[: min(len(off), 2000)]
    benchmark(
        lambda: approximate_trace_reduction(
            graph, tree, factor, Z, subset, beta=5
        )
    )


def test_batch_lca_resistances(benchmark, setting):
    graph, _, forest, _, _, _, off = setting
    benchmark(
        lambda: batch_tree_resistances(forest, graph.u[off], graph.v[off])
    )


# ----------------------------------------------------------------------
# Batched ranking engine vs serial scoring (>= 20k nodes).
#
# Three paths over identical candidates, all bit-identical in output:
#
# * "serial per-edge"  — one approximate_trace_reduction call per
#   candidate, re-allocating work arrays and re-growing BFS balls every
#   time (what naive per-candidate scoring costs; the engine's floor);
# * "whole-batch reference" — one approximate_trace_reduction call over
#   the full candidate array (the pre-engine round loop's actual path);
# * "batched ranker"   — ApproxRanker.score_batch with the per-round
#   ball/column caches (the engine's production path).
# ----------------------------------------------------------------------

_RANKING_SUBSET = 300  # candidates scored per timing (serial path is slow)


@pytest.fixture(scope="module")
def ranking_setting(scale):
    # ecology2 at >= 2.1x its base size puts the grid above 20k nodes.
    graph, _ = make_case("ecology2", scale=max(scale, 1.0) * 2.1, seed=0)
    assert graph.n >= 20_000
    shift = regularization_shift(graph)
    tree_ids = mewst(graph)
    forest = RootedForest(graph, tree_ids)
    tree = graph.subgraph(tree_ids)
    factor = cholesky(regularized_laplacian(tree, shift))
    Z = sparse_approximate_inverse(factor.L, delta=0.1)
    off = np.flatnonzero(~forest.tree_edge_mask())
    rng = np.random.default_rng(0)
    subset = np.sort(rng.choice(off, size=_RANKING_SUBSET, replace=False))
    return graph, tree, factor, Z, subset


def _rank_serial_per_edge(graph, tree, factor, Z, subset):
    return np.array([
        float(
            approximate_trace_reduction(graph, tree, factor, Z, [e], beta=5)[0]
        )
        for e in subset
    ])


def _rank_reference_whole_batch(graph, tree, factor, Z, subset):
    return approximate_trace_reduction(graph, tree, factor, Z, subset, beta=5)


def _rank_batched(graph, tree, factor, Z, subset):
    ranker = ApproxRanker(graph, tree, factor, Z, beta=5)
    return score_edges(ranker, subset, workers=1)


def _best_of(fn, repeats=2):
    """Best wall-clock of *repeats* runs (dampens scheduler noise)."""
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_ranking_serial_per_edge(benchmark, ranking_setting):
    graph, tree, factor, Z, subset = ranking_setting
    benchmark(lambda: _rank_serial_per_edge(graph, tree, factor, Z, subset))


def test_ranking_reference_whole_batch(benchmark, ranking_setting):
    graph, tree, factor, Z, subset = ranking_setting
    benchmark(
        lambda: _rank_reference_whole_batch(graph, tree, factor, Z, subset)
    )


def test_ranking_batched(benchmark, ranking_setting):
    graph, tree, factor, Z, subset = ranking_setting
    benchmark(lambda: _rank_batched(graph, tree, factor, Z, subset))


def test_ranking_batched_vs_serial_report(ranking_setting):
    """Time the three paths, emit the comparison, check the 3x target."""
    graph, tree, factor, Z, subset = ranking_setting

    serial_scores, serial_seconds = _best_of(
        lambda: _rank_serial_per_edge(graph, tree, factor, Z, subset)
    )
    reference_scores, reference_seconds = _best_of(
        lambda: _rank_reference_whole_batch(graph, tree, factor, Z, subset)
    )
    batched_scores, batched_seconds = _best_of(
        lambda: _rank_batched(graph, tree, factor, Z, subset)
    )

    assert np.array_equal(serial_scores, batched_scores)
    assert np.array_equal(reference_scores, batched_scores)
    speedup = serial_seconds / batched_seconds
    vs_reference = reference_seconds / batched_seconds
    table = Table(["path", "candidates", "seconds", "edges/s"])
    for label, seconds in (
        ("serial per-edge", serial_seconds),
        ("whole-batch reference", reference_seconds),
        ("batched ranker", batched_seconds),
    ):
        table.add_row(
            [label, len(subset), f"{seconds:.3f}",
             f"{len(subset) / seconds:.0f}"]
        )
    emit(
        "kernels_ranking_batched_vs_serial",
        table.render()
        + f"\nn = {graph.n} nodes; {speedup:.1f}x vs per-edge, "
        f"{vs_reference:.2f}x vs whole-batch reference",
    )
    assert speedup >= 3.0, f"batched ranking only {speedup:.1f}x faster"


def test_pcg_tree_preconditioned(benchmark, setting):
    graph, laplacian_g, _, _, _, factor, _ = setting
    rng = np.random.default_rng(0)
    rhs = rng.standard_normal(graph.n)
    result = benchmark(
        lambda: pcg(laplacian_g, rhs, M_solve=factor.solve, rtol=1e-3)
    )
    assert result.converged


# ----------------------------------------------------------------------
# Kernel tiers: every available repro.kernels tier on each hot-path
# kernel, against the pure-Python reference.  Outputs must be bitwise
# identical (the parity contract of repro/kernels/base.py); the timings
# land in BENCH_kernels.json.  `make kernels-smoke` runs main() below
# and fails unless the fastest non-reference tier wins the scoring
# kernel by >= 5x.
# ----------------------------------------------------------------------

_SCORING_KERNEL = "scoring"  # the gated kernel (ball_pair_edge_sum_flat)
_SMOKE_SPEEDUP_TARGET = 5.0


def _build_tier_workloads(smoke: bool):
    """Fixed, seeded workloads: kernel name -> (description, calls, runner).

    Each runner takes a tier and returns one flat float64 array so the
    cross-tier comparison is a single ``np.array_equal``.  All inputs
    are built once (with the always-available vector tier) and shared,
    so tiers are timed on identical data.
    """
    side = 40 if smoke else 56
    beta = 12  # production betas are 5-8; larger balls stabilize timings
    n_pairs = 50 if smoke else 120
    n_probes = 12 if smoke else 24
    graph = grid2d(side, side, weights="uniform", seed=7)
    indptr, nbr_arr, eid_arr = graph.adjacency()
    weights = graph.w
    rng = np.random.default_rng(7)
    values = rng.standard_normal(graph.n)
    vector = get_kernels("vector")

    # Edge-pair scoring inputs: beta-balls around both endpoints of
    # random edges, the q-ball stamped, the p-ball incidence flattened —
    # exactly what ApproxRanker.score_batch feeds the scoring kernel.
    finder = BallFinder(indptr, nbr_arr, kernels=vector)
    edges = rng.choice(graph.edge_count, size=n_pairs, replace=False)
    stamp = np.zeros(graph.n, dtype=np.int64)
    range_args = []
    flat_pairs = []
    for k, e in enumerate(edges):
        p, q = int(graph.u[e]), int(graph.v[e])
        nodes_p = finder.ball_nodes(p, beta)
        nodes_q = finder.ball_nodes(q, beta)
        clock = k + 1
        stamp[nodes_q] = clock
        starts = indptr[nodes_p]
        lengths = indptr[nodes_p + 1] - starts
        flat = vector.concat_ranges(starts, lengths)
        range_args.append((starts, lengths))
        flat_pairs.append(
            (np.repeat(nodes_p, lengths), nbr_arr[flat], eid_arr[flat], clock)
        )

    def run_scoring(tier):
        return np.asarray([
            tier.ball_pair_edge_sum_flat(
                sources, nbrs, eids, weights, stamp, clock, values
            )
            for sources, nbrs, eids, clock in flat_pairs
        ])

    def run_concat(tier):
        return np.concatenate(
            [tier.concat_ranges(s, ln) for s, ln in range_args]
        ).astype(np.float64)

    centers = np.concatenate([graph.u[edges], graph.v[edges]])

    def run_expand(tier):
        tier_finder = BallFinder(indptr, nbr_arr, kernels=tier)
        return np.concatenate(
            [tier_finder.ball_nodes(int(c), beta) for c in centers]
        ).astype(np.float64)

    # SPAI column gather over the real preconditioner of the grid's
    # low-stretch tree, on the column subsets a scoring round requests.
    shift = regularization_shift(graph)
    tree = graph.subgraph(mewst(graph))
    factor = cholesky(regularized_laplacian(tree, shift))
    Z = sparse_approximate_inverse(factor.L, delta=0.1)
    col_sets = [
        np.sort(rng.choice(graph.n, size=64, replace=False))
        for _ in range(20 if smoke else 40)
    ]

    def run_gather(tier):
        parts = []
        for cols in col_sets:
            for part in tier.gather_csc_columns(
                Z.indptr, Z.indices, Z.data, cols
            ):
                parts.append(np.asarray(part, dtype=np.float64))
        return np.concatenate(parts)

    incidence = incidence_matrix(graph, weighted=True)
    probes = rng.choice([-1.0, 1.0], size=(n_probes, incidence.shape[0]))

    def run_probe(tier):
        return np.concatenate([tier.probe_rhs(incidence, q) for q in probes])

    grid_desc = f"{side}x{side} uniform grid, beta={beta} balls"
    return {
        _SCORING_KERNEL: (
            f"{n_pairs} ball-pair restricted quadratic forms ({grid_desc})",
            n_pairs, run_scoring,
        ),
        "concat_ranges": (
            f"{n_pairs} ball incidence flattenings ({grid_desc})",
            n_pairs, run_concat,
        ),
        "expand_frontier": (
            f"{len(centers)} bulk-BFS ball expansions ({grid_desc})",
            len(centers), run_expand,
        ),
        "gather_csc_columns": (
            f"{len(col_sets)} x 64-column SPAI gathers (nnz={Z.nnz})",
            len(col_sets), run_gather,
        ),
        "probe_rhs": (
            f"{n_probes} Hutchinson probe RHS (m={incidence.shape[0]})",
            n_probes, run_probe,
        ),
    }


def _compare_kernel_tiers(smoke: bool = False):
    """Time every available tier per kernel; assert bitwise parity."""
    workloads = _build_tier_workloads(smoke)
    tiers = [get_kernels(name) for name in available_kernel_sets()]
    records = []
    for kernel_name, (description, calls, runner) in workloads.items():
        seconds = {}
        outputs = {}
        for tier in tiers:
            out, best = _best_of(lambda t=tier: runner(t))
            seconds[tier.name] = best
            outputs[tier.name] = out
        reference = outputs["python"]
        for tier_name, out in outputs.items():
            assert np.array_equal(reference, out), (
                f"{kernel_name}: tier {tier_name!r} diverged from the "
                "pure-Python reference"
            )
        records.append({
            "kernel": kernel_name,
            "workload": description,
            "calls": calls,
            "seconds": {k: round(v, 6) for k, v in seconds.items()},
            "speedup_vs_python": {
                k: round(seconds["python"] / v, 2)
                for k, v in seconds.items()
            },
            "bitwise_identical": True,
        })
    return records


def _tier_table(records) -> Table:
    tier_names = sorted(records[0]["seconds"])
    table = Table(
        ["kernel", "calls"]
        + [f"{name} (s)" for name in tier_names]
        + [f"{name} speedup" for name in tier_names if name != "python"]
    )
    for record in records:
        table.add_row(
            [record["kernel"], record["calls"]]
            + [f"{record['seconds'][n]:.4f}" for n in tier_names]
            + [
                f"{record['speedup_vs_python'][n]:.1f}x"
                for n in tier_names if n != "python"
            ]
        )
    return table


def test_kernel_tier_parity_report():
    """Every tier bit-identical on every kernel; emit the speedups."""
    records = _compare_kernel_tiers(smoke=True)
    assert all(record["bitwise_identical"] for record in records)
    assert {record["kernel"] for record in records} >= {
        _SCORING_KERNEL, "concat_ranges", "expand_frontier",
        "gather_csc_columns", "probe_rhs",
    }
    emit(
        "kernels_tier_comparison",
        _tier_table(records).render()
        + f"\ntiers compared: {', '.join(available_kernel_sets())}; "
        "all outputs bitwise identical",
    )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Compare repro.kernels tiers and write BENCH_kernels.json"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller workloads (the `make kernels-smoke` gate)",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_kernels.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    records = _compare_kernel_tiers(smoke=args.smoke)
    elapsed = time.perf_counter() - start

    payload = {
        "generated_by": "benchmarks/bench_kernels.py",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "smoke": bool(args.smoke),
        "elapsed_seconds": round(elapsed, 3),
        "kernel_sets": kernel_capabilities(),
        "auto_resolves_to": resolve_kernels(),
        "records": records,
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(_tier_table(records).render())
    print(f"wrote {output}")

    scoring = next(r for r in records if r["kernel"] == _SCORING_KERNEL)
    contenders = {
        name: scoring["seconds"][name]
        for name in scoring["seconds"] if name != "python"
    }
    best = min(contenders, key=contenders.get)
    speedup = scoring["seconds"]["python"] / contenders[best]
    print(
        f"scoring kernel: {best} tier {speedup:.1f}x faster than the "
        f"pure-Python reference (target >= {_SMOKE_SPEEDUP_TARGET:.0f}x)"
    )
    if speedup < _SMOKE_SPEEDUP_TARGET:
        raise SystemExit(
            f"kernel smoke gate FAILED: fastest tier ({best}) is only "
            f"{speedup:.1f}x the reference on the scoring kernel "
            f"(target {_SMOKE_SPEEDUP_TARGET:.0f}x)"
        )


if __name__ == "__main__":
    main()
