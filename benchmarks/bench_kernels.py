"""Micro-benchmarks of the package's hot kernels.

Unlike the table benchmarks (one-shot pipeline timings), these use
pytest-benchmark's statistical repetition to characterize the building
blocks: Cholesky factorization, SPAI construction, the two criticality
kernels, batch LCA, and a preconditioned PCG solve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import approximate_trace_reduction, tree_truncated_trace_reduction
from repro.graph import make_case, regularization_shift, regularized_laplacian
from repro.linalg import cholesky, pcg, sparse_approximate_inverse
from repro.tree import RootedForest, batch_tree_resistances, mewst


@pytest.fixture(scope="module")
def setting(scale):
    graph, _ = make_case("ecology2", scale=scale * 0.4, seed=0)
    shift = regularization_shift(graph)
    laplacian_g = regularized_laplacian(graph, shift, fmt="csr")
    tree_ids = mewst(graph)
    forest = RootedForest(graph, tree_ids)
    tree = graph.subgraph(tree_ids)
    laplacian_t = regularized_laplacian(tree, shift)
    factor = cholesky(laplacian_t)
    off = np.flatnonzero(~forest.tree_edge_mask())
    return graph, laplacian_g, forest, tree, laplacian_t, factor, off


def test_cholesky_superlu(benchmark, setting):
    _, _, _, _, laplacian_t, _, _ = setting
    benchmark(lambda: cholesky(laplacian_t, backend="superlu"))


def test_spai_default_delta(benchmark, setting):
    _, _, _, _, _, factor, _ = setting
    benchmark(lambda: sparse_approximate_inverse(factor.L, delta=0.1))


def test_tree_phase_criticality(benchmark, setting):
    graph, _, forest, _, _, _, off = setting
    subset = off[: min(len(off), 2000)]
    benchmark(
        lambda: tree_truncated_trace_reduction(
            graph, forest, edge_ids=subset, beta=5
        )
    )


def test_approximate_criticality(benchmark, setting):
    graph, _, _, tree, _, factor, off = setting
    Z = sparse_approximate_inverse(factor.L, delta=0.1)
    subset = off[: min(len(off), 2000)]
    benchmark(
        lambda: approximate_trace_reduction(
            graph, tree, factor, Z, subset, beta=5
        )
    )


def test_batch_lca_resistances(benchmark, setting):
    graph, _, forest, _, _, _, off = setting
    benchmark(
        lambda: batch_tree_resistances(forest, graph.u[off], graph.v[off])
    )


def test_pcg_tree_preconditioned(benchmark, setting):
    graph, laplacian_g, _, _, _, factor, _ = setting
    rng = np.random.default_rng(0)
    rhs = rng.standard_normal(graph.n)
    result = benchmark(
        lambda: pcg(laplacian_g, rhs, M_solve=factor.solve, rtol=1e-3)
    )
    assert result.converged
