"""Micro-benchmarks of the package's hot kernels.

Unlike the table benchmarks (one-shot pipeline timings), these use
pytest-benchmark's statistical repetition to characterize the building
blocks: Cholesky factorization, SPAI construction, the two criticality
kernels, batch LCA, and a preconditioned PCG solve.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import (
    ApproxRanker,
    approximate_trace_reduction,
    score_edges,
    tree_truncated_trace_reduction,
)
from repro.graph import make_case, regularization_shift, regularized_laplacian
from repro.linalg import cholesky, pcg, sparse_approximate_inverse
from repro.tree import RootedForest, batch_tree_resistances, mewst
from repro.utils.reporting import Table

from conftest import emit


@pytest.fixture(scope="module")
def setting(scale):
    graph, _ = make_case("ecology2", scale=scale * 0.4, seed=0)
    shift = regularization_shift(graph)
    laplacian_g = regularized_laplacian(graph, shift, fmt="csr")
    tree_ids = mewst(graph)
    forest = RootedForest(graph, tree_ids)
    tree = graph.subgraph(tree_ids)
    laplacian_t = regularized_laplacian(tree, shift)
    factor = cholesky(laplacian_t)
    off = np.flatnonzero(~forest.tree_edge_mask())
    return graph, laplacian_g, forest, tree, laplacian_t, factor, off


def test_cholesky_superlu(benchmark, setting):
    _, _, _, _, laplacian_t, _, _ = setting
    benchmark(lambda: cholesky(laplacian_t, backend="superlu"))


def test_spai_default_delta(benchmark, setting):
    _, _, _, _, _, factor, _ = setting
    benchmark(lambda: sparse_approximate_inverse(factor.L, delta=0.1))


def test_tree_phase_criticality(benchmark, setting):
    graph, _, forest, _, _, _, off = setting
    subset = off[: min(len(off), 2000)]
    benchmark(
        lambda: tree_truncated_trace_reduction(
            graph, forest, edge_ids=subset, beta=5
        )
    )


def test_approximate_criticality(benchmark, setting):
    graph, _, _, tree, _, factor, off = setting
    Z = sparse_approximate_inverse(factor.L, delta=0.1)
    subset = off[: min(len(off), 2000)]
    benchmark(
        lambda: approximate_trace_reduction(
            graph, tree, factor, Z, subset, beta=5
        )
    )


def test_batch_lca_resistances(benchmark, setting):
    graph, _, forest, _, _, _, off = setting
    benchmark(
        lambda: batch_tree_resistances(forest, graph.u[off], graph.v[off])
    )


# ----------------------------------------------------------------------
# Batched ranking engine vs serial scoring (>= 20k nodes).
#
# Three paths over identical candidates, all bit-identical in output:
#
# * "serial per-edge"  — one approximate_trace_reduction call per
#   candidate, re-allocating work arrays and re-growing BFS balls every
#   time (what naive per-candidate scoring costs; the engine's floor);
# * "whole-batch reference" — one approximate_trace_reduction call over
#   the full candidate array (the pre-engine round loop's actual path);
# * "batched ranker"   — ApproxRanker.score_batch with the per-round
#   ball/column caches (the engine's production path).
# ----------------------------------------------------------------------

_RANKING_SUBSET = 300  # candidates scored per timing (serial path is slow)


@pytest.fixture(scope="module")
def ranking_setting(scale):
    # ecology2 at >= 2.1x its base size puts the grid above 20k nodes.
    graph, _ = make_case("ecology2", scale=max(scale, 1.0) * 2.1, seed=0)
    assert graph.n >= 20_000
    shift = regularization_shift(graph)
    tree_ids = mewst(graph)
    forest = RootedForest(graph, tree_ids)
    tree = graph.subgraph(tree_ids)
    factor = cholesky(regularized_laplacian(tree, shift))
    Z = sparse_approximate_inverse(factor.L, delta=0.1)
    off = np.flatnonzero(~forest.tree_edge_mask())
    rng = np.random.default_rng(0)
    subset = np.sort(rng.choice(off, size=_RANKING_SUBSET, replace=False))
    return graph, tree, factor, Z, subset


def _rank_serial_per_edge(graph, tree, factor, Z, subset):
    return np.array([
        float(
            approximate_trace_reduction(graph, tree, factor, Z, [e], beta=5)[0]
        )
        for e in subset
    ])


def _rank_reference_whole_batch(graph, tree, factor, Z, subset):
    return approximate_trace_reduction(graph, tree, factor, Z, subset, beta=5)


def _rank_batched(graph, tree, factor, Z, subset):
    ranker = ApproxRanker(graph, tree, factor, Z, beta=5)
    return score_edges(ranker, subset, workers=1)


def _best_of(fn, repeats=2):
    """Best wall-clock of *repeats* runs (dampens scheduler noise)."""
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_ranking_serial_per_edge(benchmark, ranking_setting):
    graph, tree, factor, Z, subset = ranking_setting
    benchmark(lambda: _rank_serial_per_edge(graph, tree, factor, Z, subset))


def test_ranking_reference_whole_batch(benchmark, ranking_setting):
    graph, tree, factor, Z, subset = ranking_setting
    benchmark(
        lambda: _rank_reference_whole_batch(graph, tree, factor, Z, subset)
    )


def test_ranking_batched(benchmark, ranking_setting):
    graph, tree, factor, Z, subset = ranking_setting
    benchmark(lambda: _rank_batched(graph, tree, factor, Z, subset))


def test_ranking_batched_vs_serial_report(ranking_setting):
    """Time the three paths, emit the comparison, check the 3x target."""
    graph, tree, factor, Z, subset = ranking_setting

    serial_scores, serial_seconds = _best_of(
        lambda: _rank_serial_per_edge(graph, tree, factor, Z, subset)
    )
    reference_scores, reference_seconds = _best_of(
        lambda: _rank_reference_whole_batch(graph, tree, factor, Z, subset)
    )
    batched_scores, batched_seconds = _best_of(
        lambda: _rank_batched(graph, tree, factor, Z, subset)
    )

    assert np.array_equal(serial_scores, batched_scores)
    assert np.array_equal(reference_scores, batched_scores)
    speedup = serial_seconds / batched_seconds
    vs_reference = reference_seconds / batched_seconds
    table = Table(["path", "candidates", "seconds", "edges/s"])
    for label, seconds in (
        ("serial per-edge", serial_seconds),
        ("whole-batch reference", reference_seconds),
        ("batched ranker", batched_seconds),
    ):
        table.add_row(
            [label, len(subset), f"{seconds:.3f}",
             f"{len(subset) / seconds:.0f}"]
        )
    emit(
        "kernels_ranking_batched_vs_serial",
        table.render()
        + f"\nn = {graph.n} nodes; {speedup:.1f}x vs per-edge, "
        f"{vs_reference:.2f}x vs whole-batch reference",
    )
    assert speedup >= 3.0, f"batched ranking only {speedup:.1f}x faster"


def test_pcg_tree_preconditioned(benchmark, setting):
    graph, laplacian_g, _, _, _, factor, _ = setting
    rng = np.random.default_rng(0)
    rhs = rng.standard_normal(graph.n)
    result = benchmark(
        lambda: pcg(laplacian_g, rhs, M_solve=factor.solve, rtol=1e-3)
    )
    assert result.converged
