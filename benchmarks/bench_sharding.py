"""Shard-parallel pipeline benchmarks.

``test_sharded_smoke`` is part of ``make bench-smoke``: a quick
sharded-vs-monolithic comparison on a ~14k-node generated grid that
doubles as a functional gate (determinism, connectivity, cut
accounting).  The full shard-scaling record set (1/2/4 shards into the
BENCH trajectory) lives in ``bench_table1_sparsification.py``; the
executable scaling guide is ``docs/scaling.md``.
"""

from __future__ import annotations

import numpy as np

from repro.api import sparsify
from repro.graph import grid2d, is_connected
from repro.utils.reporting import Table

from conftest import emit, run_once

SMOKE_SIDE = 120          # ~14.4k nodes, ~28.7k edges
SMOKE_FRACTION = 0.05
SMOKE_ROUNDS = 2


def test_sharded_smoke(benchmark):
    """Sharded run on a ~14k-node grid: timed, validated, compared."""
    graph = grid2d(SMOKE_SIDE, SMOKE_SIDE, weights="uniform", seed=0)

    sharded = run_once(
        benchmark,
        lambda: sparsify(
            graph, method="proposed", edge_fraction=SMOKE_FRACTION,
            rounds=SMOKE_ROUNDS, shards=4,
        ),
    )
    monolithic = sparsify(
        graph, method="proposed", edge_fraction=SMOKE_FRACTION,
        rounds=SMOKE_ROUNDS,
    )
    repeat = sparsify(
        graph, method="proposed", edge_fraction=SMOKE_FRACTION,
        rounds=SMOKE_ROUNDS, shards=4,
    )

    # Functional gate: fixed shards are bit-deterministic, the stitch
    # preserves connectivity, and "keep" retains the whole cut.
    np.testing.assert_array_equal(sharded.edge_mask, repeat.edge_mask)
    assert is_connected(sharded.sparsifier)
    cut = sharded.sharding["cut"]
    assert cut["kept_edges"] == cut["edges"]

    table = Table(["pipeline", "Ts", "edges", "cut_edges"])
    table.add_row([
        "monolithic", monolithic.setup_seconds, monolithic.edge_count, "-",
    ])
    table.add_row([
        "4 shards", sharded.setup_seconds, sharded.edge_count,
        cut["edges"],
    ])
    shard_seconds = ", ".join(
        f"{entry['sparsify_seconds']:.2f}"
        for entry in sharded.sharding["per_shard"]
    )
    emit(
        "sharding_smoke",
        table.render()
        + f"\nper-shard seconds: {shard_seconds}; partition "
        f"{sharded.sharding['partition_seconds']:.2f}s",
    )
