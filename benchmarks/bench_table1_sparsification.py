"""Table 1 — spectral sparsification quality: GRASS vs the proposed method.

Regenerates the paper's Table 1 columns for every case: sparsification
time ``T_s``, relative condition number ``kappa``, PCG iteration count
``N_i`` and PCG time ``T_i`` (rtol 1e-3, random right-hand side), plus
the per-case and average kappa / T_i reduction ratios.

Paper reference (full-scale, C++): kappa reductions 1.1x-4.8x
(avg 2.6x), PCG-time reductions 1.1x-2.1x (avg 1.7x).  The shape to
check here: the proposed sparsifier beats GRASS on kappa and N_i on
every case at equal edge budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import RunRecord, sparsify
from repro.core import evaluate_sparsifier
from repro.graph import make_case
from repro.utils.reporting import Table, format_count
from repro.utils.timers import Timer

from conftest import emit, emit_records, run_once

CASES = [
    "ecology2",
    "thermal2",
    "parabolic",
    "tmt_sym",
    "G3_circuit",
    "NACA0015",
    "M6",
    "333SP",
    "AS365",
    "NLR",
]

EDGE_FRACTION = 0.10   # recover 10% |V| off-tree edges, as in the paper
ROUNDS = 5             # five-iteration recovery (2% |V| each)
PCG_RTOL = 1e-3

# Documented divergence (see EXPERIMENTS.md, Table 1 notes): on the
# near-uniform-coefficient diagonal lattice (`parabolic`) the proposed
# method reaches a *lower trace* than GRASS but a higher lambda_max —
# the Eq. (5) bound is loose there at reproduction scale, so the
# per-case kappa assertion is waived for it.
KAPPA_EXCEPTIONS = {"parabolic"}

_graphs: dict = {}
_rows: dict = {}
_records: list = []


def _graph(name, scale):
    if name not in _graphs:
        _graphs[name] = make_case(name, scale=scale, seed=0)
    return _graphs[name]


def _bench_method(benchmark, name, scale, method):
    """One (case, method) cell: cold run + quality, logged as a RunRecord."""
    graph, _ = _graph(name, scale)
    result = run_once(
        benchmark,
        lambda: sparsify(
            graph, method=method, edge_fraction=EDGE_FRACTION,
            rounds=ROUNDS, seed=1,
        ),
    )
    timer = Timer()
    with timer:
        quality = evaluate_sparsifier(
            graph, result.sparsifier, rtol=PCG_RTOL, seed=2
        )
    _records.append(RunRecord.from_result(
        result, method=method, label=name,
        quality=quality, evaluate_seconds=timer.elapsed,
    ))
    row = _rows.setdefault(name, {"n": graph.n, "m": graph.edge_count})
    row[method] = {
        "Ts": result.setup_seconds,
        "kappa": quality.kappa,
        "Ni": quality.pcg_iterations,
        "Ti": quality.pcg_seconds,
        "edges": quality.sparsifier_edges,
    }
    return row, quality


@pytest.fixture(scope="module", autouse=True)
def report():
    """Assemble and emit the table after all case benchmarks ran."""
    yield
    if not _rows:
        return
    table = Table(
        ["Case", "|V|", "|E|", "Ts_G", "k_G", "Ni_G", "Ti_G",
         "Ts_P", "k_P", "Ni_P", "Ti_P", "k_red", "Ti_red"]
    )
    kappa_ratios, time_ratios = [], []
    for name in CASES:
        if name not in _rows:
            continue
        row = _rows[name]
        grass, prop = row["grass"], row["proposed"]
        kappa_ratio = grass["kappa"] / prop["kappa"]
        time_ratio = grass["Ti"] / prop["Ti"] if prop["Ti"] > 0 else float("nan")
        kappa_ratios.append(kappa_ratio)
        time_ratios.append(time_ratio)
        table.add_row(
            [name, format_count(row["n"]), format_count(row["m"]),
             grass["Ts"], grass["kappa"], grass["Ni"], grass["Ti"],
             prop["Ts"], prop["kappa"], prop["Ni"], prop["Ti"],
             f"{kappa_ratio:.1f}X", f"{time_ratio:.1f}X"]
        )
    table.add_row(
        ["Average", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-",
         f"{np.mean(kappa_ratios):.1f}X", f"{np.mean(time_ratios):.1f}X"]
    )
    emit("table1_sparsification", table.render())
    # Machine-readable trajectory: every (case, method) run as a
    # RunRecord so commits can be diffed on kappa/Ni/Ts by tooling.
    emit_records("BENCH_table1", _records)


@pytest.mark.parametrize("name", CASES)
def test_grass_sparsification(benchmark, name, scale):
    _bench_method(benchmark, name, scale, "grass")


# ---------------------------------------------------------------------
# Cold vs warm, per linalg backend: the persistent artifact cache must
# let a second process skip setup while reproducing the cold run's
# RunRecord bit for bit (timings excluded — `RunRecord.fingerprint`).
# ---------------------------------------------------------------------
COLD_WARM_CASE = "ecology2"
COLD_WARM_METHODS = ("proposed", "er_sampling")

_cold_warm_rows: list = []


@pytest.fixture(scope="module", autouse=True)
def cold_warm_report():
    """Emit the backend cold/warm table after its benchmarks ran."""
    yield
    if not _cold_warm_rows:
        return
    table = Table(
        ["Case", "method", "backend", "Ts_cold", "Ts_warm",
         "T_restore", "disk_loads", "identical"]
    )
    for row in _cold_warm_rows:
        table.add_row([
            row["case"], row["method"], row["backend"],
            row["ts_cold"], row["ts_warm"], row["restore"],
            row["disk_loads"], "yes" if row["identical"] else "NO",
        ])
    emit("table1_backend_cold_warm", table.render())


@pytest.mark.parametrize("method", COLD_WARM_METHODS)
@pytest.mark.parametrize("backend_name", ["scipy", "numpy"])
def test_backend_cold_warm(backend_name, method, scale, tmp_path):
    """One cold + one warm run per (method, backend) into the trajectory."""
    from repro.api import SparsifierSession

    graph, _ = _graph(COLD_WARM_CASE, scale)
    records = {}
    disk_loads = 0
    for phase in ("cold", "warm"):
        # A fresh session per phase: the warm one shares nothing
        # in-memory with the cold one, exactly like a new process.
        session = SparsifierSession(
            graph, label=f"{COLD_WARM_CASE}[{backend_name}-{phase}]",
            cache_dir=tmp_path,
        )
        options = {"edge_fraction": EDGE_FRACTION, "seed": 1,
                   "backend": backend_name}
        if method == "proposed":
            options["rounds"] = ROUNDS
        records[phase] = session.run(method, **options)
        disk = session.stats()["disk"]
        if phase == "warm":
            disk_loads = sum(disk["hits"].values())
            assert disk_loads > 0, "warm run never touched the disk cache"
            assert not disk["evictions"], "warm run hit corrupt entries"

    cold, warm = records["cold"], records["warm"]

    # Labels differ by construction; neutralize them in the comparison
    # only (the trajectory keeps the phase-qualified labels).
    def _neutral(record):
        fp = record.fingerprint()
        fp["graph"] = dict(fp["graph"], label=COLD_WARM_CASE)
        return fp

    identical = _neutral(cold) == _neutral(warm)
    assert identical, (
        f"warm {method}/{backend_name} run diverged from cold"
    )
    _cold_warm_rows.append({
        "case": COLD_WARM_CASE, "method": method, "backend": backend_name,
        "ts_cold": cold.timings["sparsify_seconds"],
        "ts_warm": warm.timings["sparsify_seconds"],
        # The warm run's setup is mostly cache I/O; the split keeps the
        # speedup attributable (sparsify_seconds excludes restore).
        "restore": warm.timings.get("restore_seconds", 0.0),
        "disk_loads": disk_loads, "identical": identical,
    })
    _records.append(cold)
    _records.append(warm)


# ---------------------------------------------------------------------
# Shard scaling: the same case at 1/2/4 shards, into the trajectory.
# Labels like "ecology2[shards-2]" keep the records distinguishable
# from the monolithic Table 1 cells.
# ---------------------------------------------------------------------
SHARD_CASE = "ecology2"
SHARD_COUNTS = (1, 2, 4)

_shard_rows: list = []


@pytest.fixture(scope="module", autouse=True)
def shard_scaling_report():
    """Emit the shard-scaling table after its benchmarks ran."""
    yield
    if not _shard_rows:
        return
    table = Table(
        ["Case", "shards", "Ts", "kappa", "Ni", "edges", "cut_kept"]
    )
    for row in _shard_rows:
        table.add_row([
            row["case"], row["shards"], row["Ts"], row["kappa"],
            row["Ni"], row["edges"], row["cut_kept"],
        ])
    emit("table1_shard_scaling", table.render())


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_shard_scaling(benchmark, shards, scale):
    """One (case, shards) cell: sharded run + quality, as a RunRecord."""
    graph, _ = _graph(SHARD_CASE, scale)
    result = run_once(
        benchmark,
        lambda: sparsify(
            graph, method="proposed", edge_fraction=EDGE_FRACTION,
            rounds=ROUNDS, seed=1, shards=shards,
        ),
    )
    timer = Timer()
    with timer:
        quality = evaluate_sparsifier(
            graph, result.sparsifier, rtol=PCG_RTOL, seed=2
        )
    _records.append(RunRecord.from_result(
        result, method="proposed", label=f"{SHARD_CASE}[shards-{shards}]",
        quality=quality, evaluate_seconds=timer.elapsed,
    ))
    cut_kept = (
        result.sharding["cut"]["kept_edges"]
        if result.sharding is not None else 0
    )
    _shard_rows.append({
        "case": SHARD_CASE, "shards": shards,
        "Ts": result.setup_seconds, "kappa": quality.kappa,
        "Ni": quality.pcg_iterations, "edges": quality.sparsifier_edges,
        "cut_kept": cut_kept,
    })
    assert quality.pcg_converged


@pytest.mark.parametrize("name", CASES)
def test_proposed_sparsification(benchmark, name, scale):
    row, quality = _bench_method(benchmark, name, scale, "proposed")
    # Shape assertions against the paper (both methods must have run).
    if "grass" in row:
        assert row["proposed"]["edges"] == row["grass"]["edges"]
        if name not in KAPPA_EXCEPTIONS:
            assert quality.kappa <= row["grass"]["kappa"] * 1.15, (
                f"{name}: proposed kappa {quality.kappa:.1f} not better "
                f"than GRASS {row['grass']['kappa']:.1f}"
            )
