"""Table 1 — spectral sparsification quality: GRASS vs the proposed method.

Regenerates the paper's Table 1 columns for every case: sparsification
time ``T_s``, relative condition number ``kappa``, PCG iteration count
``N_i`` and PCG time ``T_i`` (rtol 1e-3, random right-hand side), plus
the per-case and average kappa / T_i reduction ratios.

Paper reference (full-scale, C++): kappa reductions 1.1x-4.8x
(avg 2.6x), PCG-time reductions 1.1x-2.1x (avg 1.7x).  The shape to
check here: the proposed sparsifier beats GRASS on kappa and N_i on
every case at equal edge budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import RunRecord, sparsify
from repro.core import evaluate_sparsifier
from repro.graph import make_case
from repro.utils.reporting import Table, format_count
from repro.utils.timers import Timer

from conftest import emit, emit_records, run_once

CASES = [
    "ecology2",
    "thermal2",
    "parabolic",
    "tmt_sym",
    "G3_circuit",
    "NACA0015",
    "M6",
    "333SP",
    "AS365",
    "NLR",
]

EDGE_FRACTION = 0.10   # recover 10% |V| off-tree edges, as in the paper
ROUNDS = 5             # five-iteration recovery (2% |V| each)
PCG_RTOL = 1e-3

# Documented divergence (see EXPERIMENTS.md, Table 1 notes): on the
# near-uniform-coefficient diagonal lattice (`parabolic`) the proposed
# method reaches a *lower trace* than GRASS but a higher lambda_max —
# the Eq. (5) bound is loose there at reproduction scale, so the
# per-case kappa assertion is waived for it.
KAPPA_EXCEPTIONS = {"parabolic"}

_graphs: dict = {}
_rows: dict = {}
_records: list = []


def _graph(name, scale):
    if name not in _graphs:
        _graphs[name] = make_case(name, scale=scale, seed=0)
    return _graphs[name]


def _bench_method(benchmark, name, scale, method):
    """One (case, method) cell: cold run + quality, logged as a RunRecord."""
    graph, _ = _graph(name, scale)
    result = run_once(
        benchmark,
        lambda: sparsify(
            graph, method=method, edge_fraction=EDGE_FRACTION,
            rounds=ROUNDS, seed=1,
        ),
    )
    timer = Timer()
    with timer:
        quality = evaluate_sparsifier(
            graph, result.sparsifier, rtol=PCG_RTOL, seed=2
        )
    _records.append(RunRecord.from_result(
        result, method=method, label=name,
        quality=quality, evaluate_seconds=timer.elapsed,
    ))
    row = _rows.setdefault(name, {"n": graph.n, "m": graph.edge_count})
    row[method] = {
        "Ts": result.setup_seconds,
        "kappa": quality.kappa,
        "Ni": quality.pcg_iterations,
        "Ti": quality.pcg_seconds,
        "edges": quality.sparsifier_edges,
    }
    return row, quality


@pytest.fixture(scope="module", autouse=True)
def report():
    """Assemble and emit the table after all case benchmarks ran."""
    yield
    if not _rows:
        return
    table = Table(
        ["Case", "|V|", "|E|", "Ts_G", "k_G", "Ni_G", "Ti_G",
         "Ts_P", "k_P", "Ni_P", "Ti_P", "k_red", "Ti_red"]
    )
    kappa_ratios, time_ratios = [], []
    for name in CASES:
        if name not in _rows:
            continue
        row = _rows[name]
        grass, prop = row["grass"], row["proposed"]
        kappa_ratio = grass["kappa"] / prop["kappa"]
        time_ratio = grass["Ti"] / prop["Ti"] if prop["Ti"] > 0 else float("nan")
        kappa_ratios.append(kappa_ratio)
        time_ratios.append(time_ratio)
        table.add_row(
            [name, format_count(row["n"]), format_count(row["m"]),
             grass["Ts"], grass["kappa"], grass["Ni"], grass["Ti"],
             prop["Ts"], prop["kappa"], prop["Ni"], prop["Ti"],
             f"{kappa_ratio:.1f}X", f"{time_ratio:.1f}X"]
        )
    table.add_row(
        ["Average", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-",
         f"{np.mean(kappa_ratios):.1f}X", f"{np.mean(time_ratios):.1f}X"]
    )
    emit("table1_sparsification", table.render())
    # Machine-readable trajectory: every (case, method) run as a
    # RunRecord so commits can be diffed on kappa/Ni/Ts by tooling.
    emit_records("BENCH_table1", _records)


@pytest.mark.parametrize("name", CASES)
def test_grass_sparsification(benchmark, name, scale):
    _bench_method(benchmark, name, scale, "grass")


@pytest.mark.parametrize("name", CASES)
def test_proposed_sparsification(benchmark, name, scale):
    row, quality = _bench_method(benchmark, name, scale, "proposed")
    # Shape assertions against the paper (both methods must have run).
    if "grass" in row:
        assert row["proposed"]["edges"] == row["grass"]["edges"]
        if name not in KAPPA_EXCEPTIONS:
            assert quality.kappa <= row["grass"]["kappa"] * 1.15, (
                f"{name}: proposed kappa {quality.kappa:.1f} not better "
                f"than GRASS {row['grass']['kappa']:.1f}"
            )
