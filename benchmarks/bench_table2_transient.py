"""Table 2 — power-grid transient simulation.

Regenerates the paper's Table 2: for each PG case, transient analysis
over 5 ns with

* the direct solver at a fixed 10 ps step (breakpoint-limited),
* PCG with a GRASS-sparsifier preconditioner, variable steps <= 200 ps,
* PCG with the proposed-sparsifier preconditioner, same stepping,

reporting ``T_tr``, average PCG iterations ``N_a``, memory, and the two
speedups: Sp1 = direct/proposed, Sp2 = GRASS/proposed.

Paper reference: Sp1 avg 3.4x, Sp2 avg 1.4x, iterative memory ~4x
smaller.  Shape to check: the iterative solver needs far fewer steps
and less memory; the proposed preconditioner needs fewer PCG
iterations than GRASS's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.powergrid import (
    build_sparsifier_preconditioner,
    make_pg_case,
    simulate_transient_direct,
    simulate_transient_pcg,
)
from repro.utils.reporting import Table, format_bytes, format_count

from conftest import emit, run_once

CASES = ["ibmpg3t", "ibmpg4t", "ibmpg5t", "ibmpg6t", "thupg1t", "thupg2t"]
T_END = 5e-9
DIRECT_STEP = 10e-12
MAX_STEP = 200e-12
PCG_RTOL = 1e-6
EDGE_FRACTION = 0.10

_netlists: dict = {}
_rows: dict = {}


def _netlist(name, scale):
    if name not in _netlists:
        _netlists[name] = make_pg_case(name, scale=scale, seed=0)
    return _netlists[name]


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not _rows:
        return
    table = Table(
        ["Case", "|V|", "Ttr_D", "Mem_D", "Ts_G", "Ttr_G", "Na_G",
         "Ts_P", "Ttr_P", "Na_P", "Mem_P", "Sp1", "Sp2"]
    )
    sp1_all, sp2_all = [], []
    for name in CASES:
        if name not in _rows or "proposed" not in _rows[name]:
            continue
        row = _rows[name]
        direct, grass, prop = row["direct"], row["grass"], row["proposed"]
        sp1 = direct["Ttr"] / prop["Ttr"]
        sp2 = grass["Ttr"] / prop["Ttr"]
        sp1_all.append(sp1)
        sp2_all.append(sp2)
        table.add_row(
            [name, format_count(row["n"]),
             direct["Ttr"], format_bytes(direct["mem"]),
             grass["Ts"], grass["Ttr"], f"{grass['Na']:.1f}",
             prop["Ts"], prop["Ttr"], f"{prop['Na']:.1f}",
             format_bytes(prop["mem"]), f"{sp1:.1f}", f"{sp2:.1f}"]
        )
    table.add_row(
        ["Average", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-",
         f"{np.mean(sp1_all):.1f}", f"{np.mean(sp2_all):.1f}"]
    )
    emit("table2_transient", table.render())


@pytest.mark.parametrize("name", CASES)
def test_direct_transient(benchmark, name, scale):
    netlist, _ = _netlist(name, scale)
    result = run_once(
        benchmark,
        lambda: simulate_transient_direct(
            netlist, t_end=T_END, step=DIRECT_STEP
        ),
    )
    _rows.setdefault(name, {"n": netlist.n})["direct"] = {
        "Ttr": result.transient_seconds,
        "mem": result.memory_bytes,
        "steps": result.steps,
    }


@pytest.mark.parametrize("name", CASES)
@pytest.mark.parametrize("method", ["grass", "proposed"])
def test_iterative_transient(benchmark, name, method, scale):
    netlist, _ = _netlist(name, scale)
    factor, sparsify_seconds, _ = build_sparsifier_preconditioner(
        netlist, method=method, edge_fraction=EDGE_FRACTION, seed=1
    )
    result = run_once(
        benchmark,
        lambda: simulate_transient_pcg(
            netlist, factor, t_end=T_END, max_step=MAX_STEP, rtol=PCG_RTOL
        ),
    )
    row = _rows.setdefault(name, {"n": netlist.n})
    row[method] = {
        "Ts": sparsify_seconds,
        "Ttr": result.transient_seconds,
        "Na": result.avg_iterations,
        "mem": result.memory_bytes,
        "steps": result.steps,
    }
    if method == "proposed" and "direct" in row:
        # Shape: variable stepping needs far fewer steps, less memory.
        assert row[method]["steps"] < row["direct"]["steps"]
        assert row[method]["mem"] <= row["direct"]["mem"]
    if method == "proposed" and "grass" in row:
        # Shape: proposed preconditioner converges in fewer iterations.
        assert row[method]["Na"] <= row["grass"]["Na"] * 1.15
