"""Table 3 — approximate Fiedler vector for spectral partitioning.

Regenerates the paper's Table 3: five inverse-power-iteration steps on
five graphs, comparing the direct solver against sparsifier-PCG inner
solves (GRASS preconditioner and the proposed one).  Columns: solver
runtime ``T_D`` / ``T_I``, average PCG iterations ``N_a``, partition
relative error vs the direct result, memory, and speedups Sp1 =
direct/proposed, Sp2 = GRASS/proposed.

Paper reference: Sp1 avg 3.3x, Sp2 avg 1.4x, RelErr at the 1e-3 level.
Shape to check: iterative solvers use less memory and produce almost
the same partition; the proposed preconditioner needs fewer PCG
iterations than GRASS's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import make_case
from repro.partitioning import (
    build_partition_preconditioner,
    fiedler_vector,
    partition_relative_error,
    spectral_bipartition,
)
from repro.utils.reporting import Table, format_bytes
from repro.utils.timers import Timer

from conftest import emit, run_once

CASES = ["ecology2", "thermal2", "parabolic", "tmt_sym", "G3_circuit"]
STEPS = 5
PCG_RTOL = 1e-6
EDGE_FRACTION = 0.10

_graphs: dict = {}
_rows: dict = {}


def _graph(name, scale):
    if name not in _graphs:
        _graphs[name] = make_case(name, scale=scale, seed=0)
    return _graphs[name]


def _preconditioner(graph, method):
    factor, _ = build_partition_preconditioner(
        graph, method=method, edge_fraction=EDGE_FRACTION, rounds=5, seed=1
    )
    return factor


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not _rows:
        return
    table = Table(
        ["Case", "T_D", "Mem_D", "T_G", "Na_G", "Err_G",
         "T_P", "Mem_P", "Na_P", "Err_P", "Sp1", "Sp2"]
    )
    sp1_all, sp2_all = [], []
    for name in CASES:
        if name not in _rows or "proposed" not in _rows[name]:
            continue
        row = _rows[name]
        direct, grass, prop = row["direct"], row["grass"], row["proposed"]
        sp1 = direct["T"] / prop["T"]
        sp2 = grass["T"] / prop["T"]
        sp1_all.append(sp1)
        sp2_all.append(sp2)
        table.add_row(
            [name, direct["T"], format_bytes(direct["mem"]),
             grass["T"], f"{grass['Na']:.1f}", f"{grass['err']:.1E}",
             prop["T"], format_bytes(prop["mem"]),
             f"{prop['Na']:.1f}", f"{prop['err']:.1E}",
             f"{sp1:.1f}", f"{sp2:.1f}"]
        )
    table.add_row(
        ["Average", "-", "-", "-", "-", "-", "-", "-", "-", "-",
         f"{np.mean(sp1_all):.1f}", f"{np.mean(sp2_all):.1f}"]
    )
    emit("table3_partitioning", table.render())


@pytest.mark.parametrize("name", CASES)
def test_direct_fiedler(benchmark, name, scale):
    graph, _ = _graph(name, scale)
    result = run_once(
        benchmark,
        lambda: fiedler_vector(graph, method="direct", steps=STEPS, seed=3),
    )
    _rows.setdefault(name, {})["direct"] = {
        "T": result.seconds,
        "mem": result.memory_bytes,
        "labels": spectral_bipartition(result.vector),
    }


@pytest.mark.parametrize("name", CASES)
@pytest.mark.parametrize("method", ["grass", "proposed"])
def test_iterative_fiedler(benchmark, name, method, scale):
    graph, _ = _graph(name, scale)
    with Timer() as sparsify_timer:
        factor = _preconditioner(graph, method)
    result = run_once(
        benchmark,
        lambda: fiedler_vector(
            graph,
            method="pcg",
            preconditioner=factor,
            steps=STEPS,
            rtol=PCG_RTOL,
            seed=3,
        ),
    )
    row = _rows.setdefault(name, {})
    labels = spectral_bipartition(result.vector)
    err = (
        partition_relative_error(row["direct"]["labels"], labels)
        if "direct" in row
        else float("nan")
    )
    row[method] = {
        "T": result.seconds,
        "Na": result.avg_iterations,
        "mem": result.memory_bytes,
        "err": err,
        "Ts": sparsify_timer.elapsed,
    }
    if method == "proposed":
        # Shape: marginal partition error and leaner memory than direct.
        assert err < 0.05
        assert row[method]["mem"] <= row["direct"]["mem"]
        if "grass" in row:
            assert row[method]["Na"] <= row["grass"]["Na"] * 1.15
