"""Shared benchmark infrastructure.

Every ``bench_*`` module regenerates one table or figure of the paper.
Tables are printed to stdout (visible with ``pytest -s``) and always
written to ``benchmarks/results/<name>.txt`` so that a plain
``pytest benchmarks/ --benchmark-only`` run leaves the regenerated
artifacts on disk.

Case sizes follow the registries in :mod:`repro.graph.suitesparse_like`
and :mod:`repro.powergrid.benchmarks`; scale them with the
``REPRO_SCALE`` environment variable (default 1.0 ~ 3-16k nodes per
case, a laptop-friendly shrink of the paper's 0.5-9M).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_records(name: str, records: list) -> None:
    """Persist RunRecords as ``<repo>/<name>.json``.

    ``BENCH_*.json`` files at the repository root are the
    machine-readable performance trajectory: each benchmark run
    overwrites its file, and version control carries the history.
    """
    payload = [
        record.to_dict() if hasattr(record, "to_dict") else record
        for record in records
    ]
    path = REPO_ROOT / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(payload)} run records to {path}")


@pytest.fixture(scope="session")
def scale() -> float:
    """Global case-size multiplier (REPRO_SCALE)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def run_once(benchmark, target):
    """Benchmark *target* with exactly one timed execution.

    The table benchmarks run full sparsification pipelines; repeating
    them for statistics would multiply the suite's runtime for no
    insight, so each is timed once (pytest-benchmark pedantic mode).
    """
    return benchmark.pedantic(target, rounds=1, iterations=1)
