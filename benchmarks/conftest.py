"""Shared benchmark infrastructure.

Every ``bench_*`` module regenerates one table or figure of the paper.
Tables are printed to stdout (visible with ``pytest -s``) and always
written to ``benchmarks/results/<name>.txt`` so that a plain
``pytest benchmarks/ --benchmark-only`` run leaves the regenerated
artifacts on disk.

Case sizes follow the registries in :mod:`repro.graph.suitesparse_like`
and :mod:`repro.powergrid.benchmarks`; scale them with the
``REPRO_SCALE`` environment variable (default 1.0 ~ 3-16k nodes per
case, a laptop-friendly shrink of the paper's 0.5-9M).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_records(name: str, records: list, section: str = None,
                 output=None) -> None:
    """Persist RunRecords as ``<repo>/<name>.json``.

    ``BENCH_*.json`` files at the repository root are the
    machine-readable performance trajectory: each benchmark run
    overwrites its file, and version control carries the history.

    With *section* set, the file holds a ``{section: [records]}`` dict
    instead of a flat list and only the named section is replaced —
    this is how the two application benchmarks share
    ``BENCH_apps.json`` without clobbering each other.  *output*
    overrides the destination path (the executable docs use a scratch
    path so ``make docs-check`` never rewrites the checked-in
    trajectory).
    """
    payload = [
        record.to_dict() if hasattr(record, "to_dict") else record
        for record in records
    ]
    path = Path(output) if output else REPO_ROOT / f"{name}.json"
    if section is not None:
        merged = {}
        if path.exists():
            try:
                on_disk = json.loads(path.read_text())
            except json.JSONDecodeError:
                on_disk = None
            if isinstance(on_disk, dict):
                merged = on_disk
        merged[section] = payload
        path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"wrote {len(payload)} run records to {path} "
              f"[section {section!r}]")
        return
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(payload)} run records to {path}")


@pytest.fixture(scope="session")
def scale() -> float:
    """Global case-size multiplier (REPRO_SCALE)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def run_once(benchmark, target):
    """Benchmark *target* with exactly one timed execution.

    The table benchmarks run full sparsification pipelines; repeating
    them for statistics would multiply the suite's runtime for no
    insight, so each is timed once (pytest-benchmark pedantic mode).
    """
    return benchmark.pedantic(target, rounds=1, iterations=1)
