"""Power-grid transient analysis: direct vs sparsifier-PCG solver.

Reproduces the paper's Sec. 4.2 workflow on a synthetic IBM-style power
grid (VDD + GND planes, pulse current loads, 1-10 pF node caps):

1. direct solver — factor (G + C/h) once at a fixed 10 ps step;
2. iterative solver — variable steps up to 200 ps, PCG preconditioned
   by the factored trace-reduction sparsifier built at DC.

Prints the Table-2-style comparison and writes the waveform of one VDD
node and one GND node (the paper's Fig. 1) to ``examples/
pg_waveforms.csv`` — resolved relative to this file, not the current
working directory, so the artifact lands in the same place no matter
where the example is launched from.

Run:  python examples/power_grid_transient.py [--scale S] [--t-end T]
"""

import argparse
from pathlib import Path

import numpy as np

from repro.powergrid import (
    build_sparsifier_preconditioner,
    make_pg_case,
    simulate_transient_direct,
    simulate_transient_pcg,
)
from repro.powergrid.transient import max_probe_difference

EXAMPLE_DIR = Path(__file__).resolve().parent


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="direct vs sparsifier-PCG PG transient"
    )
    parser.add_argument("--scale", type=float, default=0.5,
                        help="case-size multiplier (default 0.5)")
    parser.add_argument("--t-end", type=float, default=5e-9,
                        help="simulated window in seconds (default 5 ns)")
    parser.add_argument("--out", default="pg_waveforms.csv",
                        help="output CSV; relative paths resolve next to "
                        "this example")
    args = parser.parse_args(argv)
    out_path = EXAMPLE_DIR / args.out

    netlist, spec = make_pg_case("ibmpg4t", scale=args.scale, seed=0)
    half = netlist.n // 2
    vdd_probe = next(l.node for l in netlist.loads if l.node < half)
    gnd_probe = next(l.node for l in netlist.loads if l.node >= half)
    probes = [vdd_probe, gnd_probe]
    print(
        f"case {spec.name}: {netlist.n} nodes, "
        f"{len(netlist.loads)} loads, {len(netlist.pad_nodes())} pads"
    )

    direct = simulate_transient_direct(
        netlist, t_end=args.t_end, step=10e-12, probes=probes
    )
    print(
        f"direct:    {direct.steps} steps, "
        f"T_tr = {direct.transient_seconds:.2f} s, "
        f"mem = {direct.memory_bytes / 1e6:.1f} MB"
    )

    factor, sparsify_seconds, _ = build_sparsifier_preconditioner(
        netlist, method="proposed", edge_fraction=0.10, seed=1
    )
    iterative = simulate_transient_pcg(
        netlist, factor, t_end=args.t_end, probes=probes
    )
    print(
        f"iterative: {iterative.steps} steps, "
        f"T_tr = {iterative.transient_seconds:.2f} s "
        f"(+ {sparsify_seconds:.2f} s sparsification), "
        f"avg PCG iters = {iterative.avg_iterations:.1f}, "
        f"mem = {iterative.memory_bytes / 1e6:.1f} MB"
    )

    for label, node in (("VDD", vdd_probe), ("GND", gnd_probe)):
        diff = max_probe_difference(direct, iterative, node)
        wave = direct.probe(node)
        print(
            f"{label} node {node}: V in [{wave.min():.4f}, {wave.max():.4f}] V, "
            f"direct-vs-iterative deviation {diff * 1e3:.2f} mV "
            f"(paper bound: < 16 mV)"
        )

    grid = direct.times
    rows = np.column_stack(
        [
            grid,
            direct.probe(vdd_probe),
            np.interp(grid, iterative.times, iterative.probe(vdd_probe)),
            direct.probe(gnd_probe),
            np.interp(grid, iterative.times, iterative.probe(gnd_probe)),
        ]
    )
    np.savetxt(
        out_path,
        rows,
        delimiter=",",
        header="time_s,vdd_direct,vdd_iterative,gnd_direct,gnd_iterative",
        comments="",
    )
    print(f"waveforms written to {out_path} (Fig. 1 data)")


if __name__ == "__main__":
    main()
