"""Preconditioner shoot-out on one SDD system.

Solves ``L_G x = b`` with PCG under six preconditioners of increasing
sophistication, printing iterations and total time for each:

  none -> Jacobi -> spanning tree -> feGRASS -> GRASS -> proposed

This is the paper's core argument in one table: better sparsifiers
(lower kappa) mean fewer PCG iterations for the same memory budget.

Run:  python examples/preconditioner_comparison.py
"""

import time

import numpy as np

from repro import (
    SparsifierSession,
    cholesky,
    make_case,
    mewst,
    pcg,
    regularization_shift,
    regularized_laplacian,
)


def main() -> None:
    graph, spec = make_case("thermal2", scale=0.8, seed=0)
    print(f"case {spec.name}-like: {graph.n} nodes, {graph.edge_count} edges")
    shift = regularization_shift(graph)
    laplacian_g = regularized_laplacian(graph, shift, fmt="csr")
    rng = np.random.default_rng(0)
    rhs = rng.standard_normal(graph.n)
    rtol = 1e-6

    preconditioners = {}
    preconditioners["none"] = (None, 0.0, 0)

    inverse_diagonal = 1.0 / laplacian_g.diagonal()
    preconditioners["jacobi"] = (
        lambda r: inverse_diagonal * r, 0.0, graph.n
    )

    t0 = time.perf_counter()
    tree = graph.subgraph(mewst(graph))
    tree_factor = cholesky(regularized_laplacian(tree, shift))
    preconditioners["tree (MEWST)"] = (
        tree_factor.solve, time.perf_counter() - t0, tree_factor.nnz
    )

    # One session runs all three sparsifiers; the spanning tree/forest
    # artifacts are derived once and shared (results are unchanged).
    session = SparsifierSession(graph, label=spec.name)
    for label, method, options in (
        ("feGRASS", "fegrass", {}),
        ("GRASS", "grass", {"rounds": 5}),
        ("proposed", "proposed", {"rounds": 5}),
    ):
        t0 = time.perf_counter()
        result = session.sparsify(method, edge_fraction=0.10, **options)
        factor = cholesky(
            regularized_laplacian(result.sparsifier, shift)
        )
        preconditioners[label] = (
            factor.solve, time.perf_counter() - t0, factor.nnz
        )

    print(f"\n{'preconditioner':>14} | {'setup_s':>8} | {'nnz':>8} | "
          f"{'iters':>6} | {'solve_s':>8}")
    for label, (M_solve, setup, nnz) in preconditioners.items():
        t0 = time.perf_counter()
        result = pcg(laplacian_g, rhs, M_solve=M_solve, rtol=rtol,
                     maxiter=20000)
        elapsed = time.perf_counter() - t0
        iters = result.iterations if result.converged else -1
        print(f"{label:>14} | {setup:8.2f} | {nnz:8d} | {iters:6d} | "
              f"{elapsed:8.3f}")


if __name__ == "__main__":
    main()
