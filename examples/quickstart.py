"""Quickstart: sparsify a graph and measure what you gained.

Builds a weighted 2-D grid, runs the trace-reduction sparsifier
(Algorithm 2 of the DAC'22 paper), and compares the sparsifier against
the GRASS baseline on the two metrics that matter for preconditioning:
the relative condition number kappa(L_G, L_P) and PCG iteration count.

Run:  python examples/quickstart.py
"""

from repro import (
    evaluate_sparsifier,
    grass_sparsify,
    grid2d,
    trace_reduction_sparsify,
)


def main() -> None:
    # A 100x100 grid with log-uniform random weights (~ ecology2's class).
    graph = grid2d(100, 100, weights="uniform", seed=0)
    print(f"graph: {graph.n} nodes, {graph.edge_count} edges")

    # Recover 10% |V| off-tree edges over 5 densification rounds —
    # the paper's standard setting.
    proposed = trace_reduction_sparsify(
        graph, edge_fraction=0.10, rounds=5, seed=1
    )
    grass = grass_sparsify(graph, edge_fraction=0.10, rounds=5, seed=1)

    for label, result in (("proposed", proposed), ("GRASS", grass)):
        quality = evaluate_sparsifier(graph, result.sparsifier, rtol=1e-3)
        print(
            f"{label:>9}: {quality.sparsifier_edges} edges, "
            f"kappa = {quality.kappa:7.1f}, "
            f"PCG iterations = {quality.pcg_iterations}, "
            f"sparsify time = {result.setup_seconds:.2f} s"
        )

    q_prop = evaluate_sparsifier(graph, proposed.sparsifier)
    q_grass = evaluate_sparsifier(graph, grass.sparsifier)
    print(
        f"\nkappa reduction vs GRASS: {q_grass.kappa / q_prop.kappa:.2f}X "
        f"(paper reports 1.1-4.8X on the full-scale cases)"
    )


if __name__ == "__main__":
    main()
