"""Quickstart: sparsify a graph and measure what you gained.

Builds a weighted 2-D grid and compares the trace-reduction sparsifier
(Algorithm 2 of the DAC'22 paper) against the GRASS baseline through
the unified API: one `SparsifierSession` runs both methods (sharing
the spanning tree and other artifacts) and emits machine-readable
`RunRecord`s with the two metrics that matter for preconditioning —
the relative condition number kappa(L_G, L_P) and PCG iteration count.

Run:  python examples/quickstart.py
"""

from repro import RunRecord, SparsifierSession, grid2d


def main() -> None:
    # A 100x100 grid with log-uniform random weights (~ ecology2's class).
    graph = grid2d(100, 100, weights="uniform", seed=0)
    print(f"graph: {graph.n} nodes, {graph.edge_count} edges")

    # Recover 10% |V| off-tree edges; 5 densification rounds for the
    # iterative methods — the paper's standard setting.
    session = SparsifierSession(graph, label="grid100")
    records = [
        session.run(method, edge_fraction=0.10, rounds=5, seed=1)
        for method in ("proposed", "grass")
    ]

    for record in records:
        quality = record.quality
        print(
            f"{record.method:>9}: {record.graph['sparsifier_edges']} edges, "
            f"kappa = {quality['kappa']:7.1f}, "
            f"PCG iterations = {quality['pcg_iterations']}, "
            f"sparsify time = {record.timings['sparsify_seconds']:.2f} s"
        )

    proposed, grass = records
    print(
        f"\nkappa reduction vs GRASS: "
        f"{grass.quality['kappa'] / proposed.quality['kappa']:.2f}X "
        f"(paper reports 1.1-4.8X on the full-scale cases)"
    )
    stats = session.stats()
    print(f"artifacts shared between the two runs: "
          f"{sorted(stats['hits'])} ({sum(stats['hits'].values())} hits)")

    # Every run serializes losslessly for later analysis.
    assert RunRecord.from_json(proposed.to_json()) == proposed


if __name__ == "__main__":
    main()
