"""Graph-based semi-supervised learning with a sparsified solver.

The paper's introduction lists semi-supervised learning among the
applications of Laplacian solvers.  This example implements the classic
harmonic label propagation: given a few labeled seed nodes, the label
field ``f`` minimizes the Laplacian quadratic form subject to the seeds,
which reduces to solving an SDD system

    (L + diag(anchors)) f = anchors * seed_labels

once per class — exactly the "solve the same matrix many times" regime
where a reusable sparsifier-preconditioner pays off.

Run:  python examples/semi_supervised_labels.py
"""

import numpy as np
import scipy.sparse as sp

from repro import (
    cholesky,
    laplacian,
    pcg,
    trace_reduction_sparsify,
    triangular_mesh,
)
from repro.graph.laplacian import laplacian as graph_laplacian


def main() -> None:
    rng = np.random.default_rng(0)
    mesh = triangular_mesh(6000, shape="square", weights="smooth", seed=0)
    print(f"graph: {mesh.n} nodes, {mesh.edge_count} edges")

    # Ground truth: three graph-coherent regions — each node belongs to
    # the hop-nearest of three random centers (a Voronoi partition of
    # the mesh), the structure label propagation is meant to recover.
    centers = rng.choice(mesh.n, size=3, replace=False)
    indptr, neighbors, _ = mesh.adjacency()
    hop_distance = np.full((3, mesh.n), np.iinfo(np.int64).max, dtype=np.int64)
    for cls, center in enumerate(centers):
        dist = hop_distance[cls]
        dist[center] = 0
        frontier = [int(center)]
        level = 0
        while frontier:
            level += 1
            next_frontier = []
            for node in frontier:
                for nbr in neighbors[indptr[node]:indptr[node + 1]]:
                    if dist[nbr] > level:
                        dist[nbr] = level
                        next_frontier.append(int(nbr))
            frontier = next_frontier
    truth = hop_distance.argmin(axis=0)
    seeds = rng.choice(mesh.n, size=60, replace=False)
    anchor = np.zeros(mesh.n)
    anchor[seeds] = 10.0  # strong anchoring of labeled nodes

    L = graph_laplacian(mesh, shift=anchor, fmt="csr")

    # Preconditioner: factor the sparsifier's Laplacian (same anchors).
    result = trace_reduction_sparsify(mesh, edge_fraction=0.10, rounds=5)
    L_P = graph_laplacian(result.sparsifier, shift=anchor, fmt="csc")
    factor = cholesky(L_P)

    scores = np.zeros((mesh.n, 3))
    total_iterations = 0
    for cls in range(3):
        rhs = anchor * (truth == cls).astype(float)
        solve = pcg(L, rhs, M_solve=factor.solve, rtol=1e-8)
        scores[:, cls] = solve.x
        total_iterations += solve.iterations
        print(f"class {cls}: PCG converged in {solve.iterations} iterations")

    predicted = scores.argmax(axis=1)
    unlabeled = np.setdiff1d(np.arange(mesh.n), seeds)
    accuracy = float(np.mean(predicted[unlabeled] == truth[unlabeled]))
    print(
        f"\nlabel-propagation accuracy on {len(unlabeled)} unlabeled nodes: "
        f"{accuracy:.3f} (3 classes, 60 seeds, {total_iterations} total "
        f"PCG iterations through one reused preconditioner)"
    )


if __name__ == "__main__":
    main()
