"""Edge budget vs sparsifier quality (the Fig. 2 trade-off, generalized).

Sweeps the fraction of recovered off-tree edges from 2% to 30% of |V|
on a finite-element mesh and prints how kappa, PCG iterations and the
factorization size respond, for both the proposed method and GRASS.

Run:  python examples/sparsity_quality_tradeoff.py
"""

from repro import (
    evaluate_sparsifier,
    grass_sparsify,
    trace_reduction_sparsify,
    triangular_mesh,
)


def main() -> None:
    mesh = triangular_mesh(6000, shape="disk", weights="smooth", seed=0)
    print(f"mesh: {mesh.n} nodes, {mesh.edge_count} edges\n")
    print(f"{'fraction':>8} | {'method':>8} | {'edges':>6} | "
          f"{'kappa':>8} | {'iters':>5} | {'factor_nnz':>10}")
    for fraction in (0.02, 0.05, 0.10, 0.20, 0.30):
        for label, sparsify in (
            ("proposed", trace_reduction_sparsify),
            ("GRASS", grass_sparsify),
        ):
            result = sparsify(
                mesh, edge_fraction=fraction, rounds=5, seed=1
            )
            quality = evaluate_sparsifier(mesh, result.sparsifier)
            print(
                f"{fraction:8.2f} | {label:>8} | "
                f"{quality.sparsifier_edges:6d} | {quality.kappa:8.1f} | "
                f"{quality.pcg_iterations:5d} | {quality.factor_nnz:10d}"
            )


if __name__ == "__main__":
    main()
