"""Spectral graph partitioning accelerated by sparsifier-PCG.

Reproduces the paper's Sec. 4.3 workflow: compute the Fiedler vector of
a finite-element mesh with 5 inverse power iterations, once with a
direct solver and once with PCG preconditioned by the trace-reduction
sparsifier, then compare the resulting bipartitions.

Run:  python examples/spectral_partitioning.py
"""

from repro import (
    cholesky,
    regularization_shift,
    regularized_laplacian,
    trace_reduction_sparsify,
    triangular_mesh,
)
from repro.partitioning import (
    cut_weight,
    fiedler_vector,
    partition_relative_error,
    spectral_bipartition,
)


def main() -> None:
    mesh = triangular_mesh(8000, shape="airfoil", weights="smooth", seed=0)
    print(f"mesh: {mesh.n} nodes, {mesh.edge_count} edges")

    direct = fiedler_vector(mesh, method="direct", steps=5, seed=3)
    print(
        f"direct:    {direct.seconds:.2f} s, "
        f"mem = {direct.memory_bytes / 1e6:.1f} MB, "
        f"lambda_2 ~ {direct.eigenvalue_estimate:.3e}"
    )

    sparsifier = trace_reduction_sparsify(
        mesh, edge_fraction=0.10, rounds=5, seed=1
    )
    shift = regularization_shift(mesh)
    preconditioner = cholesky(
        regularized_laplacian(sparsifier.sparsifier, shift)
    )
    iterative = fiedler_vector(
        mesh, method="pcg", preconditioner=preconditioner, steps=5,
        rtol=1e-6, seed=3,
    )
    print(
        f"iterative: {iterative.seconds:.2f} s "
        f"(+ {sparsifier.setup_seconds:.2f} s sparsification), "
        f"mem = {iterative.memory_bytes / 1e6:.1f} MB, "
        f"avg PCG iters = {iterative.avg_iterations:.1f}"
    )

    labels_direct = spectral_bipartition(direct.vector)
    labels_iter = spectral_bipartition(iterative.vector)
    rel_err = partition_relative_error(labels_direct, labels_iter)
    print(
        f"partition RelErr = {rel_err:.2e} "
        f"(paper reports 1e-3 .. 6e-3); "
        f"cut weight direct = {cut_weight(mesh, labels_direct):.2f}, "
        f"iterative = {cut_weight(mesh, labels_iter):.2f}"
    )


if __name__ == "__main__":
    main()
