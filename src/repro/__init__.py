"""repro — graph spectral sparsification via approximate trace reduction.

A from-scratch Python reproduction of Liu & Yu, *Pursuing More Effective
Graph Spectral Sparsifiers via Approximate Trace Reduction* (DAC 2022),
including the GRASS/feGRASS baselines, a sparse Cholesky + SPAI + PCG
stack, a power-grid transient simulator and a spectral-partitioning
pipeline.

Quick start::

    from repro import grid2d, sparsify, evaluate_sparsifier

    graph = grid2d(100, 100, seed=0)
    result = sparsify(graph, method="proposed", edge_fraction=0.10, rounds=5)
    report = evaluate_sparsifier(graph, result.sparsifier)
    print(report.kappa, report.pcg_iterations)

``sparsify`` dispatches through the method registry (``"proposed"``,
``"grass"``, ``"fegrass"``, ``"er_sampling"``); sweeping many settings
over one graph goes through :class:`repro.SparsifierSession`, which
reuses the expensive shared artifacts and emits machine-readable
:class:`repro.RunRecord` objects.
"""

from repro.graph import (
    Graph,
    laplacian,
    regularization_shift,
    regularized_laplacian,
    grid2d,
    grid3d,
    triangular_mesh,
    random_geometric_graph,
    circuit_grid,
    barabasi_albert,
    watts_strogatz,
    stochastic_kronecker,
    configuration_model,
    bipartite_recommender,
    GENERATOR_REGISTRY,
    list_families,
    make_family_graph,
    make_case,
    read_graph_mtx,
    read_graph_mtx_streaming,
    read_mtx_shard,
    read_mtx_boundary,
    write_graph_mtx,
)
from repro.tree import (
    mewst,
    maximum_spanning_forest,
    bfs_spanning_forest,
    RootedForest,
    batch_tree_resistances,
)
from repro.linalg import (
    cholesky,
    CholeskyFactor,
    sparse_approximate_inverse,
    pcg,
    PCGResult,
    relative_condition_number,
)
from repro.core import (
    trace_reduction_sparsify,
    ArtifactStore,
    BaseSparsifierConfig,
    SparsifierConfig,
    SparsifierResult,
    ShardPlan,
    partition_shards,
    sharded_sparsify,
    EdgeRanker,
    BallBundle,
    BallCache,
    TreePhaseRanker,
    ExactRanker,
    ApproxRanker,
    score_edges,
    parallel_map,
    grass_sparsify,
    GrassConfig,
    fegrass_sparsify,
    FegrassConfig,
    er_sample_sparsify,
    ErSamplingConfig,
    exact_trace_reduction,
    approximate_trace_reduction,
    tree_truncated_trace_reduction,
    trace_ratio,
    evaluate_sparsifier,
    pcg_performance,
    QualityReport,
)
from repro.api import (
    MethodSpec,
    register_sparsifier,
    get_method,
    list_methods,
    sparsifier_methods,
    RunRecord,
    SparsifierSession,
    sparsify,
)
from repro.incremental import (
    DeltaRecord,
    EdgeBatch,
    EvolvingSparsifier,
    sparsify_delta,
)
from repro.backends import (
    LinalgBackend,
    get_backend,
    list_backends,
    available_backends,
    backend_capabilities,
)

__version__ = "0.7.0"

__all__ = [
    "Graph",
    "laplacian",
    "regularization_shift",
    "regularized_laplacian",
    "grid2d",
    "grid3d",
    "triangular_mesh",
    "random_geometric_graph",
    "circuit_grid",
    "barabasi_albert",
    "watts_strogatz",
    "stochastic_kronecker",
    "configuration_model",
    "bipartite_recommender",
    "GENERATOR_REGISTRY",
    "list_families",
    "make_family_graph",
    "make_case",
    "read_graph_mtx",
    "read_graph_mtx_streaming",
    "read_mtx_shard",
    "read_mtx_boundary",
    "write_graph_mtx",
    "mewst",
    "maximum_spanning_forest",
    "bfs_spanning_forest",
    "RootedForest",
    "batch_tree_resistances",
    "cholesky",
    "CholeskyFactor",
    "sparse_approximate_inverse",
    "pcg",
    "PCGResult",
    "relative_condition_number",
    "trace_reduction_sparsify",
    "ArtifactStore",
    "BaseSparsifierConfig",
    "SparsifierConfig",
    "SparsifierResult",
    "ShardPlan",
    "partition_shards",
    "sharded_sparsify",
    "EdgeRanker",
    "BallBundle",
    "BallCache",
    "TreePhaseRanker",
    "ExactRanker",
    "ApproxRanker",
    "score_edges",
    "parallel_map",
    "grass_sparsify",
    "GrassConfig",
    "fegrass_sparsify",
    "FegrassConfig",
    "er_sample_sparsify",
    "ErSamplingConfig",
    "exact_trace_reduction",
    "approximate_trace_reduction",
    "tree_truncated_trace_reduction",
    "trace_ratio",
    "evaluate_sparsifier",
    "pcg_performance",
    "QualityReport",
    "MethodSpec",
    "register_sparsifier",
    "get_method",
    "list_methods",
    "sparsifier_methods",
    "RunRecord",
    "SparsifierSession",
    "sparsify",
    "DeltaRecord",
    "EdgeBatch",
    "EvolvingSparsifier",
    "sparsify_delta",
    "LinalgBackend",
    "get_backend",
    "list_backends",
    "available_backends",
    "backend_capabilities",
    "__version__",
]
