"""Unified sparsifier API: registry, facade, sessions and run records.

This package is the introspectable front door the rest of the system
(CLI, power-grid pipeline, partitioning comparison, benchmarks) plugs
into:

* :func:`repro.api.sparsify` — one entry point for every registered
  method, with per-method options validated against the method's
  config dataclass;
* :func:`repro.api.register_sparsifier` / :func:`get_method` /
  :func:`list_methods` — the method registry
  (:class:`MethodSpec` = runner + config class + capability flags);
* :class:`repro.api.SparsifierSession` — per-graph artifact reuse for
  fraction/method sweeps and repeated-request serving;
* :class:`repro.api.RunRecord` — lossless JSON run records;
* :func:`repro.api.get_backend` / :func:`list_backends` /
  :func:`backend_capabilities` — the pluggable linear-algebra backend
  registry (:mod:`repro.backends`), selected per call via the
  ``backend`` option every method accepts.

Everything here re-exports at the top level: ``repro.sparsify`` is
:func:`repro.api.sparsify`.
"""

from repro.api.registry import (
    MethodSpec,
    OptionSpec,
    get_method,
    list_methods,
    methods_supporting,
    register_sparsifier,
    sparsifier_methods,
)
from repro.api import methods as _methods  # noqa: F401  (registrations)
from repro.api.records import RunRecord, capture_environment
from repro.api.session import SparsifierSession, sparsify
from repro.backends import (
    available_backends,
    backend_capabilities,
    get_backend,
    list_backends,
)

__all__ = [
    "MethodSpec",
    "OptionSpec",
    "register_sparsifier",
    "get_method",
    "list_methods",
    "sparsifier_methods",
    "methods_supporting",
    "RunRecord",
    "capture_environment",
    "SparsifierSession",
    "sparsify",
    "get_backend",
    "list_backends",
    "available_backends",
    "backend_capabilities",
]
