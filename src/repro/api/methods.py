"""Registrations binding the core sparsifiers into the method registry.

Importing this module (done by ``repro.api``) publishes the paper's
Algorithm 2 and the three baselines as :class:`~repro.api.registry.MethodSpec`
entries.  The runners are thin adapters over the long-standing
per-method entry points, so ``repro.sparsify(graph, method=m, **opts)``
is bit-identical to calling those functions directly.
"""

from __future__ import annotations

from repro.api.registry import register_sparsifier
from repro.core.er_sampling import ErSamplingConfig, er_sample_sparsify
from repro.core.fegrass import FegrassConfig, fegrass_sparsify
from repro.core.grass import GrassConfig, grass_sparsify
from repro.core.sparsifier import SparsifierConfig, trace_reduction_sparsify

__all__ = []


@register_sparsifier(
    "proposed",
    config_cls=SparsifierConfig,
    deterministic=True,
    supports_rounds=True,
    supports_workers=True,
    supports_incremental=True,
    description="Algorithm 2: approximate trace reduction (the paper)",
)
def _run_proposed(graph, config, artifacts=None):
    return trace_reduction_sparsify(graph, config, artifacts=artifacts)


@register_sparsifier(
    "grass",
    config_cls=GrassConfig,
    deterministic=True,   # seeded power-iteration probes
    supports_rounds=True,
    supports_workers=False,
    description="GRASS baseline: spectral-perturbation criticality",
)
def _run_grass(graph, config, artifacts=None):
    return grass_sparsify(graph, config, artifacts=artifacts)


@register_sparsifier(
    "fegrass",
    config_cls=FegrassConfig,
    deterministic=True,
    supports_rounds=False,
    supports_workers=False,
    description="feGRASS baseline: single-pass tree-stretch ranking",
)
def _run_fegrass(graph, config, artifacts=None):
    return fegrass_sparsify(graph, config, artifacts=artifacts)


@register_sparsifier(
    "er_sampling",
    config_cls=ErSamplingConfig,
    deterministic=True,   # seeded JL sketch + seeded sampling
    supports_rounds=False,
    supports_workers=False,
    supports_incremental=True,
    description="Spielman-Srivastava effective-resistance sampling",
)
def _run_er_sampling(graph, config, artifacts=None):
    return er_sample_sparsify(graph, config, artifacts=artifacts)
