"""Machine-readable run records.

A :class:`RunRecord` captures one sparsification run losslessly —
method, graph summary, full configuration, quality metrics, per-round
log, timings and the software environment — and round-trips through
JSON bit-for-bit (``RunRecord.from_json(record.to_json()) == record``).
The CLI's ``--json`` output, the ``sweep`` subcommand and the
``BENCH_*.json`` benchmark artifacts are all serialized RunRecords, so
quality/performance trajectories can be diffed across commits by
machines instead of eyeballs.
"""

from __future__ import annotations

import dataclasses
import json
import platform
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RunRecord", "capture_environment"]

SCHEMA_VERSION = 1


def _jsonify(value):
    """Coerce numpy scalars/arrays and tuples into plain JSON types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return value


def _strip_seconds(value):
    """Drop every wall-clock field (``seconds`` / ``*_seconds`` keys)
    from a nested dict/list structure (for :meth:`RunRecord.fingerprint`)."""
    if isinstance(value, dict):
        return {
            k: _strip_seconds(v) for k, v in value.items()
            if not (k == "seconds" or k.endswith("_seconds"))
        }
    if isinstance(value, list):
        return [_strip_seconds(v) for v in value]
    return value


def capture_environment(backend: str | None = None,
                        kernels: str | None = None) -> dict:
    """Versions that determine a run's numerics (for provenance).

    When *backend* names a linalg backend, the dict also records the
    backend and its capability flags — so a ``BENCH_*.json`` trajectory
    shows which execution path produced each run.  When *kernels* names
    a hot-path kernel tier (``"auto"`` included), the dict records the
    **resolved** tier and its capability flags; tiers are bit-identical
    by contract, so :meth:`RunRecord.fingerprint` excludes these keys.
    """
    import scipy

    import repro

    environment = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "repro": repro.__version__,
    }
    if backend is not None:
        from repro.backends import backend_capabilities

        environment["backend"] = str(backend)
        environment["backend_capabilities"] = (
            backend_capabilities().get(str(backend), {})
        )
    if kernels is not None:
        from repro.kernels import kernel_capabilities, resolve_kernels

        resolved = resolve_kernels(str(kernels))
        environment["kernels"] = resolved
        environment["kernel_capabilities"] = (
            kernel_capabilities().get(resolved, {})
        )
    return environment


@dataclass
class RunRecord:
    """One sparsification run, ready for JSON storage.

    Attributes
    ----------
    method:
        Registry name of the sparsifier that produced the run.
    graph:
        ``{"label", "nodes", "edges"}`` summary of the input graph.
    config:
        The full method configuration as a plain dict; feed it back
        through :meth:`to_config` to reconstruct the dataclass.
    quality:
        :class:`~repro.core.metrics.QualityReport` fields (``None``
        when the run was not evaluated).
    rounds_log:
        The per-round diagnostics of the
        :class:`~repro.core.sparsifier.SparsifierResult` (sharded runs
        tag every entry with its shard index).
    timings:
        At least ``sparsify_seconds`` (compute time, cache-restore I/O
        excluded); ``restore_seconds`` when the run restored artifacts
        from a persistent cache — for serial runs the two sum to the
        sparsification wall clock, while concurrently restoring shards
        can make the summed restore exceed the elapsed time (compute is
        then clamped at 0) — and ``evaluate_seconds`` when a quality
        evaluation ran.
    sharding:
        Shard-parallel diagnostics (shard sizes, per-shard timings,
        cut statistics) when the run used ``shards > 1``; ``None``
        otherwise.
    environment:
        Output of :func:`capture_environment`.
    """

    method: str
    graph: dict
    config: dict
    quality: dict | None = None
    rounds_log: list = field(default_factory=list)
    timings: dict = field(default_factory=dict)
    environment: dict = field(default_factory=capture_environment)
    sharding: dict | None = None
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result,
        method: str,
        label: str = "graph",
        quality=None,
        evaluate_seconds: float | None = None,
    ) -> "RunRecord":
        """Build a record from a ``SparsifierResult``.

        Parameters
        ----------
        result:
            The sparsification outcome.
        method:
            Registry name of the method that produced it.
        label:
            Human-readable graph identifier (case name or file path).
        quality:
            Optional :class:`~repro.core.metrics.QualityReport`.
        evaluate_seconds:
            Wall time of the quality evaluation, when one ran.
        """
        config = result.config
        if hasattr(config, "to_dict"):
            config = config.to_dict()
        elif dataclasses.is_dataclass(config):
            config = dataclasses.asdict(config)
        restore = float(getattr(result, "restore_seconds", 0.0) or 0.0)
        # Cache-restore I/O is split out of the compute time so warm-run
        # speedups are attributable; the two sum to the wall clock.
        # (Clamped: concurrent shards can restore in parallel, so their
        # summed restore time may exceed the elapsed wall clock.)
        timings = {
            "sparsify_seconds": max(
                float(result.setup_seconds) - restore, 0.0
            )
        }
        if restore > 0.0:
            timings["restore_seconds"] = restore
        if evaluate_seconds is not None:
            timings["evaluate_seconds"] = float(evaluate_seconds)
        quality_dict = None
        if quality is not None:
            quality_dict = _jsonify(dataclasses.asdict(quality))
        config = _jsonify(config)
        return cls(
            method=method,
            graph={
                "label": str(label),
                "nodes": int(result.graph.n),
                "edges": int(result.graph.edge_count),
                "sparsifier_edges": int(result.edge_count),
            },
            config=config,
            quality=quality_dict,
            rounds_log=_jsonify(result.rounds_log),
            timings=timings,
            environment=capture_environment(
                backend=config.get("backend") if isinstance(config, dict)
                else None,
                kernels=config.get("kernels") if isinstance(config, dict)
                else None,
            ),
            sharding=_jsonify(getattr(result, "sharding", None)),
        )

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The record as one plain, JSON-serializable dict."""
        return {
            "schema_version": self.schema_version,
            "method": self.method,
            "graph": self.graph,
            "config": self.config,
            "quality": self.quality,
            "rounds_log": self.rounds_log,
            "timings": self.timings,
            "environment": self.environment,
            "sharding": self.sharding,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            method=data["method"],
            graph=data["graph"],
            config=data["config"],
            quality=data.get("quality"),
            rounds_log=data.get("rounds_log", []),
            timings=data.get("timings", {}),
            environment=data.get("environment", {}),
            sharding=data.get("sharding"),
            schema_version=data.get("schema_version", SCHEMA_VERSION),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize losslessly to JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        """Inverse of :meth:`to_json`: ``from_json(r.to_json()) == r``."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def fingerprint(self) -> dict:
        """The record with every wall-clock field stripped.

        Two runs of the same configuration are *outcome*-identical when
        their fingerprints are equal — method, graph, config, quality,
        per-round log and environment all match bit for bit; only
        elapsed-seconds measurements (which no two runs share) and the
        hot-path kernel tier (bit-identical across tiers by the
        :mod:`repro.kernels` parity contract, so an execution detail
        like thread count) are excluded.  This is the equality both the
        artifact cache's warm-equals-cold guarantee and the kernel
        layer's compiled-equals-reference guarantee are stated in.
        """
        data = self.to_dict()
        data.pop("timings", None)
        # Copies: to_dict() shares the nested dicts with the record.
        if isinstance(data.get("config"), dict):
            data["config"] = {
                k: v for k, v in data["config"].items() if k != "kernels"
            }
        if isinstance(data.get("environment"), dict):
            data["environment"] = {
                k: v for k, v in data["environment"].items()
                if k not in ("kernels", "kernel_capabilities")
            }
        if data.get("quality"):
            data["quality"] = {
                k: v for k, v in data["quality"].items()
                if k != "pcg_seconds"
            }
        data["rounds_log"] = [
            {k: v for k, v in entry.items() if k != "seconds"}
            for entry in data["rounds_log"]
        ]
        if data.get("sharding"):
            data["sharding"] = _strip_seconds(data["sharding"])
        return data

    def to_config(self):
        """Reconstruct the method's config dataclass from the record."""
        from repro.api.registry import get_method

        return get_method(self.method).config_cls(**self.config)
