"""The sparsifier method registry.

Every sparsification method is published as a :class:`MethodSpec` —
runner + configuration dataclass + capability flags — through the
:func:`register_sparsifier` decorator.  The registry is the single
source of truth consumed by :func:`repro.sparsify`,
:class:`repro.api.SparsifierSession`, the command-line interface
(whose per-method flags are generated from the registered config
dataclasses), the power-grid preconditioner builder and the
partitioning pipeline.  Adding a method means registering it once;
every front door picks it up.

This module deliberately imports nothing from :mod:`repro.core` so the
core sparsifier modules could themselves register without a cycle; the
actual registrations live in :mod:`repro.api.methods`.
"""

from __future__ import annotations

import typing
from dataclasses import MISSING, dataclass, fields

from repro.exceptions import UnknownMethodError, UnknownOptionError

__all__ = [
    "MethodSpec",
    "OptionSpec",
    "register_sparsifier",
    "get_method",
    "list_methods",
    "sparsifier_methods",
    "methods_supporting",
]

_REGISTRY: dict[str, "MethodSpec"] = {}

#: Capability flags every :class:`MethodSpec` carries.
CAPABILITY_FLAGS = (
    "deterministic",
    "supports_rounds",
    "supports_workers",
    "supports_incremental",
)


@dataclass(frozen=True)
class OptionSpec:
    """One configurable option of a registered method (for the CLI)."""

    name: str
    type: type
    default: object


@dataclass(frozen=True)
class MethodSpec:
    """A registered sparsification method.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"proposed"`` or ``"grass"``.
    runner:
        ``runner(graph, config, artifacts=None) -> SparsifierResult``.
    config_cls:
        The method's configuration dataclass (a
        :class:`~repro.core.base.BaseSparsifierConfig` subclass).
    deterministic:
        True when equal configs imply bit-identical output (the
        randomized baselines qualify too: their streams are seeded by
        ``config.seed``).
    supports_rounds / supports_workers:
        Whether the method iterates densification rounds / can shard
        candidate scoring across worker processes.
    supports_incremental:
        Whether the method's result carries the spanning forest and
        kept-edge structure :class:`repro.incremental.EvolvingSparsifier`
        maintains under edge mutations; methods without this flag
        raise :class:`~repro.exceptions.IncrementalError` on the
        evolving-graph surfaces.
    description:
        One line for ``repro.cli methods`` style listings.
    """

    name: str
    runner: typing.Callable
    config_cls: type
    deterministic: bool = True
    supports_rounds: bool = False
    supports_workers: bool = False
    supports_incremental: bool = False
    description: str = ""

    @property
    def capabilities(self) -> dict:
        """The capability flags as a plain dict."""
        return {flag: getattr(self, flag) for flag in CAPABILITY_FLAGS}

    def options(self) -> dict[str, OptionSpec]:
        """Config fields as ``{name: OptionSpec}`` with resolved types.

        Optional types (``int | None``) resolve to their non-``None``
        member so the CLI knows how to parse the flag value.
        """
        hints = typing.get_type_hints(self.config_cls)
        specs = {}
        for field in fields(self.config_cls):
            default = (
                field.default if field.default is not MISSING
                else field.default_factory()  # pragma: no cover - none yet
            )
            specs[field.name] = OptionSpec(
                name=field.name,
                type=_concrete_type(hints.get(field.name, str)),
                default=default,
            )
        return specs

    def option_names(self) -> tuple:
        """Sorted names of every option the method accepts."""
        return tuple(sorted(f.name for f in fields(self.config_cls)))

    def make_config(self, config=None, **options):
        """Build (or pass through) a validated config for this method.

        Raises
        ------
        repro.exceptions.UnknownOptionError
            For options the method's config dataclass does not define;
            the message names the methods that *do* accept them.
        """
        if config is not None:
            if options:
                raise UnknownOptionError(
                    "pass either a config object or keyword options, "
                    "not both"
                )
            if not isinstance(config, self.config_cls):
                raise UnknownOptionError(
                    f"method {self.name!r} expects a "
                    f"{self.config_cls.__name__}, got "
                    f"{type(config).__name__}"
                )
        else:
            known = {f.name for f in fields(self.config_cls)}
            unknown = sorted(set(options) - known)
            if unknown:
                raise UnknownOptionError(_unknown_option_message(
                    self, unknown
                ))
            config = self.config_cls(**options)
        if hasattr(config, "validate"):
            config.validate()
        return config


def _concrete_type(annotation):
    """Collapse ``X | None`` / ``Optional[X]`` annotations to ``X``."""
    args = [a for a in typing.get_args(annotation) if a is not type(None)]
    if typing.get_origin(annotation) in (typing.Union, _UNION_TYPE) and args:
        return args[0]
    return annotation


# types.UnionType backs the `int | None` syntax on Python >= 3.10.
try:
    from types import UnionType as _UNION_TYPE
except ImportError:  # pragma: no cover - Python < 3.10
    _UNION_TYPE = typing.Union


def _unknown_option_message(spec: MethodSpec, unknown: list) -> str:
    lines = [
        f"sparsifier method {spec.name!r} does not accept option(s) "
        f"{', '.join(map(repr, unknown))}; valid options: "
        f"{', '.join(spec.option_names())}."
    ]
    for name in unknown:
        supporters = methods_supporting(name)
        if supporters:
            lines.append(
                f"({name!r} is supported by: {', '.join(supporters)})"
            )
    return " ".join(lines)


def register_sparsifier(
    name: str,
    *,
    config_cls: type,
    deterministic: bool = True,
    supports_rounds: bool = False,
    supports_workers: bool = False,
    supports_incremental: bool = False,
    description: str = "",
):
    """Class the decorated runner as sparsifier method *name*.

    Usage::

        @register_sparsifier("proposed", config_cls=SparsifierConfig,
                             supports_rounds=True, supports_workers=True)
        def run_proposed(graph, config, artifacts=None):
            ...

    The decorator returns the runner unchanged; the resulting
    :class:`MethodSpec` is available via :func:`get_method`.
    Registering a name twice raises ``ValueError`` (replacing a method
    silently would make benchmark provenance ambiguous).
    """

    def decorator(runner):
        if name in _REGISTRY:
            raise ValueError(f"sparsifier method {name!r} already registered")
        _REGISTRY[name] = MethodSpec(
            name=name,
            runner=runner,
            config_cls=config_cls,
            deterministic=deterministic,
            supports_rounds=supports_rounds,
            supports_workers=supports_workers,
            supports_incremental=supports_incremental,
            description=description,
        )
        return runner

    return decorator


def get_method(name: str) -> MethodSpec:
    """Look up a registered method; raise with the valid names if absent."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownMethodError(
            f"unknown sparsifier method {name!r}; registered methods: "
            f"{', '.join(list_methods())}"
        ) from None


def list_methods() -> tuple:
    """Sorted names of every registered method."""
    return tuple(sorted(_REGISTRY))


def sparsifier_methods() -> dict:
    """A copy of the registry as ``{name: MethodSpec}``."""
    return dict(_REGISTRY)


def methods_supporting(option: str) -> tuple:
    """Sorted names of the methods whose config defines *option*."""
    return tuple(sorted(
        name for name, spec in _REGISTRY.items()
        if option in spec.option_names()
    ))
