"""The unified sparsification entry point and the per-graph session.

:func:`sparsify` is the single front door to every registered method::

    from repro import sparsify
    result = sparsify(graph, method="grass", edge_fraction=0.05, rounds=3)

and :class:`SparsifierSession` is the shape of every benchmark and of a
service handling repeated requests on one graph: it pins the graph,
reuses expensive artifacts (spanning tree, rooted forest,
regularization shift, full-graph Laplacian/Cholesky factor, tree-phase
criticality, JL resistance sketches) across calls through an
:class:`~repro.core.base.ArtifactStore`, and emits
:class:`~repro.api.records.RunRecord` objects for machine-readable
result trails.  Artifact reuse is keyed by everything that determines
the artifact, so warm results are bit-identical to cold runs.
"""

from __future__ import annotations

from repro.api.records import RunRecord
from repro.api.registry import get_method
from repro.core.base import ArtifactStore
from repro.core.metrics import evaluate_sparsifier
from repro.utils.timers import Timer

__all__ = ["sparsify", "SparsifierSession"]


def sparsify(graph, method: str = "proposed", config=None, *,
             artifacts=None, **options):
    """Sparsify *graph* with any registered method.

    Parameters
    ----------
    graph : repro.graph.Graph
        The graph to sparsify.
    method : str
        Registry name: ``"proposed"``, ``"grass"``, ``"fegrass"``,
        ``"er_sampling"``, or anything registered via
        :func:`repro.api.register_sparsifier`.
    config : optional
        A ready-made config dataclass instance for the method
        (mutually exclusive with keyword options).
    artifacts : repro.core.base.ArtifactStore, optional
        Shared artifact store (a :class:`SparsifierSession` passes its
        own); reuse never changes results.
    **options
        Fields of the method's config dataclass.  Unknown or
        inapplicable options raise
        :class:`~repro.exceptions.UnknownOptionError` instead of being
        silently ignored.

    Returns
    -------
    repro.core.SparsifierResult
        Bit-identical to calling the method's original entry point
        (``trace_reduction_sparsify``, ``grass_sparsify``, ...) with
        the same settings.  With ``shards > 1`` the run routes through
        the shard-parallel pipeline (:mod:`repro.core.sharding`):
        partition, per-shard sparsification, boundary stitch — and the
        result carries per-shard diagnostics in ``result.sharding``.
    """
    spec = get_method(method)
    cfg = spec.make_config(config, **options)
    if int(getattr(cfg, "shards", 1)) > 1:
        from repro.core.sharding import sharded_sparsify

        return sharded_sparsify(graph, method, cfg, artifacts=artifacts)
    restore_before = (
        artifacts.restore_seconds if artifacts is not None else 0.0
    )
    result = spec.runner(graph, cfg, artifacts=artifacts)
    if artifacts is not None:
        # Attribute this run's share of disk-cache I/O so RunRecords
        # can split warm-run setup into restore vs compute.
        result.restore_seconds = artifacts.restore_seconds - restore_before
    return result


class SparsifierSession:
    """A sticky per-graph context that caches shared artifacts.

    Examples
    --------
    >>> from repro import SparsifierSession, grid2d
    >>> session = SparsifierSession(grid2d(12, 12, seed=0), label="grid")
    >>> sweep = [session.sparsify(edge_fraction=f) for f in (0.05, 0.10)]
    >>> session.stats()["hits"]["tree"] >= 1   # spanning tree reused
    True

    Parameters
    ----------
    graph : repro.graph.Graph
        The graph every call in this session operates on.
    label : str
        Identifier recorded in emitted :class:`RunRecord` objects.
    persistent : bool
        Attach the content-addressed on-disk cache
        (:class:`~repro.core.diskcache.DiskCache`) so artifacts survive
        the process: a warm session in a fresh process loads the
        spanning tree, tree-phase scores, resistance sketches, … from
        ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``) instead of
        rebuilding them — with bit-identical results.
    cache_dir : str or pathlib.Path, optional
        Explicit cache root; implies ``persistent=True``.
    """

    def __init__(self, graph, label: str = "graph", *,
                 persistent: bool = False, cache_dir=None) -> None:
        self.graph = graph
        self.label = label
        disk = None
        if persistent or cache_dir is not None:
            from repro.core.diskcache import DiskCache

            disk = DiskCache(graph, root=cache_dir)
        self.artifacts = ArtifactStore(disk=disk)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def sparsify(self, method: str = "proposed", config=None, **options):
        """Run one method on the session graph; reuse warm artifacts."""
        return sparsify(
            self.graph, method, config,
            artifacts=self.artifacts, **options,
        )

    def run(self, method: str = "proposed", config=None, *,
            evaluate: bool = True, rtol: float = 1e-3,
            **options) -> RunRecord:
        """Sparsify and emit a :class:`RunRecord`.

        With ``evaluate=True`` (default) the sparsifier is scored with
        :func:`~repro.core.metrics.evaluate_sparsifier` (kappa, PCG
        iterations/time) and the record carries the quality block.
        """
        result = self.sparsify(method, config, **options)
        quality = None
        evaluate_seconds = None
        if evaluate:
            timer = Timer()
            with timer:
                quality = evaluate_sparsifier(
                    self.graph, result.sparsifier, rtol=rtol,
                    seed=result.config.seed,
                )
            evaluate_seconds = timer.elapsed
        return RunRecord.from_result(
            result, method=method, label=self.label,
            quality=quality, evaluate_seconds=evaluate_seconds,
        )

    def sweep(self, methods=("proposed",), fractions=(0.10,), *,
              evaluate: bool = True, rtol: float = 1e-3,
              **options) -> list:
        """Run a method x fraction grid and return the RunRecords.

        This is the benchmark shape the session exists for: the
        spanning tree, forest, shift, full-graph factor and tree-phase
        scores are derived once and shared by every cell of the grid.
        """
        records = []
        for method in methods:
            for fraction in fractions:
                records.append(self.run(
                    method, evaluate=evaluate, rtol=rtol,
                    edge_fraction=fraction, **options,
                ))
        return records

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Artifact-cache hit/miss counters (see ``ArtifactStore.stats``)."""
        return self.artifacts.stats()

    def clear(self) -> None:
        """Drop every cached artifact (results are unaffected)."""
        self.artifacts.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparsifierSession(label={self.label!r}, "
            f"nodes={self.graph.n}, edges={self.graph.edge_count}, "
            f"cached_artifacts={len(self.artifacts)})"
        )
