"""Pluggable linear-algebra backends.

The trace-reduction pipeline funnels all of its heavy numerics through
five kernels (Cholesky factorization, triangular solves, PCG, JL
resistance sketches, SPAI columns); this package makes that set
swappable as a unit:

* ``"scipy"`` — the default: compiled SuperLU factorization, exactly
  the pre-backend code path (bit-identical output);
* ``"numpy"`` — the pure-numpy reference path (no compiled sparse
  solver code; factors persist in the on-disk artifact cache);
* ``"cholmod"`` — CHOLMOD via scikit-sparse, auto-detected at import
  probe; registered but unavailable when the library is missing.

Select per call with ``repro.sparsify(graph, backend="numpy")``, per
config with ``BaseSparsifierConfig.backend``, or from the shell with
``--backend``.  ``repro methods`` lists every backend with its
capability flags, and the chosen backend is recorded in
``RunRecord.environment``.
"""

from __future__ import annotations

from repro.backends.base import BACKEND_CAPABILITY_FLAGS, LinalgBackend
from repro.backends.cholmod_backend import CholmodBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.scipy_backend import ScipyBackend
from repro.exceptions import BackendError

__all__ = [
    "LinalgBackend",
    "ScipyBackend",
    "NumpyBackend",
    "CholmodBackend",
    "BACKEND_CAPABILITY_FLAGS",
    "DEFAULT_BACKEND",
    "get_backend",
    "list_backends",
    "available_backends",
    "backend_capabilities",
    "backend_description",
    "check_backend",
    "check_factorization_mode",
]

#: Name of the backend used when a config does not choose one.
DEFAULT_BACKEND = "scipy"

_BACKEND_CLASSES: dict[str, type] = {
    cls.name: cls for cls in (ScipyBackend, NumpyBackend, CholmodBackend)
}
_INSTANCES: dict[str, LinalgBackend] = {}


def list_backends() -> tuple:
    """Sorted names of every registered backend (available or not)."""
    return tuple(sorted(_BACKEND_CLASSES))


def available_backends() -> tuple:
    """Sorted names of the backends usable in this environment."""
    return tuple(
        name for name in list_backends()
        if _BACKEND_CLASSES[name].is_available()
    )


def backend_capabilities() -> dict:
    """Capability flags of every backend: ``{name: {flag: bool}}``."""
    return {
        name: _BACKEND_CLASSES[name].capabilities()
        for name in list_backends()
    }


def _registered_class(name: str) -> type:
    """The backend class registered under *name*, or a useful error."""
    if name not in _BACKEND_CLASSES:
        raise BackendError(
            f"unknown linalg backend {name!r}; registered backends: "
            f"{', '.join(list_backends())}"
        )
    return _BACKEND_CLASSES[name]


def backend_description(name: str) -> str:
    """One-line description of a backend (available or not)."""
    return _registered_class(name).description


def check_backend(name: str) -> str:
    """Validate a backend name, returning it; raise a useful error.

    Raises
    ------
    repro.exceptions.BackendError
        When *name* is not a registered backend, or is registered but
        unavailable on this machine (e.g. ``cholmod`` without
        scikit-sparse installed).
    """
    if not _registered_class(name).is_available():
        raise BackendError(
            f"linalg backend {name!r} is not available in this "
            f"environment; available backends: "
            f"{', '.join(available_backends())}"
        )
    return name


def check_factorization_mode(backend: str, mode: str) -> None:
    """Reject a ``cholesky_backend`` refinement *backend* cannot honor.

    ``cholesky_backend`` predates this layer and selects among the
    scipy backend's factorization paths (``"auto"`` | ``"superlu"`` |
    ``"python"``); the other backends each have exactly one path.
    Silently ignoring the knob would hand a user benchmarking
    ``superlu`` pure-numpy numbers, so — per this package's
    no-silent-drop contract — the combination is an error instead.
    """
    if mode != "auto" and backend != "scipy":
        raise BackendError(
            f"cholesky_backend={mode!r} selects among the scipy "
            f"backend's factorization paths; backend {backend!r} has a "
            "single path and cannot honor it (leave "
            "cholesky_backend='auto')"
        )


def get_backend(name: str = DEFAULT_BACKEND) -> LinalgBackend:
    """Return the (cached) backend instance registered under *name*."""
    check_backend(name)
    if name not in _INSTANCES:
        _INSTANCES[name] = _BACKEND_CLASSES[name]()
    return _INSTANCES[name]
