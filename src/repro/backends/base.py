"""The linear-algebra backend protocol.

Nearly all of the trace-reduction pipeline's time is spent in five
kernels — Cholesky factorization, triangular solves, PCG, the JL
effective-resistance sketches and Algorithm 1's sparse approximate
inverse.  :class:`LinalgBackend` names exactly those five operations so
they can be swapped as a unit: the default :class:`~repro.backends.scipy_backend.ScipyBackend`
(compiled SuperLU factorization), the pure-numpy reference
:class:`~repro.backends.numpy_backend.NumpyBackend`, and an optional
CHOLMOD backend auto-detected at import
(:class:`~repro.backends.cholmod_backend.CholmodBackend`).

Selection is per call: ``BaseSparsifierConfig.backend``,
``repro.sparsify(..., backend=...)`` and the ``--backend`` CLI flag all
name a registered backend; the chosen name is recorded in
``RunRecord.environment`` for provenance.

Backends are stateless and hashable by name, so artifact-cache keys can
include the backend name and two processes using the same backend will
agree on what they cached.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.pcg import pcg as _pcg
from repro.linalg.spai import sparse_approximate_inverse
from repro.linalg.triangular import (
    solve_lower_csc,
    solve_upper_from_lower_csc,
)

__all__ = ["LinalgBackend", "BACKEND_CAPABILITY_FLAGS"]

#: Capability flags every backend reports through :meth:`capabilities`.
BACKEND_CAPABILITY_FLAGS = (
    "available",
    "compiled_factorization",
    "persistent_factors",
)


class LinalgBackend:
    """One pluggable implementation of the package's linalg kernels.

    Subclasses override :meth:`factorize` (and optionally the other
    kernels); the base class supplies reference implementations built
    on the package's from-scratch numpy routines, which every backend
    is expected to match within numerical tolerance.

    Class attributes
    ----------------
    name:
        Registry key (``"scipy"``, ``"numpy"``, ``"cholmod"``).
    description:
        One line for CLI/markdown listings.
    compiled_factorization:
        True when :meth:`factorize` calls into compiled sparse solver
        code (SuperLU, CHOLMOD) rather than the pure-numpy path.
    persistent_factors:
        True when the factors returned by :meth:`factorize` survive a
        pickle round-trip with bit-identical solve behavior — the
        requirement for the on-disk artifact cache to persist them.
    """

    name = "base"
    description = ""
    compiled_factorization = False
    persistent_factors = False

    # ------------------------------------------------------------------
    # availability / introspection
    # ------------------------------------------------------------------
    @classmethod
    def is_available(cls) -> bool:
        """Whether the backend can run in this environment."""
        return True

    @classmethod
    def supports_persistent_factors(cls) -> bool:
        """Whether :meth:`factorize` output pickles with bitwise solves.

        The disk artifact cache consults this before persisting a
        factor.  The default returns the ``persistent_factors`` class
        attribute; backends whose factor objects wrap third-party
        handles (CHOLMOD) override it with a runtime probe so the flag
        reports what the installed library actually supports.
        """
        return bool(cls.persistent_factors)

    @classmethod
    def capabilities(cls) -> dict:
        """The backend's capability flags as a plain (JSON-safe) dict."""
        return {
            "available": bool(cls.is_available()),
            "compiled_factorization": bool(cls.compiled_factorization),
            "persistent_factors": bool(cls.supports_persistent_factors()),
        }

    # ------------------------------------------------------------------
    # the five kernels
    # ------------------------------------------------------------------
    def factorize(self, matrix, mode: str = "auto"):
        """Cholesky-factor an SPD sparse matrix.

        Parameters
        ----------
        matrix:
            Square SPD scipy sparse matrix (regularized Laplacian in
            this package's use).
        mode:
            Backend-specific refinement kept for compatibility with the
            pre-backend ``cholesky_backend`` config knob; backends that
            have a single factorization path ignore it.

        Returns
        -------
        An object with the :class:`~repro.linalg.cholesky.CholeskyFactor`
        interface: ``L``, ``perm``, ``nnz``, ``solve(b)``,
        ``as_preconditioner()``.
        """
        raise NotImplementedError

    def solve_triangular(self, L, b, lower: bool = True) -> np.ndarray:
        """Solve ``L y = b`` (or ``L^T x = b`` when ``lower=False``).

        *L* is a lower-triangular CSC factor with the diagonal stored
        first in each column, as produced by :meth:`factorize`.
        """
        if lower:
            return solve_lower_csc(L, b)
        return solve_upper_from_lower_csc(L, b)

    def pcg(self, A, b, M_solve=None, **options):
        """Preconditioned conjugate gradients (see :func:`repro.linalg.pcg`)."""
        return _pcg(A, b, M_solve=M_solve, **options)

    def sketch_matvecs(self, factor, incidence, sketch_size: int, rng,
                       kernels=None):
        """The JL effective-resistance sketch of Spielman–Srivastava.

        Draws ``sketch_size`` Rademacher probe vectors from *rng* (one
        per row, scaled by ``1/sqrt(k)``) and solves
        ``y_i = L^{-1} (B^T W^{1/2} q_i)`` through *factor*.  The loop
        order — draw, then solve, row by row — is part of the contract:
        it determines the RNG stream position, which the
        effective-resistance sampler records for bit-exact warm runs.
        The probe right-hand sides ``B^T W^{1/2} q_i`` go through the
        active kernel tier's :meth:`~repro.kernels.KernelSet.probe_rhs`
        (bit-identical across tiers by its accumulation-order contract).

        Returns
        -------
        numpy.ndarray
            ``(sketch_size, n)`` array of sketch rows.
        """
        from repro.kernels import resolve_kernel_set  # deferred: cycle

        probe_rhs = resolve_kernel_set(kernels).probe_rhs
        n = incidence.shape[1]
        m = incidence.shape[0]
        sketch = np.empty((sketch_size, n))
        scale = 1.0 / np.sqrt(sketch_size)
        for i in range(sketch_size):
            q = rng.choice((-scale, scale), size=m)
            sketch[i] = factor.solve(probe_rhs(incidence, q))
        return sketch

    def spai_columns(self, L, delta: float = 0.1, keep_threshold=None):
        """Algorithm 1: sparse approximate inverse of a Cholesky factor.

        See :func:`repro.linalg.spai.sparse_approximate_inverse`; the
        SPAI recurrence is already pure numpy, so all backends share
        one implementation and differ only through the factor they
        feed it.
        """
        return sparse_approximate_inverse(
            L, delta=delta, keep_threshold=keep_threshold
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, LinalgBackend) and other.name == self.name

    def __hash__(self) -> int:
        return hash((LinalgBackend, self.name))
