"""Optional CHOLMOD backend via scikit-sparse.

The paper's experiments factor with CHOLMOD [3]; when
``scikit-sparse`` is importable this backend exposes it through the
same :class:`~repro.linalg.cholesky.CholeskyFactor`-shaped interface
the rest of the pipeline consumes.  Availability is detected once at
import probe time — on machines without the library the backend stays
registered but reports ``available=False`` and selecting it raises a
:class:`~repro.exceptions.BackendError` naming the missing dependency
(nothing is ever auto-installed).

Factor persistence follows the same probe philosophy:
:class:`CholmodFactor` implements pickling by delegating to the
wrapped ``sksparse`` factor, and
:meth:`CholmodBackend.supports_persistent_factors` round-trips a tiny
factor at first call to report truthfully whether the installed
library pickles with bit-identical solves — so the ``persistent_factors``
capability flag (and with it the disk artifact cache's decision to
persist ``factor_g``) reflects this machine, not an assumption.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import LinalgBackend
from repro.exceptions import BackendError, FactorizationError

__all__ = ["CholmodBackend", "CholmodFactor"]

_CHOLMOD = None
_PROBED = False
_PERSISTENT: bool | None = None


def _cholmod_module():
    """Import ``sksparse.cholmod`` once; cache the result (or None)."""
    global _CHOLMOD, _PROBED
    if not _PROBED:
        _PROBED = True
        try:
            from sksparse import cholmod  # type: ignore[import-not-found]

            _CHOLMOD = cholmod
        except Exception:  # pragma: no cover - environment-dependent
            _CHOLMOD = None
    return _CHOLMOD


class CholmodFactor:
    """CHOLMOD factor adapted to the ``CholeskyFactor`` interface.

    Keeps the convention ``A[perm][:, perm] = L @ L.T`` and solves
    through CHOLMOD's compiled routines.
    """

    backend = "cholmod"

    def __init__(self, cholmod_factor):
        self._factor = cholmod_factor
        self.L = cholmod_factor.L().tocsc()
        self.L.sort_indices()
        self.perm = np.asarray(cholmod_factor.P(), dtype=np.int64)
        self.n = self.L.shape[0]
        self.iperm = np.empty(self.n, dtype=np.int64)
        self.iperm[self.perm] = np.arange(self.n)

    @property
    def nnz(self) -> int:
        """Nonzeros in the lower factor."""
        return int(self.L.nnz)

    def memory_bytes(self) -> int:
        """Approximate storage of the factor (values + row indices)."""
        return int(self.L.nnz) * (8 + 4) + 8 * self.n

    def solve(self, b) -> np.ndarray:
        """Solve ``A x = b`` (vector or matrix right-hand side)."""
        return self._factor(np.asarray(b, dtype=np.float64))

    def as_preconditioner(self):
        """Return ``M_solve(r) = A^{-1} r`` for PCG preconditioning."""
        return self.solve

    def __getstate__(self) -> dict:
        """Pickle only the wrapped CHOLMOD factor.

        ``L``/``perm``/``iperm`` are derived views; rebuilding them in
        :meth:`__setstate__` keeps the pickle minimal and guarantees
        the restored wrapper is internally consistent.
        """
        return {"factor": self._factor}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["factor"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CholmodFactor(n={self.n}, nnz={self.nnz})"


class CholmodBackend(LinalgBackend):
    """CHOLMOD (scikit-sparse) factorization, when installed."""

    name = "cholmod"
    description = "CHOLMOD via scikit-sparse (optional, auto-detected)"
    compiled_factorization = True
    persistent_factors = False

    @classmethod
    def is_available(cls) -> bool:
        """True when ``sksparse.cholmod`` imports on this machine."""
        return _cholmod_module() is not None

    @classmethod
    def supports_persistent_factors(cls) -> bool:
        """Probe (once) whether factors pickle with bitwise solves.

        Factors a tiny SPD matrix, round-trips the
        :class:`CholmodFactor` through pickle and compares a solve
        bit for bit.  Anything short of a bitwise match — including a
        pickle error from an older scikit-sparse — reports False, so
        the disk cache never persists factors this library cannot
        faithfully restore.
        """
        global _PERSISTENT
        if _PERSISTENT is None:
            if not cls.is_available():
                return False  # leave unprobed: the library may appear
            import io
            import pickle

            import scipy.sparse as sp

            try:
                matrix = sp.eye(3, format="csc") * 2.0
                matrix = matrix + sp.diags([0.5, 0.5], offsets=1) \
                    + sp.diags([0.5, 0.5], offsets=-1)
                factor = cls().factorize(sp.csc_matrix(matrix))
                rhs = np.arange(1.0, 4.0)
                expected = factor.solve(rhs)
                buffer = io.BytesIO()
                pickle.dump(factor, buffer)
                buffer.seek(0)
                restored = pickle.load(buffer)
                _PERSISTENT = bool(
                    np.array_equal(restored.solve(rhs), expected)
                )
            except Exception:  # pragma: no cover - library-dependent
                _PERSISTENT = False
        return _PERSISTENT

    def factorize(self, matrix, mode: str = "auto"):
        """Factor through CHOLMOD (``mode`` is ignored: one path)."""
        cholmod = _cholmod_module()
        if cholmod is None:
            raise BackendError(
                "backend 'cholmod' needs scikit-sparse, which is not "
                "installed in this environment"
            )
        import scipy.sparse as sp

        try:
            factor = cholmod.cholesky(sp.csc_matrix(matrix))
            return CholmodFactor(factor)
        except cholmod.CholmodNotPositiveDefiniteError as exc:
            raise FactorizationError(
                f"CHOLMOD: matrix is not positive definite: {exc}"
            ) from exc
