"""Optional CHOLMOD backend via scikit-sparse.

The paper's experiments factor with CHOLMOD [3]; when
``scikit-sparse`` is importable this backend exposes it through the
same :class:`~repro.linalg.cholesky.CholeskyFactor`-shaped interface
the rest of the pipeline consumes.  Availability is detected once at
import probe time — on machines without the library the backend stays
registered but reports ``available=False`` and selecting it raises a
:class:`~repro.exceptions.BackendError` naming the missing dependency
(nothing is ever auto-installed).
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import LinalgBackend
from repro.exceptions import BackendError, FactorizationError

__all__ = ["CholmodBackend", "CholmodFactor"]

_CHOLMOD = None
_PROBED = False


def _cholmod_module():
    """Import ``sksparse.cholmod`` once; cache the result (or None)."""
    global _CHOLMOD, _PROBED
    if not _PROBED:
        _PROBED = True
        try:
            from sksparse import cholmod  # type: ignore[import-not-found]

            _CHOLMOD = cholmod
        except Exception:  # pragma: no cover - environment-dependent
            _CHOLMOD = None
    return _CHOLMOD


class CholmodFactor:
    """CHOLMOD factor adapted to the ``CholeskyFactor`` interface.

    Keeps the convention ``A[perm][:, perm] = L @ L.T`` and solves
    through CHOLMOD's compiled routines.
    """

    backend = "cholmod"

    def __init__(self, cholmod_factor):
        self._factor = cholmod_factor
        self.L = cholmod_factor.L().tocsc()
        self.L.sort_indices()
        self.perm = np.asarray(cholmod_factor.P(), dtype=np.int64)
        self.n = self.L.shape[0]
        self.iperm = np.empty(self.n, dtype=np.int64)
        self.iperm[self.perm] = np.arange(self.n)

    @property
    def nnz(self) -> int:
        """Nonzeros in the lower factor."""
        return int(self.L.nnz)

    def memory_bytes(self) -> int:
        """Approximate storage of the factor (values + row indices)."""
        return int(self.L.nnz) * (8 + 4) + 8 * self.n

    def solve(self, b) -> np.ndarray:
        """Solve ``A x = b`` (vector or matrix right-hand side)."""
        return self._factor(np.asarray(b, dtype=np.float64))

    def as_preconditioner(self):
        """Return ``M_solve(r) = A^{-1} r`` for PCG preconditioning."""
        return self.solve

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CholmodFactor(n={self.n}, nnz={self.nnz})"


class CholmodBackend(LinalgBackend):
    """CHOLMOD (scikit-sparse) factorization, when installed."""

    name = "cholmod"
    description = "CHOLMOD via scikit-sparse (optional, auto-detected)"
    compiled_factorization = True
    persistent_factors = False

    @classmethod
    def is_available(cls) -> bool:
        """True when ``sksparse.cholmod`` imports on this machine."""
        return _cholmod_module() is not None

    def factorize(self, matrix, mode: str = "auto"):
        """Factor through CHOLMOD (``mode`` is ignored: one path)."""
        cholmod = _cholmod_module()
        if cholmod is None:
            raise BackendError(
                "backend 'cholmod' needs scikit-sparse, which is not "
                "installed in this environment"
            )
        import scipy.sparse as sp

        try:
            factor = cholmod.cholesky(sp.csc_matrix(matrix))
            return CholmodFactor(factor)
        except cholmod.CholmodNotPositiveDefiniteError as exc:
            raise FactorizationError(
                f"CHOLMOD: matrix is not positive definite: {exc}"
            ) from exc
