"""The pure-numpy fallback backend.

Routes every kernel through the package's from-scratch numpy
implementations: the up-looking CSparse-style Cholesky
(:func:`repro.linalg.cholesky.cholesky` with ``backend="python"``),
the column-oriented CSC triangular solves, the hand-written PCG and
the SPAI recurrence.  No compiled sparse-solver code runs at all
(scipy.sparse is used only as array storage), which makes this backend
the portable reference: slower than SuperLU, but deterministic,
dependency-light, and its factors pickle losslessly — so the on-disk
artifact cache can persist them across processes.
"""

from __future__ import annotations

from repro.backends.base import LinalgBackend
from repro.linalg.cholesky import cholesky

__all__ = ["NumpyBackend"]


class NumpyBackend(LinalgBackend):
    """From-scratch numpy kernels end to end."""

    name = "numpy"
    description = "pure-numpy up-looking Cholesky (portable reference)"
    compiled_factorization = False
    persistent_factors = True

    def factorize(self, matrix, mode: str = "auto"):
        """Factor with the pure-Python up-looking Cholesky.

        *mode* is accepted for interface symmetry but the numpy backend
        has exactly one factorization path (RCM-ordered up-looking);
        requesting ``mode="superlu"`` here would contradict the
        backend's no-compiled-code contract, so it is ignored.
        """
        return cholesky(matrix, backend="python", ordering="rcm")
