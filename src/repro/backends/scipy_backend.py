"""The default backend: scipy's compiled SuperLU factorization.

This is exactly the code path the package used before the backend
layer existed — :func:`repro.linalg.cholesky.cholesky` with
``backend="auto"`` (SuperLU in symmetric mode, silent fallback to the
pure-Python factorization when SuperLU pivots asymmetrically) — so
``backend="scipy"`` is bit-identical to pre-backend output by
construction; ``tests/test_backends.py`` locks that down.
"""

from __future__ import annotations

from repro.backends.base import LinalgBackend
from repro.linalg.cholesky import cholesky

__all__ = ["ScipyBackend"]


class ScipyBackend(LinalgBackend):
    """SuperLU-backed factorization; reference numpy everything else.

    The factors carry a live ``scipy.sparse.linalg.SuperLU`` object,
    whose compiled solve is fast but cannot be pickled — so SuperLU
    factors are not persisted by the on-disk artifact cache
    (``persistent_factors`` is False); downstream artifacts built from
    them (e.g. resistance sketches) are persisted instead.
    """

    name = "scipy"
    description = "SuperLU Cholesky (compiled, the default)"
    compiled_factorization = True
    persistent_factors = False

    def factorize(self, matrix, mode: str = "auto"):
        """Factor through SuperLU (``mode`` keeps the legacy
        ``cholesky_backend`` values ``"auto"``/``"superlu"``/``"python"``
        working)."""
        return cholesky(matrix, backend=mode)
