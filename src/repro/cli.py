"""Command-line interface: run the paper's experiments from a shell.

Examples
--------
List the available cases::

    python -m repro.cli cases

Sparsify a named case (or a Matrix Market file) and report quality::

    python -m repro.cli sparsify --case ecology2 --fraction 0.10
    python -m repro.cli sparsify --mtx my_matrix.mtx --method grass

Candidate scoring can be sharded across worker processes; the result is
bit-identical to the serial run (``--workers 0`` means one per CPU)::

    python -m repro.cli sparsify --case ecology2 --workers 4 --chunk-size 2048

Power-grid transient comparison (Table 2, one case)::

    python -m repro.cli transient --case ibmpg3t --scale 0.25

Spectral partitioning comparison (Table 3, one case)::

    python -m repro.cli partition --case tmt_sym --scale 0.25
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import (
    er_sample_sparsify,
    evaluate_sparsifier,
    fegrass_sparsify,
    grass_sparsify,
    trace_reduction_sparsify,
)
from repro.graph import CASE_REGISTRY, make_case, read_graph_mtx
from repro.graph.laplacian import regularization_shift, regularized_laplacian
from repro.linalg import cholesky
from repro.partitioning import (
    fiedler_vector,
    partition_relative_error,
    spectral_bipartition,
)
from repro.powergrid import (
    PG_CASE_REGISTRY,
    build_sparsifier_preconditioner,
    make_pg_case,
    simulate_transient_direct,
    simulate_transient_pcg,
)
from repro.powergrid.transient import max_probe_difference
from repro.utils.reporting import Table, format_bytes

def _run_proposed(graph, args):
    """Algorithm 2 with the batched ranking engine knobs threaded in."""
    return trace_reduction_sparsify(
        graph,
        edge_fraction=args.fraction,
        rounds=args.rounds,
        seed=args.seed,
        workers=args.workers,
        chunk_size=args.chunk_size,
    )


_SPARSIFIERS = {
    "proposed": _run_proposed,
    "grass": lambda g, args: grass_sparsify(
        g, edge_fraction=args.fraction, rounds=args.rounds, seed=args.seed
    ),
    "fegrass": lambda g, args: fegrass_sparsify(
        g, edge_fraction=args.fraction, seed=args.seed
    ),
    "er_sampling": lambda g, args: er_sample_sparsify(
        g, edge_fraction=args.fraction, seed=args.seed
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph spectral sparsification (DAC'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("cases", help="list registered graph and PG cases")

    sparsify = sub.add_parser("sparsify", help="sparsify a graph")
    source = sparsify.add_mutually_exclusive_group(required=True)
    source.add_argument("--case", choices=sorted(CASE_REGISTRY))
    source.add_argument("--mtx", help="Matrix Market file to load")
    sparsify.add_argument("--method", choices=sorted(_SPARSIFIERS),
                          default="proposed")
    sparsify.add_argument("--fraction", type=float, default=0.10)
    sparsify.add_argument("--rounds", type=int, default=5)
    sparsify.add_argument("--scale", type=float, default=None)
    sparsify.add_argument("--seed", type=int, default=0)
    sparsify.add_argument(
        "--workers", type=int, default=1,
        help="scoring worker processes: 1 serial, 0 one per CPU "
             "(proposed method only; results are identical)",
    )
    sparsify.add_argument(
        "--chunk-size", type=int, default=0, dest="chunk_size",
        help="candidates per scoring task (0 = auto; does not change "
             "results)",
    )

    transient = sub.add_parser("transient", help="PG transient comparison")
    transient.add_argument("--case", choices=sorted(PG_CASE_REGISTRY),
                           default="ibmpg3t")
    transient.add_argument("--scale", type=float, default=None)
    transient.add_argument("--t-end", type=float, default=5e-9)
    transient.add_argument("--fraction", type=float, default=0.10)
    transient.add_argument("--seed", type=int, default=0)

    partition = sub.add_parser("partition", help="Fiedler comparison")
    partition.add_argument("--case", choices=sorted(CASE_REGISTRY),
                           default="ecology2")
    partition.add_argument("--scale", type=float, default=None)
    partition.add_argument("--steps", type=int, default=5)
    partition.add_argument("--fraction", type=float, default=0.10)
    partition.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_cases(_args) -> int:
    table = Table(["name", "kind", "paper |V|", "default |V|", "detail"])
    for spec in CASE_REGISTRY.values():
        table.add_row(
            [spec.name, spec.family, f"{spec.paper_nodes:.1E}",
             spec.base_nodes, spec.detail]
        )
    for spec in PG_CASE_REGISTRY.values():
        table.add_row(
            [spec.name, "powergrid", f"{spec.paper_nodes:.1E}",
             spec.base_nodes, spec.detail]
        )
    print(table.render())
    return 0


def _cmd_sparsify(args) -> int:
    if args.case:
        graph, spec = make_case(args.case, scale=args.scale, seed=args.seed)
        label = spec.name
    else:
        graph, _ = read_graph_mtx(args.mtx)
        label = args.mtx
    print(f"{label}: {graph.n} nodes, {graph.edge_count} edges")
    result = _SPARSIFIERS[args.method](graph, args)
    quality = evaluate_sparsifier(graph, result.sparsifier)
    table = Table(["metric", "value"])
    table.add_row(["method", args.method])
    table.add_row(["sparsifier edges", quality.sparsifier_edges])
    table.add_row(["kappa(L_G, L_P)", quality.kappa])
    table.add_row(["PCG iterations (rtol 1e-3)", quality.pcg_iterations])
    table.add_row(["sparsify seconds", result.setup_seconds])
    table.add_row(["factor nnz", quality.factor_nnz])
    print(table.render())
    return 0


def _cmd_transient(args) -> int:
    netlist, spec = make_pg_case(args.case, scale=args.scale, seed=args.seed)
    probe = netlist.loads[0].node
    print(f"{spec.name}: {netlist.n} nodes, {len(netlist.loads)} loads")
    direct = simulate_transient_direct(
        netlist, t_end=args.t_end, step=10e-12, probes=[probe]
    )
    factor, sparsify_seconds, _ = build_sparsifier_preconditioner(
        netlist, method="proposed", edge_fraction=args.fraction,
        seed=args.seed,
    )
    iterative = simulate_transient_pcg(
        netlist, factor, t_end=args.t_end, probes=[probe]
    )
    deviation = max_probe_difference(direct, iterative, probe)
    table = Table(["solver", "steps", "Ttr_s", "avg_iters", "memory"])
    table.add_row(
        ["direct (10 ps)", direct.steps, direct.transient_seconds, "-",
         format_bytes(direct.memory_bytes)]
    )
    table.add_row(
        ["pcg (<=200 ps)", iterative.steps, iterative.transient_seconds,
         f"{iterative.avg_iterations:.1f}",
         format_bytes(iterative.memory_bytes)]
    )
    print(table.render())
    print(f"sparsification: {sparsify_seconds:.2f} s; "
          f"waveform deviation {deviation * 1e3:.2f} mV (< 16 mV expected)")
    return 0


def _cmd_partition(args) -> int:
    graph, spec = make_case(args.case, scale=args.scale, seed=args.seed)
    print(f"{spec.name}: {graph.n} nodes, {graph.edge_count} edges")
    direct = fiedler_vector(graph, method="direct", steps=args.steps,
                            seed=args.seed)
    sparsifier = trace_reduction_sparsify(
        graph, edge_fraction=args.fraction, rounds=5, seed=args.seed
    )
    shift = regularization_shift(graph)
    factor = cholesky(regularized_laplacian(sparsifier.sparsifier, shift))
    iterative = fiedler_vector(
        graph, method="pcg", preconditioner=factor, steps=args.steps,
        seed=args.seed,
    )
    err = partition_relative_error(
        spectral_bipartition(direct.vector),
        spectral_bipartition(iterative.vector),
    )
    table = Table(["solver", "seconds", "avg_iters", "memory", "RelErr"])
    table.add_row(
        ["direct", direct.seconds, "-", format_bytes(direct.memory_bytes), "-"]
    )
    table.add_row(
        ["pcg", iterative.seconds, f"{iterative.avg_iterations:.1f}",
         format_bytes(iterative.memory_bytes), f"{err:.2E}"]
    )
    print(table.render())
    return 0


_COMMANDS = {
    "cases": _cmd_cases,
    "sparsify": _cmd_sparsify,
    "transient": _cmd_transient,
    "partition": _cmd_partition,
}


def main(argv=None) -> int:
    """Run the ``repro`` command-line interface.

    Parameters
    ----------
    argv : list of str, optional
        Argument vector; defaults to ``sys.argv[1:]``.  See the module
        docstring for the available subcommands, including the
        ``sparsify --workers/--chunk-size`` scoring knobs.

    Returns
    -------
    int
        Process exit code (0 on success).
    """
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
