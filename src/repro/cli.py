"""Command-line interface: run the paper's experiments from a shell.

The interface is generated from the sparsifier method registry
(:mod:`repro.api`): every option of every registered config dataclass
becomes a flag, and passing a flag the chosen method does not accept is
a hard error (never a silent no-op).

Examples
--------
List the available cases and methods::

    repro cases
    repro methods

(``repro`` is the installed console script; ``python -m repro.cli``
works from a plain checkout.)

Sparsify a named case (or a Matrix Market file) and report quality::

    repro sparsify --case ecology2 --fraction 0.10
    repro sparsify --mtx my_matrix.mtx --method grass --rounds 3
    repro sparsify --case ecology2 --json   # machine-readable RunRecord

Sweep methods and fractions over one graph through a
:class:`~repro.api.SparsifierSession` (shared artifacts are derived
once)::

    repro sweep --case ecology2 --methods proposed,grass \
        --fractions 0.05,0.10 --output sweep.json

Candidate scoring can be sharded across worker processes; the result is
bit-identical to the serial run (``--workers 0`` means one per CPU)::

    repro sparsify --case ecology2 --workers 4 --chunk-size 2048

Large graphs can be cut into shards that are sparsified independently
(and concurrently, when ``--workers`` asks for it) and stitched back
together with the cut edges — see ``docs/scaling.md``::

    repro sparsify --case ecology2 --shards 4 --workers 4
    repro sparsify --case ecology2 --shards 4 --boundary-policy sample

Power-grid transient comparison (Table 2) and spectral partitioning
comparison (Table 3), both accepting any registered ``--method``::

    repro transient --case ibmpg3t --scale 0.25
    repro partition --case tmt_sym --scale 0.25 --json

Long-lived serving (:mod:`repro.service`): run the sparsification
daemon, submit jobs to it, and inspect the queue — identical in-flight
requests are deduplicated and all jobs share one warm artifact cache::

    repro serve --port 8734 --workers 2
    repro submit --url http://127.0.0.1:8734 --case ecology2 --rounds 2
    repro jobs --url http://127.0.0.1:8734 --status done --limit 10

Evolving-graph sessions (:mod:`repro.incremental` behind the daemon):
open a session, stream edge-mutation batches into it, and download the
incrementally maintained sparsifier at any point::

    repro graphs --create --case ecology2 --scale 0.05 --fraction 0.15
    repro patch --graph graph-000001 --insert 0,37,1.0 --delete 0,1
    repro graphs                       # table of live sessions
    repro graphs --show graph-000001   # RunRecord + DeltaRecord JSON
    repro graphs --delete graph-000001

Operate the shared on-disk artifact cache the daemon (and ``repro
sweep``) warms::

    repro cache stats
    repro cache gc --max-age-days 30
    repro cache clear --cache-dir /tmp/repro-cache
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import RunRecord, SparsifierSession, get_method, list_methods
from repro.api import sparsify as api_sparsify
from repro.api.docgen import flag_for as _flag_for
from repro.exceptions import CacheError, ReproError, ServiceError
from repro.graph import CASE_REGISTRY, make_case, read_graph_mtx
from repro.partitioning import (
    build_partition_preconditioner,
    fiedler_vector,
    partition_relative_error,
    spectral_bipartition,
)
from repro.powergrid import (
    PG_CASE_REGISTRY,
    build_sparsifier_preconditioner,
    make_pg_case,
    simulate_transient_direct,
    simulate_transient_pcg,
)
from repro.powergrid.transient import max_probe_difference
from repro.utils.reporting import Table, format_bytes, format_seconds

# Sentinel distinguishing "flag not given" from any real value, so only
# user-provided options reach the method config (and inapplicable ones
# can be rejected instead of silently ignored).
_UNSET = object()

def _method_option_table() -> dict:
    """Merge the option specs of every registered method.

    Returns ``{option_name: (OptionSpec, [method, ...])}`` — the single
    source of truth the ``sparsify`` / ``sweep`` / ``transient`` /
    ``partition`` flags are generated from.
    """
    merged: dict = {}
    for name in list_methods():
        for opt_name, opt in get_method(name).options().items():
            entry = merged.setdefault(opt_name, (opt, []))
            entry[1].append(name)
    return merged


def _add_method_flags(parser, skip=()) -> None:
    """Generate one flag per registered config field."""
    group = parser.add_argument_group(
        "method options",
        "generated from the registered config dataclasses; flags the "
        "chosen --method does not accept are rejected",
    )
    for opt_name, (opt, methods) in sorted(_method_option_table().items()):
        if opt_name in skip:
            continue
        help_text = f"[{', '.join(methods)}] default {opt.default!r}"
        kwargs = dict(default=_UNSET, dest=f"opt_{opt_name}", help=help_text)
        if opt.type is bool:
            group.add_argument(
                _flag_for(opt_name), action=argparse.BooleanOptionalAction,
                **kwargs,
            )
        else:
            group.add_argument(_flag_for(opt_name), type=opt.type, **kwargs)


def _provided_options(args, methods=None) -> dict:
    """Options the user actually passed, keyed by config field name.

    When *methods* is given, every method's config is test-built right
    away so inapplicable flags fail fast — before graphs are loaded or
    direct reference solutions are computed.
    """
    options = {
        name[len("opt_"):]: value
        for name, value in vars(args).items()
        if name.startswith("opt_") and value is not _UNSET
    }
    for method in methods or ():
        get_method(method).make_config(**options)
    return options


def _add_graph_source(parser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--case", choices=sorted(CASE_REGISTRY))
    source.add_argument("--mtx", help="Matrix Market file to load")
    parser.add_argument("--scale", type=float, default=None)


def _load_graph(args, seed: int):
    if args.case:
        graph, spec = make_case(args.case, scale=args.scale, seed=seed)
        return graph, spec.name
    graph, _ = read_graph_mtx(args.mtx)
    return graph, args.mtx


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph spectral sparsification (DAC'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("cases", help="list registered graph and PG cases")
    methods = sub.add_parser(
        "methods", help="list registered sparsifier methods and backends"
    )
    methods.add_argument(
        "--markdown", action="store_true",
        help="emit the generated API reference (docs/api-reference.md)",
    )

    sparsify = sub.add_parser("sparsify", help="sparsify a graph")
    _add_graph_source(sparsify)
    sparsify.add_argument("--method", choices=sorted(list_methods()),
                          default="proposed")
    sparsify.add_argument("--json", action="store_true",
                          help="emit a RunRecord as JSON instead of a table")
    _add_method_flags(sparsify)

    sweep = sub.add_parser(
        "sweep", help="method x fraction sweep through one session"
    )
    _add_graph_source(sweep)
    sweep.add_argument("--methods", default="proposed",
                       help="comma-separated registry names")
    sweep.add_argument("--fractions", default="0.02,0.05,0.10",
                       help="comma-separated edge fractions")
    sweep.add_argument("--json", action="store_true",
                       help="emit the RunRecords as JSON")
    sweep.add_argument("--output", default=None,
                       help="also write the RunRecords to this JSON file")
    sweep.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="persist session artifacts on disk (REPRO_CACHE_DIR or "
        "~/.cache/repro) so a second run skips setup; --no-cache keeps "
        "the session memory-only",
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help="explicit cache root (overrides REPRO_CACHE_DIR)",
    )
    _add_method_flags(sweep, skip=("edge_fraction",))

    transient = sub.add_parser("transient", help="PG transient comparison")
    transient.add_argument("--case", choices=sorted(PG_CASE_REGISTRY),
                           default="ibmpg3t")
    transient.add_argument("--scale", type=float, default=None)
    transient.add_argument("--t-end", type=float, default=5e-9)
    transient.add_argument("--method", choices=sorted(list_methods()),
                           default="proposed")
    transient.add_argument("--json", action="store_true")
    _add_method_flags(transient)

    partition = sub.add_parser("partition", help="Fiedler comparison")
    partition.add_argument("--case", choices=sorted(CASE_REGISTRY),
                           default="ecology2")
    partition.add_argument("--scale", type=float, default=None)
    partition.add_argument("--steps", type=int, default=5)
    partition.add_argument("--method", choices=sorted(list_methods()),
                           default="proposed")
    partition.add_argument("--json", action="store_true")
    _add_method_flags(partition)

    serve = sub.add_parser(
        "serve", help="run the sparsification service daemon"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8734,
                       help="listening port (0 picks an ephemeral one)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker threads/processes (0 = one per CPU)")
    serve.add_argument("--executor", choices=("thread", "process"),
                       default="thread",
                       help="execution backend: run jobs inline on "
                       "worker threads, or in fingerprint-pinned "
                       "worker processes that sidestep the GIL")
    serve.add_argument("--retries", type=int, default=1,
                       help="re-runs granted to a job whose worker "
                       "process crashed mid-job")
    serve.add_argument("--max-sessions", type=int, default=8,
                       help="warm per-graph sessions kept in memory")
    serve.add_argument("--max-jobs", type=int, default=1000,
                       help="finished jobs (and their records) "
                       "retained in the ledger")
    serve.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="share the persistent artifact cache across jobs and "
        "restarts (--no-cache keeps sessions memory-only)",
    )
    serve.add_argument("--cache-dir", default=None,
                       help="explicit cache root (overrides "
                       "REPRO_CACHE_DIR)")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per HTTP request")

    submit = sub.add_parser(
        "submit", help="submit a job to a running service daemon"
    )
    submit.add_argument("--url", default="http://127.0.0.1:8734")
    source = submit.add_mutually_exclusive_group(required=True)
    source.add_argument("--case", choices=sorted(CASE_REGISTRY))
    source.add_argument("--mtx",
                        help="local Matrix Market file (content is "
                        "uploaded with the request)")
    source.add_argument("--mtx-path",
                        help="server-side Matrix Market path")
    submit.add_argument("--scale", type=float, default=None)
    submit.add_argument("--method", choices=sorted(list_methods()),
                        default="proposed")
    submit.add_argument("--label", default=None)
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs sooner; ties run in "
                        "submission order")
    submit.add_argument("--evaluate", action="store_true",
                        help="score the sparsifier (kappa, PCG) and "
                        "attach the quality block to the record")
    submit.add_argument(
        "--wait", action=argparse.BooleanOptionalAction, default=True,
        help="poll until the job finishes (--no-wait prints the job "
        "id and returns immediately)",
    )
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait polling budget in seconds")
    submit.add_argument("--json", action="store_true",
                        help="emit the job (and RunRecord) as JSON")
    _add_method_flags(submit)

    jobs = sub.add_parser(
        "jobs", help="list, inspect or cancel jobs on a daemon"
    )
    jobs.add_argument("--url", default="http://127.0.0.1:8734")
    jobs.add_argument("--job", default=None,
                      help="show one job in full instead of the table")
    jobs.add_argument("--cancel", default=None,
                      help="cancel this queued job id")
    from repro.service.jobs import JOB_STATUSES

    jobs.add_argument("--status", choices=JOB_STATUSES, default=None,
                      help="only list jobs in this lifecycle state")
    jobs.add_argument("--limit", type=int, default=None,
                      help="only list the most recent N jobs")
    jobs.add_argument("--json", action="store_true")

    graphs = sub.add_parser(
        "graphs",
        help="manage evolving-graph sessions on a daemon",
    )
    graphs.add_argument("--url", default="http://127.0.0.1:8734")
    graphs.add_argument("--create", action="store_true",
                        help="open a session (pass a graph source)")
    source = graphs.add_mutually_exclusive_group()
    source.add_argument("--case", choices=sorted(CASE_REGISTRY))
    source.add_argument("--mtx",
                        help="local Matrix Market file (content is "
                        "uploaded with the request)")
    source.add_argument("--mtx-path",
                        help="server-side Matrix Market path")
    graphs.add_argument("--scale", type=float, default=None)
    graphs.add_argument("--method", choices=sorted(list_methods()),
                        default="proposed",
                        help="must support incremental updates")
    graphs.add_argument("--label", default=None)
    graphs.add_argument("--drift-budget", type=float, default=32.0,
                        help="estimated condition-number inflation "
                        "that triggers a full rebuild")
    graphs.add_argument("--locality-beta", type=int, default=2,
                        help="hop radius of the re-examined "
                        "neighborhood per batch")
    graphs.add_argument("--show", default=None, metavar="ID",
                        help="fetch one session's sparsifier "
                        "(RunRecord + DeltaRecord JSON)")
    graphs.add_argument("--delete", default=None, metavar="ID",
                        help="close this session")
    graphs.add_argument("--json", action="store_true")
    _add_method_flags(graphs)

    patch = sub.add_parser(
        "patch",
        help="apply an edge-mutation batch to an evolving-graph "
        "session",
    )
    patch.add_argument("--url", default="http://127.0.0.1:8734")
    patch.add_argument("--graph", required=True,
                       help="graph session id (graph-000001)")
    patch.add_argument("--insert", action="append", default=[],
                       metavar="U,V,W",
                       help="insert edge (u, v) with weight w; "
                       "repeatable")
    patch.add_argument("--delete", action="append", default=[],
                       metavar="U,V",
                       help="delete edge (u, v); repeatable")
    patch.add_argument("--json", action="store_true")

    cache = sub.add_parser(
        "cache", help="inspect or prune the on-disk artifact cache"
    )
    cache.add_argument("action", choices=("stats", "gc", "clear"),
                       help="stats: inventory; gc: drop entries older "
                       "than --max-age-days; clear: drop everything")
    cache.add_argument("--cache-dir", default=None,
                       help="cache root (default REPRO_CACHE_DIR or "
                       "~/.cache/repro)")
    cache.add_argument("--max-age-days", type=float, default=None,
                       help="gc age bound (default "
                       "DiskCache.max_age_days = 30)")
    cache.add_argument("--json", action="store_true")
    return parser


def _cmd_cases(_args) -> int:
    table = Table(["name", "kind", "paper |V|", "default |V|", "detail"])
    for spec in CASE_REGISTRY.values():
        table.add_row(
            [spec.name, spec.family, f"{spec.paper_nodes:.1E}",
             spec.base_nodes, spec.detail]
        )
    for spec in PG_CASE_REGISTRY.values():
        table.add_row(
            [spec.name, "powergrid", f"{spec.paper_nodes:.1E}",
             spec.base_nodes, spec.detail]
        )
    print(table.render())
    return 0


def _cmd_methods(args) -> int:
    if getattr(args, "markdown", False):
        from repro.api.docgen import api_reference_markdown

        print(api_reference_markdown(), end="")
        return 0
    table = Table(["method", "deterministic", "rounds", "workers",
                   "options", "description"])
    for name in list_methods():
        spec = get_method(name)
        table.add_row([
            name,
            "yes" if spec.deterministic else "no",
            "yes" if spec.supports_rounds else "-",
            "yes" if spec.supports_workers else "-",
            " ".join(_flag_for(o) for o in spec.option_names()),
            spec.description,
        ])
    print(table.render())
    backends = Table(["backend", "available", "compiled", "persistent",
                      "description"])
    from repro.backends import backend_capabilities, backend_description

    for name, caps in sorted(backend_capabilities().items()):
        backends.add_row([
            name,
            "yes" if caps["available"] else "no",
            "yes" if caps["compiled_factorization"] else "-",
            "yes" if caps["persistent_factors"] else "-",
            backend_description(name),
        ])
    print()
    print(backends.render())
    kernels = Table(["kernels", "available", "compiled", "description"])
    from repro.kernels import (
        kernel_capabilities,
        kernel_description,
        resolve_kernels,
    )

    for name, caps in sorted(kernel_capabilities().items()):
        kernels.add_row([
            name,
            "yes" if caps["available"] else "no",
            "yes" if caps["compiled_kernels"] else "-",
            kernel_description(name),
        ])
    print()
    print(kernels.render())
    print(f"auto resolves to: {resolve_kernels()}")
    return 0


def _cmd_sparsify(args) -> int:
    from repro.core import evaluate_sparsifier

    options = _provided_options(args, methods=[args.method])
    seed = int(options.get("seed", 0))
    graph, label = _load_graph(args, seed)
    result = api_sparsify(graph, method=args.method, **options)
    quality = evaluate_sparsifier(graph, result.sparsifier, seed=seed)
    record = RunRecord.from_result(
        result, method=args.method, label=label, quality=quality
    )
    if args.json:
        print(record.to_json())
        return 0
    print(f"{label}: {graph.n} nodes, {graph.edge_count} edges")
    table = Table(["metric", "value"])
    table.add_row(["method", args.method])
    table.add_row(["sparsifier edges", quality.sparsifier_edges])
    table.add_row(["kappa(L_G, L_P)", quality.kappa])
    table.add_row(["PCG iterations (rtol 1e-3)", quality.pcg_iterations])
    table.add_row(["sparsify seconds", format_seconds(result.setup_seconds)])
    table.add_row(["factor nnz", quality.factor_nnz])
    print(table.render())
    if result.sharding is not None:
        info = result.sharding
        cut = info["cut"]
        shard_times = ", ".join(
            format_seconds(entry["sparsify_seconds"])
            for entry in info["per_shard"]
        )
        print(
            f"shards: {info['shards']} "
            f"({', '.join(str(e['nodes']) for e in info['per_shard'])} "
            f"nodes), boundary_policy={info['boundary_policy']}: "
            f"kept {cut['kept_edges']}/{cut['edges']} cut edges"
        )
        print(
            f"per-shard sparsify seconds: {shard_times}; partition "
            f"{format_seconds(info['partition_seconds'])}, stitch "
            f"{format_seconds(info['stitch_seconds'])}"
        )
    return 0


def _cmd_sweep(args) -> int:
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    fractions = [float(f) for f in args.fractions.split(",") if f.strip()]
    if not args.cache and args.cache_dir is not None:
        raise CacheError(
            "--no-cache and --cache-dir contradict each other; drop one"
        )
    options = _provided_options(args, methods=methods)
    seed = int(options.get("seed", 0))
    graph, label = _load_graph(args, seed)
    session = SparsifierSession(
        graph, label=label,
        persistent=args.cache,
        cache_dir=args.cache_dir,
    )
    records = session.sweep(methods, fractions, **options)
    payload = [record.to_dict() for record in records]
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{label}: {graph.n} nodes, {graph.edge_count} edges")
    table = Table(["method", "fraction", "edges", "kappa", "PCG iters",
                   "Ts_s"])
    for record in records:
        table.add_row([
            record.method,
            record.config["edge_fraction"],
            record.graph["sparsifier_edges"],
            f"{record.quality['kappa']:.2f}",
            record.quality["pcg_iterations"],
            format_seconds(record.timings["sparsify_seconds"]),
        ])
    print(table.render())
    stats = session.stats()
    reused = sum(stats["hits"].values())
    print(f"session artifacts: {stats['entries']} cached, "
          f"{reused} reuse hits "
          f"({', '.join(f'{k}={v}' for k, v in sorted(stats['hits'].items()))})")
    disk = stats.get("disk")
    if disk is not None:
        loaded = sum(disk["hits"].values())
        stored = sum(disk["stores"].values())
        print(f"disk cache [{disk['root']}]: {loaded} loaded, "
              f"{stored} stored"
              + (f", {sum(disk['evictions'].values())} corrupt evicted"
                 if disk["evictions"] else "")
              + (f", {sum(disk['errors'].values())} write errors "
                 "(cache root unwritable? results unaffected)"
                 if disk["errors"] else "")
              + (" (warm run: setup skipped)" if loaded and not stored
                 else ""))
    return 0


def _cmd_transient(args) -> int:
    options = _provided_options(args, methods=[args.method])
    seed = int(options.get("seed", 0))
    netlist, spec = make_pg_case(args.case, scale=args.scale, seed=seed)
    probe = netlist.loads[0].node
    if not args.json:
        print(f"{spec.name}: {netlist.n} nodes, {len(netlist.loads)} loads")
    direct = simulate_transient_direct(
        netlist, t_end=args.t_end, step=10e-12, probes=[probe]
    )
    factor, sparsify_seconds, result = build_sparsifier_preconditioner(
        netlist, method=args.method, **options
    )
    iterative = simulate_transient_pcg(
        netlist, factor, t_end=args.t_end, probes=[probe]
    )
    deviation = max_probe_difference(direct, iterative, probe)
    if args.json:
        record = RunRecord.from_result(
            result, method=args.method, label=spec.name
        )
        print(json.dumps({
            "command": "transient",
            "case": spec.name,
            "nodes": int(netlist.n),
            "loads": len(netlist.loads),
            "t_end": args.t_end,
            "direct": {
                "steps": int(direct.steps),
                "transient_seconds": float(direct.transient_seconds),
                "memory_bytes": int(direct.memory_bytes),
            },
            "pcg": {
                "steps": int(iterative.steps),
                "transient_seconds": float(iterative.transient_seconds),
                "avg_iterations": float(iterative.avg_iterations),
                "memory_bytes": int(iterative.memory_bytes),
            },
            "deviation_volts": float(deviation),
            "sparsifier": record.to_dict(),
        }, indent=2, sort_keys=True))
        return 0
    table = Table(["solver", "steps", "Ttr_s", "avg_iters", "memory"])
    table.add_row(
        ["direct (10 ps)", direct.steps, direct.transient_seconds, "-",
         format_bytes(direct.memory_bytes)]
    )
    table.add_row(
        ["pcg (<=200 ps)", iterative.steps, iterative.transient_seconds,
         f"{iterative.avg_iterations:.1f}",
         format_bytes(iterative.memory_bytes)]
    )
    print(table.render())
    print(f"sparsification ({args.method}): {sparsify_seconds:.2f} s; "
          f"waveform deviation {deviation * 1e3:.2f} mV (< 16 mV expected)")
    return 0


def _cmd_partition(args) -> int:
    options = _provided_options(args, methods=[args.method])
    seed = int(options.get("seed", 0))
    graph, spec = make_case(args.case, scale=args.scale, seed=seed)
    if not args.json:
        print(f"{spec.name}: {graph.n} nodes, {graph.edge_count} edges")
    direct = fiedler_vector(graph, method="direct", steps=args.steps,
                            seed=seed)
    factor, result = build_partition_preconditioner(
        graph, method=args.method, **options
    )
    iterative = fiedler_vector(
        graph, method="pcg", preconditioner=factor, steps=args.steps,
        seed=seed,
    )
    err = partition_relative_error(
        spectral_bipartition(direct.vector),
        spectral_bipartition(iterative.vector),
    )
    if args.json:
        record = RunRecord.from_result(
            result, method=args.method, label=spec.name
        )
        print(json.dumps({
            "command": "partition",
            "case": spec.name,
            "steps": args.steps,
            "direct": {
                "seconds": float(direct.seconds),
                "memory_bytes": int(direct.memory_bytes),
            },
            "pcg": {
                "seconds": float(iterative.seconds),
                "avg_iterations": float(iterative.avg_iterations),
                "memory_bytes": int(iterative.memory_bytes),
            },
            "relative_error": float(err),
            "sparsifier": record.to_dict(),
        }, indent=2, sort_keys=True))
        return 0
    table = Table(["solver", "seconds", "avg_iters", "memory", "RelErr"])
    table.add_row(
        ["direct", direct.seconds, "-", format_bytes(direct.memory_bytes), "-"]
    )
    table.add_row(
        ["pcg", iterative.seconds, f"{iterative.avg_iterations:.1f}",
         format_bytes(iterative.memory_bytes), f"{err:.2E}"]
    )
    print(table.render())
    return 0


def _cmd_serve(args) -> int:
    from repro.service import serve

    if not args.cache and args.cache_dir is not None:
        raise CacheError(
            "--no-cache and --cache-dir contradict each other; drop one"
        )
    return serve(
        host=args.host, port=args.port, workers=args.workers,
        persistent=args.cache, cache_dir=args.cache_dir,
        max_sessions=args.max_sessions, max_jobs=args.max_jobs,
        executor=args.executor, retries=args.retries,
        verbose=args.verbose,
    )


def _cmd_submit(args) -> int:
    from repro.service import ServiceClient

    options = _provided_options(args, methods=[args.method])
    client = ServiceClient(args.url)
    job = client.submit(
        case=args.case, scale=args.scale, mtx_file=args.mtx,
        mtx_path=args.mtx_path, method=args.method, label=args.label,
        priority=args.priority, evaluate=args.evaluate, options=options,
    )
    if not args.wait:
        if args.json:
            print(json.dumps(job, indent=2, sort_keys=True))
        else:
            print(f"submitted {job['id']} (status {job['status']}"
                  + (f", deduplicated onto {job['dedup_of']}"
                     if job.get("dedup_of") else "") + ")")
        return 0
    record = client.result(job["id"], timeout=args.timeout)
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    final = client.job(job["id"])
    graph = record["graph"]
    print(f"{job['id']}: done ({graph['label']}, {graph['nodes']} nodes, "
          f"{graph['edges']} -> {graph['sparsifier_edges']} edges)"
          + (f"; deduplicated onto {final['dedup_of']}"
             if final.get("dedup_of") else ""))
    table = Table(["metric", "value"])
    table.add_row(["method", record["method"]])
    for name, value in sorted(record["timings"].items()):
        table.add_row([name, format_seconds(value)])
    if record.get("quality"):
        table.add_row(["kappa(L_G, L_P)", record["quality"]["kappa"]])
        table.add_row(["PCG iterations",
                       record["quality"]["pcg_iterations"]])
    print(table.render())
    return 0


def _cmd_jobs(args) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    if args.cancel:
        job = client.cancel(args.cancel)
        if args.json:
            print(json.dumps(job, indent=2, sort_keys=True))
        else:
            print(f"cancelled {job['id']}")
        return 0
    if args.job:
        job = client.job(args.job)
        print(json.dumps(job, indent=2, sort_keys=True))
        return 0
    listing = client.jobs(status=args.status, limit=args.limit)
    if args.json:
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    table = Table(["id", "status", "method", "graph", "priority",
                   "dedup_of"])
    for job in listing:
        spec = job["spec"]
        source = spec["graph"]
        graph = (source.get("case") or source.get("mtx_path")
                 or "<upload>")
        table.add_row([
            job["id"], job["status"], spec["method"], graph,
            spec["priority"], job.get("dedup_of") or "-",
        ])
    print(table.render())
    stats = client.stats()
    print(f"queue depth {stats['queue_depth']}, running "
          f"{stats['running']}, dedup hits {stats['dedup_hits']}, "
          f"{stats['sessions']} warm sessions")
    return 0


def _cmd_graphs(args) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    if args.show:
        print(json.dumps(client.graph_sparsifier(args.show),
                         indent=2, sort_keys=True))
        return 0
    if args.delete:
        session = client.delete_graph(args.delete)
        if args.json:
            print(json.dumps(session, indent=2, sort_keys=True))
        else:
            print(f"deleted {session['id']}")
        return 0
    if args.create:
        options = _provided_options(args, methods=[args.method])
        session = client.create_graph(
            case=args.case, scale=args.scale, mtx_file=args.mtx,
            mtx_path=args.mtx_path, method=args.method,
            label=args.label, drift_budget=args.drift_budget,
            locality_beta=args.locality_beta, options=options,
        )
        if args.json:
            print(json.dumps(session, indent=2, sort_keys=True))
        else:
            summary = session["summary"]
            print(f"created {session['id']} ({summary['label']}, "
                  f"{summary['nodes']} nodes, "
                  f"{summary['sparsifier_edges']} sparsifier edges)")
        return 0
    listing = client.graphs()
    if args.json:
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    table = Table(["id", "graph", "method", "batches", "rebuilds",
                   "edges", "drift"])
    for session in listing:
        summary = session["summary"]
        table.add_row([
            session["id"], summary["label"], summary["method"],
            summary["batches"], summary["rebuilds"],
            summary["sparsifier_edges"],
            f"{summary['drift_estimate']:.3f}",
        ])
    print(table.render())
    return 0


def _parse_insert(text: str):
    parts = text.split(",")
    if len(parts) != 3:
        raise ServiceError(
            f"--insert takes U,V,W (got {text!r})"
        )
    try:
        return int(parts[0]), int(parts[1]), float(parts[2])
    except ValueError:
        raise ServiceError(
            f"--insert takes integer endpoints and a float weight "
            f"(got {text!r})"
        ) from None


def _parse_delete(text: str):
    parts = text.split(",")
    if len(parts) != 2:
        raise ServiceError(f"--delete takes U,V (got {text!r})")
    try:
        return int(parts[0]), int(parts[1])
    except ValueError:
        raise ServiceError(
            f"--delete takes integer endpoints (got {text!r})"
        ) from None


def _cmd_patch(args) -> int:
    from repro.service import ServiceClient

    inserts = [_parse_insert(text) for text in args.insert]
    deletes = [_parse_delete(text) for text in args.delete]
    if not inserts and not deletes:
        raise ServiceError(
            "an edge batch needs at least one --insert or --delete"
        )
    client = ServiceClient(args.url)
    result = client.patch_graph(args.graph, inserts=inserts,
                                deletes=deletes)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    entry = result["entry"]
    summary = result["summary"]
    print(f"{result['id']} batch {entry['batch']}: "
          f"+{entry['inserted']}/-{entry['deleted']} edges, "
          f"touched {entry['touched_nodes']} nodes, "
          + ("full rebuild"
             if entry["rebuild"] else
             f"drift {summary['drift_estimate']:.3f}"
             f"/{summary['drift_budget']:.0f}")
          + f"; sparsifier now {summary['sparsifier_edges']} edges")
    return 0


def _cmd_cache(args) -> int:
    from repro.core.diskcache import (
        cache_root_stats,
        clear_cache_root,
        collect_cache_garbage,
    )

    if args.action == "stats":
        stats = cache_root_stats(args.cache_dir)
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"cache root {stats['root']}"
              + ("" if stats["exists"] else " (does not exist yet)"))
        table = Table(["kind", "entries", "size"])
        for kind, slot in stats["by_kind"].items():
            table.add_row([kind, slot["entries"],
                           format_bytes(slot["bytes"])])
        table.add_row(["total", stats["entries"],
                       format_bytes(stats["bytes"])])
        print(table.render())
        print(f"{stats['graphs']} graph namespace(s)")
        return 0
    if args.action == "gc":
        removed = collect_cache_garbage(
            args.cache_dir, max_age_days=args.max_age_days
        )
    else:
        removed = clear_cache_root(args.cache_dir)
    if args.json:
        print(json.dumps({"action": args.action, "removed": removed},
                         indent=2, sort_keys=True))
    else:
        print(f"cache {args.action}: removed {removed} entr"
              f"{'y' if removed == 1 else 'ies'}")
    return 0


_COMMANDS = {
    "cases": _cmd_cases,
    "methods": _cmd_methods,
    "sparsify": _cmd_sparsify,
    "sweep": _cmd_sweep,
    "transient": _cmd_transient,
    "partition": _cmd_partition,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "graphs": _cmd_graphs,
    "patch": _cmd_patch,
    "cache": _cmd_cache,
}


def main(argv=None) -> int:
    """Run the ``repro`` command-line interface.

    Parameters
    ----------
    argv : list of str, optional
        Argument vector; defaults to ``sys.argv[1:]``.  See the module
        docstring for the available subcommands.

    Returns
    -------
    int
        Process exit code: 0 on success, 2 on a usage error such as an
        option the chosen method does not accept.
    """
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
