"""The paper's core contribution: trace-reduction spectral sparsification.

Public surface:

* criticality metrics: :func:`exact_trace_reduction`,
  :func:`tree_truncated_trace_reduction`,
  :func:`approximate_trace_reduction`;
* the full Algorithm 2 driver :func:`trace_reduction_sparsify`;
* baselines :func:`grass_sparsify` (GRASS [8]) and
  :func:`fegrass_sparsify` (feGRASS [13]);
* quality metrics: :func:`evaluate_sparsifier`, :func:`pcg_performance`.
"""

from repro.core.base import ArtifactStore, BaseSparsifierConfig
from repro.core.resistance import effective_resistance, effective_resistances
from repro.core.trace import (
    trace_ratio_exact,
    trace_ratio_hutchinson,
    trace_ratio,
)
from repro.core.trace_reduction import (
    exact_trace_reduction,
    exact_trace_reduction_batch,
    truncated_trace_reduction_reference,
    approximate_trace_reduction,
)
from repro.core.tree_phase import tree_truncated_trace_reduction
from repro.core.ranking import (
    ApproxRanker,
    BallBundle,
    BallCache,
    EdgeRanker,
    ExactRanker,
    TreePhaseRanker,
)
from repro.core.parallel import (
    DEFAULT_CHUNK_SIZE,
    chunk_spans,
    parallel_map,
    resolve_workers,
    score_edges,
)
from repro.core.similarity import SimilarityMarker
from repro.core.sparsifier import (
    SparsifierConfig,
    SparsifierResult,
    trace_reduction_sparsify,
)
from repro.core.sharding import (
    ShardPlan,
    induced_subgraph,
    partition_shards,
    select_boundary_edges,
    sharded_sparsify,
)
from repro.core.grass import GrassConfig, grass_sparsify, perturbation_criticality
from repro.core.fegrass import FegrassConfig, fegrass_sparsify
from repro.core.er_sampling import (
    ErSamplingConfig,
    approximate_effective_resistances,
    er_sample_sparsify,
)
from repro.core.trace_tracker import TraceTracker
from repro.core.metrics import QualityReport, evaluate_sparsifier, pcg_performance

__all__ = [
    "ArtifactStore",
    "BaseSparsifierConfig",
    "effective_resistance",
    "effective_resistances",
    "trace_ratio_exact",
    "trace_ratio_hutchinson",
    "trace_ratio",
    "exact_trace_reduction",
    "exact_trace_reduction_batch",
    "truncated_trace_reduction_reference",
    "approximate_trace_reduction",
    "tree_truncated_trace_reduction",
    "EdgeRanker",
    "BallBundle",
    "BallCache",
    "TreePhaseRanker",
    "ExactRanker",
    "ApproxRanker",
    "DEFAULT_CHUNK_SIZE",
    "chunk_spans",
    "parallel_map",
    "resolve_workers",
    "score_edges",
    "SimilarityMarker",
    "SparsifierConfig",
    "SparsifierResult",
    "trace_reduction_sparsify",
    "ShardPlan",
    "induced_subgraph",
    "partition_shards",
    "select_boundary_edges",
    "sharded_sparsify",
    "GrassConfig",
    "grass_sparsify",
    "perturbation_criticality",
    "FegrassConfig",
    "fegrass_sparsify",
    "ErSamplingConfig",
    "approximate_effective_resistances",
    "er_sample_sparsify",
    "TraceTracker",
    "QualityReport",
    "evaluate_sparsifier",
    "pcg_performance",
]
