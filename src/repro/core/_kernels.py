"""Vectorized micro-kernels shared by the criticality computations.

Both the tree phase (Eq. 15) and the general phase (Eq. 20) end with the
same restricted Laplacian quadratic form: given per-node values ``s``
(voltages or SPAI inner products), sum ``w_ij (s_i - s_j)^2`` over the
original graph's edges joining the two BFS balls.  These helpers keep
that per-candidate work in numpy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["concat_ranges", "ball_pair_edge_sum", "ball_pair_edge_sum_flat"]


def concat_ranges(starts, lengths):
    """Concatenate integer ranges ``[starts[k], starts[k]+lengths[k])``.

    Equivalent to ``np.concatenate([np.arange(s, s+l) ...])`` but built
    from two cumsums, with no per-range Python overhead.

    Parameters
    ----------
    starts : array_like of int
        Range start offsets.
    lengths : array_like of int
        Range lengths (zero-length ranges are skipped).

    Returns
    -------
    numpy.ndarray
        The concatenated ranges as one ``int64`` array.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    positive = lengths > 0
    if not np.all(positive):
        # Non-positive lengths contribute nothing (empty CSR ranges).
        starts = starts[positive]
        lengths = lengths[positive]
    if len(lengths) == 0:
        # Covers empty input and all-zero lengths; bail out before any
        # cum[-1] indexing can see an empty cumsum.
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(lengths)
    out = np.ones(cum[-1], dtype=np.int64)
    out[0] = starts[0]
    if len(starts) > 1:
        out[cum[:-1]] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(out)


def ball_pair_edge_sum(
    indptr,
    neighbors,
    edge_ids,
    weights,
    nodes_p,
    in_q_stamp,
    clock,
    values,
):
    """``sum w_e (values[i] - values[j])^2`` over ball-to-ball edges.

    Edges of the original graph with one endpoint in ``nodes_p`` (the
    ball around p) and the other stamped as belonging to the ball
    around q.  Each undirected edge is counted once even when both
    orientations qualify.

    Parameters
    ----------
    indptr, neighbors, edge_ids:
        CSR adjacency of the *original* graph.
    weights:
        Edge weight array of the original graph.
    nodes_p:
        Ball around the first endpoint.
    in_q_stamp, clock:
        Stamp array marking the second ball: node ``x`` is in the ball
        iff ``in_q_stamp[x] == clock``.
    values:
        Dense per-node value array (voltages / inner products); only
        entries of ball nodes are read.

    Returns
    -------
    float
        The restricted quadratic form.
    """
    starts = indptr[nodes_p]
    lengths = indptr[nodes_p + 1] - starts
    flat = concat_ranges(starts, lengths)
    if len(flat) == 0:
        return 0.0
    nbrs = neighbors[flat]
    eids = edge_ids[flat]
    sources = np.repeat(nodes_p, lengths)
    return ball_pair_edge_sum_flat(
        sources, nbrs, eids, weights, in_q_stamp, clock, values
    )


def ball_pair_edge_sum_flat(
    sources,
    nbrs,
    eids,
    weights,
    in_q_stamp,
    clock,
    values,
):
    """:func:`ball_pair_edge_sum` on a pre-flattened adjacency slice.

    The batched rankers cache, per ball, the flattened incident-edge
    triples ``(sources, nbrs, eids)`` of the original graph; this entry
    point skips the per-call CSR gather that :func:`ball_pair_edge_sum`
    performs and goes straight to the stamped restriction.

    Parameters
    ----------
    sources, nbrs, eids : numpy.ndarray
        Parallel arrays: for every (directed) incidence of a ball node,
        the ball node itself, its neighbor, and the connecting edge id.
    weights : numpy.ndarray
        Edge weight array of the original graph.
    in_q_stamp, clock :
        Stamp array marking the second ball: node ``x`` is in the ball
        iff ``in_q_stamp[x] == clock``.
    values : numpy.ndarray
        Dense per-node value array; only ball-node entries are read.

    Returns
    -------
    float
        The restricted quadratic form.
    """
    mask = in_q_stamp[nbrs] == clock
    if not np.any(mask):
        return 0.0
    eids = eids[mask]
    nbrs = nbrs[mask]
    sources = sources[mask]
    # Dedupe: when both orientations qualify the edge appears twice.
    unique_eids, first = np.unique(eids, return_index=True)
    diffs = values[sources[first]] - values[nbrs[first]]
    return float(np.sum(weights[unique_eids] * diffs * diffs))
