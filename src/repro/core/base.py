"""Shared sparsifier contract: base configuration and artifact store.

Every sparsification method in this package — the paper's Algorithm 2
and the GRASS / feGRASS / effective-resistance-sampling baselines —
plugs into the same three-piece contract:

* a configuration dataclass deriving from :class:`BaseSparsifierConfig`
  (so ``edge_fraction`` / ``seed`` mean the same thing everywhere and
  every config serializes losslessly through :meth:`to_dict`);
* a runner returning a
  :class:`~repro.core.sparsifier.SparsifierResult`;
* optional reuse of expensive per-graph artifacts through an
  :class:`ArtifactStore` (spanning trees, Laplacians, Cholesky
  factors, tree-phase criticalities), which is how
  :class:`repro.api.SparsifierSession` makes fraction/method sweeps
  over one graph stop re-deriving shared state.

The method registry (:mod:`repro.api.registry`) binds the pieces
together; this module stays import-light so the core sparsifier
modules can depend on it without cycles.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, fields, replace

from repro.exceptions import GraphError
from repro.utils.timers import Timer

__all__ = [
    "BOUNDARY_POLICIES",
    "BaseSparsifierConfig",
    "ArtifactStore",
    "shared_artifact",
]

#: How the shard-parallel pipeline treats cut (inter-shard) edges; see
#: :mod:`repro.core.sharding`.
BOUNDARY_POLICIES = ("keep", "sample")


@dataclass(kw_only=True)
class BaseSparsifierConfig:
    """Options every sparsification method understands.

    All config fields (here and in subclasses) are keyword-only:
    deriving from this base appends the shared fields to the front of
    the dataclass, so allowing positional construction would silently
    re-bind arguments of the pre-refactor config classes.

    Parameters
    ----------
    edge_fraction : float
        Recovery budget ``alpha``: keep ``edge_fraction * |V|``
        off-tree edges on top of the spanning backbone.
    seed : int
        Seed of the method's random stream (recorded even for
        deterministic methods, for API symmetry).
    backend : str
        Linear-algebra backend executing the method's factorizations,
        solves, sketches and SPAI columns: ``"scipy"`` (default,
        compiled SuperLU), ``"numpy"`` (pure-numpy reference) or
        ``"cholmod"`` (scikit-sparse, when installed).  See
        :mod:`repro.backends`.
    shards : int
        Shard-parallel pipeline (:mod:`repro.core.sharding`): ``1``
        (default) sparsifies the graph in one piece — byte-identical to
        the pre-sharding code path; ``N > 1`` recursively bipartitions
        the node set via the Fiedler machinery into ``N`` blocks,
        sparsifies each block independently (optionally concurrently)
        and stitches the results, treating cut edges per
        ``boundary_policy``.
    boundary_policy : str
        What happens to the cut (inter-shard) edges when ``shards >
        1``: ``"keep"`` (default) retains every cut edge verbatim —
        the spectrally safe choice; ``"sample"`` keeps a per-component
        connectivity backbone plus a leverage-biased sample of the
        rest (smaller output, looser spectral guarantee).
    kernels : str
        Hot-path kernel tier executing the scoring / BFS / gather
        loops: ``"auto"`` (default; honors ``REPRO_KERNELS`` and picks
        the best available tier), ``"vector"`` (numpy, the historical
        path), ``"numba"`` (compiled fused loops, when installed) or
        ``"python"`` (reference loops).  Every tier is bit-identical —
        the choice never changes results, only speed.  See
        :mod:`repro.kernels`.
    """

    edge_fraction: float = 0.10
    seed: int = 0
    backend: str = "scipy"
    shards: int = 1
    boundary_policy: str = "keep"
    kernels: str = "auto"

    def validate(self) -> None:
        """Raise on bad knobs (:class:`~repro.exceptions.GraphError`
        for numeric ranges, :class:`~repro.exceptions.BackendError` for
        unknown/unavailable backends)."""
        if not 0.0 <= self.edge_fraction:
            raise GraphError("edge_fraction must be nonnegative")
        if self.shards < 1:
            raise GraphError("shards must be >= 1")
        if self.boundary_policy not in BOUNDARY_POLICIES:
            raise GraphError(
                f"unknown boundary_policy {self.boundary_policy!r}; "
                f"choose from {sorted(BOUNDARY_POLICIES)}"
            )
        # Deferred so this module stays import-light (module docstring).
        from repro.backends import check_backend
        from repro.kernels import check_kernels

        check_backend(self.backend)
        check_kernels(self.kernels)

    def resolve_backend(self):
        """The validated :class:`~repro.backends.LinalgBackend` instance."""
        from repro.backends import get_backend

        return get_backend(self.backend)

    def resolve_kernels(self):
        """The resolved :class:`~repro.kernels.KernelSet` instance.

        ``"auto"`` resolves here (env override, then best available),
        so every consumer in one run sees the same concrete tier.
        """
        from repro.kernels import get_kernels

        return get_kernels(self.kernels)

    def to_dict(self) -> dict:
        """All options as a plain ``{name: value}`` dict (JSON-safe)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict):
        """Rebuild a config from :meth:`to_dict` output."""
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise GraphError(
                f"{cls.__name__} does not accept option(s) "
                f"{', '.join(map(repr, unknown))}; "
                f"valid options: {', '.join(sorted(names))}"
            )
        return cls(**data)

    def replace(self, **changes):
        """A copy of this config with *changes* applied."""
        return replace(self, **changes)


class ArtifactStore:
    """Keyed memo for expensive per-graph artifacts, with hit stats.

    One store belongs to one graph (a
    :class:`~repro.api.SparsifierSession` owns one); entries are keyed
    by ``(kind, key)`` where *key* pins down every input that
    determines the artifact — e.g. ``("tree", ("mewst",))`` or
    ``("factor_g", (reg_rel, backend))``.  Stored values are treated as
    read-only by all consumers, which is what makes reuse bit-exact.

    With a :class:`~repro.core.diskcache.DiskCache` attached, misses
    consult the on-disk layer before building, and freshly built
    artifacts are written through — so the artifacts survive the
    process and a warm run in a new process skips setup entirely.
    Disk traffic is tracked separately (``stats()["disk"]``): the
    in-memory ``hits``/``misses`` counters keep their pre-disk meaning
    ("was it already in *this* store").

    The store is safe for concurrent use from multiple threads (the
    service scheduler's workers hammer one session's store): map
    mutation and counters sit behind a lock, while the build itself
    runs *outside* it under a per-slot in-flight marker — an artifact
    is still built exactly once no matter how many threads race for it
    (losers wait and then observe the winner's object), but a
    long-running build never blocks :meth:`stats` readers such as the
    service's ``/stats`` endpoint.  Builds may recursively
    :meth:`get` other artifacts; distinct stores never contend.

    Examples
    --------
    >>> store = ArtifactStore()
    >>> store.get("tree", ("mewst",), lambda: [0, 1, 2])
    [0, 1, 2]
    >>> store.get("tree", ("mewst",), lambda: [9, 9, 9])
    [0, 1, 2]
    >>> store.stats()["hits"]
    {'tree': 1}
    """

    def __init__(self, disk=None) -> None:
        self._entries: dict = {}
        self.disk = disk
        self._lock = threading.RLock()
        self._inflight: dict = {}   # slot -> Event set when build ends
        self.hits: Counter = Counter()
        self.misses: Counter = Counter()
        #: Cumulative wall time spent restoring artifacts from the disk
        #: layer (loads, hit or miss).  Callers snapshot it around a run
        #: to attribute warm-run setup to cache I/O rather than compute
        #: (``RunRecord.timings["restore_seconds"]``).
        self.restore_seconds: float = 0.0

    def get(self, kind: str, key: tuple, build):
        """Return the cached artifact, building (and storing) on miss.

        Lookup order: this store's memory, then the attached disk
        cache (if any), then *build* — whose result is written through
        to both layers.  Concurrent callers racing for the same
        artifact share one build: the first becomes the builder, the
        rest wait on a per-slot event (outside the lock) and then read
        the winner's entry — counted as hits, exactly as if they had
        arrived after it.  If the builder raises, a waiter retries.
        """
        slot = (kind, key)
        while True:
            with self._lock:
                if slot in self._entries:
                    self.hits[kind] += 1
                    return self._entries[slot]
                event = self._inflight.get(slot)
                if event is None:
                    event = threading.Event()
                    self._inflight[slot] = event
                    self.misses[kind] += 1
                    break
            event.wait()
        try:
            if self.disk is not None:
                timer = Timer()
                with timer:
                    found, value = self.disk.load(kind, key)
                with self._lock:
                    self.restore_seconds += timer.elapsed
                    if found:
                        self._entries[slot] = value
                if found:
                    return value
            value = build()
            with self._lock:
                self._entries[slot] = value
            if self.disk is not None:
                self.disk.store_best_effort(kind, key, value)
            return value
        finally:
            with self._lock:
                del self._inflight[slot]
            event.set()

    def stats(self) -> dict:
        """Hit/miss counters per artifact kind plus the entry count.

        When a disk cache is attached the dict gains a ``"disk"`` block
        with its own per-kind ``hits``/``misses``/``stores``/``skips``/
        ``evictions``/``errors`` counters.
        """
        with self._lock:
            stats = {
                "hits": dict(self.hits),
                "misses": dict(self.misses),
                "entries": len(self._entries),
            }
            if self.disk is not None:
                stats["disk"] = self.disk.stats()
            return stats

    def clear(self) -> None:
        """Drop every cached artifact and reset the counters.

        Only the in-memory layer is dropped; use ``store.disk.clear()``
        to delete the persistent entries too.
        """
        with self._lock:
            self._entries.clear()
            self.hits.clear()
            self.misses.clear()
            self.restore_seconds = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, slot) -> bool:
        return slot in self._entries


def shared_artifact(artifacts, kind: str, key: tuple, build):
    """Fetch through *artifacts* when present, else build directly.

    The sparsifier runners call this for every artifact a session may
    share; a cold (session-less) run passes ``artifacts=None`` and pays
    full price, which keeps the cold path byte-for-byte identical to
    the pre-registry code.
    """
    if artifacts is None:
        return build()
    return artifacts.get(kind, key, build)
