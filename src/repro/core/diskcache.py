"""Content-addressed on-disk artifact cache.

A :class:`DiskCache` persists the expensive per-graph artifacts an
:class:`~repro.core.base.ArtifactStore` memoizes — spanning trees,
rooted forests, regularization shifts, tree-phase criticalities,
tree stretches, full-graph Laplacians/Cholesky factors and JL
resistance sketches — across processes, so a warm ``repro sweep``
skips setup entirely.

Addressing
----------
Every entry is addressed by content, never by position:

* the **graph fingerprint** — a SHA-256 over the node count and the
  exact edge arrays (``u``/``v``/``w`` bytes), so two structurally
  identical graphs share entries and any change invalidates them;
* the **artifact kind and key** — the same ``(kind, key)`` pair the
  in-memory store uses, where the key pins every input that determines
  the artifact (and, for factor-derived kinds, the linalg backend);
* the **cache schema version**, the ``repro`` package version *and a
  digest of the package's source files* — a release, a schema bump or
  any source edit (even between version bumps, mid-development)
  silently starts a fresh namespace instead of risking numerics from
  code that no longer exists.

The root directory is ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/repro``.  Writes are atomic (temp file + ``os.replace``)
and reads treat any unpicklable/truncated entry as a miss: the corrupt
file is evicted and the artifact rebuilt, so a killed writer can never
poison later runs.  Values that cannot be pickled exactly (e.g. live
SuperLU handles inside scipy-backend Cholesky factors) are skipped
rather than persisted lossily — bit-exactness beats hit rate.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import Counter
from pathlib import Path

from repro.exceptions import CacheError

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "NONPERSISTED_KINDS",
    "DiskCache",
    "cache_root_stats",
    "clear_cache_root",
    "collect_cache_garbage",
    "default_cache_root",
    "graph_fingerprint",
    "iter_cache_entries",
    "source_fingerprint",
]

#: Bump to invalidate every existing cache entry (layout/semantics change).
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_MISS = object()

#: Artifact kinds never persisted: a ``RootedForest`` embeds a full
#: copy of the graph's edge arrays (plus its tree subgraph), so
#: storing it would duplicate O(m) data the fingerprint already pins —
#: and rebuilding it from the cached tree is cheap and deterministic.
#: A per-shard ``SparsifierSession`` (sharding pipeline) likewise
#: embeds its whole shard graph; the artifacts *inside* it persist
#: through the session's own disk cache instead.
NONPERSISTED_KINDS = frozenset({"forest", "shard_session"})

_SOURCE_FINGERPRINT: str | None = None


def source_fingerprint() -> str:
    """Digest of every ``.py`` file in the installed ``repro`` package.

    Computed once per process and folded into every entry address, so
    *any* source change invalidates the cache — not just a version
    bump.  Without this, editing an algorithm mid-development and
    rerunning a warm sweep would silently serve artifacts computed by
    the old code.
    """
    global _SOURCE_FINGERPRINT
    if _SOURCE_FINGERPRINT is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _SOURCE_FINGERPRINT = digest.hexdigest()[:16]
    return _SOURCE_FINGERPRINT


def default_cache_root() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def graph_fingerprint(graph) -> str:
    """SHA-256 hex digest of a graph's exact content.

    Hashes the node count plus the raw bytes of the canonical edge
    arrays, so the fingerprint changes iff the graph does (including
    any single weight bit).
    """
    digest = hashlib.sha256()
    digest.update(f"n={graph.n};m={graph.edge_count};".encode())
    digest.update(graph.u.tobytes())
    digest.update(graph.v.tobytes())
    digest.update(graph.w.tobytes())
    return digest.hexdigest()


def _library_versions() -> tuple:
    """The dependency versions that determine stored numerics."""
    import numpy
    import scipy

    return (numpy.__version__, scipy.__version__)


def _key_digest(kind: str, key: tuple) -> str:
    """Stable digest of an artifact address (kind + key + code state).

    The token covers the package version, a digest of the package
    source *and* the numpy/scipy versions: upgrading a dependency can
    change factor bits (SuperLU), and serving pre-upgrade artifacts
    would stamp RunRecords with numerics a cold run under the new
    library cannot reproduce.
    """
    import repro

    token = repr((
        kind, key, repro.__version__, source_fingerprint(),
        _library_versions(),
    ))
    return hashlib.sha256(token.encode()).hexdigest()[:24]


def iter_cache_entries(root: Path):
    """Yield every entry file under a cache root (all graphs/schemas).

    The deterministic (sorted) walk behind ``repro cache`` operations
    and the fault-injection helpers — anything that needs to touch
    entries without knowing which graph or artifact kind they belong
    to.
    """
    if not root.is_dir():
        return
    for schema_dir in sorted(root.glob("v*")):
        if not schema_dir.is_dir():
            continue
        yield from sorted(schema_dir.glob("*/*/*.pkl"))


def _prune_empty_dirs(root: Path) -> None:
    """Remove now-empty graph/prefix/schema directories under *root*."""
    if not root.is_dir():
        return
    for schema_dir in root.glob("v*"):
        for prefix_dir in schema_dir.glob("*"):
            for graph_dir in prefix_dir.glob("*"):
                _rmdir_if_empty(graph_dir)
            _rmdir_if_empty(prefix_dir)
        _rmdir_if_empty(schema_dir)


def _rmdir_if_empty(path: Path) -> None:
    try:
        path.rmdir()
    except OSError:  # non-empty, racing writer, or not a directory
        pass


def cache_root_stats(root=None) -> dict:
    """Whole-root cache inventory, across every graph and schema.

    Unlike :meth:`DiskCache.stats` (one graph's live counters), this
    scans the directory tree an operator actually pays for: entry and
    graph counts, total bytes, and a per-kind breakdown.  Backs
    ``repro cache stats``.
    """
    root = Path(root) if root is not None else default_cache_root()
    graphs = set()
    entries = 0
    total_bytes = 0
    by_kind: dict = {}
    for path in iter_cache_entries(root):
        try:
            size = path.stat().st_size
        except OSError:  # pragma: no cover - racing eviction
            continue
        entries += 1
        total_bytes += size
        graphs.add(path.parent.name)
        kind = path.name.rsplit("-", 1)[0]
        slot = by_kind.setdefault(kind, {"entries": 0, "bytes": 0})
        slot["entries"] += 1
        slot["bytes"] += size
    return {
        "root": str(root),
        "exists": root.is_dir(),
        "graphs": len(graphs),
        "entries": entries,
        "bytes": total_bytes,
        "by_kind": dict(sorted(by_kind.items())),
    }


def collect_cache_garbage(root=None, max_age_days: float | None = None
                          ) -> int:
    """Drop every entry older than *max_age_days*; return the count.

    The root-wide form of the per-graph GC each :class:`DiskCache`
    runs at construction (same default age bound,
    :attr:`DiskCache.max_age_days`), covering graphs no current
    process constructs a cache for — exactly the entries per-graph GC
    can never reach.  Empty graph directories are pruned afterwards.
    Backs ``repro cache gc``.
    """
    root = Path(root) if root is not None else default_cache_root()
    if max_age_days is None:
        max_age_days = DiskCache.max_age_days
    import time

    cutoff = time.time() - float(max_age_days) * 86400.0
    removed = 0
    for path in iter_cache_entries(root):
        try:
            if path.stat().st_mtime < cutoff:
                path.unlink()
                removed += 1
        except OSError:  # pragma: no cover - racing eviction
            pass
    _prune_empty_dirs(root)
    return removed


def clear_cache_root(root=None) -> int:
    """Delete every entry under a cache root; return the count.

    ``repro cache clear``: removes all graphs' artifacts (and prunes
    the emptied directories) but leaves the root directory itself and
    any foreign files in it alone.
    """
    root = Path(root) if root is not None else default_cache_root()
    removed = 0
    for path in iter_cache_entries(root):
        try:
            path.unlink()
            removed += 1
        except OSError:  # pragma: no cover - racing eviction
            pass
    _prune_empty_dirs(root)
    return removed


class DiskCache:
    """Persistent artifact storage for one graph.

    Parameters
    ----------
    graph:
        The graph the artifacts belong to; its content fingerprint
        namespaces every entry.
    root:
        Cache root directory (default :func:`default_cache_root`).

    Examples
    --------
    >>> import tempfile
    >>> from repro.graph import grid2d
    >>> cache = DiskCache(grid2d(4, 4, seed=0), root=tempfile.mkdtemp())
    >>> cache.store("tree", ("mewst",), [0, 1, 2])
    True
    >>> found, value = cache.load("tree", ("mewst",))
    >>> found, value
    (True, [0, 1, 2])
    """

    #: Entries untouched for this long are garbage-collected at
    #: construction.  Address digests fold in source/library versions,
    #: so every code edit or upgrade orphans the previous entries —
    #: without an age bound the cache would only ever grow.
    max_age_days = 30.0

    def __init__(self, graph, root=None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.fingerprint = graph_fingerprint(graph)
        self._dir = (
            self.root
            / f"v{CACHE_SCHEMA_VERSION}"
            / self.fingerprint[:2]
            / self.fingerprint
        )
        self.hits: Counter = Counter()
        self.misses: Counter = Counter()
        self.stores: Counter = Counter()
        self.skips: Counter = Counter()       # unpicklable values
        self.evictions: Counter = Counter()   # corrupt entries removed
        self.errors: Counter = Counter()      # failed writes (see get())
        self._collect_garbage()

    def _collect_garbage(self) -> None:
        """Drop this graph's entries older than :attr:`max_age_days`.

        Orphans (entries addressed by a source/library state that no
        longer exists) are indistinguishable from live entries by name,
        so age is the criterion: anything a month stale is deleted, and
        a live artifact that happens to be evicted simply rebuilds —
        and re-stores with a fresh timestamp — on the next cold run.
        """
        if not self._dir.is_dir():
            return
        import time

        cutoff = time.time() - self.max_age_days * 86400.0
        for entry in self._dir.glob("*.pkl"):
            try:
                if entry.stat().st_mtime < cutoff:
                    entry.unlink()
            except OSError:  # pragma: no cover - racing eviction
                pass

    # ------------------------------------------------------------------
    def _path(self, kind: str, key: tuple) -> Path:
        return self._dir / f"{kind}-{_key_digest(kind, key)}.pkl"

    def load(self, kind: str, key: tuple):
        """Return ``(found, value)`` for an artifact address.

        A corrupt or truncated entry counts as a miss; the bad file is
        deleted so it is rebuilt (and rewritten) by the caller.
        """
        if kind in NONPERSISTED_KINDS:
            self.misses[kind] += 1
            return False, None
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (FileNotFoundError, NotADirectoryError):
            self.misses[kind] += 1
            return False, None
        except Exception:
            # Truncated write, foreign bytes, unpicklable content from
            # an incompatible library version: evict and rebuild.
            self.evictions[kind] += 1
            self.misses[kind] += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing eviction
                pass
            return False, None
        self.hits[kind] += 1
        return True, value

    def store(self, kind: str, key: tuple, value) -> bool:
        """Persist an artifact atomically; returns False when skipped.

        Values whose pickle fails (live SuperLU handles, open files)
        are skipped — persisting a lossy approximation would break the
        warm-equals-cold bit-exactness contract — as are
        :data:`NONPERSISTED_KINDS`, whose pickles would duplicate bulk
        data the graph fingerprint already determines.
        """
        if kind in NONPERSISTED_KINDS:
            self.skips[kind] += 1
            return False
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.skips[kind] += 1
            return False
        path = self._path(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            raise CacheError(
                f"cannot write artifact cache entry {path}: {exc}"
            ) from exc
        self.stores[kind] += 1
        return True

    def store_best_effort(self, kind: str, key: tuple, value) -> bool:
        """:meth:`store`, degrading write failures to a counted error.

        The write-through path of
        :class:`~repro.core.base.ArtifactStore` uses this: an
        unwritable or full cache root must fall back to memory-only
        behavior (``errors`` counter visible in :meth:`stats`), never
        abort a run whose expensive build already succeeded.
        """
        try:
            return self.store(kind, key, value)
        except CacheError:
            self.errors[kind] += 1
            return False

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Per-kind disk counters plus the cache location."""
        return {
            "root": str(self.root),
            "graph": self.fingerprint[:16],
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "stores": dict(self.stores),
            "skips": dict(self.skips),
            "evictions": dict(self.evictions),
            "errors": dict(self.errors),
        }

    def clear(self) -> int:
        """Delete every entry of this graph's namespace; return count."""
        removed = 0
        if self._dir.is_dir():
            for entry in self._dir.glob("*.pkl"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing eviction
                    pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiskCache(root={str(self.root)!r}, "
            f"graph={self.fingerprint[:12]})"
        )
