"""Effective-resistance sampling sparsifier (Spielman-Srivastava [16]).

The paper's introduction positions trace reduction against the classic
theory baseline: sample ``q`` edges with replacement with probabilities
proportional to ``w_e * R_eff(e)`` (the leverage scores) and reweight by
the inverse sampling probability.  Exact effective resistances need one
solve per edge; Spielman-Srivastava make it near-linear with a
Johnson-Lindenstrauss sketch of ``W^{1/2} B L^+``:

    R_eff(u, v) ~= || Z e_uv ||^2,   Z = Q W^{1/2} B L^{-1},

with ``Q`` a ``k x m`` random projection, ``k = O(log n / eps^2)`` —
each of the ``k`` rows costs one Laplacian solve.

Provided as a third baseline: theoretically grounded, but — as the
paper argues — its sparsifiers keep a *multiset* of reweighted edges
and do not guarantee a spanning backbone, so for preconditioning we
union the sample with a spanning forest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import BaseSparsifierConfig, shared_artifact
from repro.core.sparsifier import SparsifierResult
from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.laplacian import (
    incidence_matrix,
    regularization_shift,
    regularized_laplacian,
)
from repro.tree.spanning import mewst
from repro.utils.rng import as_rng
from repro.utils.timers import Timer

__all__ = [
    "ErSamplingConfig",
    "approximate_effective_resistances",
    "er_sample_sparsify",
]


@dataclass(kw_only=True)
class ErSamplingConfig(BaseSparsifierConfig):
    """Knobs of the effective-resistance sampling baseline."""

    sketch_size: int | None = None   # JL rows k (None = ceil(8 log n))
    include_tree: bool = True        # union the sample with a MEWST
    reg_rel: float = 1e-6

    def validate(self) -> None:
        super().validate()
        if self.sketch_size is not None and self.sketch_size < 1:
            raise GraphError("sketch_size must be >= 1 or None")


def approximate_effective_resistances(
    graph: Graph, sketch_size=None, reg_rel=1e-6, seed=0, factor=None,
    backend=None, kernels=None,
) -> np.ndarray:
    """JL-sketched effective resistance of every edge.

    Parameters
    ----------
    graph:
        Connected weighted graph (forests work per component).
    sketch_size:
        Number of random projection rows ``k`` (default
        ``ceil(8 log n)``); each row costs one Laplacian solve.
    factor:
        Optional precomputed Cholesky factor of the regularized
        Laplacian (sessions pass it to skip the refactorization).
    backend:
        :class:`~repro.backends.LinalgBackend` executing the
        factorization and sketch solves (default ``"scipy"``).
    kernels:
        :class:`~repro.kernels.KernelSet` (or tier name) computing the
        probe right-hand sides; bit-identical across tiers.

    Returns
    -------
    numpy.ndarray
        Approximate ``R_eff`` per edge, aligned with the edge arrays.
    """
    if backend is None:
        from repro.backends import get_backend

        backend = get_backend()
    rng = as_rng(seed)
    n = graph.n
    if sketch_size is None:
        sketch_size = int(np.ceil(8 * np.log(max(n, 2))))
    if factor is None:
        shift = regularization_shift(graph, reg_rel)
        laplacian = regularized_laplacian(graph, shift)
        factor = backend.factorize(laplacian)
    incidence = incidence_matrix(graph, weighted=True)  # m x n, W^(1/2) B
    # Sketch rows: y_i = L^{-1} (B^T W^{1/2} q_i), q_i ~ Rademacher/sqrt(k).
    sketch = backend.sketch_matvecs(
        factor, incidence, sketch_size, rng, kernels=kernels
    )
    diffs = sketch[:, graph.u] - sketch[:, graph.v]
    return np.sum(diffs * diffs, axis=0)


def er_sample_sparsify(graph: Graph, config=None, *, artifacts=None,
                       **overrides) -> SparsifierResult:
    """Spielman-Srivastava sampling baseline.

    Samples ``edge_fraction * |V|`` off-tree edges (without
    replacement, probability proportional to the leverage score
    ``w_e R_eff(e)``) on top of a MEWST backbone, mirroring the edge
    budget convention of the other sparsifiers in this package so the
    results are directly comparable.  Prefer :func:`repro.sparsify`
    (``method="er_sampling"``) for new code; keyword arguments are the
    :class:`ErSamplingConfig` fields.

    Notes
    -----
    The classic construction samples *with* replacement and reweights;
    for preconditioning comparisons at a fixed edge budget, the
    without-replacement topology variant is standard and keeps the
    sparsifier a plain subgraph (weights unchanged).
    """
    if isinstance(config, (int, float)) and not isinstance(config, bool):
        # Pre-registry signature: er_sample_sparsify(graph, edge_fraction).
        overrides["edge_fraction"] = float(config)
        config = None
    if config is None:
        config = ErSamplingConfig(**overrides)
    elif not isinstance(config, ErSamplingConfig):
        raise GraphError(
            f"er_sample_sparsify expects an ErSamplingConfig, "
            f"got {type(config).__name__}"
        )
    elif overrides:
        raise GraphError("pass either a config object or overrides, not both")
    config.validate()

    timer = Timer()
    with timer:
        result = _run(graph, config, artifacts)
    result.setup_seconds = timer.elapsed
    return result


def _run(graph: Graph, config: ErSamplingConfig,
         artifacts=None) -> SparsifierResult:
    rng = as_rng(config.seed)
    backend = config.resolve_backend()
    kernels = config.resolve_kernels()
    if config.include_tree:
        tree_ids = shared_artifact(
            artifacts, "tree", ("mewst",), lambda: mewst(graph)
        )
    else:
        tree_ids = np.empty(0, dtype=np.int64)

    def _resistances():
        # The expensive part: sketch_size Laplacian solves.  Capturing
        # the generator state *after* the sketch makes a warm run
        # consume the stream exactly like a cold one, so the subsequent
        # sample is bit-identical.
        shift = shared_artifact(
            artifacts, "shift", (config.reg_rel,),
            lambda: regularization_shift(graph, config.reg_rel),
        )
        factor = shared_artifact(
            artifacts, "factor_g", (config.reg_rel, config.backend),
            lambda: backend.factorize(regularized_laplacian(graph, shift)),
        )
        values = approximate_effective_resistances(
            graph, sketch_size=config.sketch_size, reg_rel=config.reg_rel,
            seed=rng, factor=factor, backend=backend, kernels=kernels,
        )
        return values, rng.bit_generator.state

    resistances, rng_state = shared_artifact(
        artifacts, "er_resistances",
        (config.sketch_size, config.reg_rel, config.seed, config.backend),
        _resistances,
    )
    rng.bit_generator.state = rng_state
    leverage = graph.w * resistances
    edge_mask = np.zeros(graph.edge_count, dtype=bool)
    edge_mask[tree_ids] = True
    candidates = np.flatnonzero(~edge_mask)
    budget = int(round(config.edge_fraction * graph.n))
    budget = min(budget, len(candidates))
    recovered = np.empty(0, dtype=np.int64)
    if budget > 0 and len(candidates):
        probabilities = leverage[candidates]
        total = probabilities.sum()
        if total <= 0:
            probabilities = np.full(len(candidates), 1.0 / len(candidates))
        else:
            probabilities = probabilities / total
        recovered = rng.choice(
            candidates, size=budget, replace=False, p=probabilities
        )
        edge_mask[recovered] = True
    return SparsifierResult(
        graph=graph,
        edge_mask=edge_mask,
        tree_edge_ids=tree_ids,
        recovered_edge_ids=np.sort(recovered),
        config=config,
        rounds_log=[{"round": 1, "phase": "er_sampling",
                     "added": int(len(recovered))}],
    )
