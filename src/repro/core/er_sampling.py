"""Effective-resistance sampling sparsifier (Spielman-Srivastava [16]).

The paper's introduction positions trace reduction against the classic
theory baseline: sample ``q`` edges with replacement with probabilities
proportional to ``w_e * R_eff(e)`` (the leverage scores) and reweight by
the inverse sampling probability.  Exact effective resistances need one
solve per edge; Spielman-Srivastava make it near-linear with a
Johnson-Lindenstrauss sketch of ``W^{1/2} B L^+``:

    R_eff(u, v) ~= || Z e_uv ||^2,   Z = Q W^{1/2} B L^{-1},

with ``Q`` a ``k x m`` random projection, ``k = O(log n / eps^2)`` —
each of the ``k`` rows costs one Laplacian solve.

Provided as a third baseline: theoretically grounded, but — as the
paper argues — its sparsifiers keep a *multiset* of reweighted edges
and do not guarantee a spanning backbone, so for preconditioning we
union the sample with a spanning forest.
"""

from __future__ import annotations

import numpy as np

from repro.core.sparsifier import SparsifierResult
from repro.graph.graph import Graph
from repro.graph.laplacian import (
    incidence_matrix,
    regularization_shift,
    regularized_laplacian,
)
from repro.linalg.cholesky import cholesky
from repro.tree.spanning import mewst
from repro.utils.rng import as_rng
from repro.utils.timers import Timer

__all__ = ["approximate_effective_resistances", "er_sample_sparsify"]


def approximate_effective_resistances(
    graph: Graph, sketch_size=None, reg_rel=1e-6, seed=0
) -> np.ndarray:
    """JL-sketched effective resistance of every edge.

    Parameters
    ----------
    graph:
        Connected weighted graph (forests work per component).
    sketch_size:
        Number of random projection rows ``k`` (default
        ``ceil(8 log n)``); each row costs one Laplacian solve.

    Returns
    -------
    numpy.ndarray
        Approximate ``R_eff`` per edge, aligned with the edge arrays.
    """
    rng = as_rng(seed)
    n = graph.n
    if sketch_size is None:
        sketch_size = int(np.ceil(8 * np.log(max(n, 2))))
    shift = regularization_shift(graph, reg_rel)
    laplacian = regularized_laplacian(graph, shift)
    factor = cholesky(laplacian)
    incidence = incidence_matrix(graph, weighted=True)  # m x n, W^(1/2) B
    # Sketch rows: y_i = L^{-1} (B^T W^{1/2} q_i), q_i ~ Rademacher/sqrt(k).
    sketch = np.empty((sketch_size, n))
    scale = 1.0 / np.sqrt(sketch_size)
    for i in range(sketch_size):
        q = rng.choice((-scale, scale), size=graph.edge_count)
        sketch[i] = factor.solve(incidence.T @ q)
    diffs = sketch[:, graph.u] - sketch[:, graph.v]
    return np.sum(diffs * diffs, axis=0)


def er_sample_sparsify(
    graph: Graph,
    edge_fraction: float = 0.10,
    sketch_size=None,
    include_tree: bool = True,
    reg_rel: float = 1e-6,
    seed: int = 0,
) -> SparsifierResult:
    """Spielman-Srivastava sampling baseline.

    Samples ``edge_fraction * |V|`` off-tree edges (without
    replacement, probability proportional to the leverage score
    ``w_e R_eff(e)``) on top of a MEWST backbone, mirroring the edge
    budget convention of the other sparsifiers in this package so the
    results are directly comparable.

    Notes
    -----
    The classic construction samples *with* replacement and reweights;
    for preconditioning comparisons at a fixed edge budget, the
    without-replacement topology variant is standard and keeps the
    sparsifier a plain subgraph (weights unchanged).
    """
    rng = as_rng(seed)
    timer = Timer()
    with timer:
        tree_ids = mewst(graph) if include_tree else np.empty(0, dtype=np.int64)
        resistances = approximate_effective_resistances(
            graph, sketch_size=sketch_size, reg_rel=reg_rel, seed=rng
        )
        leverage = graph.w * resistances
        edge_mask = np.zeros(graph.edge_count, dtype=bool)
        edge_mask[tree_ids] = True
        candidates = np.flatnonzero(~edge_mask)
        budget = int(round(edge_fraction * graph.n))
        budget = min(budget, len(candidates))
        recovered = np.empty(0, dtype=np.int64)
        if budget > 0 and len(candidates):
            probabilities = leverage[candidates]
            total = probabilities.sum()
            if total <= 0:
                probabilities = np.full(len(candidates), 1.0 / len(candidates))
            else:
                probabilities = probabilities / total
            recovered = rng.choice(
                candidates, size=budget, replace=False, p=probabilities
            )
            edge_mask[recovered] = True
    result = SparsifierResult(
        graph=graph,
        edge_mask=edge_mask,
        tree_edge_ids=tree_ids,
        recovered_edge_ids=np.sort(recovered),
        config={"method": "er_sampling", "edge_fraction": edge_fraction},
        rounds_log=[{"round": 1, "phase": "er_sampling",
                     "added": int(len(recovered))}],
    )
    result.setup_seconds = timer.elapsed
    return result
