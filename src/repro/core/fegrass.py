"""feGRASS baseline — effective-resistance-based sparsification [13].

feGRASS builds the maximum effective weight spanning tree, scores every
off-tree edge by its *stretch* ``w_pq R_T(p, q)`` (the tree effective
resistance is computable in one offline-LCA pass, Sec. 2 of the paper),
and recovers the top edges in a single pass with similarity exclusion.
No linear solves are needed at all, which is why feGRASS is fast but —
as the paper's Table 1 argument goes — less effective than
densification-based methods that re-rank against the growing subgraph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import BaseSparsifierConfig, shared_artifact
from repro.core.similarity import SimilarityMarker
from repro.core.sparsifier import SparsifierResult, _pick_edges
from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.tree.lca import batch_tree_resistances
from repro.tree.rooted import RootedForest
from repro.tree.spanning import mewst
from repro.utils.timers import Timer

__all__ = ["FegrassConfig", "fegrass_sparsify"]


@dataclass(kw_only=True)
class FegrassConfig(BaseSparsifierConfig):
    """Knobs of the feGRASS baseline."""

    gamma: int = 2
    use_similarity: bool = True


def fegrass_sparsify(graph: Graph, config=None, *, artifacts=None,
                     **overrides):
    """Run the feGRASS baseline; returns a :class:`SparsifierResult`.

    Prefer :func:`repro.sparsify` (``method="fegrass"``) for new code;
    *artifacts* is the optional session store documented there.
    """
    if config is None:
        config = FegrassConfig(**overrides)
    elif overrides:
        raise GraphError("pass either a config object or overrides, not both")
    config.validate()

    timer = Timer()
    with timer:
        result = _run(graph, config, artifacts)
    result.setup_seconds = timer.elapsed
    return result


def _run(graph: Graph, config: FegrassConfig,
         artifacts=None) -> SparsifierResult:
    tree_ids = shared_artifact(
        artifacts, "tree", ("mewst",), lambda: mewst(graph)
    )
    forest = shared_artifact(
        artifacts, "forest", ("mewst",),
        lambda: RootedForest(graph, tree_ids),
    )
    edge_mask = forest.tree_edge_mask()
    candidates = np.flatnonzero(~edge_mask)
    budget = int(round(config.edge_fraction * graph.n))
    budget = min(budget, len(candidates))
    recovered: list = []
    if budget > 0 and len(candidates):
        def _stretch():
            # Off-tree stretches depend only on the MEWST, so a session
            # sweeping fractions reuses one offline-LCA pass.
            resistances, _ = batch_tree_resistances(
                forest, graph.u[candidates], graph.v[candidates]
            )
            return resistances

        resistances = shared_artifact(
            artifacts, "tree_stretch", ("mewst",), _stretch
        )
        crit = graph.w[candidates] * resistances
        full_crit = np.zeros(graph.edge_count)
        full_crit[candidates] = crit
        order = candidates[np.argsort(-crit, kind="stable")]
        marker = SimilarityMarker(graph, gamma=config.gamma)
        marker.attach_subgraph(forest.tree)
        recovered = _pick_edges(
            order, full_crit, marker, budget, config.use_similarity
        )
        edge_mask[recovered] = True

    return SparsifierResult(
        graph=graph,
        edge_mask=edge_mask,
        tree_edge_ids=tree_ids,
        recovered_edge_ids=np.asarray(recovered, dtype=np.int64),
        config=config,
        rounds_log=[{"round": 1, "phase": "fegrass", "added": len(recovered)}],
    )
