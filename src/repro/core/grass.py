"""GRASS baseline — spectral-perturbation-based sparsification [8].

GRASS ranks off-subgraph edges with the Laplacian quadratic form of the
dominant generalized eigenvector, estimated by t-step power iterations
(Eqs. 2-3 of the paper)::

    h_t = (L_S^{-1} L_G)^t h_0,        criticality = w_pq (h_t^T e_pq)^2

and embeds the ranking in the same iterative densification loop as
Algorithm 2.  Following GRASS's similarity-aware variant [7], the same
edge-exclusion marking is applied (toggle with ``use_similarity``).

This reimplementation follows the published description; the original
is a C++ binary [6] unavailable offline (DESIGN.md, substitution 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import BaseSparsifierConfig, shared_artifact
from repro.core.similarity import SimilarityMarker
from repro.core.sparsifier import SparsifierResult, _pick_edges
from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.laplacian import regularization_shift, regularized_laplacian
from repro.tree.rooted import RootedForest
from repro.tree.spanning import bfs_spanning_forest, maximum_spanning_forest, mewst
from repro.utils.rng import as_rng
from repro.utils.timers import Timer

__all__ = ["GrassConfig", "grass_sparsify", "perturbation_criticality"]

_TREE_METHODS = {
    "mewst": mewst,
    "max_weight": maximum_spanning_forest,
    "bfs": bfs_spanning_forest,
}


@dataclass(kw_only=True)
class GrassConfig(BaseSparsifierConfig):
    """Knobs of the GRASS baseline."""

    rounds: int = 5
    power_steps: int = 2          # t in Eq. (2)
    probe_vectors: int = 3        # random h_0 vectors averaged
    gamma: int = 2
    tree_method: str = "mewst"
    use_similarity: bool = True
    reg_rel: float = 1e-6
    cholesky_backend: str = "auto"

    def validate(self) -> None:
        super().validate()
        if self.rounds < 1:
            raise GraphError("rounds must be >= 1")
        if self.power_steps < 1:
            raise GraphError("power_steps must be >= 1")
        if self.probe_vectors < 1:
            raise GraphError("probe_vectors must be >= 1")
        if self.tree_method not in _TREE_METHODS:
            raise GraphError(f"unknown tree_method {self.tree_method!r}")
        from repro.backends import check_factorization_mode

        check_factorization_mode(self.backend, self.cholesky_backend)


def perturbation_criticality(
    graph: Graph,
    laplacian_g,
    subgraph_factor,
    edge_ids,
    power_steps=2,
    probe_vectors=3,
    rng=None,
):
    """Eqs. (2)-(3): power-iteration spectral criticality per edge.

    For each probe vector ``h_0`` (random, mean-removed), applies
    ``h <- L_S^{-1} (L_G h)`` ``power_steps`` times, normalizes, and
    accumulates ``w_pq (h_p - h_q)^2`` for every candidate edge.
    """
    rng = as_rng(rng)
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    heads = graph.u[edge_ids]
    tails = graph.v[edge_ids]
    weights = graph.w[edge_ids]
    total = np.zeros(len(edge_ids))
    n = graph.n
    for _ in range(probe_vectors):
        h = rng.standard_normal(n)
        h -= h.mean()
        for _ in range(power_steps):
            h = subgraph_factor.solve(laplacian_g @ h)
        norm = np.linalg.norm(h)
        if norm == 0:
            continue
        h /= norm
        diff = h[heads] - h[tails]
        total += weights * diff * diff
    return total / probe_vectors


def grass_sparsify(graph: Graph, config=None, *, artifacts=None, **overrides):
    """Run the GRASS baseline; returns a :class:`SparsifierResult`.

    Prefer :func:`repro.sparsify` (``method="grass"``) for new code;
    *artifacts* is the optional session store documented there.
    """
    if config is None:
        config = GrassConfig(**overrides)
    elif overrides:
        raise GraphError("pass either a config object or overrides, not both")
    config.validate()

    timer = Timer()
    with timer:
        result = _run(graph, config, artifacts)
    result.setup_seconds = timer.elapsed
    return result


def _run(graph: Graph, config: GrassConfig,
         artifacts=None) -> SparsifierResult:
    n = graph.n
    m = graph.edge_count
    rng = as_rng(config.seed)
    backend = config.resolve_backend()
    shift = shared_artifact(
        artifacts, "shift", (config.reg_rel,),
        lambda: regularization_shift(graph, config.reg_rel),
    )
    laplacian_g = shared_artifact(
        artifacts, "laplacian_g", (config.reg_rel, "csr"),
        lambda: regularized_laplacian(graph, shift, fmt="csr"),
    )

    tree_ids = shared_artifact(
        artifacts, "tree", (config.tree_method,),
        lambda: _TREE_METHODS[config.tree_method](graph),
    )
    forest = shared_artifact(
        artifacts, "forest", (config.tree_method,),
        lambda: RootedForest(graph, tree_ids),
    )
    edge_mask = forest.tree_edge_mask()

    budget = int(round(config.edge_fraction * n))
    budget = min(budget, m - len(tree_ids))
    per_round = max(1, int(np.ceil(budget / config.rounds))) if budget else 0
    marker = SimilarityMarker(graph, gamma=config.gamma)
    recovered: list = []
    rounds_log: list = []

    for round_index in range(1, config.rounds + 1):
        if budget == 0 or len(recovered) >= budget:
            break
        round_timer = Timer()
        with round_timer:
            subgraph = graph.subgraph(edge_mask)
            laplacian_s = regularized_laplacian(subgraph, shift)
            factor = backend.factorize(
                laplacian_s, mode=config.cholesky_backend
            )
            candidates = np.flatnonzero(~edge_mask & ~marker.marked)
            if len(candidates) == 0:
                break
            crit = perturbation_criticality(
                graph,
                laplacian_g,
                factor,
                candidates,
                power_steps=config.power_steps,
                probe_vectors=config.probe_vectors,
                rng=rng,
            )
            full_crit = np.zeros(m)
            full_crit[candidates] = crit
            order = candidates[np.argsort(-crit, kind="stable")]
            marker.attach_subgraph(subgraph)
            want = min(per_round, budget - len(recovered))
            chosen = _pick_edges(
                order, full_crit, marker, want, config.use_similarity
            )
            edge_mask[chosen] = True
            recovered.extend(chosen)
        rounds_log.append(
            {
                "round": round_index,
                "phase": "grass",
                "candidates": len(candidates),
                "added": len(chosen),
                "seconds": round_timer.elapsed,
            }
        )

    return SparsifierResult(
        graph=graph,
        edge_mask=edge_mask,
        tree_edge_ids=tree_ids,
        recovered_edge_ids=np.asarray(recovered, dtype=np.int64),
        config=config,
        rounds_log=rounds_log,
    )
