"""Sparsifier quality metrics (the columns of the paper's Table 1).

* ``kappa`` — relative condition number of ``(L_G, L_P)``;
* PCG iteration count / time with the factored sparsifier Laplacian as
  preconditioner and a random right-hand side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.graph.laplacian import regularization_shift, regularized_laplacian
from repro.linalg.cholesky import cholesky
from repro.linalg.eigen import relative_condition_number
from repro.linalg.pcg import pcg
from repro.utils.rng import as_rng
from repro.utils.timers import Timer

__all__ = ["QualityReport", "evaluate_sparsifier", "pcg_performance"]


@dataclass
class QualityReport:
    """Quality of one sparsifier against its parent graph."""

    nodes: int
    graph_edges: int
    sparsifier_edges: int
    kappa: float
    factor_nnz: int
    pcg_iterations: int
    pcg_seconds: float
    pcg_converged: bool

    @property
    def density(self) -> float:
        """Sparsifier edges per node."""
        return self.sparsifier_edges / max(self.nodes, 1)


def evaluate_sparsifier(
    graph: Graph,
    sparsifier: Graph,
    reg_rel: float = 1e-6,
    rtol: float = 1e-3,
    rhs=None,
    seed: int = 0,
    kappa_tol: float = 1e-8,
) -> QualityReport:
    """Measure kappa and PCG performance of a sparsifier.

    Parameters
    ----------
    graph, sparsifier:
        Original graph ``G`` and its sparsifier ``P`` (same node set).
    reg_rel:
        Relative regularization shift (footnote 1); the *same* shift
        vector, derived from ``G``, is applied to both Laplacians.
    rtol:
        PCG relative-residual tolerance (paper: 1e-3 for Table 1).
    rhs:
        Right-hand side; random by default, as in the paper.
    """
    shift = regularization_shift(graph, reg_rel)
    laplacian_g = regularized_laplacian(graph, shift, fmt="csr")
    laplacian_p = regularized_laplacian(sparsifier, shift)
    factor = cholesky(laplacian_p)
    kappa = relative_condition_number(
        laplacian_g, factor, laplacian_p, tol=kappa_tol, seed=seed
    )
    iterations, seconds, result = pcg_performance(
        laplacian_g, factor, rtol=rtol, rhs=rhs, seed=seed
    )
    return QualityReport(
        nodes=graph.n,
        graph_edges=graph.edge_count,
        sparsifier_edges=sparsifier.edge_count,
        kappa=float(kappa),
        factor_nnz=factor.nnz,
        pcg_iterations=iterations,
        pcg_seconds=seconds,
        pcg_converged=result.converged,
    )


def pcg_performance(laplacian_g, factor, rtol=1e-3, rhs=None, seed=0):
    """PCG iterations & wall time for ``L_G x = b`` preconditioned by *factor*.

    Returns ``(iterations, seconds, PCGResult)``.
    """
    n = laplacian_g.shape[0]
    if rhs is None:
        rng = as_rng(seed)
        rhs = rng.standard_normal(n)
    timer = Timer()
    with timer:
        result = pcg(laplacian_g, rhs, M_solve=factor.solve, rtol=rtol)
    return result.iterations, timer.elapsed, result
