"""Chunked worker-pool execution of edge-ranking batches.

The ranking engine's ``score_batch`` is chunk-stable (scores are
independent of how the candidate list is split), so candidate scoring
is embarrassingly parallel.  This module shards a candidate array into
fixed-size chunks and maps them over a ``concurrent.futures`` process
pool, falling back to a serial loop whenever a pool cannot help or
cannot be created.

Design points:

* **Shared read-only state.**  Pools use the ``fork`` start method and
  publish the ranker through a module-level slot, so workers inherit
  the CSR adjacencies, SPAI arrays and warmed caches copy-on-write —
  nothing of size ``O(n)`` is pickled per task.  The driver calls
  ``ranker.prepare(...)`` *before* forking for exactly this reason.
* **Determinism.**  Chunk boundaries depend only on ``chunk_size``
  (never on the worker count), chunks are concatenated in submission
  order, and each candidate's score is computed independently, so
  ``workers=k`` is bit-identical to ``workers=1`` for every ``k``.
* **Serial fallback.**  ``workers <= 1``, a single chunk, platforms
  without ``fork`` (e.g. Windows), calls from a multi-threaded process
  (forking one can deadlock the children), or a pool that fails to
  start or loses a worker all degrade to an in-process loop with
  identical results, emitting a ``RuntimeWarning`` when parallelism
  was requested but lost.
* **No orphaned children.**  An interrupt delivered to the parent
  while a pool is running (``KeyboardInterrupt`` from SIGINT, or a
  ``SystemExit`` raised by a SIGTERM handler such as the service
  daemon's) terminates and reaps every forked worker before the
  exception propagates — ``kill <driver-pid>`` never leaves detached
  children burning CPU on half-finished chunks.
"""

from __future__ import annotations

import os
import threading
import warnings

import numpy as np

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "resolve_workers",
    "chunk_spans",
    "score_edges",
    "parallel_map",
    "terminate_pool",
    "worker_context",
]

DEFAULT_CHUNK_SIZE = 1024
"""Chunk size used when the caller passes ``chunk_size=0`` (auto).

Fixed (not derived from the worker count) so that chunking — and with
it the work sharding — is identical for every ``workers`` setting.
"""

# Ranker and candidate array handed to forked workers by inheritance;
# guarded by _POOL_LOCK so concurrent score_edges callers (threads)
# serialize on pool usage instead of clobbering each other's slot.
# See score_edges().
_ACTIVE_RANKER = None
_ACTIVE_EDGE_IDS = None
_ACTIVE_TASK = None
_POOL_LOCK = threading.Lock()


def resolve_workers(workers: int) -> int:
    """Normalize a ``workers`` knob to an effective worker count.

    Parameters
    ----------
    workers : int
        ``1`` (serial), ``>1`` (that many processes) or ``0`` (one per
        available CPU).

    Returns
    -------
    int
        The effective worker count, at least 1.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        try:
            # Respects CPU affinity / container cgroup masks, unlike
            # os.cpu_count() (which reports the whole host).
            return len(os.sched_getaffinity(0)) or 1
        except AttributeError:  # platforms without sched_getaffinity
            return os.cpu_count() or 1
    return workers


def chunk_spans(total: int, chunk_size: int) -> list:
    """Split ``range(total)`` into ``(start, stop)`` spans.

    Parameters
    ----------
    total : int
        Number of items to cover.
    chunk_size : int
        Span length (the last span may be shorter); ``0`` selects
        :data:`DEFAULT_CHUNK_SIZE`.

    Returns
    -------
    list of tuple
        Consecutive half-open spans covering ``[0, total)``.
    """
    if chunk_size < 0:
        raise ValueError(f"chunk_size must be >= 0, got {chunk_size}")
    if chunk_size == 0:
        chunk_size = DEFAULT_CHUNK_SIZE
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]


def _score_span(span) -> np.ndarray:
    """Worker entry point: score one chunk of the active ranker."""
    start, stop = span
    return _ACTIVE_RANKER.score_batch(_ACTIVE_EDGE_IDS[start:stop])


#: Modules the forkserver preloads so every service worker process
#: forks with numpy/scipy/repro already imported (one import cost per
#: daemon, not per worker or per respawn after a crash).
FORKSERVER_PRELOAD = ("repro.service.executors", "repro.api")


def worker_context(prefer: tuple = ("forkserver", "spawn")):
    """A multiprocessing context safe to use from a *threaded* process.

    The fork pools of :func:`score_edges` / :func:`parallel_map` refuse
    to run under threads (forked children can inherit locks mid-flight
    and deadlock), which rules ``fork`` out for the service scheduler —
    its workers, HTTP handlers and signal plumbing are all threads.
    ``forkserver`` sidesteps the hazard: children fork from a dedicated
    single-threaded server process (started before it ever grows a
    thread), and :data:`FORKSERVER_PRELOAD` keeps their startup cheap.
    ``spawn`` is the portable fallback where no forkserver exists.

    Parameters
    ----------
    prefer : tuple of str
        Start methods to try, in order; the first one this platform
        supports wins (the platform default as a last resort).

    Returns
    -------
    multiprocessing.context.BaseContext
        The chosen context.
    """
    import multiprocessing

    available = multiprocessing.get_all_start_methods()
    for name in prefer:
        if name not in available:
            continue
        context = multiprocessing.get_context(name)
        if name == "forkserver":
            try:
                context.set_forkserver_preload(list(FORKSERVER_PRELOAD))
            except Exception:  # pragma: no cover - server already up
                pass
        return context
    return multiprocessing.get_context()  # pragma: no cover - exotic


def _fork_context():
    """The ``fork`` multiprocessing context, or None when unsupported.

    Restricted to Linux: forking after BLAS/Accelerate threads have run
    is documented as crash-prone on macOS, and Windows has no ``fork``
    at all — both fall back to the (bit-identical) serial path.
    """
    import multiprocessing
    import sys

    if not sys.platform.startswith("linux"):
        return None
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def score_edges(ranker, edge_ids, workers: int = 1, chunk_size: int = 0):
    """Score candidate edges with *ranker*, optionally across processes.

    Parameters
    ----------
    ranker : EdgeRanker
        Any :class:`repro.core.ranking.EdgeRanker`; its caches are
        warmed in the calling process first so forked workers share
        them read-only.
    edge_ids : array_like of int
        Candidate edge ids.
    workers : int, optional
        ``1`` serial (default), ``>1`` that many worker processes,
        ``0`` one per CPU.
    chunk_size : int, optional
        Candidates per task; ``0`` (default) selects
        :data:`DEFAULT_CHUNK_SIZE`.  Results do not depend on this
        value.

    Returns
    -------
    numpy.ndarray
        One score per candidate, aligned with *edge_ids* — bit-identical
        for every ``workers`` / ``chunk_size`` combination.
    """
    global _ACTIVE_RANKER, _ACTIVE_EDGE_IDS
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    if len(edge_ids) == 0:
        return np.empty(0)
    spans = chunk_spans(len(edge_ids), chunk_size)
    workers = resolve_workers(workers)

    def _serial() -> np.ndarray:
        # Chunk stability makes one whole-batch call bit-identical to
        # the chunked pool result, and it skips any per-call setup the
        # ranker repeats per score_batch invocation.  score_batch warms
        # its own caches, so no separate prepare() pass is needed here.
        return ranker.score_batch(edge_ids)

    if workers <= 1 or len(spans) <= 1:
        return _serial()
    context = _fork_context()
    if context is None:
        warnings.warn(
            "fork-based worker pool unavailable on this platform; "
            "scoring serially (results are identical)",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial()
    if threading.active_count() > 1:
        # Forking a multi-threaded process can deadlock the children on
        # locks held by the other threads at fork time.
        warnings.warn(
            "refusing to fork from a multi-threaded process; "
            "scoring serially (results are identical)",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial()
    # Warm caches in the parent so forked children inherit them.
    ranker.prepare(edge_ids)

    from concurrent.futures.process import BrokenProcessPool

    with _POOL_LOCK:
        # Save/restore, mirroring parallel_map: a pool worker whose
        # task scores edges with its own pool must hand the slots back.
        previous = (_ACTIVE_RANKER, _ACTIVE_EDGE_IDS)
        _ACTIVE_RANKER = ranker
        _ACTIVE_EDGE_IDS = edge_ids
        try:
            parts = _pool_map(
                context, min(workers, len(spans)), _score_span, spans
            )
        except (OSError, BrokenProcessPool) as exc:
            # Pool could not start (sandboxed hosts) or a worker died
            # (OOM-killed, segfaulted); identical results, just slower.
            warnings.warn(
                f"worker pool failed ({exc!r}); rescoring serially "
                "(results are identical)",
                RuntimeWarning,
                stacklevel=2,
            )
            return _serial()
        finally:
            _ACTIVE_RANKER, _ACTIVE_EDGE_IDS = previous
    return np.concatenate(parts)


def terminate_pool(pool) -> None:
    """Tear a running pool down *now*, leaving no orphaned children.

    Used on interrupt (SIGINT's ``KeyboardInterrupt``, a SIGTERM
    handler's ``SystemExit``): cancels whatever has not started,
    SIGTERMs every worker process and reaps it, so the parent can
    propagate the exception knowing nothing it forked survives it.
    """
    # Snapshot the worker handles first: shutdown(wait=False) drops the
    # executor's reference to them.
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead worker
            pass
    for process in processes:
        try:
            process.join(timeout=5.0)
        except Exception:  # pragma: no cover - already-reaped worker
            pass


def _pool_map(context, max_workers: int, fn, tasks) -> list:
    """``list(pool.map(fn, tasks))`` with interrupt-safe teardown.

    The shared execution step of :func:`score_edges` and
    :func:`parallel_map`.  ``OSError`` / ``BrokenProcessPool``
    propagate to the caller (whose serial fallback handles them);
    interrupts terminate the children first (:func:`terminate_pool`)
    and then re-raise.
    """
    from concurrent.futures import ProcessPoolExecutor

    pool = ProcessPoolExecutor(
        max_workers=max_workers, mp_context=context,
        initializer=_fresh_pool_state,
    )
    try:
        results = list(pool.map(fn, tasks))
    except (KeyboardInterrupt, SystemExit):
        terminate_pool(pool)
        raise
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return results


def _fresh_pool_state() -> None:
    """Pool-worker initializer: replace the inherited pool lock.

    A forked worker inherits ``_POOL_LOCK`` in the *locked* state (the
    parent holds it while the pool runs), so a task that itself calls
    :func:`score_edges` / :func:`parallel_map` with ``workers > 1``
    would deadlock on it.  A fresh lock restores re-entrancy from the
    worker's point of view — its nested calls simply fall back to
    their own (possibly serial) execution.
    """
    global _POOL_LOCK
    _POOL_LOCK = threading.Lock()


def _run_task(index: int):
    """Worker entry point: execute one indexed task of the active map."""
    return _ACTIVE_TASK(index)


def parallel_map(task, count: int, workers: int = 1) -> list:
    """Run ``task(i)`` for ``i in range(count)``, optionally forked.

    The shard-parallel sparsification pipeline
    (:mod:`repro.core.sharding`) maps independent per-shard runs over
    this: each task is heavy (a full sparsification), tasks share no
    mutable state, and results are consumed in index order — so the
    output is independent of the worker count, exactly like
    :func:`score_edges`.

    Parameters
    ----------
    task : callable
        ``task(index) -> picklable``.  Published to forked children
        through a module-level slot (never pickled), so closures over
        large read-only arrays are shared copy-on-write.
    count : int
        Number of task indices.
    workers : int
        ``1`` serial (default), ``>1`` that many worker processes,
        ``0`` one per CPU.  Every serial-fallback rule of
        :func:`score_edges` applies (no ``fork``, multi-threaded
        caller, pool failure) — with identical results.

    Returns
    -------
    list
        ``[task(0), ..., task(count - 1)]`` in index order.

    Notes
    -----
    Tasks may themselves call :func:`score_edges` or
    :func:`parallel_map`: pool workers start with fresh pool state
    (they are single-process from their own point of view), and the
    serial fallback runs outside the pool lock.
    """
    global _ACTIVE_TASK
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")

    def _serial() -> list:
        return [task(index) for index in range(count)]

    workers = resolve_workers(workers)
    if workers <= 1 or count <= 1:
        return _serial()
    context = _fork_context()
    if context is None:
        warnings.warn(
            "fork-based worker pool unavailable on this platform; "
            "running tasks serially (results are identical)",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial()
    if threading.active_count() > 1:
        # Forking a multi-threaded process can deadlock the children on
        # locks held by the other threads at fork time.
        warnings.warn(
            "refusing to fork from a multi-threaded process; "
            "running tasks serially (results are identical)",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial()

    from concurrent.futures.process import BrokenProcessPool

    failure = None
    with _POOL_LOCK:
        # Restore (not clear) the slot afterwards: a pool worker that
        # nests its own parallel_map must hand the slot back to the
        # task it inherited at fork, or its next outer task would find
        # the slot empty.
        previous = _ACTIVE_TASK
        _ACTIVE_TASK = task
        try:
            results = _pool_map(
                context, min(workers, count), _run_task, range(count)
            )
        except (OSError, BrokenProcessPool) as exc:
            failure = exc
        finally:
            _ACTIVE_TASK = previous
    if failure is not None:
        # Fall back *outside* the lock: the tasks are arbitrary caller
        # code and may themselves use the worker pool.
        warnings.warn(
            f"worker pool failed ({failure!r}); rerunning tasks serially "
            "(results are identical)",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial()
    return results
