"""Batched edge-ranking engine for Algorithm 2.

Every round of :func:`~repro.core.sparsifier.trace_reduction_sparsify`
spends its time ranking off-subgraph candidate edges by (approximate)
trace reduction.  This module turns that per-edge scoring into a staged
engine with a uniform **batch API**:

* :class:`EdgeRanker` — the protocol every ranker implements:
  ``prepare(edge_ids)`` warms per-round caches, ``score_batch(edge_ids)``
  returns one criticality score per candidate;
* :class:`TreePhaseRanker` — round 1, the solve-free tree-phase
  truncated trace reduction (Eqs. 13-15);
* :class:`ExactRanker` — Eq. (11) through exact solves (validation);
* :class:`ApproxRanker` — Eq. (20), the production path: SPAI-column
  gathers, BFS-ball lookups and the ``ball_pair_edge_sum`` kernel are
  fed from per-round caches so each candidate costs a handful of small
  numpy calls and no Python BFS.

The :class:`BallCache` persists across densification rounds: recovering
edges only changes BFS balls near the touched endpoints, so only those
entries are invalidated (see ``docs/architecture.md`` for the exact
contract).  Scores are bit-identical to the reference implementations in
:mod:`repro.core.trace_reduction` and independent of how candidates are
chunked, which is what makes the worker-pool execution in
:mod:`repro.core.parallel` deterministic.
"""

from __future__ import annotations

from collections import namedtuple
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.trace_reduction import exact_trace_reduction_batch
from repro.core.tree_phase import tree_truncated_trace_reduction
from repro.tree.lca import batch_tree_resistances
from repro.graph.bfs import BallFinder
from repro.graph.graph import Graph
from repro.graph.laplacian import regularized_laplacian
from repro.kernels import resolve_kernel_set
from repro.linalg.cholesky import cholesky
from repro.linalg.spai import extract_columns

__all__ = [
    "EdgeRanker",
    "BallBundle",
    "BallCache",
    "TreePhaseRanker",
    "ExactRanker",
    "ApproxRanker",
]


@runtime_checkable
class EdgeRanker(Protocol):
    """Protocol of one ranking stage of Algorithm 2.

    A ranker scores candidate edges of a fixed original graph against a
    fixed current subgraph.  Implementations must be **chunk-stable**:
    ``score_batch`` of a concatenation equals the concatenation of
    ``score_batch`` of the pieces, bit for bit.  That property is what
    lets :func:`repro.core.parallel.score_edges` shard candidates across
    worker processes without changing the result.
    """

    def prepare(self, edge_ids) -> None:
        """Warm any caches needed to score *edge_ids* (idempotent)."""

    def score_batch(self, edge_ids) -> np.ndarray:
        """Return one criticality score per candidate edge id."""


BallBundle = namedtuple("BallBundle", ["nodes", "sources", "nbrs", "eids"])
"""Cached per-node ball data.

Attributes
----------
nodes : numpy.ndarray
    Sorted nodes of the beta-ball around the key node (in the current
    subgraph).
sources, nbrs, eids : numpy.ndarray
    Flattened incident-edge triples of *nodes* in the **original**
    graph, as consumed by
    :func:`repro.core._kernels.ball_pair_edge_sum_flat`.
"""


class BallCache:
    """Per-round cache of BFS balls with touched-node invalidation.

    Algorithm 2 adds a few edges per round; a ball around ``a`` computed
    in round ``r`` is still correct in round ``r + 1`` unless some
    endpoint of a newly recovered edge lies within ``beta`` hops of
    ``a`` in the new subgraph.  The cache therefore persists across
    rounds and only drops entries inside the balls of touched endpoints
    (the exact rule — and why it is safe — is spelled out in
    ``docs/architecture.md``).

    Parameters
    ----------
    beta : int
        BFS truncation depth; all cached balls use this radius.
    max_entries : int, optional
        Upper bound on stored balls/bundles (each bundle costs roughly
        ``ball_size * avg_degree`` incidence triples).  At capacity,
        further queries are computed transiently and returned without
        being stored — slower, but memory stays bounded.  ``None``
        (default) means unbounded, which is at most one entry per
        graph node.
    kernels : KernelSet or str, optional
        Hot-path kernel tier executing the BFS expansion and bundle
        gathers; defaults to the auto-resolved tier (see
        :mod:`repro.kernels`).  Bit-identical across tiers.

    Notes
    -----
    The contract has two obligations on the caller:

    1. call :meth:`attach_subgraph` whenever the subgraph adjacency
       changes, passing ``invalidate=<touched nodes>`` (every node whose
       incident edge set changed since the previous attach);
    2. call :meth:`attach_graph` once with the original graph before
       requesting bundles.

    Entries are read-only once created; worker processes forked after
    :meth:`ensure` share them copy-on-write without synchronization.
    """

    def __init__(self, beta: int, max_entries: int | None = None,
                 kernels=None) -> None:
        if beta < 1:
            raise ValueError(f"beta must be >= 1, got {beta}")
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.beta = int(beta)
        self.max_entries = max_entries
        self.kernels = resolve_kernel_set(kernels)
        self._balls: dict = {}
        self._bundles: dict = {}
        self._finder: BallFinder | None = None
        self._sub_indptr = None
        self._sub_nbr = None
        self._g_indptr = None
        self._g_nbr = None
        self._g_eid = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        """True once a subgraph adjacency has been attached."""
        return self._finder is not None

    def __len__(self) -> int:
        return len(self._balls)

    def attach_graph(self, graph: Graph) -> None:
        """Record the original graph's CSR adjacency (bundle source)."""
        g_indptr, g_nbr, g_eid = graph.adjacency()
        self._g_indptr = g_indptr
        self._g_nbr = g_nbr
        self._g_eid = g_eid

    def attach_subgraph(self, indptr, neighbors, invalidate=None) -> None:
        """Point ball queries at a (possibly new) subgraph adjacency.

        Parameters
        ----------
        indptr, neighbors : numpy.ndarray
            CSR adjacency of the current subgraph ``S``.
        invalidate : array_like of int, optional
            Nodes whose incident edge set changed since the previous
            attach (the endpoints of inserted or deleted edges).  Omit
            only on the first attach or when the adjacency is
            unchanged; re-attaching a *changed* adjacency with cached
            entries and no touched set raises ``ValueError`` — silently
            serving stale balls would yield wrong scores.

        Raises
        ------
        ValueError
            When the adjacency differs from the previously attached one,
            entries are cached, and ``invalidate`` was not given.
        """
        old_finder = self._finder
        changed = (
            old_finder is not None
            and not (
                np.array_equal(self._sub_indptr, indptr)
                and np.array_equal(self._sub_nbr, neighbors)
            )
        )
        if changed and invalidate is None and (self._balls or self._bundles):
            raise ValueError(
                "attach_subgraph: the adjacency changed but invalidate= "
                "was not given; cached balls would silently go stale. "
                "Pass the touched nodes (endpoints of every inserted or "
                "deleted edge), or an empty array if the change truly "
                "touches no cached entry."
            )
        self._finder = BallFinder(indptr, neighbors, kernels=self.kernels)
        self._sub_indptr = indptr
        self._sub_nbr = neighbors
        if invalidate is None:
            return
        invalidate = np.asarray(invalidate, dtype=np.int64)
        stale: set = set()
        for node in invalidate:
            # A cached entry for ``a`` is stale iff a touched node is
            # within beta hops of ``a`` in the OLD or the NEW adjacency
            # (the adjacency is symmetric, so that is the union of the
            # touched node's balls in both).  Insertions only shrink
            # distances (old ball subset of new), so for the insert-only
            # round loop the union degenerates to the new ball alone;
            # deletions *grow* distances, and only the old ball reaches
            # the entries whose routes ran through the removed edges.
            stale.update(self._finder.ball_nodes(int(node), self.beta).tolist())
            if changed and old_finder is not None:
                stale.update(
                    old_finder.ball_nodes(int(node), self.beta).tolist()
                )
        for node in stale:
            self._balls.pop(node, None)
            self._bundles.pop(node, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _has_room(self, table: dict) -> bool:
        return self.max_entries is None or len(table) < self.max_entries

    def ensure(self, nodes) -> None:
        """Compute and cache balls + bundles for any missing *nodes*.

        Bundle construction is batched: one ``concat_ranges`` pass over
        the concatenation of every missing ball gathers all incidence
        triples at once, and per-node bundles are cheap slices of the
        shared arrays.  Entries beyond ``max_entries`` are dropped.
        """
        missing = list(dict.fromkeys(
            int(node)
            for node in np.asarray(nodes, dtype=np.int64)
            if int(node) not in self._bundles
        ))
        if self.max_entries is not None:
            # Only warm what can actually be stored; over-capacity nodes
            # are built transiently by bundle() when scoring reaches
            # them, instead of being materialized and discarded here on
            # every prepare() call.
            room = self.max_entries - len(self._bundles)
            missing = missing[: max(0, room)]
        if missing:
            self._materialize(missing)

    def _materialize(self, missing: list) -> dict:
        """Build bundles for *missing* nodes, caching within capacity."""
        if self._finder is None:
            raise RuntimeError("attach_subgraph() before ensure()")
        if self._g_indptr is None:
            raise RuntimeError("attach_graph() before ensure()")
        fresh_balls = self._finder.balls(
            [node for node in missing if node not in self._balls],
            self.beta,
        )
        ball_list = []
        for node in missing:
            ball = self._balls.get(node)
            if ball is None:
                ball = fresh_balls[node]
                if self._has_room(self._balls):
                    self._balls[node] = ball
            ball_list.append(ball)
        all_nodes = np.concatenate(ball_list)
        starts = self._g_indptr[all_nodes]
        lengths = self._g_indptr[all_nodes + 1] - starts
        flat = self.kernels.concat_ranges(starts, lengths)
        sources = np.repeat(all_nodes, lengths)
        nbrs = self._g_nbr[flat]
        eids = self._g_eid[flat]
        # Per-ball spans into the shared flat arrays.
        node_offsets = np.zeros(len(ball_list) + 1, dtype=np.int64)
        np.cumsum([len(b) for b in ball_list], out=node_offsets[1:])
        incidence_bounds = np.zeros(len(all_nodes) + 1, dtype=np.int64)
        np.cumsum(lengths, out=incidence_bounds[1:])
        built = {}
        for k, node in enumerate(missing):
            lo = incidence_bounds[node_offsets[k]]
            hi = incidence_bounds[node_offsets[k + 1]]
            # Copies, not views: a view would pin the whole batch's flat
            # arrays in memory for as long as any one bundle survives
            # invalidation.
            bundle = BallBundle(
                nodes=ball_list[k],
                sources=sources[lo:hi].copy(),
                nbrs=nbrs[lo:hi].copy(),
                eids=eids[lo:hi].copy(),
            )
            built[node] = bundle
            if self._has_room(self._bundles):
                self._bundles[node] = bundle
        return built

    def ensure_balls(self, nodes) -> None:
        """Cache bare ball node sets (no incidence bundles) for *nodes*.

        Cheaper than :meth:`ensure` for nodes that only ever serve as
        the stamped second ball (the ``q`` side of Eq. 20), which never
        needs the incidence triples.
        """
        if self._finder is None:
            raise RuntimeError("attach_subgraph() before ensure_balls()")
        missing = [
            int(node)
            for node in np.asarray(nodes, dtype=np.int64)
            if int(node) not in self._balls
        ]
        if not missing:
            return
        for node, ball in self._finder.balls(missing, self.beta).items():
            if self._has_room(self._balls):
                self._balls[node] = ball

    def ball(self, node: int) -> np.ndarray:
        """Sorted beta-ball around *node* in the current subgraph."""
        nodes = self._balls.get(node)
        if nodes is None:
            if self._finder is None:
                raise RuntimeError("attach_subgraph() before ball()")
            nodes = self._finder.ball_nodes(node, self.beta)
            if self._has_room(self._balls):
                self._balls[node] = nodes
        return nodes

    def bundle(self, node: int) -> BallBundle:
        """Ball plus flattened original-graph incidences around *node*.

        At capacity the bundle is built and returned without being
        stored.
        """
        cached = self._bundles.get(node)
        if cached is not None:
            return cached
        return self._materialize([int(node)])[int(node)]


class TreePhaseRanker:
    """Round-1 ranker: solve-free tree-phase criticality (Eqs. 13-15).

    Parameters
    ----------
    graph : Graph
        The original graph ``G``.
    forest : repro.tree.rooted.RootedForest
        Rooted spanning forest ``T`` (the initial subgraph).
    beta : int, optional
        BFS truncation depth (paper default 5).
    kernels : KernelSet or str, optional
        Hot-path kernel tier for the scoring loops; defaults to the
        auto-resolved tier.  Bit-identical across tiers.
    """

    def __init__(self, graph: Graph, forest, beta: int = 5,
                 kernels=None) -> None:
        self.graph = graph
        self.forest = forest
        self.beta = int(beta)
        self.kernels = resolve_kernel_set(kernels)
        self._resistances: np.ndarray | None = None

    def prepare(self, edge_ids) -> None:
        """Batch-compute tree resistances and warm shared structures.

        One Tarjan offline-LCA DFS covers the whole candidate set, so
        per-chunk ``score_batch`` calls (serial or in forked workers)
        skip the O(n) DFS; the Euler intervals and CSR adjacencies are
        materialized here too so workers inherit them copy-on-write.
        """
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if len(edge_ids) == 0:
            return
        if self._resistances is None:
            self._resistances = np.full(self.graph.edge_count, np.nan)
        missing = edge_ids[np.isnan(self._resistances[edge_ids])]
        if len(missing):
            resist, _ = batch_tree_resistances(
                self.forest, self.graph.u[missing], self.graph.v[missing]
            )
            self._resistances[missing] = resist
        self.forest.euler_intervals()
        self.forest.tree.adjacency()
        self.graph.adjacency()

    def score_batch(self, edge_ids) -> np.ndarray:
        """Tree-phase truncated trace reduction per candidate edge.

        Parameters
        ----------
        edge_ids : array_like of int
            Off-tree candidate edge ids.

        Returns
        -------
        numpy.ndarray
            Truncated trace reduction (Eq. 15), aligned with
            *edge_ids*.
        """
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if len(edge_ids) == 0:
            return np.empty(0)
        self.prepare(edge_ids)
        crit, _, _ = tree_truncated_trace_reduction(
            self.graph, self.forest, edge_ids=edge_ids, beta=self.beta,
            resistances=self._resistances[edge_ids], kernels=self.kernels,
        )
        return crit


class ExactRanker:
    """Validation ranker: Eq. (11) verbatim through exact solves.

    Parameters
    ----------
    graph : Graph
        The original graph ``G``.
    solve : callable
        ``solve(rhs) -> x`` with the (regularized) subgraph Laplacian,
        e.g. ``CholeskyFactor.solve``.
    """

    def __init__(self, graph: Graph, solve) -> None:
        self.graph = graph
        self._solve = solve

    @classmethod
    def from_subgraph(
        cls, graph: Graph, subgraph: Graph, shift: float,
        cholesky_backend: str = "auto",
    ) -> "ExactRanker":
        """Factor ``L_S + shift I`` and build the ranker from it."""
        factor = cholesky(
            regularized_laplacian(subgraph, shift), backend=cholesky_backend
        )
        return cls(graph, factor.solve)

    def prepare(self, edge_ids) -> None:
        """No per-round caches; nothing to warm."""

    def score_batch(self, edge_ids) -> np.ndarray:
        """Exact trace reduction per candidate edge (one solve each)."""
        return exact_trace_reduction_batch(
            self.graph, self._solve, np.asarray(edge_ids, dtype=np.int64)
        )


class ApproxRanker:
    """Production ranker: SPAI-based approximate trace reduction (Eq. 20).

    Computes exactly what
    :func:`repro.core.trace_reduction.approximate_trace_reduction`
    computes — bit for bit — but feeds every per-candidate step from
    caches that are shared across the whole round:

    * BFS balls and their original-graph incidence bundles come from a
      :class:`BallCache` (persisted across rounds, invalidated only
      around touched nodes);
    * SPAI columns of candidate endpoints are gathered once per round
      through :func:`repro.linalg.spai.extract_columns`.

    Parameters
    ----------
    graph : Graph
        The original graph ``G``.
    subgraph : Graph
        The current subgraph ``S`` (BFS balls are grown here).
    factor : repro.linalg.cholesky.CholeskyFactor
        Factor of the regularized ``L_S`` — provides the ordering that
        maps original nodes to columns of ``Z``.
    Z : scipy.sparse.csc_matrix
        Output of :func:`repro.linalg.spai.sparse_approximate_inverse`
        on ``factor.L``.
    beta : int, optional
        BFS truncation depth (paper default 5).
    cache : BallCache, optional
        Cross-round ball cache.  When supplied it must already be
        attached to *subgraph*'s adjacency (the sparsifier driver owns
        invalidation); when omitted a private cache is created.
    kernels : KernelSet or str, optional
        Hot-path kernel tier executing the per-candidate scoring loop
        (SPAI gathers, ball selection, the restricted quadratic form);
        defaults to the auto-resolved tier.  Bit-identical across
        tiers, so the choice never changes scores — only speed.

    Notes
    -----
    ``score_batch`` reuses dense work vectors, so one ranker instance
    must not be shared between threads.  Worker *processes* are fine:
    each fork gets copy-on-write copies, and the scores are chunk-stable
    (independent of how candidates are split), so any sharding of the
    candidate list reproduces the serial result exactly.
    """

    def __init__(
        self, graph: Graph, subgraph: Graph, factor, Z,
        beta: int = 5, cache: BallCache | None = None, kernels=None,
    ) -> None:
        self.graph = graph
        self.beta = int(beta)
        self.kernels = resolve_kernel_set(kernels)
        self._iperm = np.asarray(factor.iperm, dtype=np.int64)
        self._Z = Z
        self._z_indptr = Z.indptr
        self._z_indices = Z.indices.astype(np.int64)
        self._z_data = Z.data
        if cache is None:
            cache = BallCache(beta, kernels=self.kernels)
        if cache.beta != self.beta:
            raise ValueError(
                f"cache radius {cache.beta} != ranker beta {self.beta}"
            )
        cache.attach_graph(graph)
        if not cache.attached:
            sub_indptr, sub_nbr, _ = subgraph.adjacency()
            cache.attach_subgraph(sub_indptr, sub_nbr)
        self.cache = cache
        self._cols: dict = {}
        n = graph.n
        self._u_dense = np.zeros(n)
        self._s_dense = np.zeros(n)
        self._in_q_stamp = np.zeros(n, dtype=np.int64)
        self._clock = 0

    def prepare(self, edge_ids) -> None:
        """Warm the ball cache and the SPAI column table for a batch.

        Idempotent and cheap when already warm.  The sparsifier driver
        calls this in the parent process before forking workers so the
        cached arrays are shared read-only.
        """
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if len(edge_ids) == 0:
            return
        # Heads need full incidence bundles (the summation side of
        # Eq. 20); tails only ever get stamped, so bare balls suffice.
        self.cache.ensure(np.unique(self.graph.u[edge_ids]))
        self.cache.ensure_balls(np.unique(self.graph.v[edge_ids]))
        endpoints = np.unique(
            np.concatenate([self.graph.u[edge_ids], self.graph.v[edge_ids]])
        )
        missing = [
            int(node) for node in endpoints if int(node) not in self._cols
        ]
        if not missing:
            return
        indptr, rows, vals = extract_columns(
            self._Z, self._iperm[np.asarray(missing, dtype=np.int64)],
            kernels=self.kernels,
        )
        for k, node in enumerate(missing):
            lo, hi = indptr[k], indptr[k + 1]
            self._cols[node] = (rows[lo:hi], vals[lo:hi])

    def score_batch(self, edge_ids) -> np.ndarray:
        """Approximate trace reduction (Eq. 20) per candidate edge.

        Parameters
        ----------
        edge_ids : array_like of int
            Candidate off-subgraph edge ids (into ``graph``'s arrays).

        Returns
        -------
        numpy.ndarray
            Approximate trace reduction, aligned with *edge_ids*;
            bit-identical to
            :func:`~repro.core.trace_reduction.approximate_trace_reduction`
            on the same candidates.
        """
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if len(edge_ids) == 0:
            return np.empty(0)
        self.prepare(edge_ids)

        graph = self.graph
        weights = graph.w
        heads = graph.u[edge_ids]
        tails = graph.v[edge_ids]
        w_cand = weights[edge_ids]
        iperm = self._iperm
        z_indptr = self._z_indptr
        z_indices = self._z_indices
        z_data = self._z_data
        cols = self._cols
        cache = self.cache
        u_dense = self._u_dense
        s_dense = self._s_dense
        in_q_stamp = self._in_q_stamp
        concat_ranges = self.kernels.concat_ranges
        ball_pair_edge_sum_flat = self.kernels.ball_pair_edge_sum_flat
        out = np.empty(len(edge_ids))

        for k in range(len(edge_ids)):
            p, q = int(heads[k]), int(tails[k])
            w_pq = float(w_cand[k])
            self._clock += 1
            clock = self._clock

            # u = z~_p - z~_q scattered into a dense work vector.
            rows_p, vals_p = cols[p]
            rows_q, vals_q = cols[q]
            u_dense[rows_p] += vals_p
            u_dense[rows_q] -= vals_q
            touched = np.unique(np.concatenate([rows_p, rows_q]))
            resistance = float(np.sum(u_dense[touched] ** 2))

            # Cached BFS balls in the current subgraph.
            bundle_p = cache.bundle(p)
            nodes_q = cache.ball(q)
            in_q_stamp[nodes_q] = clock

            # s_a = z~_a . u for every node in either ball, one gather.
            ball_nodes = np.unique(
                np.concatenate([bundle_p.nodes, nodes_q])
            )
            perm_cols = iperm[ball_nodes]
            starts = z_indptr[perm_cols]
            lengths = z_indptr[perm_cols + 1] - starts
            flat = concat_ranges(starts, lengths)
            col_of = np.repeat(np.arange(len(ball_nodes)), lengths)
            s_values = np.bincount(
                col_of,
                weights=z_data[flat] * u_dense[z_indices[flat]],
                minlength=len(ball_nodes),
            )
            s_dense[ball_nodes] = s_values

            numerator = ball_pair_edge_sum_flat(
                bundle_p.sources, bundle_p.nbrs, bundle_p.eids,
                weights, in_q_stamp, clock, s_dense,
            )
            out[k] = w_pq * numerator / (1.0 + w_pq * resistance)

            u_dense[rows_p] = 0.0
            u_dense[rows_q] = 0.0
        return out
