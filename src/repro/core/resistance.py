"""Effective resistances (Eq. 4).

``R_S(p, q) = e_pq^T L_S^{-1} e_pq`` — computed exactly through a solve
with the (regularized) subgraph Laplacian.  For trees, use
:func:`repro.tree.lca.batch_tree_resistances` instead, which answers
all queries with one DFS.
"""

from __future__ import annotations

import numpy as np

__all__ = ["effective_resistance", "effective_resistances"]


def effective_resistance(solve, p: int, q: int, n: int) -> float:
    """Effective resistance across nodes *p*, *q* via one solve.

    Parameters
    ----------
    solve:
        Callable applying ``L_S^{-1}`` (e.g. ``CholeskyFactor.solve``).
    p, q:
        Node indices.
    n:
        Number of nodes.
    """
    rhs = np.zeros(n)
    rhs[p] += 1.0
    rhs[q] -= 1.0
    x = solve(rhs)
    return float(x[p] - x[q])


def effective_resistances(solve, pairs, n: int) -> np.ndarray:
    """Effective resistance for each ``(p, q)`` pair (one solve each)."""
    out = np.empty(len(pairs))
    for k, (p, q) in enumerate(pairs):
        out[k] = effective_resistance(solve, int(p), int(q), n)
    return out
