"""Shard-parallel sparsification for graphs too big for one run.

The scale-out move suggested by both partition-based preconditioning
and Spielman-Srivastava resistance sampling: cut the graph into
well-separated node blocks ("shards"), sparsify each block
independently, and preserve the cut.  Concretely:

1. **Partition** — recursively bipartition the node set with the
   Fiedler machinery already in :mod:`repro.partitioning` (inverse
   power iteration + an order-statistics split), giving ``shards``
   balanced blocks; disconnected blocks fall back to whole-component
   packing so a component is never cut needlessly.
2. **Sparsify per shard** — run any registered method on each shard's
   induced subgraph through its own
   :class:`~repro.api.SparsifierSession`, so every shard hits the
   artifact/disk cache and the linalg backend layer independently, and
   shards run concurrently on the :func:`~repro.core.parallel.parallel_map`
   worker pool (the ``workers`` knob moves from candidate scoring to
   the shard level — results stay bit-identical for every worker
   count).
3. **Stitch** — union the intra-shard sparsifiers with the boundary
   (cut) edges: ``boundary_policy="keep"`` retains every cut edge
   verbatim (spectrally safe; the stitched sparsifier of a connected
   graph is connected), ``"sample"`` keeps a per-component
   connectivity backbone plus a leverage-biased sample of the rest
   (leverage approximated by quotient-graph effective resistances).

Entry points: the ``shards`` / ``boundary_policy`` fields every
:class:`~repro.core.base.BaseSparsifierConfig` carries (so
``repro.sparsify(graph, shards=4)`` and ``repro sparsify --shards 4``
route here automatically), or :func:`sharded_sparsify` directly.
``shards=1`` never enters this module — that path stays byte-identical
to the unsharded code.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import shared_artifact
from repro.core.parallel import parallel_map
from repro.core.sparsifier import SparsifierResult
from repro.exceptions import GraphError
from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.utils.rng import as_rng
from repro.utils.timers import Timer

__all__ = [
    "ShardPlan",
    "induced_subgraph",
    "partition_shards",
    "select_boundary_edges",
    "sharded_sparsify",
]

#: Blocks smaller than this are split by node order instead of a
#: Fiedler vector (the eigensolve is meaningless on 2-3 nodes).
_MIN_FIEDLER_NODES = 4


def induced_subgraph(graph: Graph, nodes) -> tuple:
    """The induced subgraph on *nodes*, relabeled to ``0..len-1``.

    Parameters
    ----------
    graph : Graph
        Parent graph.
    nodes : array_like of int
        Node ids to keep (order defines the local numbering).

    Returns
    -------
    (Graph, numpy.ndarray)
        The local subgraph and the parent edge ids of its edges (the
        subgraph's edge ``k`` is the parent's edge ``edge_ids[k]``).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    local = np.full(graph.n, -1, dtype=np.int64)
    local[nodes] = np.arange(len(nodes))
    inside = (local[graph.u] >= 0) & (local[graph.v] >= 0)
    edge_ids = np.flatnonzero(inside)
    sub = Graph(
        max(len(nodes), 1),
        local[graph.u[edge_ids]],
        local[graph.v[edge_ids]],
        graph.w[edge_ids],
        validate=False,
    )
    return sub, edge_ids


def _component_packed_order(sub: Graph, components: np.ndarray) -> np.ndarray:
    """Local node order that keeps whole components contiguous.

    Components are laid out largest-first (ties by component id), so a
    quota split at any position cuts at most one component — the rest
    are packed whole onto one side, contributing zero cut edges.
    """
    sizes = np.bincount(components)
    rank = np.empty(len(sizes), dtype=np.int64)
    rank[np.argsort(-sizes, kind="stable")] = np.arange(len(sizes))
    return np.lexsort((np.arange(sub.n), rank[components]))


def _block_order(graph: Graph, nodes: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic local ordering along which a block is split.

    Connected blocks of >= 4 nodes are ordered by their Fiedler vector
    (the classic spectral-bisection recipe, computed with the existing
    inverse-power machinery); disconnected blocks pack whole
    components; tiny or edgeless blocks fall back to node-id order.
    """
    sub, _ = induced_subgraph(graph, nodes)
    if sub.edge_count == 0 or len(nodes) < _MIN_FIEDLER_NODES:
        return np.arange(len(nodes))
    count, components = connected_components(sub)
    if count > 1:
        return _component_packed_order(sub, components)
    # Deferred import: repro.partitioning pulls in repro.api, which
    # must not load while repro.core is still initializing.
    from repro.partitioning.fiedler import fiedler_vector

    vector = fiedler_vector(sub, method="direct", seed=seed).vector
    return np.argsort(vector, kind="stable")


def _partition_labels(graph: Graph, shards: int, seed: int) -> np.ndarray:
    """Recursive quota bisection: node -> shard id in ``0..shards-1``."""
    labels = np.zeros(graph.n, dtype=np.int64)
    blocks = [(np.arange(graph.n, dtype=np.int64), 0, shards)]
    while blocks:
        nodes, first, count = blocks.pop()
        if count == 1:
            labels[nodes] = first
            continue
        left = (count + 1) // 2
        right = count - left
        order = _block_order(graph, nodes, seed)
        # Proportional split point, clamped so each side can still host
        # one node per shard it owes.
        split = int(round(len(nodes) * left / count))
        split = min(max(split, left), len(nodes) - right)
        blocks.append((np.sort(nodes[order[:split]]), first, left))
        blocks.append((np.sort(nodes[order[split:]]), first + left, right))
    return labels


class ShardPlan:
    """A sharding of one graph: labels plus derived cut structure.

    Parameters
    ----------
    graph : Graph
        The partitioned graph.
    labels : numpy.ndarray
        Per-node shard id in ``0..shards-1``.
    shards : int
        Number of shards.

    Attributes
    ----------
    shard_nodes : list of numpy.ndarray
        Ascending node ids of each shard (every shard is non-empty).
    boundary_edge_ids : numpy.ndarray
        Parent edge ids whose endpoints live in different shards.
    """

    def __init__(self, graph: Graph, labels, shards: int) -> None:
        self.graph = graph
        self.labels = np.asarray(labels, dtype=np.int64)
        self.shards = int(shards)
        if self.labels.shape != (graph.n,):
            raise GraphError(
                f"labels must have shape ({graph.n},), got {self.labels.shape}"
            )
        if len(self.labels) and (
            self.labels.min() < 0 or self.labels.max() >= self.shards
        ):
            # An out-of-range label would belong to no shard: its edges
            # were neither intra-shard nor boundary and would silently
            # vanish from the stitched sparsifier.
            raise GraphError(
                f"labels must lie in [0, {self.shards}), got range "
                f"[{self.labels.min()}, {self.labels.max()}]"
            )
        self.shard_nodes = [
            np.flatnonzero(self.labels == s) for s in range(self.shards)
        ]
        if any(len(nodes) == 0 for nodes in self.shard_nodes):
            raise GraphError("every shard must contain at least one node")
        self.boundary_edge_ids = np.flatnonzero(
            self.labels[graph.u] != self.labels[graph.v]
        )
        self._subgraphs: dict = {}

    def shard_subgraph(self, shard: int) -> tuple:
        """``(Graph, node_ids, edge_ids)`` of one shard.

        The subgraph uses local numbering ``0..len(node_ids)-1``;
        ``node_ids``/``edge_ids`` map local nodes/edges back to the
        parent graph.  Memoized: the sparsify and stitch phases share
        one extraction per shard.
        """
        if shard not in self._subgraphs:
            nodes = self.shard_nodes[shard]
            sub, edge_ids = induced_subgraph(self.graph, nodes)
            self._subgraphs[shard] = (sub, nodes, edge_ids)
        return self._subgraphs[shard]

    def cut_weight(self) -> float:
        """Total weight of the cut (inter-shard) edges."""
        return float(self.graph.w[self.boundary_edge_ids].sum())

    def summary(self) -> dict:
        """JSON-native overview: shard sizes and cut statistics."""
        return {
            "shards": self.shards,
            "shard_nodes": [int(len(n)) for n in self.shard_nodes],
            "cut_edges": int(len(self.boundary_edge_ids)),
            "cut_weight": self.cut_weight(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(str(len(n)) for n in self.shard_nodes)
        return (
            f"ShardPlan(shards={self.shards}, nodes=[{sizes}], "
            f"cut_edges={len(self.boundary_edge_ids)})"
        )


def partition_shards(graph: Graph, shards: int, *, seed: int = 0,
                     artifacts=None) -> ShardPlan:
    """Partition *graph* into ``shards`` blocks by recursive bisection.

    Each bisection orders the block along its Fiedler vector (via
    :func:`repro.partitioning.fiedler.fiedler_vector`) and splits at
    the quota point, so uneven shard counts (3, 5, ...) work too.
    Deterministic for fixed ``(graph, shards, seed)``.

    Parameters
    ----------
    graph : Graph
        Graph to partition.
    shards : int
        Number of blocks, ``1 <= shards <= graph.n``.
    seed : int
        Seed of the inverse-power iterations.
    artifacts : repro.core.base.ArtifactStore, optional
        Session store: labels are cached under kind ``"shard_labels"``
        (and persisted when a disk cache is attached), so warm runs
        skip the recursive eigensolves.

    Returns
    -------
    ShardPlan
    """
    shards = int(shards)
    if shards < 1:
        raise GraphError(f"shards must be >= 1, got {shards}")
    if shards > graph.n:
        raise GraphError(
            f"cannot cut a {graph.n}-node graph into {shards} shards"
        )
    labels = shared_artifact(
        artifacts, "shard_labels", (shards, int(seed)),
        lambda: _partition_labels(graph, shards, int(seed)),
    )
    return ShardPlan(graph, labels, shards)


def _quotient_resistances(graph: Graph, plan: ShardPlan,
                          lo: np.ndarray, hi: np.ndarray,
                          weights: np.ndarray) -> np.ndarray:
    """Effective resistance between shard supernodes, per cut edge.

    Contract each shard to one node, keep the total inter-shard weight
    per pair, and solve the tiny (``shards x shards``) quotient
    Laplacian densely — a cheap stand-in for each cut edge's true
    effective resistance, good enough to bias the boundary sample
    toward spectrally critical cuts.
    """
    k = plan.shards
    adjacency = np.zeros((k, k))
    np.add.at(adjacency, (lo, hi), weights)
    adjacency += adjacency.T
    quotient = np.diag(adjacency.sum(axis=1)) - adjacency
    pinv = np.linalg.pinv(quotient)
    return pinv[lo, lo] + pinv[hi, hi] - 2.0 * pinv[lo, hi]


def select_boundary_edges(graph: Graph, plan: ShardPlan,
                          policy: str = "keep",
                          edge_fraction: float = 0.10,
                          seed: int = 0) -> np.ndarray:
    """Cut edges the stitched sparsifier keeps, per boundary policy.

    ``"keep"`` returns every cut edge.  ``"sample"`` returns a
    connectivity backbone — the heaviest cut edge between every pair
    of *shard components* (so no component that was attached through
    the cut comes loose) — plus ``round(edge_fraction * cut_edges)``
    further edges drawn without replacement with probability biased by
    ``w_e * R_quotient(e)`` (Spielman-Srivastava leverage, with the
    resistance approximated on the shard quotient graph).  Seeded and
    deterministic.

    Returns
    -------
    numpy.ndarray
        Sorted parent edge ids.
    """
    ids = plan.boundary_edge_ids
    if policy == "keep" or len(ids) == 0:
        return ids
    if policy != "sample":
        raise GraphError(f"unknown boundary_policy {policy!r}")
    labels = plan.labels
    weights = graph.w[ids]
    shard_u = labels[graph.u[ids]]
    shard_v = labels[graph.v[ids]]
    lo = np.minimum(shard_u, shard_v)
    hi = np.maximum(shard_u, shard_v)

    # Connectivity backbone at (shard, internal component) granularity:
    # keeping one edge per *shard* pair could strand a shard component
    # whose only attachment to the rest of the graph crosses the cut.
    super_label = np.empty(graph.n, dtype=np.int64)
    offset = 0
    for shard in range(plan.shards):
        sub, nodes, _ = plan.shard_subgraph(shard)
        count, components = connected_components(sub)
        super_label[nodes] = offset + components
        offset += count
    pair_lo = np.minimum(super_label[graph.u[ids]], super_label[graph.v[ids]])
    pair_hi = np.maximum(super_label[graph.u[ids]], super_label[graph.v[ids]])
    pair_key = pair_lo * offset + pair_hi
    # Heaviest edge per pair, ties broken by smallest edge id.
    order = np.lexsort((np.arange(len(ids)), -weights, pair_key))
    _, first = np.unique(pair_key[order], return_index=True)
    backbone = np.zeros(len(ids), dtype=bool)
    backbone[order[first]] = True

    budget = int(round(edge_fraction * len(ids)))
    if budget > 0:
        resistances = np.maximum(
            _quotient_resistances(graph, plan, lo, hi, weights), 1e-300
        )
        leverage = weights * resistances
        # Gumbel top-k == sampling without replacement with probability
        # proportional to leverage; one seeded draw keeps it exact.
        rng = as_rng(int(seed))
        keys = np.log(leverage) + rng.gumbel(size=len(ids))
        keys[backbone] = -np.inf
        ranked = np.argsort(-keys, kind="stable")
        backbone[ranked[:budget]] = True
    return ids[np.flatnonzero(backbone)]


def sharded_sparsify(graph: Graph, method: str = "proposed", config=None, *,
                     artifacts=None, **options) -> SparsifierResult:
    """Partition, sparsify per shard, stitch — any registered method.

    This is what :func:`repro.sparsify` routes to whenever
    ``config.shards > 1``.  Each shard runs through its own
    :class:`~repro.api.SparsifierSession`; when *artifacts* carries a
    persistent disk cache, the per-shard sessions attach to the same
    cache root (shard subgraphs are content-addressed, so shard
    artifacts warm up independently).  Shards execute concurrently on
    the fork worker pool when the method's ``workers`` knob asks for
    parallelism — the stitched result is bit-identical for every
    worker count.

    Parameters
    ----------
    graph : Graph
        The graph to sparsify.
    method : str
        Registry name of the per-shard sparsifier.
    config : optional
        Ready-made config (mutually exclusive with keyword options);
        ``config.shards`` drives the partition.
    artifacts : repro.core.base.ArtifactStore, optional
        Parent session store: caches the partition labels (and the
        disk-cache root is inherited by the per-shard sessions).
    **options
        Config fields by keyword, e.g. ``shards=4, workers=4``.

    Returns
    -------
    SparsifierResult
        Stitched sparsifier over the *parent* graph, with per-shard
        diagnostics in ``result.sharding`` and shard-tagged entries in
        ``result.rounds_log``.
    """
    # Deferred: repro.api depends on repro.core, not the reverse.
    from repro.api.registry import get_method
    from repro.api.session import SparsifierSession

    spec = get_method(method)
    cfg = spec.make_config(config, **options)
    shards = int(cfg.shards)
    if shards <= 1:
        from repro.api.session import sparsify

        return sparsify(graph, method, cfg, artifacts=artifacts)

    total_timer = Timer()
    with total_timer:
        parent_restore = (
            artifacts.restore_seconds if artifacts is not None else 0.0
        )
        partition_timer = Timer()
        with partition_timer:
            plan = partition_shards(
                graph, shards, seed=int(cfg.seed), artifacts=artifacts
            )
        # The shard runs are one-piece by construction; the worker
        # budget moves to the shard level, so per-shard candidate
        # scoring stays serial (results do not depend on either knob).
        inner = cfg.replace(shards=1)
        workers = int(getattr(cfg, "workers", 1))
        if hasattr(inner, "workers"):
            inner = inner.replace(workers=1)
        disk = getattr(artifacts, "disk", None)
        cache_root = disk.root if disk is not None else None
        shard_inputs = [plan.shard_subgraph(s) for s in range(shards)]

        # One session per shard, memoized in the parent store (kind
        # "shard_session", never persisted — it embeds the shard graph;
        # its own artifacts persist through its own disk cache), so a
        # serial method/fraction sweep over one graph re-derives each
        # shard's tree/factor/sketches once, not once per cell.  Forked
        # shard runs fill a copy-on-write copy that dies with the
        # worker; cross-call reuse then comes from the disk layer.
        def _shard_session(shard: int) -> SparsifierSession:
            sub = shard_inputs[shard][0]
            return shared_artifact(
                artifacts, "shard_session",
                (shards, int(cfg.seed), shard,
                 str(cache_root) if cache_root is not None else None),
                lambda: SparsifierSession(
                    sub, label=f"shard-{shard}", cache_dir=cache_root
                ),
            )

        sessions = [_shard_session(shard) for shard in range(shards)]

        def _run_shard(shard: int) -> dict:
            result = sessions[shard].sparsify(method, inner)
            return {
                "mask": result.edge_mask,
                "tree": result.tree_edge_ids,
                "recovered": result.recovered_edge_ids,
                "log": result.rounds_log,
                "seconds": float(result.setup_seconds),
                "restore": float(result.restore_seconds),
            }

        shard_results = parallel_map(_run_shard, shards, workers=workers)

        stitch_timer = Timer()
        with stitch_timer:
            edge_mask = np.zeros(graph.edge_count, dtype=bool)
            tree_ids, recovered_ids, rounds_log, per_shard = [], [], [], []
            for shard, outcome in enumerate(shard_results):
                _, nodes, edge_ids = shard_inputs[shard]
                kept = np.flatnonzero(outcome["mask"])
                edge_mask[edge_ids[kept]] = True
                tree_ids.append(edge_ids[np.asarray(
                    outcome["tree"], dtype=np.int64
                )])
                recovered_ids.append(edge_ids[np.asarray(
                    outcome["recovered"], dtype=np.int64
                )])
                for entry in outcome["log"]:
                    rounds_log.append({"shard": shard, **entry})
                per_shard.append({
                    "shard": shard,
                    "nodes": int(len(nodes)),
                    "intra_edges": int(len(edge_ids)),
                    "kept_edges": int(len(kept)),
                    "sparsify_seconds": outcome["seconds"],
                    "restore_seconds": outcome["restore"],
                })
            boundary_kept = select_boundary_edges(
                graph, plan, policy=cfg.boundary_policy,
                edge_fraction=float(cfg.edge_fraction),
                seed=int(cfg.seed),
            )
            edge_mask[boundary_kept] = True

        cut_ids = plan.boundary_edge_ids
        sharding = {
            "shards": shards,
            "boundary_policy": cfg.boundary_policy,
            "partition_seconds": float(partition_timer.elapsed),
            "stitch_seconds": float(stitch_timer.elapsed),
            "cut": {
                "edges": int(len(cut_ids)),
                "weight": float(graph.w[cut_ids].sum()),
                "kept_edges": int(len(boundary_kept)),
                "kept_weight": float(graph.w[boundary_kept].sum()),
            },
            "per_shard": per_shard,
        }
        restore = sum(entry["restore_seconds"] for entry in per_shard)
        if artifacts is not None:
            restore += artifacts.restore_seconds - parent_restore

    result = SparsifierResult(
        graph=graph,
        edge_mask=edge_mask,
        tree_edge_ids=np.concatenate(tree_ids).astype(np.int64, copy=False),
        recovered_edge_ids=np.concatenate(recovered_ids).astype(
            np.int64, copy=False
        ),
        config=cfg,
        rounds_log=rounds_log,
        restore_seconds=float(restore),
        sharding=sharding,
    )
    result.setup_seconds = total_timer.elapsed
    return result
