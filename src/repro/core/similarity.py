"""Spectrally-similar edge exclusion (Algorithm 2, steps 8/20).

When an off-subgraph edge ``(p, q)`` is recovered, edges that would fix
the same spectral deficiency — those joining the neighborhood of ``p``
to the neighborhood of ``q`` in the current subgraph — are *marked* and
skipped for the rest of the recovery (feGRASS's similarity strategy
[13]; see DESIGN.md, substitution 5).  Physically: after ``(p, q)`` is
added, the potential difference its neighbors see collapses, so a
parallel edge nearby has little additional trace reduction.
"""

from __future__ import annotations

import numpy as np

from repro.core._kernels import concat_ranges
from repro.graph.bfs import BallFinder
from repro.graph.graph import Graph

__all__ = ["SimilarityMarker"]


class SimilarityMarker:
    """Tracks marked (excluded) edges across recovery rounds.

    Parameters
    ----------
    graph:
        The original graph (marks live on its edge ids).
    gamma:
        Similarity ball radius in hops (default 2).

    Marks persist across densification rounds, matching Algorithm 2
    where an edge once marked is never recovered.
    """

    def __init__(self, graph: Graph, gamma: int = 2) -> None:
        if gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {gamma}")
        self.graph = graph
        self.gamma = gamma
        self.marked = np.zeros(graph.edge_count, dtype=bool)
        self._finder = None
        self._stamp = np.zeros(graph.n, dtype=np.int64)
        self._clock = 0
        g_indptr, g_nbr, g_eid = graph.adjacency()
        self._g_indptr = g_indptr
        self._g_nbr = g_nbr
        self._g_eid = g_eid

    def attach_subgraph(self, subgraph: Graph) -> None:
        """Point the similarity balls at the current subgraph ``S``.

        Called once per densification round; balls use the round-start
        subgraph (adding edges mid-round does not regrow adjacency).
        """
        indptr, nbr, _ = subgraph.adjacency()
        self._finder = BallFinder(indptr, nbr)

    def is_marked(self, edge_id: int) -> bool:
        """True when the edge has been excluded."""
        return bool(self.marked[edge_id])

    def mark_similar(self, p: int, q: int) -> int:
        """Mark all edges joining ``ball(p, gamma)`` to ``ball(q, gamma)``.

        Returns the number of newly marked edges.
        """
        if self._finder is None:
            raise RuntimeError("call attach_subgraph() before mark_similar()")
        nodes_p, _, _ = self._finder.ball(p, self.gamma)
        nodes_q, _, _ = self._finder.ball(q, self.gamma)
        self._clock += 1
        clock = self._clock
        self._stamp[nodes_q] = clock
        starts = self._g_indptr[nodes_p]
        lengths = self._g_indptr[nodes_p + 1] - starts
        flat = concat_ranges(starts, lengths)
        if len(flat) == 0:
            return 0
        nbrs = self._g_nbr[flat]
        eids = self._g_eid[flat]
        hits = np.unique(eids[self._stamp[nbrs] == clock])
        newly = int(np.count_nonzero(~self.marked[hits]))
        self.marked[hits] = True
        return newly
