"""Algorithm 2 — graph spectral sparsification via approximate trace reduction.

Pipeline (Sec. 3.3 of the paper):

1. extract a low-stretch spanning tree (MEWST by default);
2. rank all off-tree edges by the *tree-phase* truncated trace
   reduction (Eqs. 13-15) and recover the top ``alpha / N_r`` of them,
   marking spectrally similar edges for exclusion;
3. for each of the remaining ``N_r - 1`` rounds: factorize the current
   subgraph Laplacian, build the sparse approximate inverse of its
   Cholesky factor (Algorithm 1), rank the remaining off-subgraph edges
   by the approximate trace reduction (Eq. 20), and recover the next
   ``alpha / N_r`` unmarked edges.

The iterative densification (recompute criticality against the *current*
subgraph instead of the initial tree) is the scheme of GRASS [7, 8]; the
similarity exclusion is feGRASS's [13].
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.similarity import SimilarityMarker
from repro.core.trace_reduction import approximate_trace_reduction
from repro.core.tree_phase import tree_truncated_trace_reduction
from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.laplacian import regularization_shift, regularized_laplacian
from repro.linalg.cholesky import cholesky
from repro.linalg.spai import sparse_approximate_inverse
from repro.tree.spanning import bfs_spanning_forest, maximum_spanning_forest, mewst
from repro.utils.timers import Timer

__all__ = ["SparsifierConfig", "SparsifierResult", "trace_reduction_sparsify"]

_TREE_METHODS = {
    "mewst": mewst,
    "max_weight": maximum_spanning_forest,
    "bfs": bfs_spanning_forest,
}


@dataclass
class SparsifierConfig:
    """Knobs of Algorithm 2 (defaults follow the paper's experiments)."""

    edge_fraction: float = 0.10   # alpha = edge_fraction * |V| off-tree edges
    rounds: int = 5               # N_r
    beta: int = 5                 # BFS truncation depth (Eq. 12)
    delta: float = 0.1            # SPAI pruning threshold (Alg. 1)
    gamma: int = 2                # similarity-exclusion ball radius
    tree_method: str = "mewst"    # "mewst" | "max_weight" | "bfs"
    use_similarity: bool = True   # mark similar edges for exclusion
    reg_rel: float = 1e-6         # footnote-1 diagonal shift, relative
    cholesky_backend: str = "auto"
    seed: int = 0

    def validate(self) -> None:
        if not 0.0 <= self.edge_fraction:
            raise GraphError("edge_fraction must be nonnegative")
        if self.rounds < 1:
            raise GraphError("rounds must be >= 1")
        if self.beta < 1:
            raise GraphError("beta must be >= 1")
        if self.tree_method not in _TREE_METHODS:
            raise GraphError(
                f"unknown tree_method {self.tree_method!r}; "
                f"choose from {sorted(_TREE_METHODS)}"
            )


@dataclass
class SparsifierResult:
    """Outcome of a sparsification run."""

    graph: Graph
    edge_mask: np.ndarray          # True = edge kept in the sparsifier
    tree_edge_ids: np.ndarray
    recovered_edge_ids: np.ndarray
    config: object
    setup_seconds: float = 0.0
    rounds_log: list = field(default_factory=list)

    @property
    def sparsifier(self) -> Graph:
        """The sparsifier ``P`` as a graph (tree + recovered edges)."""
        return self.graph.subgraph(self.edge_mask)

    @property
    def edge_count(self) -> int:
        return int(self.edge_mask.sum())


def _pick_edges(order, criticality, marker, per_round, use_similarity):
    """Walk a criticality-sorted candidate list, skipping marked edges.

    Mirrors Algorithm 2's inner while loop (steps 4-10 / 16-22);
    returns the list of recovered edge ids.
    """
    chosen = []
    graph = marker.graph
    for edge in order:
        edge = int(edge)
        if criticality is not None and criticality[edge] <= 0.0:
            # A zero trace reduction means the edge adds nothing
            # (numerically disconnected balls); never recover those.
            continue
        if marker.is_marked(edge):
            continue
        chosen.append(edge)
        if use_similarity:
            marker.mark_similar(int(graph.u[edge]), int(graph.v[edge]))
        else:
            marker.marked[edge] = True
        if len(chosen) >= per_round:
            break
    return chosen


def trace_reduction_sparsify(graph: Graph, config=None, **overrides):
    """Run Algorithm 2 on *graph* and return a :class:`SparsifierResult`.

    Either pass a :class:`SparsifierConfig` or keyword overrides, e.g.
    ``trace_reduction_sparsify(g, edge_fraction=0.05, rounds=2)``.
    """
    if config is None:
        config = SparsifierConfig(**overrides)
    elif overrides:
        raise GraphError("pass either a config object or overrides, not both")
    config.validate()

    timer = Timer()
    with timer:
        result = _run(graph, config)
    result.setup_seconds = timer.elapsed
    return result


def _run(graph: Graph, config: SparsifierConfig) -> SparsifierResult:
    n = graph.n
    m = graph.edge_count
    shift = regularization_shift(graph, config.reg_rel)

    # Step 1: low-stretch spanning tree.
    tree_ids = _TREE_METHODS[config.tree_method](graph)
    from repro.tree.rooted import RootedForest

    forest = RootedForest(graph, tree_ids)
    edge_mask = forest.tree_edge_mask()

    budget = int(round(config.edge_fraction * n))
    budget = min(budget, m - len(tree_ids))
    per_round = max(1, int(np.ceil(budget / config.rounds))) if budget else 0
    marker = SimilarityMarker(graph, gamma=config.gamma)
    recovered: list = []
    rounds_log: list = []

    if budget > 0:
        # Step 2: tree-phase ranking (Eqs. 13-15).
        round_timer = Timer()
        with round_timer:
            candidates = np.flatnonzero(~edge_mask)
            crit, candidates, _ = tree_truncated_trace_reduction(
                graph, forest, edge_ids=candidates, beta=config.beta
            )
            full_crit = np.zeros(m)
            full_crit[candidates] = crit
            order = candidates[np.argsort(-crit, kind="stable")]
            marker.attach_subgraph(forest.tree)
            chosen = _pick_edges(
                order, full_crit, marker, per_round, config.use_similarity
            )
            edge_mask[chosen] = True
            recovered.extend(chosen)
        rounds_log.append(
            {
                "round": 1,
                "phase": "tree",
                "candidates": len(candidates),
                "added": len(chosen),
                "trace_reduction": float(full_crit[chosen].sum()),
                "seconds": round_timer.elapsed,
            }
        )

        # Steps 11-23: iterative densification with Eq. (20).
        for round_index in range(2, config.rounds + 1):
            if len(recovered) >= budget:
                break
            round_timer = Timer()
            with round_timer:
                subgraph = graph.subgraph(edge_mask)
                laplacian_s = regularized_laplacian(subgraph, shift)
                factor = cholesky(
                    laplacian_s, backend=config.cholesky_backend
                )
                Z = sparse_approximate_inverse(factor.L, delta=config.delta)
                candidates = np.flatnonzero(~edge_mask & ~marker.marked)
                if len(candidates) == 0:
                    break
                crit = approximate_trace_reduction(
                    graph, subgraph, factor, Z, candidates, beta=config.beta
                )
                full_crit = np.zeros(m)
                full_crit[candidates] = crit
                order = candidates[np.argsort(-crit, kind="stable")]
                marker.attach_subgraph(subgraph)
                want = min(per_round, budget - len(recovered))
                chosen = _pick_edges(
                    order, full_crit, marker, want, config.use_similarity
                )
                edge_mask[chosen] = True
                recovered.extend(chosen)
            rounds_log.append(
                {
                    "round": round_index,
                    "phase": "general",
                    "candidates": len(candidates),
                    "added": len(chosen),
                    "trace_reduction": float(full_crit[chosen].sum()),
                    "spai_nnz": int(Z.nnz),
                    "factor_nnz": int(factor.nnz),
                    "seconds": round_timer.elapsed,
                }
            )

    return SparsifierResult(
        graph=graph,
        edge_mask=edge_mask,
        tree_edge_ids=tree_ids,
        recovered_edge_ids=np.asarray(recovered, dtype=np.int64),
        config=config,
        rounds_log=rounds_log,
    )
