"""Algorithm 2 — graph spectral sparsification via approximate trace reduction.

Pipeline (Sec. 3.3 of the paper):

1. extract a low-stretch spanning tree (MEWST by default);
2. rank all off-tree edges by the *tree-phase* truncated trace
   reduction (Eqs. 13-15) and recover the top ``alpha / N_r`` of them,
   marking spectrally similar edges for exclusion;
3. for each of the remaining ``N_r - 1`` rounds: factorize the current
   subgraph Laplacian, build the sparse approximate inverse of its
   Cholesky factor (Algorithm 1), rank the remaining off-subgraph edges
   by the approximate trace reduction (Eq. 20), and recover the next
   ``alpha / N_r`` unmarked edges.

The iterative densification (recompute criticality against the *current*
subgraph instead of the initial tree) is the scheme of GRASS [7, 8]; the
similarity exclusion is feGRASS's [13].

Candidate scoring is delegated to the batched ranking engine
(:mod:`repro.core.ranking`) and executed through the chunked worker
pool (:mod:`repro.core.parallel`): rounds build a
:class:`~repro.core.ranking.TreePhaseRanker` (round 1) or
:class:`~repro.core.ranking.ApproxRanker` (rounds 2+) and shard the
candidate list across ``config.workers`` processes.  A cross-round
:class:`~repro.core.ranking.BallCache` keeps BFS balls warm, dropping
only entries near edges recovered in the previous round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import BaseSparsifierConfig, shared_artifact
from repro.core.parallel import score_edges
from repro.core.ranking import (
    ApproxRanker,
    BallCache,
    ExactRanker,
    TreePhaseRanker,
)
from repro.core.similarity import SimilarityMarker
from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.laplacian import regularization_shift, regularized_laplacian
from repro.tree.spanning import bfs_spanning_forest, maximum_spanning_forest, mewst
from repro.utils.timers import Timer

__all__ = ["SparsifierConfig", "SparsifierResult", "trace_reduction_sparsify"]

_TREE_METHODS = {
    "mewst": mewst,
    "max_weight": maximum_spanning_forest,
    "bfs": bfs_spanning_forest,
}

_RANKINGS = ("approx", "exact")


@dataclass(kw_only=True)
class SparsifierConfig(BaseSparsifierConfig):
    """Knobs of Algorithm 2 (defaults follow the paper's experiments).

    Parameters
    ----------
    edge_fraction : float
        Recovery budget ``alpha``: recover ``edge_fraction * |V|``
        off-tree edges in total (inherited from
        :class:`~repro.core.base.BaseSparsifierConfig`).
    rounds : int
        Number of densification rounds ``N_r``.
    beta : int
        BFS truncation depth of the criticality balls (Eq. 12).
    delta : float
        SPAI pruning threshold of Algorithm 1.
    gamma : int
        Similarity-exclusion ball radius (feGRASS marking).
    tree_method : {"mewst", "max_weight", "bfs"}
        Spanning-tree extractor used for the initial subgraph.
    use_similarity : bool
        Mark spectrally similar edges for exclusion when recovering.
    reg_rel : float
        Relative diagonal shift regularizing singular Laplacians
        (footnote 1 of the paper).
    backend : str
        Linear-algebra backend executing the per-round factorizations
        and SPAI columns (inherited from
        :class:`~repro.core.base.BaseSparsifierConfig`).
    cholesky_backend : str
        Legacy refinement of the scipy backend's factorization path
        (``"auto"`` | ``"superlu"`` | ``"python"``); other backends
        ignore it.
    seed : int
        Seed recorded for API symmetry with the randomized baselines
        (Algorithm 2 itself is deterministic).
    ranking : {"approx", "exact"}
        Ranker used in the general (post-tree) rounds: the production
        SPAI path (Eq. 20) or exact solves (Eq. 11, validation only).
    workers : int
        Worker processes for candidate scoring: ``1`` serial (default),
        ``>1`` that many processes, ``0`` one per CPU.  Results are
        bit-identical for every setting.
    chunk_size : int
        Candidates per scoring task; ``0`` (default) picks
        :data:`repro.core.parallel.DEFAULT_CHUNK_SIZE`.  Results do not
        depend on this value.
    cache_max_nodes : int or None
        Bound on the cross-round ball cache (entries ~ candidate
        endpoints; each costs ~``ball_size * avg_degree`` ints).
        ``None`` (default) caches every endpoint; results do not depend
        on this value.
    """

    rounds: int = 5               # N_r
    beta: int = 5                 # BFS truncation depth (Eq. 12)
    delta: float = 0.1            # SPAI pruning threshold (Alg. 1)
    gamma: int = 2                # similarity-exclusion ball radius
    tree_method: str = "mewst"    # "mewst" | "max_weight" | "bfs"
    use_similarity: bool = True   # mark similar edges for exclusion
    reg_rel: float = 1e-6         # footnote-1 diagonal shift, relative
    cholesky_backend: str = "auto"
    ranking: str = "approx"       # "approx" | "exact" general-round ranker
    workers: int = 1              # scoring processes (0 = one per CPU)
    chunk_size: int = 0           # candidates per scoring task (0 = auto)
    cache_max_nodes: int | None = None  # ball-cache bound (None = unbounded)

    def validate(self) -> None:
        """Raise :class:`~repro.exceptions.GraphError` on bad knobs."""
        super().validate()
        if self.rounds < 1:
            raise GraphError("rounds must be >= 1")
        if self.beta < 1:
            raise GraphError("beta must be >= 1")
        if self.tree_method not in _TREE_METHODS:
            raise GraphError(
                f"unknown tree_method {self.tree_method!r}; "
                f"choose from {sorted(_TREE_METHODS)}"
            )
        if self.ranking not in _RANKINGS:
            raise GraphError(
                f"unknown ranking {self.ranking!r}; "
                f"choose from {sorted(_RANKINGS)}"
            )
        if self.workers < 0:
            raise GraphError("workers must be >= 0 (0 = one per CPU)")
        if self.chunk_size < 0:
            raise GraphError("chunk_size must be >= 0 (0 = auto)")
        if self.cache_max_nodes is not None and self.cache_max_nodes < 0:
            raise GraphError("cache_max_nodes must be >= 0 or None")
        from repro.backends import check_factorization_mode

        check_factorization_mode(self.backend, self.cholesky_backend)


@dataclass
class SparsifierResult:
    """Outcome of a sparsification run.

    Attributes
    ----------
    graph : Graph
        The original graph ``G``.
    edge_mask : numpy.ndarray
        Boolean mask over ``graph``'s edges; True = kept in ``P``.
    tree_edge_ids : numpy.ndarray
        Edge ids of the initial spanning tree/forest.
    recovered_edge_ids : numpy.ndarray
        Off-tree edges recovered by the densification rounds, in
        recovery order.
    config : SparsifierConfig
        The configuration the run used.
    setup_seconds : float
        Wall-clock time of the whole sparsification (including any
        cache-restore I/O; see ``restore_seconds``).
    rounds_log : list of dict
        One entry per executed round: phase, candidate count, edges
        added, trace reduction claimed, cache statistics and timing.
        Sharded runs tag every entry with the shard index.
    restore_seconds : float
        Portion of ``setup_seconds`` spent restoring artifacts from
        the persistent disk cache (0.0 for session-less or
        memory-only runs), so warm-run speedups are attributable to
        cache I/O vs compute.
    sharding : dict or None
        Shard-parallel diagnostics (shard sizes, per-shard timings,
        cut statistics) when the run went through
        :mod:`repro.core.sharding`; ``None`` for unsharded runs.
    """

    graph: Graph
    edge_mask: np.ndarray          # True = edge kept in the sparsifier
    tree_edge_ids: np.ndarray
    recovered_edge_ids: np.ndarray
    config: object
    setup_seconds: float = 0.0
    rounds_log: list = field(default_factory=list)
    restore_seconds: float = 0.0
    sharding: dict | None = None

    @property
    def sparsifier(self) -> Graph:
        """The sparsifier ``P`` as a graph (tree + recovered edges)."""
        return self.graph.subgraph(self.edge_mask)

    @property
    def edge_count(self) -> int:
        """Number of edges kept in the sparsifier."""
        return int(self.edge_mask.sum())


def _pick_edges(order, criticality, marker, per_round, use_similarity):
    """Walk a criticality-sorted candidate list, skipping marked edges.

    Mirrors Algorithm 2's inner while loop (steps 4-10 / 16-22);
    returns the list of recovered edge ids.
    """
    chosen = []
    graph = marker.graph
    for edge in order:
        edge = int(edge)
        if criticality is not None and criticality[edge] <= 0.0:
            # A zero trace reduction means the edge adds nothing
            # (numerically disconnected balls); never recover those.
            continue
        if marker.is_marked(edge):
            continue
        chosen.append(edge)
        if use_similarity:
            marker.mark_similar(int(graph.u[edge]), int(graph.v[edge]))
        else:
            marker.marked[edge] = True
        if len(chosen) >= per_round:
            break
    return chosen


def trace_reduction_sparsify(graph: Graph, config=None, *, artifacts=None,
                             **overrides):
    """Run Algorithm 2 on *graph* and return a :class:`SparsifierResult`.

    Prefer :func:`repro.sparsify` (``method="proposed"``) for new code;
    this entry point remains as the registered implementation and for
    backward compatibility.

    Parameters
    ----------
    graph : Graph
        The graph ``G`` to sparsify.
    config : SparsifierConfig, optional
        Full configuration object; mutually exclusive with keyword
        overrides.
    artifacts : repro.core.base.ArtifactStore, optional
        Session artifact store for reusing the spanning tree / forest,
        regularization shift and tree-phase criticality across runs on
        the same graph.  Reuse never changes results.
    **overrides
        :class:`SparsifierConfig` fields by keyword, e.g.
        ``trace_reduction_sparsify(g, edge_fraction=0.05, rounds=2,
        workers=4)``.

    Returns
    -------
    SparsifierResult
        The sparsifier ``P`` (tree + recovered edges) with per-round
        diagnostics.  Output is deterministic and independent of the
        ``workers`` / ``chunk_size`` knobs.

    Raises
    ------
    repro.exceptions.GraphError
        If both *config* and overrides are given, or a knob is invalid.
    """
    if config is None:
        config = SparsifierConfig(**overrides)
    elif overrides:
        raise GraphError("pass either a config object or overrides, not both")
    config.validate()

    timer = Timer()
    with timer:
        result = _run(graph, config, artifacts)
    result.setup_seconds = timer.elapsed
    return result


def _run(graph: Graph, config: SparsifierConfig,
         artifacts=None) -> SparsifierResult:
    n = graph.n
    m = graph.edge_count
    backend = config.resolve_backend()
    kernels = config.resolve_kernels()
    shift = shared_artifact(
        artifacts, "shift", (config.reg_rel,),
        lambda: regularization_shift(graph, config.reg_rel),
    )

    # Step 1: low-stretch spanning tree.
    tree_ids = shared_artifact(
        artifacts, "tree", (config.tree_method,),
        lambda: _TREE_METHODS[config.tree_method](graph),
    )
    from repro.tree.rooted import RootedForest

    forest = shared_artifact(
        artifacts, "forest", (config.tree_method,),
        lambda: RootedForest(graph, tree_ids),
    )
    edge_mask = forest.tree_edge_mask()

    budget = int(round(config.edge_fraction * n))
    budget = min(budget, m - len(tree_ids))
    per_round = max(1, int(np.ceil(budget / config.rounds))) if budget else 0
    marker = SimilarityMarker(graph, gamma=config.gamma)
    recovered: list = []
    rounds_log: list = []

    if budget > 0:
        # Step 2: tree-phase ranking (Eqs. 13-15).
        round_timer = Timer()
        with round_timer:
            def _tree_phase():
                # Depends only on (graph, tree, beta): candidates are the
                # off-tree edges and scores are worker-count invariant,
                # so a session can share them across fraction sweeps.
                cand = np.flatnonzero(~edge_mask)
                ranker = TreePhaseRanker(
                    graph, forest, beta=config.beta, kernels=kernels
                )
                scores = score_edges(
                    ranker, cand,
                    workers=config.workers, chunk_size=config.chunk_size,
                )
                return cand, scores

            candidates, crit = shared_artifact(
                artifacts, "tree_phase",
                (config.tree_method, config.beta), _tree_phase,
            )
            full_crit = np.zeros(m)
            full_crit[candidates] = crit
            order = candidates[np.argsort(-crit, kind="stable")]
            marker.attach_subgraph(forest.tree)
            chosen = _pick_edges(
                order, full_crit, marker, per_round, config.use_similarity
            )
            edge_mask[chosen] = True
            recovered.extend(chosen)
        rounds_log.append(
            {
                "round": 1,
                "phase": "tree",
                "candidates": len(candidates),
                "added": len(chosen),
                "trace_reduction": float(full_crit[chosen].sum()),
                "seconds": round_timer.elapsed,
            }
        )

        # Steps 11-23: iterative densification with Eq. (20).  The ball
        # cache outlives each round: only nodes near edges recovered in
        # the previous round have their balls invalidated.
        cache = BallCache(
            config.beta, max_entries=config.cache_max_nodes, kernels=kernels
        )
        touched: np.ndarray | None = None
        for round_index in range(2, config.rounds + 1):
            if len(recovered) >= budget:
                break
            round_timer = Timer()
            with round_timer:
                subgraph = graph.subgraph(edge_mask)
                laplacian_s = regularized_laplacian(subgraph, shift)
                factor = backend.factorize(
                    laplacian_s, mode=config.cholesky_backend
                )
                candidates = np.flatnonzero(~edge_mask & ~marker.marked)
                if len(candidates) == 0:
                    break
                if config.ranking == "exact":
                    Z = None
                    ranker = ExactRanker(graph, factor.solve)
                else:
                    sub_indptr, sub_nbr, _ = subgraph.adjacency()
                    cache.attach_subgraph(
                        sub_indptr, sub_nbr, invalidate=touched
                    )
                    Z = backend.spai_columns(factor.L, delta=config.delta)
                    ranker = ApproxRanker(
                        graph, subgraph, factor, Z,
                        beta=config.beta, cache=cache, kernels=kernels,
                    )
                crit = score_edges(
                    ranker, candidates,
                    workers=config.workers, chunk_size=config.chunk_size,
                )
                full_crit = np.zeros(m)
                full_crit[candidates] = crit
                order = candidates[np.argsort(-crit, kind="stable")]
                marker.attach_subgraph(subgraph)
                want = min(per_round, budget - len(recovered))
                chosen = _pick_edges(
                    order, full_crit, marker, want, config.use_similarity
                )
                edge_mask[chosen] = True
                recovered.extend(chosen)
                touched = np.unique(
                    np.concatenate([graph.u[chosen], graph.v[chosen]])
                ) if chosen else np.empty(0, dtype=np.int64)
            rounds_log.append(
                {
                    "round": round_index,
                    "phase": "general",
                    "candidates": len(candidates),
                    "added": len(chosen),
                    "trace_reduction": float(full_crit[chosen].sum()),
                    "spai_nnz": int(Z.nnz) if Z is not None else 0,
                    "factor_nnz": int(factor.nnz),
                    "cached_balls": len(cache),
                    "seconds": round_timer.elapsed,
                }
            )

    return SparsifierResult(
        graph=graph,
        edge_mask=edge_mask,
        tree_edge_ids=tree_ids,
        recovered_edge_ids=np.asarray(recovered, dtype=np.int64),
        config=config,
        rounds_log=rounds_log,
    )
