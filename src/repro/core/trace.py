"""Trace of ``L_S^{-1} L_G`` — the quantity Algorithm 2 drives down.

Eq. (5): ``kappa(L_G, L_S) <= Trace(L_S^{-1} L_G)``, so the trace is a
proxy for the relative condition number.  Exact evaluation is ``O(n^3)``
(dense); for larger systems the Hutchinson stochastic estimator
``E[z^T L_S^{-1} L_G z] = Trace`` (Rademacher ``z``) gives an unbiased
estimate with one solve per probe.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import as_rng

__all__ = ["trace_ratio_exact", "trace_ratio_hutchinson", "trace_ratio"]


def trace_ratio_exact(L_G, L_S) -> float:
    """``Trace(L_S^{-1} L_G)`` by dense solve (small systems only)."""
    dense_g = L_G.toarray() if sp.issparse(L_G) else np.asarray(L_G)
    dense_s = L_S.toarray() if sp.issparse(L_S) else np.asarray(L_S)
    return float(np.trace(np.linalg.solve(dense_s, dense_g)))


def trace_ratio_hutchinson(L_G, solve, probes=32, seed=0) -> float:
    """Unbiased stochastic estimate of ``Trace(L_S^{-1} L_G)``.

    Parameters
    ----------
    L_G:
        Sparse regularized Laplacian of the original graph.
    solve:
        Callable applying ``L_S^{-1}``.
    probes:
        Number of Rademacher probe vectors.
    """
    L_G = sp.csr_matrix(L_G)
    n = L_G.shape[0]
    rng = as_rng(seed)
    total = 0.0
    for _ in range(probes):
        z = rng.choice((-1.0, 1.0), size=n)
        total += float(z @ solve(L_G @ z))
    return total / probes


def trace_ratio(L_G, L_S, solve=None, dense_limit=1500, probes=32, seed=0):
    """Exact trace for small systems, Hutchinson estimate otherwise."""
    n = L_G.shape[0]
    if n <= dense_limit:
        return trace_ratio_exact(L_G, L_S)
    if solve is None:
        raise ValueError("large system: pass `solve` for the estimator")
    return trace_ratio_hutchinson(L_G, solve, probes=probes, seed=seed)
