"""Trace-reduction spectral criticality (Eqs. 11, 12 and 20).

Recovering an off-subgraph edge ``(p, q)`` changes the trace of
``L_S^{-1} L_G`` by (Sherman-Morrison, Eqs. 6-10)::

    TrRed_S(p, q) = w_pq * sum_{(i,j) in E} w_ij (e_ij^T L_S^{-1} e_pq)^2
                    -----------------------------------------------------
                                 1 + w_pq * R_S(p, q)

Three evaluation strategies, in decreasing cost / increasing scale:

* :func:`exact_trace_reduction` — Eq. (11) verbatim through one solve
  per edge (validation & tests);
* :func:`truncated_trace_reduction_reference` — Eq. (12): the sum
  restricted to edges joining the beta-hop BFS balls of ``p`` and ``q``,
  still using exact solves (validates the truncation separately from
  the SPAI approximation);
* :func:`approximate_trace_reduction` — Eq. (20): the production path
  that replaces ``L_S^{-1}`` inner products with sparse-approximate-
  inverse columns (Algorithm 1), giving ``O(log n)`` work per edge.
"""

from __future__ import annotations

import numpy as np

from repro.core._kernels import ball_pair_edge_sum, concat_ranges
from repro.graph.bfs import BallFinder
from repro.graph.graph import Graph

__all__ = [
    "exact_trace_reduction",
    "exact_trace_reduction_batch",
    "truncated_trace_reduction_reference",
    "approximate_trace_reduction",
]


def exact_trace_reduction(graph: Graph, solve, p: int, q: int, w_pq: float):
    """Eq. (11) for one candidate edge, via one solve with ``L_S``.

    With ``x = L_S^{-1} e_pq`` the numerator sum is
    ``sum w_ij (x_i - x_j)^2`` and ``R_S(p, q) = x_p - x_q``.
    """
    n = graph.n
    rhs = np.zeros(n)
    rhs[p] += 1.0
    rhs[q] -= 1.0
    x = solve(rhs)
    diffs = x[graph.u] - x[graph.v]
    numerator = w_pq * float(np.sum(graph.w * diffs * diffs))
    resistance = float(x[p] - x[q])
    return numerator / (1.0 + w_pq * resistance)


def exact_trace_reduction_batch(graph: Graph, solve, edge_ids) -> np.ndarray:
    """Eq. (11) for a batch of candidate edge ids (one solve each)."""
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    out = np.empty(len(edge_ids))
    for k, edge in enumerate(edge_ids):
        out[k] = exact_trace_reduction(
            graph,
            solve,
            int(graph.u[edge]),
            int(graph.v[edge]),
            float(graph.w[edge]),
        )
    return out


def truncated_trace_reduction_reference(
    graph: Graph, subgraph: Graph, solve, edge_ids, beta: int = 5
) -> np.ndarray:
    """Eq. (12): ball-truncated sum with *exact* solves (reference).

    BFS balls are grown in the current subgraph ``S`` (the physical
    model: current flows through ``S``, so high/low-potential nodes
    cluster around ``p`` / ``q`` within ``S``).
    """
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    n = graph.n
    sub_indptr, sub_nbr, _ = subgraph.adjacency()
    finder = BallFinder(sub_indptr, sub_nbr)
    g_indptr, g_nbr, g_eid = graph.adjacency()
    in_q_stamp = np.zeros(n, dtype=np.int64)
    out = np.empty(len(edge_ids))
    for k, edge in enumerate(edge_ids):
        p, q = int(graph.u[edge]), int(graph.v[edge])
        w_pq = float(graph.w[edge])
        rhs = np.zeros(n)
        rhs[p] += 1.0
        rhs[q] -= 1.0
        x = solve(rhs)
        resistance = float(x[p] - x[q])
        nodes_p, _, _ = finder.ball(p, beta)
        nodes_q, _, _ = finder.ball(q, beta)
        clock = k + 1
        in_q_stamp[nodes_q] = clock
        numerator = ball_pair_edge_sum(
            g_indptr, g_nbr, g_eid, graph.w, nodes_p, in_q_stamp, clock, x
        )
        out[k] = w_pq * numerator / (1.0 + w_pq * resistance)
    return out


def approximate_trace_reduction(
    graph: Graph,
    subgraph: Graph,
    factor,
    Z,
    edge_ids,
    beta: int = 5,
) -> np.ndarray:
    """Eq. (20): SPAI-based approximate truncated trace reduction.

    Parameters
    ----------
    graph:
        The original graph ``G``.
    subgraph:
        The current subgraph ``S`` (BFS balls are grown here).
    factor:
        :class:`~repro.linalg.cholesky.CholeskyFactor` of the
        regularized ``L_S`` — provides the ordering that maps original
        nodes to columns of ``Z``.
    Z:
        Output of :func:`~repro.linalg.spai.sparse_approximate_inverse`
        on ``factor.L``.
    edge_ids:
        Candidate off-subgraph edge ids (into ``graph``'s edge arrays).
    beta:
        BFS truncation depth (paper uses 5).

    Returns
    -------
    numpy.ndarray
        Approximate trace reduction per candidate edge.

    Notes
    -----
    For nodes ``a, b`` (original ids) with permuted columns
    ``za = Z[:, iperm[a]]``: ``e_ab^T L_S^{-1} e_pq ~ (za - zb) . u``
    where ``u = zp - zq``, and ``R_S(p, q) ~ u . u``.  Per candidate we
    scatter ``u`` once and compute all ball-node inner products with a
    single gather + bincount.
    """
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    n = graph.n
    iperm = factor.iperm
    z_indptr = Z.indptr
    z_indices = Z.indices.astype(np.int64)
    z_data = Z.data

    sub_indptr, sub_nbr, _ = subgraph.adjacency()
    finder = BallFinder(sub_indptr, sub_nbr)
    g_indptr, g_nbr, g_eid = graph.adjacency()

    u_dense = np.zeros(n)
    s_dense = np.zeros(n)
    in_q_stamp = np.zeros(n, dtype=np.int64)
    out = np.empty(len(edge_ids))

    for k, edge in enumerate(edge_ids):
        p, q = int(graph.u[edge]), int(graph.v[edge])
        w_pq = float(graph.w[edge])
        clock = k + 1

        # u = z~_p - z~_q scattered into a dense work vector.
        p_hat, q_hat = int(iperm[p]), int(iperm[q])
        rows_p = z_indices[z_indptr[p_hat] : z_indptr[p_hat + 1]]
        vals_p = z_data[z_indptr[p_hat] : z_indptr[p_hat + 1]]
        rows_q = z_indices[z_indptr[q_hat] : z_indptr[q_hat + 1]]
        vals_q = z_data[z_indptr[q_hat] : z_indptr[q_hat + 1]]
        u_dense[rows_p] += vals_p
        u_dense[rows_q] -= vals_q
        touched = np.unique(np.concatenate([rows_p, rows_q]))
        resistance = float(np.sum(u_dense[touched] ** 2))

        # BFS balls in the current subgraph.
        nodes_p, _, _ = finder.ball(p, beta)
        nodes_q, _, _ = finder.ball(q, beta)
        in_q_stamp[nodes_q] = clock

        # s_a = z~_a . u for every node in either ball, in one gather.
        ball_nodes = np.unique(np.concatenate([nodes_p, nodes_q]))
        cols = iperm[ball_nodes]
        starts = z_indptr[cols]
        lengths = z_indptr[cols + 1] - starts
        flat = concat_ranges(starts, lengths)
        col_of = np.repeat(np.arange(len(ball_nodes)), lengths)
        s_values = np.bincount(
            col_of,
            weights=z_data[flat] * u_dense[z_indices[flat]],
            minlength=len(ball_nodes),
        )
        s_dense[ball_nodes] = s_values

        numerator = ball_pair_edge_sum(
            g_indptr, g_nbr, g_eid, graph.w, nodes_p, in_q_stamp, clock, s_dense
        )
        out[k] = w_pq * numerator / (1.0 + w_pq * resistance)

        u_dense[rows_p] = 0.0
        u_dense[rows_q] = 0.0
    return out
