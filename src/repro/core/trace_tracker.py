"""Incremental trace tracking via the Sherman-Morrison update (Eqs. 6-10).

Adding edge ``(p, q)`` to the subgraph updates the inverse Laplacian by
a rank-1 correction (Eq. 7), which drops ``Trace(L_S^{-1} L_G)`` by
exactly the trace reduction of Eq. (11).  :class:`TraceTracker` exposes
that identity as a tool: seed it with the trace of the initial subgraph
(exact or Hutchinson-estimated), then *account* each recovered edge's
trace reduction to maintain a running quality estimate of the growing
sparsifier — without any eigensolves.

This is the quantity Algorithm 2 greedily minimizes, so the tracker
doubles as an introspection device: plotting its trajectory against the
recovered-edge count shows the diminishing returns that motivate the
paper's 10% |V| budget.
"""

from __future__ import annotations

import numpy as np

from repro.core.trace import trace_ratio_exact, trace_ratio_hutchinson
from repro.core.trace_reduction import exact_trace_reduction
from repro.graph.graph import Graph

__all__ = ["TraceTracker"]


class TraceTracker:
    """Running estimate of ``Trace(L_S^{-1} L_G)`` under edge recovery.

    Parameters
    ----------
    graph:
        The original graph ``G``.
    initial_trace:
        ``Trace(L_S0^{-1} L_G)`` of the starting subgraph (use
        :func:`repro.core.trace.trace_ratio` to obtain it).
    """

    def __init__(self, graph: Graph, initial_trace: float) -> None:
        if initial_trace < graph.n * (1 - 1e-9):
            raise ValueError(
                f"trace {initial_trace} below n={graph.n}: the generalized "
                "spectrum lies above 1, so the trace cannot be smaller"
            )
        self.graph = graph
        self.history = [float(initial_trace)]
        self.accounted_edges: list = []

    @property
    def current(self) -> float:
        """Latest trace estimate."""
        return self.history[-1]

    def account(self, edge_id: int, trace_reduction: float) -> float:
        """Apply Eq. (10) for one recovered edge; returns the new trace.

        ``trace_reduction`` is the (approximate) criticality the
        sparsifier computed for the edge; exactness of the running
        estimate matches the exactness of those inputs.
        """
        if trace_reduction < 0:
            raise ValueError("trace reduction must be nonnegative")
        new_value = self.current - float(trace_reduction)
        # The trace can never fall below n (all generalized eigenvalues
        # are >= 1); clamp to keep approximate inputs honest.
        new_value = max(new_value, float(self.graph.n))
        self.history.append(new_value)
        self.accounted_edges.append(int(edge_id))
        return new_value

    def account_exact(self, solve, edge_id: int) -> float:
        """Account an edge with its *exact* trace reduction (Eq. 11).

        ``solve`` applies the inverse of the **current** subgraph
        Laplacian (before adding the edge).
        """
        edge_id = int(edge_id)
        reduction = exact_trace_reduction(
            self.graph,
            solve,
            int(self.graph.u[edge_id]),
            int(self.graph.v[edge_id]),
            float(self.graph.w[edge_id]),
        )
        return self.account(edge_id, reduction)

    def verify(self, laplacian_g, laplacian_s, solve=None, probes=64,
               seed=0) -> float:
        """Measure the true trace of the current subgraph and return the
        relative drift of the running estimate (diagnostics)."""
        n = self.graph.n
        if n <= 1500:
            actual = trace_ratio_exact(laplacian_g, laplacian_s)
        else:
            if solve is None:
                raise ValueError("large graph: pass `solve` for estimation")
            actual = trace_ratio_hutchinson(
                laplacian_g, solve, probes=probes, seed=seed
            )
        return abs(self.current - actual) / max(abs(actual), 1e-300)
