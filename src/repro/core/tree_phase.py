"""Tree-phase truncated trace reduction (Eqs. 13-15).

When the current subgraph is a spanning tree ``T``, no linear solves are
needed at all: the paper's physical model injects a unit current at
``p`` and extracts it at ``q``; the current flows only along the unique
tree path, so node potentials are piecewise constant off the path and
drop by ``1/w_e`` across each path edge.  Concretely:

* ``R_T(p, q)`` comes from Tarjan's offline LCA over all queries;
* the potential of every node in the beta-ball around ``p`` (resp.
  ``q``) is propagated by BFS: crossing a path edge changes the
  potential by ``-1/w`` (resp. ``+1/w``), any other tree edge keeps it
  (Eqs. 13-14);
* the truncated numerator is the usual restricted quadratic form over
  original-graph edges joining the two balls (Eq. 15).

The "is this tree edge on path(p, q)?" test uses Euler-tour subtree
intervals, making it O(1) per edge with no per-candidate path walks.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bfs import BallFinder
from repro.graph.graph import Graph
from repro.tree.lca import batch_tree_resistances
from repro.tree.rooted import RootedForest

__all__ = ["tree_truncated_trace_reduction"]


def tree_truncated_trace_reduction(
    graph: Graph, forest: RootedForest, edge_ids=None, beta: int = 5,
    resistances=None, kernels=None,
):
    """Truncated trace reduction for off-tree edges (Eq. 15).

    Parameters
    ----------
    graph : Graph
        The original graph ``G``.
    forest : RootedForest
        Rooted spanning forest ``T`` (the initial subgraph).
    edge_ids : array_like of int, optional
        Candidate off-tree edge ids; defaults to every non-tree edge.
    beta : int, optional
        BFS truncation depth (paper default 5).
    resistances : array_like of float, optional
        Precomputed tree effective resistances aligned with
        *edge_ids*.  When scoring in chunks (the batched ranking
        engine), computing them once for the whole candidate set avoids
        repeating the offline-LCA DFS per chunk; omitted, they are
        computed here.
    kernels : KernelSet or str, optional
        Hot-path kernel tier evaluating the restricted quadratic form
        of Eq. 15; defaults to the auto-resolved tier (see
        :mod:`repro.kernels`).  Bit-identical across tiers.

    Returns
    -------
    (criticality, edge_ids, resistances)
        Arrays aligned with each other: the truncated trace reduction,
        the candidate ids, and the tree effective resistances.
    """
    if edge_ids is None:
        mask = forest.tree_edge_mask()
        edge_ids = np.flatnonzero(~mask)
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    if len(edge_ids) == 0:
        return np.empty(0), edge_ids, np.empty(0)

    heads = graph.u[edge_ids]
    tails = graph.v[edge_ids]
    if resistances is None:
        resistances, _ = batch_tree_resistances(forest, heads, tails)
    else:
        resistances = np.asarray(resistances, dtype=np.float64)
        if len(resistances) != len(edge_ids):
            raise ValueError("resistances/edge_ids length mismatch")
    tin, tout = forest.euler_intervals()
    depth = forest.depth

    from repro.kernels import resolve_kernel_set  # deferred: cycle

    kernel_set = resolve_kernel_set(kernels)
    ball_pair_edge_sum = kernel_set.ball_pair_edge_sum
    tree_indptr, tree_nbr, tree_local_eid = forest.tree.adjacency()
    tree_global_eid = forest.edge_ids[tree_local_eid]
    finder = BallFinder(
        tree_indptr, tree_nbr, edge_ids=tree_global_eid, kernels=kernel_set
    )
    g_indptr, g_nbr, g_eid = graph.adjacency()

    n = graph.n
    weights = graph.w
    v_dense = np.zeros(n)
    in_q_stamp = np.zeros(n, dtype=np.int64)
    out = np.empty(len(edge_ids))

    for k in range(len(edge_ids)):
        p = int(heads[k])
        q = int(tails[k])
        w_pq = float(weights[edge_ids[k]])
        r_pq = float(resistances[k])
        clock = k + 1

        nodes_p, preds_p, eids_p = finder.ball(p, beta)
        nodes_q, preds_q, eids_q = finder.ball(q, beta)
        in_q_stamp[nodes_q] = clock

        # Potential propagation, Eq. (13): v(p) = R_T(p, q), descending
        # by 1/w across path edges when walking away from p toward q.
        v_dense[p] = r_pq
        _propagate(
            nodes_p, preds_p, eids_p, v_dense, weights, depth, tin, tout,
            p, q, -1.0,
        )
        # Eq. (14): v(q) = 0, ascending across path edges toward p.
        v_dense[q] = 0.0
        _propagate(
            nodes_q, preds_q, eids_q, v_dense, weights, depth, tin, tout,
            p, q, +1.0,
        )

        numerator = ball_pair_edge_sum(
            g_indptr, g_nbr, g_eid, weights, nodes_p, in_q_stamp, clock,
            v_dense,
        )
        out[k] = w_pq * numerator / (1.0 + w_pq * r_pq)
    return out, edge_ids, resistances


def _propagate(nodes, preds, eids, v_dense, weights, depth, tin, tout, p, q, sign):
    """Propagate potentials over one BFS ball (Eqs. 13-14).

    ``nodes[0]`` is the source whose potential the caller has already
    set; every other node copies its BFS predecessor's potential,
    adjusted by ``sign / w`` when the connecting tree edge lies on the
    p-q path.  The on-path test: the edge (parent, child) is on the path
    iff exactly one of p, q lies in child's subtree (Euler intervals).
    """
    tin_p, tin_q = tin[p], tin[q]
    for idx in range(1, len(nodes)):
        node = int(nodes[idx])
        pred = int(preds[idx])
        value = v_dense[pred]
        # The deeper endpoint of the tree edge is the subtree root.
        child = node if depth[node] > depth[pred] else pred
        lo, hi = tin[child], tout[child]
        in_p = lo <= tin_p < hi
        in_q = lo <= tin_q < hi
        if in_p != in_q:
            value += sign / weights[eids[idx]]
        v_dense[node] = value
