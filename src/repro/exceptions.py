"""Exception types used across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(ReproError):
    """Raised for malformed graphs (bad edges, negative weights, ...)."""


class NotATreeError(ReproError):
    """Raised when an operation requires a tree/forest but got cycles."""


class FactorizationError(ReproError):
    """Raised when a matrix factorization fails (not SPD, singular, ...)."""


class ConvergenceError(ReproError):
    """Raised when an iterative method fails to reach its tolerance."""


class SimulationError(ReproError):
    """Raised for inconsistent power-grid netlists or simulation setups."""


class UnknownMethodError(ReproError, ValueError):
    """Raised when a sparsifier method name is not in the registry.

    Also a :class:`ValueError` so callers of the pre-registry
    ``build_sparsifier_preconditioner`` keep working.
    """


class UnknownOptionError(ReproError):
    """Raised when a sparsifier option does not apply to the method."""


class BackendError(ReproError, ValueError):
    """Raised for unknown or unavailable linear-algebra backends.

    Also a :class:`ValueError` so generic option-validation callers can
    treat a bad ``backend=`` the same way as any other bad option.
    """


class KernelError(BackendError):
    """Raised for unknown or unavailable hot-path kernel tiers.

    A :class:`BackendError` (and therefore a :class:`ValueError`) so
    callers validating a ``kernels=`` option can treat it exactly like
    a bad ``backend=``.
    """


class CacheError(ReproError):
    """Raised for unusable on-disk artifact-cache configurations."""


class IncrementalError(ReproError):
    """Raised for invalid evolving-graph operations.

    Covers mutation of methods without the ``supports_incremental``
    capability, malformed edge batches (deleting an absent edge,
    inserting a duplicate), and unknown graph-session ids on the
    service's ``/graphs`` surface.
    """


class ServiceError(ReproError):
    """Raised for sparsification-service failures.

    Covers malformed job submissions, unknown job ids, invalid
    lifecycle transitions (e.g. cancelling a running job), and
    client-side transport errors (connection refused, non-2xx
    responses).
    """


class ServiceUnavailableError(ServiceError):
    """Raised when the service refuses new work (shutdown in progress).

    A distinct type so the HTTP layer can map it to 503 without
    sniffing message text.
    """


class ServiceConnectionError(ServiceError):
    """Raised when the daemon cannot be reached at the transport level.

    Connection refused, DNS failure, a socket reset mid-request — the
    daemon is *gone*, as opposed to reachable-but-unhappy (a non-2xx
    response, which stays a plain :class:`ServiceError`).  A distinct
    type so pollers like :meth:`ServiceClient.wait` can abort
    immediately instead of backing off against a dead socket.
    """


class PayloadTooLargeError(ServiceError):
    """Raised when a request body exceeds the daemon's size bound.

    A distinct type so the HTTP layer can map it to 413 without
    sniffing message text.
    """


class WorkerCrashError(ServiceError):
    """Raised when an execution worker dies mid-job (killed, OOM, ...).

    An *infrastructure* failure, not a failure of the job's own code:
    the scheduler retries the job (up to its retry budget) on a fresh
    worker before giving up, and promotes deduplicated followers of a
    permanently-crashed primary instead of failing them alongside it.
    """
