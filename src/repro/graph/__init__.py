"""Graph substrate: data structure, Laplacians, BFS, generators, I/O."""

from repro.graph.graph import Graph
from repro.graph.laplacian import (
    laplacian,
    incidence_matrix,
    regularization_shift,
    regularized_laplacian,
    graph_from_sdd_matrix,
)
from repro.graph.bfs import BallFinder, bfs_tree_order
from repro.graph.components import connected_components, is_connected
from repro.graph.generators import (
    grid2d,
    grid3d,
    triangular_mesh,
    random_geometric_graph,
    circuit_grid,
)
from repro.graph.suitesparse_like import make_case, CASE_REGISTRY, CaseSpec
from repro.graph.mtx_io import (
    MtxHeader,
    iter_mtx_entries,
    read_graph_mtx,
    read_graph_mtx_streaming,
    read_mtx_boundary,
    read_mtx_header,
    read_mtx_shard,
    write_graph_mtx,
)

__all__ = [
    "Graph",
    "laplacian",
    "incidence_matrix",
    "regularization_shift",
    "regularized_laplacian",
    "graph_from_sdd_matrix",
    "BallFinder",
    "bfs_tree_order",
    "connected_components",
    "is_connected",
    "grid2d",
    "grid3d",
    "triangular_mesh",
    "random_geometric_graph",
    "circuit_grid",
    "make_case",
    "CASE_REGISTRY",
    "CaseSpec",
    "MtxHeader",
    "read_mtx_header",
    "iter_mtx_entries",
    "read_graph_mtx",
    "read_graph_mtx_streaming",
    "read_mtx_shard",
    "read_mtx_boundary",
    "write_graph_mtx",
]
