"""Breadth-first-search kernels.

The truncated trace reduction (Eqs. 12, 15, 20 of the paper) needs a
``beta``-layer BFS ball around each endpoint of every candidate edge.
Because this runs once per off-subgraph edge, the :class:`BallFinder`
keeps reusable "stamp" work arrays so a ball query allocates nothing of
size ``n``.

Two query families:

* :meth:`BallFinder.ball` — the original per-node Python BFS that also
  reports predecessors (required by the tree-phase potential
  propagation, Eqs. 13-14);
* :meth:`BallFinder.ball_nodes` / :meth:`BallFinder.balls` — vectorized
  frontier expansion returning only the (sorted) node set, used by the
  batched ranking engine where per-node Python loops would dominate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BallFinder", "bfs_tree_order"]


class BallFinder:
    """Repeated beta-layer BFS ball queries over a fixed adjacency.

    Parameters
    ----------
    indptr, neighbors:
        CSR adjacency of the graph to traverse (typically the *current
        subgraph* in Algorithm 2, or the spanning tree in the tree phase).
    edge_ids:
        Optional array parallel to *neighbors* giving the id of the edge
        connecting each (node, neighbor) pair; when provided, ball
        queries also report the predecessor edge of every visited node.
    kernels:
        Optional :class:`~repro.kernels.KernelSet` (or tier name)
        executing the vectorized layer expansion of
        :meth:`ball_nodes`; defaults to the auto-resolved tier.  Every
        tier is bit-identical, so this only affects speed.
    """

    def __init__(self, indptr, neighbors, edge_ids=None, kernels=None) -> None:
        from repro.kernels import resolve_kernel_set  # deferred: cycle

        self.indptr = indptr
        self.neighbors = neighbors
        self.edge_ids = edge_ids
        self.kernels = resolve_kernel_set(kernels)
        n = len(indptr) - 1
        self._stamp = np.zeros(n, dtype=np.int64)
        self._clock = 0

    def ball(self, source: int, layers: int):
        """Nodes within *layers* hops of *source*.

        Returns
        -------
        nodes : numpy.ndarray
            Visited nodes in BFS order (``source`` first).
        pred : numpy.ndarray
            ``pred[k]`` is the BFS predecessor (a node id) of
            ``nodes[k]``, ``-1`` for the source.  Each predecessor
            appears in ``nodes`` before its successors, which the
            tree-phase voltage propagation (Eqs. 13-14) relies on.
        pred_eid : numpy.ndarray or None
            Ids of the predecessor edges (``-1`` for the source) when
            the finder was built with ``edge_ids``, else ``None``.
        """
        self._clock += 1
        clock = self._clock
        stamp = self._stamp
        indptr = self.indptr
        neighbors = self.neighbors
        edge_ids = self.edge_ids
        stamp[source] = clock
        visited = [int(source)]
        preds = [-1]
        pred_eids = [-1]
        frontier = [int(source)]
        for _ in range(layers):
            if not frontier:
                break
            next_frontier = []
            for node in frontier:
                start, stop = indptr[node], indptr[node + 1]
                for k in range(start, stop):
                    nbr = int(neighbors[k])
                    if stamp[nbr] != clock:
                        stamp[nbr] = clock
                        visited.append(nbr)
                        preds.append(node)
                        if edge_ids is not None:
                            pred_eids.append(int(edge_ids[k]))
                        next_frontier.append(nbr)
            frontier = next_frontier
        nodes = np.asarray(visited, dtype=np.int64)
        pred = np.asarray(preds, dtype=np.int64)
        if edge_ids is None:
            return nodes, pred, None
        return nodes, pred, np.asarray(pred_eids, dtype=np.int64)

    # Frontier size at which vectorized layer expansion overtakes the
    # plain Python loop (numpy per-call overhead vs per-node work).
    _VECTOR_FRONTIER = 32

    def ball_nodes(self, source: int, layers: int) -> np.ndarray:
        """Sorted node set within *layers* hops of *source* (no preds).

        Adaptive frontier expansion: small frontiers walk a plain
        Python loop (per-layer dispatch overhead would dominate), large
        ones hand the whole layer to the active kernel tier's
        :meth:`~repro.kernels.KernelSet.expand_frontier` (one CSR
        gather + stamp filter per layer).  The batched rankers use this
        when predecessor information is not needed.

        Parameters
        ----------
        source : int
            Ball center.
        layers : int
            BFS truncation depth (``beta`` in the paper).

        Returns
        -------
        numpy.ndarray
            Sorted ``int64`` array of the ball's nodes (``source``
            included).
        """
        self._clock += 1
        clock = self._clock
        stamp = self._stamp
        indptr = self.indptr
        neighbors = self.neighbors
        expand = self.kernels.expand_frontier
        stamp[source] = clock
        frontier: list | np.ndarray = [int(source)]
        parts = [np.asarray(frontier, dtype=np.int64)]
        for _ in range(layers):
            if len(frontier) < self._VECTOR_FRONTIER:
                fresh_list = []
                for node in frontier:
                    for k in range(indptr[node], indptr[node + 1]):
                        nbr = int(neighbors[k])
                        if stamp[nbr] != clock:
                            stamp[nbr] = clock
                            fresh_list.append(nbr)
                if not fresh_list:
                    break
                frontier = fresh_list
                parts.append(np.asarray(fresh_list, dtype=np.int64))
            else:
                fresh = expand(
                    indptr, neighbors,
                    np.asarray(frontier, dtype=np.int64), stamp, clock,
                )
                if len(fresh) == 0:
                    break
                parts.append(fresh)
                frontier = fresh
        if len(parts) == 1:
            return parts[0]
        return np.sort(np.concatenate(parts))

    def balls(self, sources, layers: int) -> dict:
        """Bulk :meth:`ball_nodes` for many sources.

        The ranking engine's :class:`~repro.core.ranking.BallCache`
        warms its per-round cache through this entry point.

        Parameters
        ----------
        sources : array_like of int
            Ball centers (duplicates are computed once).
        layers : int
            BFS truncation depth.

        Returns
        -------
        dict
            Maps each source node to its sorted ball-node array.
        """
        out = {}
        for source in np.asarray(sources, dtype=np.int64):
            source = int(source)
            if source not in out:
                out[source] = self.ball_nodes(source, layers)
        return out


def bfs_tree_order(indptr, neighbors, roots, n=None):
    """Full BFS over a graph from the given roots.

    Returns ``(order, pred)`` where *order* lists every reachable node in
    BFS order and ``pred`` maps each node to its BFS predecessor (``-1``
    for roots, ``-2`` for unreachable nodes).  Used to root spanning
    forests and for component sweeps.
    """
    if n is None:
        n = len(indptr) - 1
    pred = np.full(n, -2, dtype=np.int64)  # -2 == unvisited
    order = []
    for root in np.atleast_1d(np.asarray(roots, dtype=np.int64)):
        root = int(root)
        if pred[root] != -2:
            continue
        pred[root] = -1
        queue = [root]
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            order.append(node)
            for nbr in neighbors[indptr[node] : indptr[node + 1]]:
                nbr = int(nbr)
                if pred[nbr] == -2:
                    pred[nbr] = node
                    queue.append(nbr)
    return np.asarray(order, dtype=np.int64), pred
