"""Connected-component utilities (forest-aware algorithms need these)."""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph

__all__ = ["connected_components", "is_connected", "component_roots"]


def connected_components(graph: Graph):
    """Label connected components.

    Returns
    -------
    count : int
        Number of components.
    labels : numpy.ndarray
        ``labels[i]`` is the 0-based component id of node ``i``; ids are
        assigned in order of each component's smallest node.
    """
    indptr, nbr, _ = graph.adjacency()
    labels = np.full(graph.n, -1, dtype=np.int64)
    count = 0
    for start in range(graph.n):
        if labels[start] != -1:
            continue
        labels[start] = count
        queue = [start]
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            for neighbor in nbr[indptr[node] : indptr[node + 1]]:
                neighbor = int(neighbor)
                if labels[neighbor] == -1:
                    labels[neighbor] = count
                    queue.append(neighbor)
        count += 1
    return count, labels


def is_connected(graph: Graph) -> bool:
    """True when the graph has a single connected component."""
    count, _ = connected_components(graph)
    return count == 1


def component_roots(labels: np.ndarray) -> np.ndarray:
    """Smallest node id of each component (roots for forest rooting)."""
    count = int(labels.max()) + 1 if len(labels) else 0
    roots = np.full(count, -1, dtype=np.int64)
    for node, label in enumerate(labels):
        if roots[label] == -1:
            roots[label] = node
    return roots
