"""Synthetic graph generators and the workload-family registry.

These produce the topology classes the paper's test suite draws from —
2-D finite-difference grids (ecology2, tmt_sym, ...), 2-D finite-element
triangulations (thermal2 and the aerodynamic meshes NACA0015/M6/...),
multi-layer circuit-style grids (G3_circuit) — plus the non-geometric
workload families the application benchmarks sweep: Barabási–Albert
preferential attachment, Watts–Strogatz small-world rings, stochastic
Kronecker (R-MAT) graphs, the erased configuration model, and planted
bipartite recommendation graphs.  All generators take a ``seed`` and a
``weights`` model so experiments are reproducible, and every returned
graph obeys the :class:`~repro.graph.Graph` contract: canonical
``u < v`` edges, no self loops or duplicates, finite positive weights,
bit-identical output per seed.

Every family is also published through :data:`GENERATOR_REGISTRY`
(see :class:`GeneratorSpec` and :func:`make_family_graph`), the single
source the benchmarks, ``docs/api-reference.md`` and the family sweeps
enumerate.

Weight models
-------------
``"unit"``
    All weights 1.0.
``"uniform"``
    Log-uniform in ``[w_min, w_max]`` (independent per edge) — mimics
    conductance spread in circuit matrices.
``"smooth"``
    A smooth random field evaluated at edge midpoints — mimics FEM
    coefficient fields, where nearby elements have similar weights.
    Non-geometric families embed node ``i`` at ``i / n`` on the unit
    interval, so "nearby" means nearby in node id.
"""

from __future__ import annotations

import math
import typing
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.utils.rng import as_rng

__all__ = [
    "grid2d",
    "grid3d",
    "triangular_mesh",
    "random_geometric_graph",
    "circuit_grid",
    "barabasi_albert",
    "watts_strogatz",
    "stochastic_kronecker",
    "kronecker_expected_edges",
    "configuration_model",
    "bipartite_recommender",
    "planted_labels",
    "edge_weights",
    "GeneratorSpec",
    "GENERATOR_REGISTRY",
    "list_families",
    "make_family_graph",
]


def edge_weights(kind, midpoints, rng, w_min=0.1, w_max=10.0):
    """Sample edge weights for the given model (see module docstring)."""
    count = len(midpoints)
    if kind == "unit":
        return np.ones(count)
    if kind == "uniform":
        log_lo, log_hi = np.log(w_min), np.log(w_max)
        return np.exp(rng.uniform(log_lo, log_hi, size=count))
    if kind == "smooth":
        # Random low-frequency Fourier field, rescaled to [w_min, w_max].
        midpoints = np.asarray(midpoints, dtype=np.float64)
        if midpoints.ndim == 1:
            midpoints = midpoints[:, None]
        dims = midpoints.shape[1]
        field = np.zeros(count)
        for _ in range(6):
            freq = rng.uniform(0.5, 3.0, size=dims)
            phase = rng.uniform(0, 2 * np.pi)
            amp = rng.uniform(0.5, 1.0)
            field += amp * np.sin(2 * np.pi * midpoints @ freq + phase)
        span = field.max() - field.min()
        if span == 0:
            return np.full(count, np.sqrt(w_min * w_max))
        unit = (field - field.min()) / span
        return np.exp(np.log(w_min) + unit * (np.log(w_max) - np.log(w_min)))
    raise GraphError(f"unknown weight model {kind!r}")


def _grid_coords_2d(nx, ny):
    xs, ys = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    coords = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(np.float64)
    coords[:, 0] /= max(nx - 1, 1)
    coords[:, 1] /= max(ny - 1, 1)
    return coords


def grid2d(nx, ny, weights="uniform", diagonals=False, seed=0,
           w_min=0.1, w_max=10.0):
    """2-D grid graph on an ``nx x ny`` lattice (5- or 7-point stencil).

    With ``diagonals=True`` one diagonal per cell is added, producing a
    triangular-lattice stencil with ``m ~ 3n`` like ``parabolic_fem`` /
    ``tmt_sym``; without it ``m ~ 2n`` like ``ecology2``.
    ``w_min``/``w_max`` bound the weight spread (constant-coefficient
    FEM matrices call for a narrow band, circuit matrices a wide one).
    """
    if nx < 1 or ny < 1:
        raise GraphError("grid2d needs nx, ny >= 1")
    rng = as_rng(seed)

    def node(i, j):
        return i * ny + j

    xs, ys = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    idx = (xs * ny + ys).astype(np.int64)
    edges_u, edges_v = [], []
    # horizontal (i, j) - (i+1, j)
    edges_u.append(idx[:-1, :].ravel())
    edges_v.append(idx[1:, :].ravel())
    # vertical (i, j) - (i, j+1)
    edges_u.append(idx[:, :-1].ravel())
    edges_v.append(idx[:, 1:].ravel())
    if diagonals:
        edges_u.append(idx[:-1, :-1].ravel())
        edges_v.append(idx[1:, 1:].ravel())
    u = np.concatenate(edges_u)
    v = np.concatenate(edges_v)
    coords = _grid_coords_2d(nx, ny)
    mid = 0.5 * (coords[u] + coords[v])
    w = edge_weights(weights, mid, rng, w_min=w_min, w_max=w_max)
    return Graph(nx * ny, u, v, w, validate=False)


def grid3d(nx, ny, nz, weights="uniform", seed=0):
    """3-D grid graph (7-point stencil)."""
    if min(nx, ny, nz) < 1:
        raise GraphError("grid3d needs nx, ny, nz >= 1")
    rng = as_rng(seed)
    shape = (nx, ny, nz)
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(shape)
    edges_u, edges_v = [], []
    edges_u.append(idx[:-1, :, :].ravel())
    edges_v.append(idx[1:, :, :].ravel())
    edges_u.append(idx[:, :-1, :].ravel())
    edges_v.append(idx[:, 1:, :].ravel())
    edges_u.append(idx[:, :, :-1].ravel())
    edges_v.append(idx[:, :, 1:].ravel())
    u = np.concatenate(edges_u)
    v = np.concatenate(edges_v)
    # Normalized midpoints for the smooth model.
    coords = np.stack(np.unravel_index(np.arange(nx * ny * nz), shape), axis=1)
    coords = coords / np.maximum(np.array(shape) - 1, 1)
    mid = 0.5 * (coords[u] + coords[v])
    w = edge_weights(weights, mid, rng)
    return Graph(nx * ny * nz, u, v, w, validate=False)


_MESH_SHAPES = ("square", "disk", "annulus", "airfoil", "wing", "lshape")


def _shape_mask(points, shape):
    x, y = points[:, 0], points[:, 1]
    if shape == "square":
        return np.ones(len(points), dtype=bool)
    if shape == "disk":
        return (x - 0.5) ** 2 + (y - 0.5) ** 2 <= 0.25
    if shape == "annulus":
        r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2
        return (r2 <= 0.25) & (r2 >= 0.04)
    if shape == "airfoil":
        # Rectangle with an elongated elliptical hole (airfoil stand-in).
        hole = ((x - 0.5) / 0.25) ** 2 + ((y - 0.5) / 0.05) ** 2 <= 1.0
        return ~hole
    if shape == "wing":
        # Tapered planform: |y - 0.5| below a linearly shrinking chord.
        return np.abs(y - 0.5) <= 0.45 * (1.0 - 0.7 * x)
    if shape == "lshape":
        return ~((x > 0.5) & (y > 0.5))
    raise GraphError(f"unknown mesh shape {shape!r}; choose from {_MESH_SHAPES}")


def triangular_mesh(n_points, shape="square", weights="smooth", seed=0):
    """Delaunay triangulation of a random point cloud in a 2-D shape.

    Stand-in for the paper's finite-element meshes; the Delaunay
    triangulation of ``n`` points has ``~3n`` edges and average degree
    ``~6``, matching the aerodynamic SuiteSparse cases.
    """
    from scipy.spatial import Delaunay

    if n_points < 4:
        raise GraphError("triangular_mesh needs at least 4 points")
    rng = as_rng(seed)
    points = np.empty((0, 2))
    # Rejection-sample until enough points fall inside the shape.
    while len(points) < n_points:
        batch = rng.random((2 * n_points, 2))
        keep = batch[_shape_mask(batch, shape)]
        points = np.vstack([points, keep])
    points = points[:n_points]
    tri = Delaunay(points)
    simplices = tri.simplices
    pairs = np.vstack(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]]
    )
    pairs.sort(axis=1)
    pairs = np.unique(pairs, axis=0)
    u, v = pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64)
    mid = 0.5 * (points[u] + points[v])
    base = edge_weights(weights, mid, rng)
    # FEM stiffness scales like inverse edge length; fold that in so the
    # weight spread resembles assembled FEM matrices.
    lengths = np.linalg.norm(points[u] - points[v], axis=1)
    lengths = np.maximum(lengths, 1e-12)
    w = base * (lengths.mean() / lengths)
    return Graph(len(points), u, v, w, validate=False)


def random_geometric_graph(n, radius=None, weights="uniform", seed=0):
    """Random geometric graph on the unit square (KD-tree neighbor pairs).

    Falls back to a connectivity-safe radius ``~ sqrt(2 log n / n)`` when
    *radius* is omitted.
    """
    from scipy.spatial import cKDTree

    rng = as_rng(seed)
    if radius is None:
        radius = float(np.sqrt(2.0 * np.log(max(n, 2)) / max(n, 2)))
    points = rng.random((n, 2))
    tree = cKDTree(points)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    if len(pairs) == 0:
        raise GraphError("random_geometric_graph produced no edges; grow radius")
    u, v = pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64)
    mid = 0.5 * (points[u] + points[v])
    w = edge_weights(weights, mid, rng)
    return Graph(n, u, v, w, validate=False)


def circuit_grid(nx, ny, layers=2, via_density=0.05, weights="uniform", seed=0):
    """Multi-layer circuit-style grid (G3_circuit stand-in).

    *layers* stacked 2-D grids connected by randomly placed vias; vias get
    higher conductance than in-plane wires, as in real power/clock grids.
    """
    if layers < 1:
        raise GraphError("circuit_grid needs layers >= 1")
    rng = as_rng(seed)
    per_layer = nx * ny
    all_u, all_v, all_w = [], [], []
    for layer in range(layers):
        g = grid2d(nx, ny, weights=weights, seed=rng.integers(0, 2**31))
        all_u.append(g.u + layer * per_layer)
        all_v.append(g.v + layer * per_layer)
        all_w.append(g.w)
    for layer in range(layers - 1):
        count = max(1, int(via_density * per_layer))
        vias = rng.choice(per_layer, size=count, replace=False)
        all_u.append(vias + layer * per_layer)
        all_v.append(vias + (layer + 1) * per_layer)
        # Vias: an order of magnitude more conductive than plane wires.
        all_w.append(np.exp(rng.uniform(np.log(5.0), np.log(50.0), count)))
    return Graph(
        layers * per_layer,
        np.concatenate(all_u),
        np.concatenate(all_v),
        np.concatenate(all_w),
        validate=False,
    )


# ----------------------------------------------------------------------
# non-geometric workload families
# ----------------------------------------------------------------------

def _index_midpoints(n, u, v):
    """1-D edge midpoints for non-geometric families.

    Node ``i`` is embedded at ``i / (n - 1)`` on the unit interval so
    the ``"smooth"`` weight model has a coordinate to evaluate its
    random field at; for ``"unit"``/``"uniform"`` only the length of
    this array matters.
    """
    pos = np.arange(n, dtype=np.float64) / max(n - 1, 1)
    return 0.5 * (pos[u] + pos[v])


def _canonical_unique(u, v):
    """Canonicalize to ``u < v``, dropping self loops and duplicates.

    Returns sorted unique ``(u, v)`` arrays; deterministic (the
    surviving edge order depends only on the input pairs, not on rng
    state).
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    keep = u != v
    u, v = u[keep], v[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
    if len(pairs) == 0:
        return (np.empty(0, dtype=np.int64),) * 2
    return pairs[:, 0], pairs[:, 1]


def _bridge_components(n, u, v, rng):
    """Extra ``(u, v)`` pairs linking every component to the largest.

    One bridge edge per non-giant component, from an rng-chosen member
    node to an rng-chosen node of the largest component.  Returns two
    (possibly empty) int arrays.
    """
    from repro.graph.components import connected_components

    probe = Graph(n, u, v, np.ones(len(u)), validate=False)
    count, labels = connected_components(probe)
    if count <= 1:
        return (np.empty(0, dtype=np.int64),) * 2
    sizes = np.bincount(labels, minlength=count)
    giant = int(np.argmax(sizes))
    giant_nodes = np.flatnonzero(labels == giant)
    extra_u, extra_v = [], []
    for comp in range(count):
        if comp == giant:
            continue
        members = np.flatnonzero(labels == comp)
        a = int(members[rng.integers(0, len(members))])
        b = int(giant_nodes[rng.integers(0, len(giant_nodes))])
        extra_u.append(min(a, b))
        extra_v.append(max(a, b))
    return (np.asarray(extra_u, dtype=np.int64),
            np.asarray(extra_v, dtype=np.int64))


def _assemble(n, u, v, rng, weights, w_min, w_max, connected=False):
    """Shared tail of the non-geometric builders.

    Canonicalizes the edge list, optionally bridges components
    (:func:`_bridge_components`), then samples weights from the 1-D
    index embedding — in that order, so the weight stream depends only
    on the final edge list and stays deterministic per seed.
    """
    u, v = _canonical_unique(u, v)
    if connected:
        if len(u) == 0 and n > 1:
            # No edges at all: chain the nodes so there is a giant
            # component to bridge into (degenerate tiny-graph case).
            u = np.arange(n - 1, dtype=np.int64)
            v = u + 1
        extra_u, extra_v = _bridge_components(n, u, v, rng)
        if len(extra_u):
            u, v = _canonical_unique(
                np.concatenate([u, extra_u]), np.concatenate([v, extra_v])
            )
    if len(u) == 0 and n > 1:
        raise GraphError(
            "generator produced no edges; raise the density parameters"
        )
    w = edge_weights(weights, _index_midpoints(n, u, v), rng,
                     w_min=w_min, w_max=w_max)
    return Graph(n, u, v, w, validate=False)


def barabasi_albert(n, attach=4, weights="uniform", seed=0,
                    w_min=0.1, w_max=10.0):
    """Barabási–Albert preferential-attachment graph (always connected).

    Growth starts from a complete core of ``attach + 1`` nodes; every
    later node attaches to ``attach`` distinct existing nodes chosen
    with probability proportional to their current degree (implemented
    with the classic repeated-endpoint target list).  The result is a
    scale-free graph whose degree-distribution tail is far heavier
    than any Poisson-degree baseline of equal size — the expander-like
    end of the workload spectrum, where effective-resistance sampling
    behaves very differently than on meshes.

    ``n <= attach + 1`` degenerates to the complete graph on ``n``
    nodes.  Connected by construction for every seed.
    """
    if n < 2:
        raise GraphError("barabasi_albert needs n >= 2")
    if attach < 1:
        raise GraphError("barabasi_albert needs attach >= 1")
    rng = as_rng(seed)
    core = min(n, attach + 1)
    us, vs = np.triu_indices(core, k=1)
    edges_u = list(us.astype(np.int64))
    edges_v = list(vs.astype(np.int64))
    # One entry per edge endpoint: sampling uniformly from this list is
    # sampling nodes proportionally to degree.
    targets = list(edges_u) + list(edges_v)
    for node in range(core, n):
        chosen: set = set()
        while len(chosen) < attach:
            pick = targets[int(rng.integers(0, len(targets)))]
            chosen.add(int(pick))
        for other in sorted(chosen):
            edges_u.append(other)
            edges_v.append(node)
            targets.append(other)
            targets.append(node)
    return _assemble(n, edges_u, edges_v, rng, weights, w_min, w_max)


def watts_strogatz(n, k=4, p=0.1, weights="uniform", seed=0,
                   w_min=0.1, w_max=10.0):
    """Watts–Strogatz small-world ring (always connected).

    A ring lattice where each node links to its ``k // 2`` nearest
    neighbors on each side; every edge at ring offset >= 2 is rewired
    with probability *p* to a uniformly random non-duplicate endpoint.
    The offset-1 ring itself is never rewired — that backbone is the
    documented connectivity contract, so the graph stays connected for
    every ``(seed, p)`` while the clustering coefficient still decays
    from the lattice value at ``p = 0`` toward the random-graph value
    at ``p = 1``.
    """
    if n < 3:
        raise GraphError("watts_strogatz needs n >= 3")
    if k < 2 or k % 2 != 0:
        raise GraphError("watts_strogatz needs even k >= 2")
    if k >= n:
        raise GraphError("watts_strogatz needs k < n")
    if not 0.0 <= p <= 1.0:
        raise GraphError("rewiring probability p must be in [0, 1]")
    rng = as_rng(seed)
    present = set()
    for node in range(n):
        present.add((node, (node + 1) % n) if node + 1 < n else (0, node))
    rewirable = []
    for offset in range(2, k // 2 + 1):
        for node in range(n):
            other = (node + offset) % n
            key = (min(node, other), max(node, other))
            if key not in present:
                rewirable.append(key)
                present.add(key)
    for key in rewirable:
        if rng.random() >= p:
            continue
        node = key[0] if rng.random() < 0.5 else key[1]
        for _ in range(8):  # retry budget; dense corners can collide
            other = int(rng.integers(0, n))
            new_key = (min(node, other), max(node, other))
            if other != node and new_key not in present:
                present.discard(key)
                present.add(new_key)
                break
    pairs = sorted(present)
    u = np.fromiter((a for a, _ in pairs), dtype=np.int64, count=len(pairs))
    v = np.fromiter((b for _, b in pairs), dtype=np.int64, count=len(pairs))
    return _assemble(n, u, v, rng, weights, w_min, w_max)


#: Default R-MAT initiator: community structure with a heavy corner.
_KRONECKER_INITIATOR = ((0.9, 0.5), (0.5, 0.2))


def kronecker_expected_edges(initiator=_KRONECKER_INITIATOR, levels=8):
    """Expected number of directed cell hits, ``(sum initiator)**levels``.

    This is the initiator-matrix expectation the stochastic sampler
    targets; the realized simple undirected edge count sits below it by
    exactly the self-loop and duplicate losses (see
    :func:`stochastic_kronecker`).
    """
    matrix = np.asarray(initiator, dtype=np.float64)
    return float(matrix.sum()) ** int(levels)


def stochastic_kronecker(levels, initiator=_KRONECKER_INITIATOR,
                         weights="uniform", seed=0, connected=True,
                         w_min=0.1, w_max=10.0):
    """Stochastic Kronecker (R-MAT) graph on ``b ** levels`` nodes.

    Samples ``round((sum initiator) ** levels)`` directed cell hits by
    R-MAT descent — each hit picks one initiator cell per level, biased
    by the ``b x b`` *initiator* probabilities — then folds them to the
    canonical undirected form, dropping self loops and duplicates.  The
    realized edge count therefore lands just below
    :func:`kronecker_expected_edges` (the losses are the dedup rate,
    a few percent at the default sparsity), which is the statistical
    acceptance check locking this family down.

    Kronecker sampling leaves a few isolated or fringe nodes; with
    ``connected=True`` (default) every non-giant component is bridged
    into the largest one with a single extra edge, keeping the node
    count exactly ``b ** levels``.  With ``connected=False`` the raw
    sample is returned and callers get the documented
    largest-component behavior: work on ``connected_components`` output
    themselves.
    """
    matrix = np.asarray(initiator, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GraphError("initiator must be a square matrix")
    if np.any(matrix <= 0) or np.any(matrix > 1):
        raise GraphError("initiator entries must be probabilities in (0, 1]")
    if levels < 1:
        raise GraphError("stochastic_kronecker needs levels >= 1")
    b = matrix.shape[0]
    n = b ** levels
    rng = as_rng(seed)
    count = int(round(kronecker_expected_edges(matrix, levels)))
    probs = (matrix / matrix.sum()).ravel()
    cells = rng.choice(b * b, size=(count, levels), p=probs)
    rows, cols = cells // b, cells % b
    place = b ** np.arange(levels - 1, -1, -1, dtype=np.int64)
    u = rows @ place
    v = cols @ place
    return _assemble(n, u, v, rng, weights, w_min, w_max,
                     connected=connected)


def configuration_model(n, degrees=None, mean_degree=4.0,
                        weights="uniform", seed=0, connected=True,
                        w_min=0.1, w_max=10.0):
    """Erased configuration model with a Poisson default degree law.

    Either pass an explicit *degrees* sequence or let the generator
    draw ``Poisson(mean_degree)`` degrees — the memoryless baseline the
    Barabási–Albert tail test compares against.  Stubs are paired by a
    seeded permutation; self loops and duplicate pairings are erased
    (the standard "erased configuration model"), so realized degrees
    can sit slightly below the drawn sequence.

    With ``connected=True`` (default) each non-giant component is
    bridged into the largest with one extra edge — node count stays
    exactly *n*, at the cost of one extra degree per bridged component.
    With ``connected=False`` the raw erased pairing is returned
    (documented largest-component behavior, as for
    :func:`stochastic_kronecker`).
    """
    if n < 2:
        raise GraphError("configuration_model needs n >= 2")
    rng = as_rng(seed)
    if degrees is None:
        if mean_degree <= 0:
            raise GraphError("mean_degree must be positive")
        degrees = rng.poisson(mean_degree, size=n)
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.shape != (n,):
        raise GraphError(f"degrees must have shape ({n},)")
    if np.any(degrees < 0):
        raise GraphError("degrees must be nonnegative")
    if degrees.sum() % 2:
        degrees = degrees.copy()
        degrees[int(np.argmax(degrees))] += 1  # make the stub count even
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    stubs = rng.permutation(stubs)
    u, v = stubs[0::2], stubs[1::2]
    return _assemble(n, u, v, rng, weights, w_min, w_max,
                     connected=connected)


def planted_labels(n_users, n_items, groups):
    """Ground-truth block labels for :func:`bipartite_recommender`.

    Users and items are assigned to *groups* blocks round-robin by
    index (user ``i`` and item ``j`` belong to blocks ``i % groups``
    and ``j % groups``), so the planted partition is recoverable
    without the graph in hand.  Returns one label per node in the
    bipartite graph's node order (users first, then items).
    """
    if groups < 1:
        raise GraphError("planted_labels needs groups >= 1")
    users = np.arange(n_users, dtype=np.int64) % groups
    items = np.arange(n_items, dtype=np.int64) % groups
    return np.concatenate([users, items])


def bipartite_recommender(n_users, n_items, groups=4, p_in=0.25,
                          p_out=0.01, weights="uniform", seed=0,
                          connected=True, w_min=0.1, w_max=10.0):
    """Bipartite recommendation graph with a planted block partition.

    Users occupy node ids ``[0, n_users)`` and items
    ``[n_users, n_users + n_items)``; both sides are split into
    *groups* taste blocks (:func:`planted_labels`).  A user–item edge
    appears with probability *p_in* when the two share a block and
    *p_out* otherwise, mimicking a ratings matrix with planted
    communities — the downstream target for the spectral-clustering
    application benchmark, where quality is ARI against the planted
    labels.

    ``connected=True`` (default) bridges stray components into the
    giant one (keeping the node count exact); the bridge edges are the
    only possible user–user or item–item edges in the graph.
    """
    if n_users < 1 or n_items < 1:
        raise GraphError("bipartite_recommender needs users and items")
    if groups < 1 or groups > min(n_users, n_items):
        raise GraphError("groups must be in [1, min(n_users, n_items)]")
    if not (0.0 < p_in <= 1.0 and 0.0 <= p_out <= 1.0):
        raise GraphError("need 0 < p_in <= 1 and 0 <= p_out <= 1")
    rng = as_rng(seed)
    labels = planted_labels(n_users, n_items, groups)
    user_blocks = labels[:n_users]
    item_blocks = labels[n_users:]
    prob = np.where(
        user_blocks[:, None] == item_blocks[None, :], p_in, p_out
    )
    hits = rng.random((n_users, n_items)) < prob
    u, v = np.nonzero(hits)
    return _assemble(n_users + n_items, u, v + n_users, rng, weights,
                     w_min, w_max, connected=connected)


# ----------------------------------------------------------------------
# the generator registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GeneratorSpec:
    """One workload family published through :data:`GENERATOR_REGISTRY`.

    Attributes
    ----------
    name:
        Registry key (``"ba"``, ``"smallworld"``, ...).
    kind:
        Topology class for reporting: ``"lattice"``, ``"mesh"``,
        ``"geometric"``, ``"circuit"``, ``"powerlaw"``,
        ``"smallworld"``, ``"rmat"``, ``"random"`` or ``"bipartite"``.
    builder:
        ``builder(n, seed=0, weights=..., **options) -> Graph`` — the
        size-normalized entry point :func:`make_family_graph` calls.
    node_contract:
        How the requested ``n`` maps to the realized node count
        (``"exact"`` or a one-line rounding rule).
    connectivity:
        The family's documented connectivity contract.
    description:
        One line for listings and the generated API reference.
    defaults:
        The family-specific options *builder* accepts beyond
        ``n``/``seed``/``weights``, with their default values — the
        validation whitelist for :func:`make_family_graph` overrides.
    """

    name: str
    kind: str
    builder: typing.Callable = field(repr=False)
    node_contract: str = "exact"
    connectivity: str = "always connected"
    description: str = ""
    defaults: dict = field(default_factory=dict)


def _family_grid2d(n, seed=0, weights="uniform", diagonals=False):
    side = max(2, int(round(np.sqrt(n))))
    return grid2d(side, side, weights=weights, diagonals=diagonals,
                  seed=seed)


def _family_grid3d(n, seed=0, weights="uniform"):
    side = max(2, int(round(n ** (1.0 / 3.0))))
    return grid3d(side, side, side, weights=weights, seed=seed)


def _family_mesh(n, seed=0, weights="smooth", shape="square"):
    return triangular_mesh(max(n, 4), shape=shape, weights=weights,
                           seed=seed)


def _family_geometric(n, seed=0, weights="uniform", radius=None):
    return random_geometric_graph(max(n, 2), radius=radius,
                                  weights=weights, seed=seed)


def _family_circuit(n, seed=0, weights="uniform", layers=2,
                    via_density=0.05):
    side = max(2, int(round(np.sqrt(n / max(layers, 1)))))
    return circuit_grid(side, side, layers=layers,
                        via_density=via_density, weights=weights,
                        seed=seed)


def _family_ba(n, seed=0, weights="uniform", attach=4):
    return barabasi_albert(max(n, 2), attach=attach, weights=weights,
                           seed=seed)


def _family_smallworld(n, seed=0, weights="uniform", k=6, p=0.1):
    return watts_strogatz(max(n, 3), k=k, p=p, weights=weights, seed=seed)


def _family_kronecker(n, seed=0, weights="uniform",
                      initiator=_KRONECKER_INITIATOR, connected=True):
    levels = max(1, math.ceil(math.log2(max(n, 2))))
    return stochastic_kronecker(levels, initiator=initiator,
                                weights=weights, seed=seed,
                                connected=connected)


def _family_configmodel(n, seed=0, weights="uniform", mean_degree=4.0,
                        connected=True):
    return configuration_model(max(n, 2), mean_degree=mean_degree,
                               weights=weights, seed=seed,
                               connected=connected)


def _family_bipartite(n, seed=0, weights="uniform", groups=4,
                      p_in=0.25, p_out=0.01, connected=True):
    n = max(n, 2 * groups)
    n_users = n // 2
    return bipartite_recommender(n_users, n - n_users, groups=groups,
                                 p_in=p_in, p_out=p_out, weights=weights,
                                 seed=seed, connected=connected)


#: Every workload family, keyed by registry name.  The benchmarks, the
#: generated API reference and the family sweeps all enumerate this.
GENERATOR_REGISTRY = {
    spec.name: spec
    for spec in (
        GeneratorSpec(
            "grid2d", "lattice", _family_grid2d,
            node_contract="rounded to the nearest square",
            description="2-D finite-difference lattice "
                        "(ecology2/tmt_sym class)",
            defaults={"diagonals": False},
        ),
        GeneratorSpec(
            "grid3d", "lattice", _family_grid3d,
            node_contract="rounded to the nearest cube",
            description="3-D 7-point lattice",
        ),
        GeneratorSpec(
            "mesh", "mesh", _family_mesh,
            description="Delaunay triangulation of a 2-D point cloud "
                        "(thermal2/NACA0015 class)",
            defaults={"shape": "square"},
        ),
        GeneratorSpec(
            "geometric", "geometric", _family_geometric,
            connectivity="connected w.h.p. at the default radius",
            description="random geometric graph on the unit square",
            defaults={"radius": None},
        ),
        GeneratorSpec(
            "circuit", "circuit", _family_circuit,
            node_contract="rounded to layers x square",
            description="multi-layer circuit grid with vias "
                        "(G3_circuit class)",
            defaults={"layers": 2, "via_density": 0.05},
        ),
        GeneratorSpec(
            "ba", "powerlaw", _family_ba,
            description="Barabasi-Albert preferential attachment "
                        "(scale-free, heavy degree tail)",
            defaults={"attach": 4},
        ),
        GeneratorSpec(
            "smallworld", "smallworld", _family_smallworld,
            description="Watts-Strogatz ring with rewiring "
                        "(high clustering, short paths)",
            defaults={"k": 6, "p": 0.1},
        ),
        GeneratorSpec(
            "kronecker", "rmat", _family_kronecker,
            node_contract="rounded up to the next power of two",
            connectivity="connected=True bridges components (default); "
                         "else largest-component behavior",
            description="stochastic Kronecker / R-MAT "
                        "(self-similar communities)",
            defaults={"initiator": _KRONECKER_INITIATOR,
                      "connected": True},
        ),
        GeneratorSpec(
            "configmodel", "random", _family_configmodel,
            connectivity="connected=True bridges components (default); "
                         "else largest-component behavior",
            description="erased configuration model, Poisson degrees "
                        "(memoryless baseline)",
            defaults={"mean_degree": 4.0, "connected": True},
        ),
        GeneratorSpec(
            "bipartite", "bipartite", _family_bipartite,
            connectivity="connected=True bridges components (default); "
                         "else largest-component behavior",
            description="bipartite recommendation graph with planted "
                        "taste blocks",
            defaults={"groups": 4, "p_in": 0.25, "p_out": 0.01,
                      "connected": True},
        ),
    )
}


def list_families():
    """Sorted names of every registered workload family."""
    return tuple(sorted(GENERATOR_REGISTRY))


def make_family_graph(family, n, seed=0, weights="uniform", **options):
    """Build an ``n``-node graph from the named workload family.

    The size-normalized front door over :data:`GENERATOR_REGISTRY`:
    every family takes a target node count *n* (see each spec's
    ``node_contract`` for how it is rounded), a *seed* and a *weights*
    model, plus the family-specific *options* whitelisted in the
    spec's ``defaults``.  Unknown families and unknown options raise
    :class:`~repro.exceptions.GraphError` naming the valid choices.
    """
    if family not in GENERATOR_REGISTRY:
        raise GraphError(
            f"unknown workload family {family!r}; registered families: "
            f"{', '.join(list_families())}"
        )
    spec = GENERATOR_REGISTRY[family]
    unknown = sorted(set(options) - set(spec.defaults))
    if unknown:
        raise GraphError(
            f"family {family!r} does not accept option(s) "
            f"{', '.join(map(repr, unknown))}; valid options: "
            f"{', '.join(sorted(spec.defaults)) or '(none)'}"
        )
    if n < 1:
        raise GraphError("make_family_graph needs n >= 1")
    merged = dict(spec.defaults)
    merged.update(options)
    return spec.builder(int(n), seed=seed, weights=weights, **merged)
