"""Synthetic graph generators.

These produce the topology classes the paper's test suite draws from:
2-D finite-difference grids (ecology2, tmt_sym, ...), 2-D finite-element
triangulations (thermal2 and the aerodynamic meshes NACA0015/M6/...),
and multi-layer circuit-style grids (G3_circuit).  All generators take a
``seed`` and a ``weights`` model so experiments are reproducible.

Weight models
-------------
``"unit"``
    All weights 1.0.
``"uniform"``
    Log-uniform in ``[w_min, w_max]`` (independent per edge) — mimics
    conductance spread in circuit matrices.
``"smooth"``
    A smooth random field evaluated at edge midpoints — mimics FEM
    coefficient fields, where nearby elements have similar weights.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.utils.rng import as_rng

__all__ = [
    "grid2d",
    "grid3d",
    "triangular_mesh",
    "random_geometric_graph",
    "circuit_grid",
    "edge_weights",
]


def edge_weights(kind, midpoints, rng, w_min=0.1, w_max=10.0):
    """Sample edge weights for the given model (see module docstring)."""
    count = len(midpoints)
    if kind == "unit":
        return np.ones(count)
    if kind == "uniform":
        log_lo, log_hi = np.log(w_min), np.log(w_max)
        return np.exp(rng.uniform(log_lo, log_hi, size=count))
    if kind == "smooth":
        # Random low-frequency Fourier field, rescaled to [w_min, w_max].
        midpoints = np.asarray(midpoints, dtype=np.float64)
        if midpoints.ndim == 1:
            midpoints = midpoints[:, None]
        dims = midpoints.shape[1]
        field = np.zeros(count)
        for _ in range(6):
            freq = rng.uniform(0.5, 3.0, size=dims)
            phase = rng.uniform(0, 2 * np.pi)
            amp = rng.uniform(0.5, 1.0)
            field += amp * np.sin(2 * np.pi * midpoints @ freq + phase)
        span = field.max() - field.min()
        if span == 0:
            return np.full(count, np.sqrt(w_min * w_max))
        unit = (field - field.min()) / span
        return np.exp(np.log(w_min) + unit * (np.log(w_max) - np.log(w_min)))
    raise GraphError(f"unknown weight model {kind!r}")


def _grid_coords_2d(nx, ny):
    xs, ys = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    coords = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(np.float64)
    coords[:, 0] /= max(nx - 1, 1)
    coords[:, 1] /= max(ny - 1, 1)
    return coords


def grid2d(nx, ny, weights="uniform", diagonals=False, seed=0,
           w_min=0.1, w_max=10.0):
    """2-D grid graph on an ``nx x ny`` lattice (5- or 7-point stencil).

    With ``diagonals=True`` one diagonal per cell is added, producing a
    triangular-lattice stencil with ``m ~ 3n`` like ``parabolic_fem`` /
    ``tmt_sym``; without it ``m ~ 2n`` like ``ecology2``.
    ``w_min``/``w_max`` bound the weight spread (constant-coefficient
    FEM matrices call for a narrow band, circuit matrices a wide one).
    """
    if nx < 1 or ny < 1:
        raise GraphError("grid2d needs nx, ny >= 1")
    rng = as_rng(seed)

    def node(i, j):
        return i * ny + j

    xs, ys = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    idx = (xs * ny + ys).astype(np.int64)
    edges_u, edges_v = [], []
    # horizontal (i, j) - (i+1, j)
    edges_u.append(idx[:-1, :].ravel())
    edges_v.append(idx[1:, :].ravel())
    # vertical (i, j) - (i, j+1)
    edges_u.append(idx[:, :-1].ravel())
    edges_v.append(idx[:, 1:].ravel())
    if diagonals:
        edges_u.append(idx[:-1, :-1].ravel())
        edges_v.append(idx[1:, 1:].ravel())
    u = np.concatenate(edges_u)
    v = np.concatenate(edges_v)
    coords = _grid_coords_2d(nx, ny)
    mid = 0.5 * (coords[u] + coords[v])
    w = edge_weights(weights, mid, rng, w_min=w_min, w_max=w_max)
    return Graph(nx * ny, u, v, w, validate=False)


def grid3d(nx, ny, nz, weights="uniform", seed=0):
    """3-D grid graph (7-point stencil)."""
    if min(nx, ny, nz) < 1:
        raise GraphError("grid3d needs nx, ny, nz >= 1")
    rng = as_rng(seed)
    shape = (nx, ny, nz)
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(shape)
    edges_u, edges_v = [], []
    edges_u.append(idx[:-1, :, :].ravel())
    edges_v.append(idx[1:, :, :].ravel())
    edges_u.append(idx[:, :-1, :].ravel())
    edges_v.append(idx[:, 1:, :].ravel())
    edges_u.append(idx[:, :, :-1].ravel())
    edges_v.append(idx[:, :, 1:].ravel())
    u = np.concatenate(edges_u)
    v = np.concatenate(edges_v)
    # Normalized midpoints for the smooth model.
    coords = np.stack(np.unravel_index(np.arange(nx * ny * nz), shape), axis=1)
    coords = coords / np.maximum(np.array(shape) - 1, 1)
    mid = 0.5 * (coords[u] + coords[v])
    w = edge_weights(weights, mid, rng)
    return Graph(nx * ny * nz, u, v, w, validate=False)


_MESH_SHAPES = ("square", "disk", "annulus", "airfoil", "wing", "lshape")


def _shape_mask(points, shape):
    x, y = points[:, 0], points[:, 1]
    if shape == "square":
        return np.ones(len(points), dtype=bool)
    if shape == "disk":
        return (x - 0.5) ** 2 + (y - 0.5) ** 2 <= 0.25
    if shape == "annulus":
        r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2
        return (r2 <= 0.25) & (r2 >= 0.04)
    if shape == "airfoil":
        # Rectangle with an elongated elliptical hole (airfoil stand-in).
        hole = ((x - 0.5) / 0.25) ** 2 + ((y - 0.5) / 0.05) ** 2 <= 1.0
        return ~hole
    if shape == "wing":
        # Tapered planform: |y - 0.5| below a linearly shrinking chord.
        return np.abs(y - 0.5) <= 0.45 * (1.0 - 0.7 * x)
    if shape == "lshape":
        return ~((x > 0.5) & (y > 0.5))
    raise GraphError(f"unknown mesh shape {shape!r}; choose from {_MESH_SHAPES}")


def triangular_mesh(n_points, shape="square", weights="smooth", seed=0):
    """Delaunay triangulation of a random point cloud in a 2-D shape.

    Stand-in for the paper's finite-element meshes; the Delaunay
    triangulation of ``n`` points has ``~3n`` edges and average degree
    ``~6``, matching the aerodynamic SuiteSparse cases.
    """
    from scipy.spatial import Delaunay

    if n_points < 4:
        raise GraphError("triangular_mesh needs at least 4 points")
    rng = as_rng(seed)
    points = np.empty((0, 2))
    # Rejection-sample until enough points fall inside the shape.
    while len(points) < n_points:
        batch = rng.random((2 * n_points, 2))
        keep = batch[_shape_mask(batch, shape)]
        points = np.vstack([points, keep])
    points = points[:n_points]
    tri = Delaunay(points)
    simplices = tri.simplices
    pairs = np.vstack(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]]
    )
    pairs.sort(axis=1)
    pairs = np.unique(pairs, axis=0)
    u, v = pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64)
    mid = 0.5 * (points[u] + points[v])
    base = edge_weights(weights, mid, rng)
    # FEM stiffness scales like inverse edge length; fold that in so the
    # weight spread resembles assembled FEM matrices.
    lengths = np.linalg.norm(points[u] - points[v], axis=1)
    lengths = np.maximum(lengths, 1e-12)
    w = base * (lengths.mean() / lengths)
    return Graph(len(points), u, v, w, validate=False)


def random_geometric_graph(n, radius=None, weights="uniform", seed=0):
    """Random geometric graph on the unit square (KD-tree neighbor pairs).

    Falls back to a connectivity-safe radius ``~ sqrt(2 log n / n)`` when
    *radius* is omitted.
    """
    from scipy.spatial import cKDTree

    rng = as_rng(seed)
    if radius is None:
        radius = float(np.sqrt(2.0 * np.log(max(n, 2)) / max(n, 2)))
    points = rng.random((n, 2))
    tree = cKDTree(points)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    if len(pairs) == 0:
        raise GraphError("random_geometric_graph produced no edges; grow radius")
    u, v = pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64)
    mid = 0.5 * (points[u] + points[v])
    w = edge_weights(weights, mid, rng)
    return Graph(n, u, v, w, validate=False)


def circuit_grid(nx, ny, layers=2, via_density=0.05, weights="uniform", seed=0):
    """Multi-layer circuit-style grid (G3_circuit stand-in).

    *layers* stacked 2-D grids connected by randomly placed vias; vias get
    higher conductance than in-plane wires, as in real power/clock grids.
    """
    if layers < 1:
        raise GraphError("circuit_grid needs layers >= 1")
    rng = as_rng(seed)
    per_layer = nx * ny
    all_u, all_v, all_w = [], [], []
    for layer in range(layers):
        g = grid2d(nx, ny, weights=weights, seed=rng.integers(0, 2**31))
        all_u.append(g.u + layer * per_layer)
        all_v.append(g.v + layer * per_layer)
        all_w.append(g.w)
    for layer in range(layers - 1):
        count = max(1, int(via_density * per_layer))
        vias = rng.choice(per_layer, size=count, replace=False)
        all_u.append(vias + layer * per_layer)
        all_v.append(vias + (layer + 1) * per_layer)
        # Vias: an order of magnitude more conductive than plane wires.
        all_w.append(np.exp(rng.uniform(np.log(5.0), np.log(50.0), count)))
    return Graph(
        layers * per_layer,
        np.concatenate(all_u),
        np.concatenate(all_v),
        np.concatenate(all_w),
        validate=False,
    )
