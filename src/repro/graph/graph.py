"""Weighted undirected graph with array storage and cached CSR adjacency.

The :class:`Graph` class is the central data structure of the package.
It stores each undirected edge exactly once with ``u < v`` in three
parallel numpy arrays, and lazily builds a CSR-style adjacency
(``indptr``, ``neighbors``, ``edge_ids``) used by all traversal kernels.

Graphs are treated as immutable: algorithms that "add edges to a
subgraph" (Algorithm 2 of the paper) instead keep a boolean mask over the
parent graph's edge array and call :meth:`Graph.subgraph` when they need
an explicit adjacency for the current subgraph.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError

__all__ = ["Graph"]


class Graph:
    """A weighted undirected graph (possibly disconnected, no self loops).

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are the integers ``0..n-1``.
    u, v:
        Edge endpoint arrays.  Stored canonically with ``u < v``;
        inputs with ``u > v`` are swapped automatically.
    w:
        Positive edge weights (conductances, in circuit terms).
    validate:
        When true (default), check invariants: endpoints in range,
        no self loops, no duplicate edges, strictly positive weights.
    """

    __slots__ = ("n", "u", "v", "w", "_indptr", "_nbr", "_eid")

    def __init__(self, n, u, v, w, validate=True):
        u = np.asarray(u, dtype=np.int64).ravel()
        v = np.asarray(v, dtype=np.int64).ravel()
        w = np.asarray(w, dtype=np.float64).ravel()
        if not (len(u) == len(v) == len(w)):
            raise GraphError(
                f"edge arrays disagree in length: {len(u)}, {len(v)}, {len(w)}"
            )
        swap = u > v
        if np.any(swap):
            u = u.copy()
            v = v.copy()
            u[swap], v[swap] = v[swap], u[swap]
        self.n = int(n)
        self.u = u
        self.v = v
        self.w = w
        self._indptr = None
        self._nbr = None
        self._eid = None
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n, edges, validate=True) -> "Graph":
        """Build a graph from an iterable of ``(u, v, w)`` triples."""
        edges = list(edges)
        if not edges:
            return cls(n, [], [], [], validate=validate)
        u, v, w = zip(*edges)
        return cls(n, u, v, w, validate=validate)

    @classmethod
    def from_scipy_adjacency(cls, adjacency, validate=True) -> "Graph":
        """Build a graph from a symmetric sparse adjacency matrix.

        Entries are interpreted as edge weights; only the strict upper
        triangle is read, so the matrix must be structurally symmetric.
        """
        coo = sp.coo_matrix(adjacency)
        mask = coo.row < coo.col
        return cls(
            coo.shape[0],
            coo.row[mask],
            coo.col[mask],
            coo.data[mask],
            validate=validate,
        )

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.n <= 0:
            raise GraphError(f"graph needs at least one node, got n={self.n}")
        if self.edge_count == 0:
            return
        if self.u.min() < 0 or self.v.max() >= self.n:
            raise GraphError("edge endpoint out of range")
        if np.any(self.u == self.v):
            raise GraphError("self loops are not allowed")
        if np.any(~np.isfinite(self.w)) or np.any(self.w <= 0):
            raise GraphError("edge weights must be finite and positive")
        keys = self.u * self.n + self.v
        if len(np.unique(keys)) != len(keys):
            raise GraphError("duplicate edges detected")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def edge_count(self) -> int:
        """Number of (undirected) edges."""
        return len(self.u)

    @property
    def node_count(self) -> int:
        """Number of nodes (alias of :attr:`n`)."""
        return self.n

    def weighted_degrees(self) -> np.ndarray:
        """Per-node sum of incident edge weights (the Laplacian diagonal)."""
        deg = np.zeros(self.n, dtype=np.float64)
        np.add.at(deg, self.u, self.w)
        np.add.at(deg, self.v, self.w)
        return deg

    def degrees(self) -> np.ndarray:
        """Per-node number of incident edges."""
        deg = np.bincount(self.u, minlength=self.n)
        deg += np.bincount(self.v, minlength=self.n)
        return deg

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def adjacency(self):
        """Return CSR adjacency ``(indptr, neighbors, edge_ids)``.

        ``neighbors[indptr[i]:indptr[i+1]]`` lists the neighbors of node
        ``i`` and ``edge_ids`` gives, in the same positions, the index of
        the connecting edge into :attr:`u`/:attr:`v`/:attr:`w`.
        The result is cached on first use.
        """
        if self._indptr is None:
            m = self.edge_count
            heads = np.concatenate([self.u, self.v])
            tails = np.concatenate([self.v, self.u])
            eids = np.concatenate([np.arange(m), np.arange(m)])
            order = np.argsort(heads, kind="stable")
            counts = np.bincount(heads, minlength=self.n)
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._indptr = indptr
            self._nbr = tails[order]
            self._eid = eids[order]
        return self._indptr, self._nbr, self._eid

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbors of *node* as an array (convenience accessor)."""
        indptr, nbr, _ = self.adjacency()
        return nbr[indptr[node] : indptr[node + 1]]

    def incident_edges(self, node: int) -> np.ndarray:
        """Edge ids incident to *node*."""
        indptr, _, eid = self.adjacency()
        return eid[indptr[node] : indptr[node + 1]]

    # ------------------------------------------------------------------
    # derived graphs / matrices
    # ------------------------------------------------------------------
    def subgraph(self, edge_mask) -> "Graph":
        """Return the subgraph on the same node set keeping masked edges.

        *edge_mask* is either a boolean mask of length ``edge_count`` or
        an integer array of edge ids.
        """
        edge_mask = np.asarray(edge_mask)
        if edge_mask.dtype == bool:
            if len(edge_mask) != self.edge_count:
                raise GraphError("edge mask length mismatch")
            ids = np.flatnonzero(edge_mask)
        else:
            ids = edge_mask.astype(np.int64)
        return Graph(
            self.n, self.u[ids], self.v[ids], self.w[ids], validate=False
        )

    def reweighted(self, new_w) -> "Graph":
        """Return a graph with identical topology but new weights."""
        new_w = np.asarray(new_w, dtype=np.float64)
        if len(new_w) != self.edge_count:
            raise GraphError("weight array length mismatch")
        return Graph(self.n, self.u, self.v, new_w, validate=True)

    def to_scipy_adjacency(self) -> sp.csr_matrix:
        """Symmetric weighted adjacency matrix in CSR form."""
        m = self.edge_count
        rows = np.concatenate([self.u, self.v])
        cols = np.concatenate([self.v, self.u])
        data = np.concatenate([self.w, self.w])
        return sp.csr_matrix((data, (rows, cols)), shape=(self.n, self.n))

    def edge_key_set(self) -> set:
        """Set of ``(u, v)`` tuples with ``u < v`` (for tests/small graphs)."""
        return set(zip(self.u.tolist(), self.v.tolist()))

    def edge_lookup(self) -> dict:
        """Dict mapping ``(u, v)`` with ``u < v`` to the edge id."""
        return {
            (int(a), int(b)): i
            for i, (a, b) in enumerate(zip(self.u, self.v))
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.edge_count})"
