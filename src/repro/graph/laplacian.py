"""Graph Laplacians, incidence matrices and SDD regularization.

Implements Eq. (1) of the paper plus the regularization described in its
footnote 1: both the original graph's Laplacian ``L_G`` and any
subgraph's Laplacian ``L_S`` receive the *same* small positive diagonal
shift, which makes them nonsingular SDD matrices whose smallest
generalized eigenvalue is exactly 1 (attained by the all-ones vector),
so the relative condition number reduces to
``kappa(L_G, L_S) = lambda_max(L_S^{-1} L_G)``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.graph import Graph

__all__ = [
    "laplacian",
    "incidence_matrix",
    "regularization_shift",
    "regularized_laplacian",
    "graph_from_sdd_matrix",
]


def laplacian(graph: Graph, shift=None, fmt: str = "csc") -> sp.spmatrix:
    """Laplacian matrix of *graph*, optionally with a diagonal shift.

    Parameters
    ----------
    graph:
        The graph.
    shift:
        ``None`` for the pure (singular) Laplacian, a scalar for a uniform
        diagonal shift, or a length-``n`` vector of per-node shifts.
    fmt:
        scipy sparse format of the result (``"csc"``, ``"csr"``, ``"coo"``).
    """
    n = graph.n
    rows = np.concatenate([graph.u, graph.v, graph.u, graph.v])
    cols = np.concatenate([graph.v, graph.u, graph.u, graph.v])
    data = np.concatenate([-graph.w, -graph.w, graph.w, graph.w])
    if shift is not None:
        shift_vec = np.broadcast_to(
            np.asarray(shift, dtype=np.float64), (n,)
        )
        rows = np.concatenate([rows, np.arange(n)])
        cols = np.concatenate([cols, np.arange(n)])
        data = np.concatenate([data, shift_vec])
    mat = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    return mat.asformat(fmt)


def incidence_matrix(graph: Graph, weighted: bool = False) -> sp.csr_matrix:
    """Edge-node incidence matrix ``B`` with one row per edge.

    Row ``e = (u, v)`` is ``e_u - e_v``; when *weighted* is true each row
    is scaled by ``sqrt(w_e)`` so that ``B^T B`` equals the Laplacian.
    """
    m = graph.edge_count
    rows = np.concatenate([np.arange(m), np.arange(m)])
    cols = np.concatenate([graph.u, graph.v])
    vals = np.ones(m)
    if weighted:
        vals = np.sqrt(graph.w)
    data = np.concatenate([vals, -vals])
    return sp.csr_matrix((data, (rows, cols)), shape=(m, graph.n))


def regularization_shift(graph: Graph, rel: float = 1e-6) -> np.ndarray:
    """Per-node diagonal shift vector ``rel * weighted_degree(G)``.

    The shift is computed from the *original* graph and reused verbatim
    for all of its subgraphs, so that ``L_G + D`` and ``L_S + D`` satisfy
    ``x^T (L_G + D) x >= x^T (L_S + D) x`` with equality at the all-ones
    vector, pinning the smallest generalized eigenvalue at 1 (paper
    footnote 1).
    """
    if rel <= 0:
        raise GraphError(f"relative shift must be positive, got {rel}")
    deg = graph.weighted_degrees()
    # Isolated nodes (possible in subgraphs of forests) still need a
    # strictly positive diagonal; fall back to the graph's mean degree.
    fallback = deg[deg > 0].mean() if np.any(deg > 0) else 1.0
    shift = rel * np.where(deg > 0, deg, fallback)
    return shift


def regularized_laplacian(
    graph: Graph, shift: np.ndarray, fmt: str = "csc"
) -> sp.spmatrix:
    """``laplacian(graph) + diag(shift)`` as a nonsingular SDD matrix."""
    shift = np.asarray(shift, dtype=np.float64)
    if shift.shape != (graph.n,):
        raise GraphError(
            f"shift must have shape ({graph.n},), got {shift.shape}"
        )
    if np.any(shift <= 0):
        raise GraphError("regularization shift must be strictly positive")
    return laplacian(graph, shift=shift, fmt=fmt)


def graph_from_sdd_matrix(matrix) -> tuple:
    """Split an SDD matrix into ``(Graph, diagonal_excess)``.

    Off-diagonal entries ``a_ij < 0`` become edges of weight ``-a_ij``
    (positive off-diagonals, which cannot be represented by a graph
    Laplacian, raise :class:`~repro.exceptions.GraphError`).  The second
    return value is the vector ``diag(A) - weighted_degree``, i.e. the
    part of the diagonal not explained by edges (ground conductances in
    circuit terms).
    """
    coo = sp.coo_matrix(matrix)
    if coo.shape[0] != coo.shape[1]:
        raise GraphError(f"matrix must be square, got {coo.shape}")
    off = coo.row != coo.col
    rows, cols, vals = coo.row[off], coo.col[off], coo.data[off]
    if np.any(vals > 0):
        raise GraphError("matrix has positive off-diagonal entries")
    upper = rows < cols
    graph = Graph(coo.shape[0], rows[upper], cols[upper], -vals[upper])
    excess = np.asarray(matrix.diagonal()) - graph.weighted_degrees()
    return graph, excess
