"""Matrix Market I/O.

Lets users run the benchmark harness on the *real* SuiteSparse matrices
(ecology2.mtx etc.) when they have them on disk, instead of the
synthetic stand-ins.
"""

from __future__ import annotations

import numpy as np
import scipy.io
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.laplacian import graph_from_sdd_matrix, laplacian

__all__ = ["read_graph_mtx", "write_graph_mtx"]


def read_graph_mtx(path, mode="auto"):
    """Read a Matrix Market file as a graph.

    Parameters
    ----------
    path:
        ``.mtx`` file path.
    mode:
        ``"laplacian"``: the matrix is SDD with nonpositive off-diagonals
        (edge weight = negated off-diagonal).
        ``"adjacency"``: the matrix stores nonnegative edge weights.
        ``"auto"`` (default): Laplacian if all off-diagonals are <= 0,
        otherwise adjacency with absolute values.

    Returns
    -------
    (Graph, numpy.ndarray or None)
        The graph, and the diagonal excess vector for Laplacian input
        (``None`` in adjacency mode).
    """
    matrix = sp.coo_matrix(scipy.io.mmread(str(path)))
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"{path}: matrix is not square: {matrix.shape}")
    off = matrix.row != matrix.col
    if mode == "auto":
        mode = "laplacian" if np.all(matrix.data[off] <= 0) else "adjacency"
    if mode == "laplacian":
        graph, excess = graph_from_sdd_matrix(matrix)
        return graph, excess
    if mode == "adjacency":
        rows, cols = matrix.row[off], matrix.col[off]
        vals = np.abs(matrix.data[off])
        upper = rows < cols
        graph = Graph(matrix.shape[0], rows[upper], cols[upper], vals[upper])
        return graph, None
    raise GraphError(f"unknown mode {mode!r}")


def write_graph_mtx(path, graph, as_laplacian=True) -> None:
    """Write a graph to a Matrix Market file.

    Writes the (singular) Laplacian by default, or the symmetric
    adjacency when ``as_laplacian`` is false.
    """
    if as_laplacian:
        matrix = laplacian(graph, fmt="coo")
    else:
        matrix = graph.to_scipy_adjacency().tocoo()
    scipy.io.mmwrite(str(path), matrix, symmetry="symmetric")
