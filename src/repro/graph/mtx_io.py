"""Matrix Market I/O, including a chunked/streaming reader.

Lets users run the benchmark harness on the *real* SuiteSparse matrices
(ecology2.mtx etc.) when they have them on disk, instead of the
synthetic stand-ins.

:func:`read_graph_mtx` is the classic read-all-at-once path
(``scipy.io.mmread``).  For matrices too large for that — scipy
materializes the *expanded* symmetric matrix plus intermediates —
:func:`read_graph_mtx_streaming` parses the coordinate file in
fixed-size chunks (peak memory ~ the stored-entry arrays, at most
about twice the final edge arrays, plus one chunk — well below
mmread's expansion), and :func:`read_mtx_shard` /
:func:`read_mtx_boundary` load one shard's induced subgraph (or just
the cut edges) of a :mod:`repro.core.sharding` partition straight
from disk, holding only that shard in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice

import numpy as np
import scipy.io
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.laplacian import graph_from_sdd_matrix, laplacian

__all__ = [
    "MtxHeader",
    "read_mtx_header",
    "iter_mtx_entries",
    "read_graph_mtx",
    "read_graph_mtx_streaming",
    "read_mtx_shard",
    "read_mtx_boundary",
    "write_graph_mtx",
]

#: Entries parsed per chunk by the streaming reader (the parse buffer
#: the chunked loops hold on top of the accumulated entry arrays).
DEFAULT_CHUNK_NNZ = 200_000

_FIELDS = ("real", "double", "integer", "pattern")
_SYMMETRIES = ("general", "symmetric")


def read_graph_mtx(path, mode="auto"):
    """Read a Matrix Market file as a graph.

    Parameters
    ----------
    path:
        ``.mtx`` file path.
    mode:
        ``"laplacian"``: the matrix is SDD with nonpositive off-diagonals
        (edge weight = negated off-diagonal).
        ``"adjacency"``: the matrix stores nonnegative edge weights.
        ``"auto"`` (default): Laplacian if all off-diagonals are <= 0,
        otherwise adjacency with absolute values.

    Returns
    -------
    (Graph, numpy.ndarray or None)
        The graph, and the diagonal excess vector for Laplacian input
        (``None`` in adjacency mode).
    """
    matrix = sp.coo_matrix(scipy.io.mmread(str(path)))
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"{path}: matrix is not square: {matrix.shape}")
    off = matrix.row != matrix.col
    if mode == "auto":
        mode = "laplacian" if np.all(matrix.data[off] <= 0) else "adjacency"
    if mode == "laplacian":
        graph, excess = graph_from_sdd_matrix(matrix)
        return graph, excess
    if mode == "adjacency":
        rows, cols = matrix.row[off], matrix.col[off]
        vals = np.abs(matrix.data[off])
        upper = rows < cols
        graph = Graph(matrix.shape[0], rows[upper], cols[upper], vals[upper])
        return graph, None
    raise GraphError(f"unknown mode {mode!r}")


@dataclass(frozen=True)
class MtxHeader:
    """Parsed banner + size line of a coordinate Matrix Market file."""

    rows: int
    cols: int
    entries: int
    field: str        # "real" | "double" | "integer" | "pattern"
    symmetry: str     # "general" | "symmetric"


def read_mtx_header(path) -> MtxHeader:
    """Parse and validate the header of a coordinate ``.mtx`` file.

    Only what the streaming reader supports is accepted: coordinate
    format, real/integer/pattern field, general/symmetric symmetry
    (everything :func:`write_graph_mtx` emits, and every SDD
    SuiteSparse matrix).
    """
    with open(path) as handle:
        header, _ = _parse_front(handle, path)
    return header


def _parse_front(handle, path) -> tuple:
    """Read banner + comments + size line; leave *handle* at the data."""
    banner = handle.readline().split()
    if len(banner) != 5 or banner[0] != "%%MatrixMarket":
        raise GraphError(f"{path}: not a MatrixMarket file")
    _, obj, fmt, field, symmetry = (token.lower() for token in banner)
    if obj != "matrix" or fmt != "coordinate":
        raise GraphError(
            f"{path}: streaming reader supports coordinate matrices, "
            f"got {obj}/{fmt}"
        )
    if field not in _FIELDS:
        raise GraphError(f"{path}: unsupported field {field!r}")
    if symmetry not in _SYMMETRIES:
        raise GraphError(f"{path}: unsupported symmetry {symmetry!r}")
    for line in handle:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            break
    else:
        raise GraphError(f"{path}: missing size line")
    try:
        rows, cols, entries = (int(tok) for tok in stripped.split())
    except ValueError:
        raise GraphError(f"{path}: bad size line {stripped!r}") from None
    header = MtxHeader(rows, cols, entries, field, symmetry)
    if header.rows != header.cols:
        raise GraphError(
            f"{path}: matrix is not square: {(header.rows, header.cols)}"
        )
    return header, handle


def iter_mtx_entries(path, chunk_nnz: int = DEFAULT_CHUNK_NNZ):
    """Stream the stored entries of a coordinate ``.mtx`` file.

    Yields the header first, then ``(rows, cols, values)`` array
    chunks of at most *chunk_nnz* entries — 0-based indices, stored
    triangle only (no symmetric expansion), ``1.0`` values for
    pattern files.  Raises :class:`~repro.exceptions.GraphError` when
    the file ends before the header's entry count (truncated
    download), so silent short reads cannot masquerade as graphs.
    """
    if chunk_nnz < 1:
        raise GraphError(f"chunk_nnz must be >= 1, got {chunk_nnz}")
    with open(path) as handle:
        header, handle = _parse_front(handle, path)
        yield header
        seen = 0
        while True:
            raw = list(islice(handle, chunk_nnz))
            if not raw:
                break
            lines = [
                line for line in raw
                if line.strip() and not line.lstrip().startswith("%")
            ]
            if not lines:
                continue
            block = np.loadtxt(lines, ndmin=2)
            want = 2 if header.field == "pattern" else 3
            if block.shape[1] != want:
                raise GraphError(
                    f"{path}: expected {want} columns per entry, "
                    f"got {block.shape[1]}"
                )
            rows = block[:, 0].astype(np.int64) - 1
            cols = block[:, 1].astype(np.int64) - 1
            if rows.min() < 0 or cols.min() < 0 or \
                    rows.max() >= header.rows or cols.max() >= header.cols:
                raise GraphError(f"{path}: entry index out of range")
            values = (
                np.ones(len(rows))
                if header.field == "pattern" else block[:, 2]
            )
            seen += len(rows)
            yield rows, cols, values
        if seen != header.entries:
            raise GraphError(
                f"{path}: header promises {header.entries} entries, "
                f"file holds {seen} (truncated?)"
            )


def _canonical_off_diagonal(header, rows, cols, values):
    """Off-diagonal entries as canonical ``u < v`` pairs (raw values).

    Mirrors :func:`read_graph_mtx`: general files contribute their
    strict upper triangle (a symmetric matrix stored in full yields
    each edge once); symmetric files contribute every stored
    off-diagonal entry, endpoints swapped into order.  The last return
    value reports whether *any* stored off-diagonal of the chunk is
    positive — including entries the triangle filter drops — because
    that is the set ``read_graph_mtx``'s mode detection and Laplacian
    sign check are defined over.
    """
    off = rows != cols
    rows, cols, values = rows[off], cols[off], values[off]
    has_positive = bool(np.any(values > 0))
    if header.symmetry == "general":
        upper = rows < cols
        return rows[upper], cols[upper], values[upper], has_positive
    return (
        np.minimum(rows, cols), np.maximum(rows, cols), values,
        has_positive,
    )


def read_graph_mtx_streaming(path, mode="auto",
                             chunk_nnz: int = DEFAULT_CHUNK_NNZ):
    """Chunked counterpart of :func:`read_graph_mtx`.

    Same contract and semantics — ``(Graph, diagonal_excess_or_None)``,
    same ``mode`` handling — but the file is parsed in *chunk_nnz*
    entry chunks instead of through ``scipy.io.mmread``, so peak
    memory is the stored-entry arrays (at most about twice the final
    edge arrays, while chunks and concatenation briefly coexist) plus
    one chunk — scipy's path additionally materializes the symmetric
    expansion and per-entry Python objects.  The resulting graph is
    identical up to edge order.
    """
    edges_u, edges_v, edges_w = [], [], []
    diagonal = None
    header = None
    all_nonpositive = True
    for item in iter_mtx_entries(path, chunk_nnz=chunk_nnz):
        if header is None:
            header = item
            diagonal = np.zeros(header.rows)
            continue
        rows, cols, values = item
        on_diag = rows == cols
        np.add.at(diagonal, rows[on_diag], values[on_diag])
        u, v, w, has_positive = _canonical_off_diagonal(
            header, rows, cols, values
        )
        all_nonpositive = all_nonpositive and not has_positive
        edges_u.append(u)
        edges_v.append(v)
        edges_w.append(w)
    u = np.concatenate(edges_u) if edges_u else np.empty(0, dtype=np.int64)
    v = np.concatenate(edges_v) if edges_v else np.empty(0, dtype=np.int64)
    w = np.concatenate(edges_w) if edges_w else np.empty(0)
    u, v, w, mode = _resolve_streamed_mode(path, mode, u, v, w,
                                           all_nonpositive)
    graph = Graph(header.rows, u, v, w)
    if mode == "laplacian":
        return graph, diagonal - graph.weighted_degrees()
    return graph, None


def _resolve_streamed_mode(path, mode, u, v, w, all_nonpositive):
    """Finish a streaming read: resolve ``mode`` and build the
    canonically-weighted edge arrays (Laplacian negation / adjacency
    absolute value).  Returns ``(u, v, w, resolved_mode)``."""
    if mode == "auto":
        mode = "laplacian" if all_nonpositive else "adjacency"
    if mode == "laplacian":
        if not all_nonpositive:
            raise GraphError(
                f"{path}: matrix has positive off-diagonal entries"
            )
        return u, v, -w, mode
    if mode == "adjacency":
        return u, v, np.abs(w), mode
    raise GraphError(f"unknown mode {mode!r}")


def _stream_filtered_edges(path, labels, keep, chunk_nnz):
    """Stream the canonical off-diagonal edges passing ``keep(u, v)``.

    Shared engine of :func:`read_mtx_shard` / :func:`read_mtx_boundary`:
    validates the label length against the matrix dimension, tracks the
    sign of *every* stored off-diagonal (for ``mode="auto"`` and the
    Laplacian sign check), and accumulates only the filtered edges —
    so peak memory is the kept edges plus one parse chunk.  Returns
    ``(u, v, raw_values, all_nonpositive)``.
    """
    parts_u, parts_v, parts_w = [], [], []
    header = None
    all_nonpositive = True
    for item in iter_mtx_entries(path, chunk_nnz=chunk_nnz):
        if header is None:
            header = item
            if header.rows != len(labels):
                raise GraphError(
                    f"{path}: labels cover {len(labels)} nodes, matrix "
                    f"has {header.rows}"
                )
            continue
        u, v, w, has_positive = _canonical_off_diagonal(header, *item)
        all_nonpositive = all_nonpositive and not has_positive
        wanted = keep(u, v)
        parts_u.append(u[wanted])
        parts_v.append(v[wanted])
        parts_w.append(w[wanted])
    u = np.concatenate(parts_u) if parts_u else np.empty(0, dtype=np.int64)
    v = np.concatenate(parts_v) if parts_v else np.empty(0, dtype=np.int64)
    w = np.concatenate(parts_w) if parts_w else np.empty(0)
    return u, v, w, all_nonpositive


def read_mtx_shard(path, labels, shard: int, mode="auto",
                   chunk_nnz: int = DEFAULT_CHUNK_NNZ):
    """Stream one shard's induced subgraph straight from a ``.mtx`` file.

    With a node -> shard assignment (e.g.
    ``repro.core.partition_shards(...).labels``), this loads the edges
    whose *both* endpoints belong to *shard* — and nothing else — so a
    graph that cannot be read whole can be sparsified shard-by-shard:
    peak memory is one shard plus one parse chunk.

    Parameters
    ----------
    path:
        Coordinate ``.mtx`` file.
    labels : array_like of int
        Per-node shard id; length must match the matrix dimension.
    shard : int
        Which shard to load.
    mode:
        Same semantics as :func:`read_graph_mtx` (``"auto"`` decides
        from the signs of every streamed off-diagonal).

    Returns
    -------
    (Graph, numpy.ndarray)
        The shard subgraph in local numbering, and the ascending
        parent node ids behind that numbering (local node ``k`` is
        parent node ``node_ids[k]``).
    """
    labels = np.asarray(labels, dtype=np.int64)
    node_ids = np.flatnonzero(labels == int(shard))
    if len(node_ids) == 0:
        raise GraphError(f"shard {shard} has no nodes")
    local = np.full(len(labels), -1, dtype=np.int64)
    local[node_ids] = np.arange(len(node_ids))
    u, v, w, all_nonpositive = _stream_filtered_edges(
        path, labels, lambda u, v: (local[u] >= 0) & (local[v] >= 0),
        chunk_nnz,
    )
    u, v, w, _ = _resolve_streamed_mode(
        path, mode, local[u], local[v], w, all_nonpositive
    )
    return Graph(len(node_ids), u, v, w), node_ids


def read_mtx_boundary(path, labels, mode="auto",
                      chunk_nnz: int = DEFAULT_CHUNK_NNZ):
    """Stream only the cut edges of a sharded ``.mtx`` graph.

    The complement of :func:`read_mtx_shard`: edges whose endpoints
    carry *different* labels, as parent-numbered ``(u, v, w)`` arrays
    (weights already canonical for the resolved mode).  Together with
    the per-shard subgraphs this reconstructs the whole graph.
    """
    labels = np.asarray(labels, dtype=np.int64)
    u, v, w, all_nonpositive = _stream_filtered_edges(
        path, labels, lambda u, v: labels[u] != labels[v], chunk_nnz
    )
    u, v, w, _ = _resolve_streamed_mode(path, mode, u, v, w,
                                        all_nonpositive)
    return u, v, w


def write_graph_mtx(path, graph, as_laplacian=True) -> None:
    """Write a graph to a Matrix Market file.

    Writes the (singular) Laplacian by default, or the symmetric
    adjacency when ``as_laplacian`` is false.
    """
    if as_laplacian:
        matrix = laplacian(graph, fmt="coo")
    else:
        matrix = graph.to_scipy_adjacency().tocoo()
    scipy.io.mmwrite(str(path), matrix, symmetry="symmetric")
