"""Named stand-ins for the paper's SuiteSparse test cases.

The paper evaluates on ten symmetric SDD matrices from the SuiteSparse
collection (Table 1).  Offline we cannot download them, so each case is
mapped to a synthetic generator of the same topology class (see
DESIGN.md, substitution 1).  Sizes default to a laptop-friendly scale
and grow with the ``REPRO_SCALE`` environment variable or an explicit
``scale`` argument.

Beyond the Table-1 stand-ins, the registry also names one case per
non-geometric workload family (``ba_social``, ``smallworld``,
``kron_rmat``, ``configmodel``, ``bipartite_rec``) built through
:data:`~repro.graph.generators.GENERATOR_REGISTRY`, so the CLI,
``repro sweep`` and the service's registered-case graph source can
sweep graph *families*, not just the paper's fixed cases.

>>> graph, spec = make_case("ecology2")
>>> graph.n > 0
True
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import zlib

import numpy as np

from repro.exceptions import GraphError
from repro.graph.generators import (
    circuit_grid,
    grid2d,
    make_family_graph,
    triangular_mesh,
)
from repro.graph.graph import Graph

__all__ = [
    "CaseSpec", "CASE_REGISTRY", "FAMILY_CASES", "make_case", "scaled_size",
]


@dataclass(frozen=True)
class CaseSpec:
    """Metadata for one named test case."""

    name: str
    family: str          # a GENERATOR_REGISTRY kind or "grid"/"mesh"/"circuit"
    paper_nodes: float   # |V| in the paper (0 for non-paper workload cases)
    paper_edges: float   # |E| in the paper (0 for non-paper workload cases)
    base_nodes: int      # default reproduction size at scale 1.0
    detail: str          # how the stand-in is built


CASE_REGISTRY = {
    "ecology2": CaseSpec(
        "ecology2", "grid", 1.0e6, 2.0e6, 10000,
        "5-point 2-D grid, uniform random weights",
    ),
    "thermal2": CaseSpec(
        "thermal2", "mesh", 1.2e6, 3.7e6, 10000,
        "Delaunay mesh on a disk, smooth weight field",
    ),
    "parabolic": CaseSpec(
        "parabolic", "grid", 0.5e6, 1.6e6, 8100,
        "7-point (diagonal) 2-D grid, smooth weights",
    ),
    "tmt_sym": CaseSpec(
        "tmt_sym", "grid", 0.7e6, 2.2e6, 8100,
        "7-point (diagonal) 2-D grid, uniform weights",
    ),
    "G3_circuit": CaseSpec(
        "G3_circuit", "circuit", 1.6e6, 3.0e6, 12800,
        "2-layer circuit grid with random vias",
    ),
    "NACA0015": CaseSpec(
        "NACA0015", "mesh", 1.0e6, 3.1e6, 10000,
        "Delaunay mesh around an airfoil-shaped hole",
    ),
    "M6": CaseSpec(
        "M6", "mesh", 3.5e6, 1.1e7, 14000,
        "Delaunay mesh on a tapered wing planform",
    ),
    "333SP": CaseSpec(
        "333SP", "mesh", 3.7e6, 1.1e7, 14000,
        "Delaunay mesh on an L-shaped domain",
    ),
    "AS365": CaseSpec(
        "AS365", "mesh", 3.8e6, 1.1e7, 14000,
        "Delaunay mesh on a disk, uniform weights",
    ),
    "NLR": CaseSpec(
        "NLR", "mesh", 4.2e6, 1.2e7, 16000,
        "Delaunay mesh on a square, smooth weights",
    ),
    # Workload-family cases (not in the paper's Table 1): one named
    # entry per non-geometric GENERATOR_REGISTRY family, so every front
    # door that speaks case names can sweep these topology classes too.
    "ba_social": CaseSpec(
        "ba_social", "powerlaw", 0.0, 0.0, 8000,
        "Barabasi-Albert preferential attachment, attach=4",
    ),
    "smallworld": CaseSpec(
        "smallworld", "smallworld", 0.0, 0.0, 8000,
        "Watts-Strogatz ring, k=6, rewiring p=0.1",
    ),
    "kron_rmat": CaseSpec(
        "kron_rmat", "rmat", 0.0, 0.0, 8192,
        "stochastic Kronecker (R-MAT), bridged connected",
    ),
    "configmodel": CaseSpec(
        "configmodel", "random", 0.0, 0.0, 8000,
        "erased configuration model, Poisson mean degree 4",
    ),
    "bipartite_rec": CaseSpec(
        "bipartite_rec", "bipartite", 0.0, 0.0, 6000,
        "bipartite recommender, 4 planted taste blocks",
    ),
}

#: Case names built through the workload-family registry (vs the
#: paper's Table-1 stand-ins), mapped to their family key.
FAMILY_CASES = {
    "ba_social": "ba",
    "smallworld": "smallworld",
    "kron_rmat": "kronecker",
    "configmodel": "configmodel",
    "bipartite_rec": "bipartite",
}


def scaled_size(base_nodes: int, scale=None) -> int:
    """Apply the REPRO_SCALE environment override to a base size."""
    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    if scale <= 0:
        raise GraphError(f"scale must be positive, got {scale}")
    return max(64, int(round(base_nodes * scale)))


def make_case(name: str, scale=None, seed: int = 0):
    """Build the named case; returns ``(Graph, CaseSpec)``."""
    if name not in CASE_REGISTRY:
        raise GraphError(
            f"unknown case {name!r}; available: {sorted(CASE_REGISTRY)}"
        )
    spec = CASE_REGISTRY[name]
    n = scaled_size(spec.base_nodes, scale)
    side = max(2, int(round(np.sqrt(n))))
    # zlib.crc32, not hash(): str hashing is salted per process, which
    # would make the "same" named case a different random graph in every
    # interpreter run (and turn benchmark assertions into a lottery).
    seed = seed + (zlib.crc32(name.encode()) % 1000)
    if name == "ecology2":
        graph = grid2d(side, side, weights="uniform", seed=seed)
    elif name == "thermal2":
        graph = triangular_mesh(n, shape="disk", weights="smooth", seed=seed)
    elif name == "parabolic":
        # parabolic_fem discretizes a constant-coefficient diffusion
        # problem: entries are near-uniform, so use a narrow smooth band.
        graph = grid2d(side, side, weights="smooth", diagonals=True,
                       seed=seed, w_min=0.5, w_max=2.0)
    elif name == "tmt_sym":
        graph = grid2d(side, side, weights="uniform", diagonals=True, seed=seed)
    elif name == "G3_circuit":
        half = max(2, int(round(np.sqrt(n / 2))))
        graph = circuit_grid(half, half, layers=2, via_density=0.05, seed=seed)
    elif name == "NACA0015":
        graph = triangular_mesh(n, shape="airfoil", weights="uniform", seed=seed)
    elif name == "M6":
        graph = triangular_mesh(n, shape="wing", weights="smooth", seed=seed)
    elif name == "333SP":
        graph = triangular_mesh(n, shape="lshape", weights="uniform", seed=seed)
    elif name == "AS365":
        graph = triangular_mesh(n, shape="disk", weights="uniform", seed=seed)
    elif name == "NLR":
        graph = triangular_mesh(n, shape="square", weights="smooth", seed=seed)
    elif name in FAMILY_CASES:
        graph = make_family_graph(FAMILY_CASES[name], n, seed=seed)
    else:  # pragma: no cover - registry and dispatch kept in sync
        raise GraphError(f"no builder wired for {name!r}")
    assert isinstance(graph, Graph)
    return graph, spec
