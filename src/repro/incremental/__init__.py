"""Incremental sparsification for evolving graphs.

The delta counterpart of the one-shot pipeline: keep a sparsifier
*alive* under streams of edge insertions and deletions instead of
rebuilding it per mutation.  :class:`EvolvingSparsifier` maintains the
spanning forest, ball cache and kept-edge ranking locally per batch
(with a drift monitor falling back to the full pipeline),
:class:`DeltaRecord` is the lossless per-batch log, and
:func:`sparsify_delta` is the one-call facade mirrored as
``repro.sparsify_delta``.
"""

from repro.incremental.delta import DeltaRecord, EdgeBatch, normalize_batch
from repro.incremental.evolving import EvolvingSparsifier, sparsify_delta

__all__ = [
    "DeltaRecord",
    "EdgeBatch",
    "EvolvingSparsifier",
    "normalize_batch",
    "sparsify_delta",
]
