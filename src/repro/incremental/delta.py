"""Edge batches and the machine-readable delta log.

An :class:`EdgeBatch` is one normalized group of edge mutations
(insertions and deletions) applied atomically to an evolving graph, and
a :class:`DeltaRecord` is the lossless JSON log of a whole mutation
stream — the incremental counterpart of
:class:`~repro.api.records.RunRecord`: per batch it captures how many
edges changed, how far the change propagated (touched nodes, re-ranked
edges, forest replacements), what the drift monitor estimated, and
whether a full rebuild fired.  ``DeltaRecord.from_json(r.to_json()) ==
r`` holds bit for bit, so ``BENCH_incremental.json`` trajectories and
the service's ``GET /graphs/<id>/sparsifier`` payload share one schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.exceptions import IncrementalError

__all__ = ["EdgeBatch", "DeltaRecord", "normalize_batch"]

SCHEMA_VERSION = 1

#: Keys a wire-format batch dict may carry.
_BATCH_KEYS = frozenset({"insert", "delete"})


@dataclass(frozen=True)
class EdgeBatch:
    """One normalized batch of edge mutations.

    Attributes
    ----------
    inserts:
        Tuple of ``(u, v, w)`` triples with ``u < v`` and ``w > 0``.
    deletes:
        Tuple of ``(u, v)`` pairs with ``u < v``.
    """

    inserts: tuple = ()
    deletes: tuple = ()

    @property
    def touched_nodes(self) -> tuple:
        """Sorted endpoints of every edge this batch mutates."""
        nodes = {u for u, v, _ in self.inserts for u in (u, v)}
        nodes.update(n for u, v in self.deletes for n in (u, v))
        return tuple(sorted(nodes))

    def to_dict(self) -> dict:
        """The batch in wire format: ``{"insert": ..., "delete": ...}``."""
        return {
            "insert": [[u, v, w] for u, v, w in self.inserts],
            "delete": [[u, v] for u, v in self.deletes],
        }


def normalize_batch(inserts=(), deletes=(), *, batch: dict | None = None
                    ) -> EdgeBatch:
    """Validate and canonicalize one edge batch.

    Accepts either explicit ``inserts`` / ``deletes`` iterables or a
    wire-format ``batch`` dict (``{"insert": [[u, v, w], ...],
    "delete": [[u, v], ...]}`` — the ``PATCH /graphs/<id>/edges``
    body).  Endpoints are canonicalized to ``u < v``; self loops,
    non-positive weights, malformed entries and duplicates within one
    half raise :class:`~repro.exceptions.IncrementalError`.  The same
    edge may appear in both halves — delete-then-insert re-weights it
    atomically (deletions apply first).
    """
    if batch is not None:
        if inserts or deletes:
            raise IncrementalError(
                "pass either a batch dict or inserts=/deletes=, not both"
            )
        if not isinstance(batch, dict):
            raise IncrementalError(
                f"edge batch must be a dict, got {type(batch).__name__}"
            )
        unknown = sorted(set(batch) - _BATCH_KEYS)
        if unknown:
            raise IncrementalError(
                f"unknown edge-batch key(s) {', '.join(map(repr, unknown))}; "
                "valid keys: delete, insert"
            )
        inserts = batch.get("insert") or ()
        deletes = batch.get("delete") or ()

    # Duplicates are rejected per half; one edge may appear in BOTH
    # halves, because delete-then-insert is the documented way to
    # re-weight an edge atomically (deletions apply first).
    seen: set = set()
    norm_inserts = []
    for entry in inserts:
        try:
            u, v, w = entry
            u, v, w = int(u), int(v), float(w)
        except (TypeError, ValueError):
            raise IncrementalError(
                f"insert entries must be (u, v, w) triples, got {entry!r}"
            ) from None
        if u == v:
            raise IncrementalError(f"self loop ({u}, {v}) is not allowed")
        if not (w > 0.0) or w != w or w == float("inf"):
            raise IncrementalError(
                f"edge weight must be finite and positive, got {w!r} "
                f"for ({u}, {v})"
            )
        if u > v:
            u, v = v, u
        if (u, v) in seen:
            raise IncrementalError(
                f"edge ({u}, {v}) appears twice in one batch"
            )
        seen.add((u, v))
        norm_inserts.append((u, v, w))

    seen = set()
    norm_deletes = []
    for entry in deletes:
        try:
            u, v = entry
            u, v = int(u), int(v)
        except (TypeError, ValueError):
            raise IncrementalError(
                f"delete entries must be (u, v) pairs, got {entry!r}"
            ) from None
        if u > v:
            u, v = v, u
        if (u, v) in seen:
            raise IncrementalError(
                f"edge ({u}, {v}) appears twice in one batch"
            )
        seen.add((u, v))
        norm_deletes.append((u, v))
    return EdgeBatch(inserts=tuple(norm_inserts),
                     deletes=tuple(norm_deletes))


@dataclass
class DeltaRecord:
    """The lossless log of one evolving-sparsifier mutation stream.

    Attributes
    ----------
    method:
        Registry name of the underlying sparsifier method.
    label:
        Graph label (mirrors :class:`~repro.api.records.RunRecord`).
    config:
        The method configuration as a plain dict.
    drift_budget:
        The condition-number budget the drift monitor rebuilds at.
    graph:
        ``{"nodes", "edges"}`` summary of the *base* graph the stream
        started from.
    entries:
        One dict per applied batch (and per explicit rebuild):
        ``{"batch", "inserted", "deleted", "touched_nodes",
        "reranked_edges", "forest_replacements", "kept_added",
        "kept_dropped", "graph_edges", "sparsifier_edges",
        "drift_estimate", "rebuild", "seconds"}``.
    """

    method: str
    label: str
    config: dict
    drift_budget: float
    graph: dict
    entries: list = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def batches(self) -> int:
        """Number of logged entries (batches plus explicit rebuilds)."""
        return len(self.entries)

    @property
    def rebuilds(self) -> int:
        """How many entries ended in a full rebuild."""
        return sum(1 for entry in self.entries if entry.get("rebuild"))

    def append(self, entry: dict) -> dict:
        """Append one per-batch entry (stamped with its index)."""
        entry = dict(entry)
        entry.setdefault("batch", len(self.entries))
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # (de)serialization — the RunRecord contract
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The record as one plain, JSON-serializable dict."""
        return {
            "schema_version": self.schema_version,
            "method": self.method,
            "label": self.label,
            "config": self.config,
            "drift_budget": self.drift_budget,
            "graph": self.graph,
            "entries": self.entries,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeltaRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            method=data["method"],
            label=data["label"],
            config=data["config"],
            drift_budget=float(data["drift_budget"]),
            graph=data["graph"],
            entries=list(data.get("entries", [])),
            schema_version=data.get("schema_version", SCHEMA_VERSION),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize losslessly to JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DeltaRecord":
        """Inverse of :meth:`to_json`: ``from_json(r.to_json()) == r``."""
        return cls.from_dict(json.loads(text))
