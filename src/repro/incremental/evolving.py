"""Incremental sparsification for evolving graphs.

A production service absorbing edge-stream traffic sees *mutations* of
a graph it already sparsified, not fresh graphs.  Rebuilding from
scratch on every batch discards exactly the state the trace-reduction
loop spent its time on: the spanning forest, the BFS-ball cache, and
the effective-resistance estimates.  All three admit local updates
under small edge batches — leverage scores ``w_e * R_eff(e)`` change
materially only near the mutated endpoints (Spielman & Srivastava,
arXiv:0803.0929) — so :class:`EvolvingSparsifier` keeps them alive:

* the spanning forest is repaired with the existing
  :class:`~repro.tree.dsu.DisjointSetUnion` (deleted tree edges get a
  replacement-edge search, local-first);
* the :class:`~repro.core.ranking.BallCache` touched-node invalidation
  is reused as the locality engine — only nodes whose beta-ball
  overlaps a mutated endpoint (in the old *or* new adjacency) are
  considered changed;
* off-tree kept edges are re-ranked only inside that touched
  neighborhood, by the tree-resistance leverage surrogate
  ``w_e * R_T(e)`` (one Tarjan offline-LCA batch per mutation batch).

A drift monitor accumulates a conservative condition-number factor for
every change the local pass could *not* compensate; when the estimate
exceeds ``drift_budget`` the sparsifier rebuilds from scratch — and a
forced :meth:`~EvolvingSparsifier.rebuild` is fingerprint-identical to
a direct :func:`repro.sparsify` on the mutated graph.  Every batch is
logged in a :class:`~repro.incremental.delta.DeltaRecord`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import asdict

import numpy as np

from repro.api.records import RunRecord
from repro.api.registry import get_method, sparsifier_methods
from repro.api.session import SparsifierSession
from repro.core.ranking import BallCache
from repro.exceptions import IncrementalError
from repro.graph.bfs import BallFinder
from repro.graph.graph import Graph
from repro.incremental.delta import DeltaRecord, EdgeBatch, normalize_batch
from repro.tree.dsu import DisjointSetUnion
from repro.tree.lca import batch_tree_resistances
from repro.tree.rooted import RootedForest
from repro.tree.spanning import effective_weights
from repro.utils.timers import Timer

__all__ = ["EvolvingSparsifier", "sparsify_delta"]


class EvolvingSparsifier:
    """A sparsifier that follows a graph through edge mutations.

    Owns a base :class:`~repro.api.session.SparsifierSession` (the full
    trace-reduction build) plus delta state: the current edge map, the
    maintained spanning forest, the kept-edge set and a
    :class:`~repro.core.ranking.BallCache` over the current adjacency.
    :meth:`apply_batch` folds one batch of insertions/deletions into
    all of them locally; :meth:`rebuild` (or the drift monitor) falls
    back to the full pipeline.

    Parameters
    ----------
    graph : repro.graph.Graph
        The initial graph.
    method : str
        A registered method with the ``supports_incremental``
        capability (``"proposed"`` or ``"er_sampling"``);
        :class:`~repro.exceptions.IncrementalError` otherwise.
    config : optional
        Ready-made config dataclass (mutually exclusive with options).
    drift_budget : float
        Rebuild when the estimated condition-number inflation of the
        maintained sparsifier (vs a from-scratch run) exceeds this
        factor.  Must be ``> 1``.  The estimate is a *conservative
        product of per-change bounds* (each uncompensated change
        charges ``1 + w_e * R(e)`` with a path-resistance upper bound
        on ``R``), so it typically overstates the measured kappa ratio
        by a wide margin; budgets are set on the bound, not on measured
        kappa.  Deletions of heavy, poorly-bypassed edges dominate the
        estimate — delete-heavy streams rebuild more often by design.
    locality_beta : int
        Radius of the touched neighborhood: a node is re-examined when
        a mutated endpoint lies within this many hops in the old or new
        adjacency.  Matches the :class:`BallCache` invalidation rule.
    label : str
        Graph label stamped into emitted records.
    persistent, cache_dir :
        Forwarded to the base session's on-disk artifact cache.
    **options
        Fields of the method's config dataclass.

    Examples
    --------
    >>> from repro import grid2d
    >>> from repro.incremental import EvolvingSparsifier
    >>> ev = EvolvingSparsifier(grid2d(8, 8, seed=0), edge_fraction=0.2)
    >>> entry = ev.apply_batch(inserts=[(0, 27, 1.0)], deletes=[(0, 1)])
    >>> entry["rebuild"], ev.record.batches
    (False, 1)
    """

    def __init__(self, graph: Graph, method: str = "proposed", config=None,
                 *, drift_budget: float = 32.0, locality_beta: int = 2,
                 label: str = "graph", persistent: bool = False,
                 cache_dir=None, **options) -> None:
        spec = get_method(method)
        if not spec.supports_incremental:
            capable = sorted(
                name for name, other in sparsifier_methods().items()
                if other.supports_incremental
            )
            raise IncrementalError(
                f"method {method!r} does not support incremental updates; "
                "methods with the supports_incremental capability: "
                f"{', '.join(capable)}"
            )
        if not drift_budget > 1.0:
            raise IncrementalError(
                f"drift_budget must be > 1, got {drift_budget!r}"
            )
        if locality_beta < 1:
            raise IncrementalError(
                f"locality_beta must be >= 1, got {locality_beta!r}"
            )
        self.method = method
        self.config = spec.make_config(config, **options)
        self.drift_budget = float(drift_budget)
        self.locality_beta = int(locality_beta)
        self.label = label
        self._persistent = bool(persistent)
        self._cache_dir = cache_dir

        self.n = graph.n
        self._edges: dict = {
            (int(u), int(v)): float(w)
            for u, v, w in zip(graph.u, graph.v, graph.w)
        }
        self.graph = self._materialize()
        self.record = DeltaRecord(
            method=method,
            label=label,
            config=_plain(asdict(self.config)),
            drift_budget=self.drift_budget,
            graph={"nodes": self.graph.n, "edges": self.graph.edge_count},
        )
        self._kept: set = set()
        self._tree: set = set()
        self._offtree_target = 0
        self._log_drift = 0.0
        self._cache = BallCache(self.locality_beta)
        self.base_record = self._full_build()

    # ------------------------------------------------------------------
    # state accessors
    # ------------------------------------------------------------------
    @property
    def sparsifier(self) -> Graph:
        """The maintained sparsifier ``P`` as a graph on all ``n`` nodes."""
        lookup = self.graph.edge_lookup()
        mask = np.zeros(self.graph.edge_count, dtype=bool)
        for pair in self._kept:
            mask[lookup[pair]] = True
        return self.graph.subgraph(mask)

    @property
    def drift_estimate(self) -> float:
        """Estimated condition-number inflation since the last rebuild."""
        return math.exp(self._log_drift)

    @property
    def forest_edges(self) -> tuple:
        """Sorted ``(u, v)`` pairs of the maintained spanning forest."""
        return tuple(sorted(self._tree))

    def summary(self) -> dict:
        """One JSON-ready dict of the current evolving state."""
        return {
            "method": self.method,
            "label": self.label,
            "nodes": self.n,
            "edges": self.graph.edge_count,
            "sparsifier_edges": len(self._kept),
            "forest_edges": len(self._tree),
            "batches": self.record.batches,
            "rebuilds": self.record.rebuilds,
            "drift_estimate": self.drift_estimate,
            "drift_budget": self.drift_budget,
        }

    # ------------------------------------------------------------------
    # the full pipeline (base build / rebuild fallback)
    # ------------------------------------------------------------------
    def _materialize(self) -> Graph:
        """The current edge map as a canonical ``(u, v)``-sorted graph."""
        return Graph.from_edges(
            self.n,
            [(u, v, w) for (u, v), w in sorted(self._edges.items())],
        )

    def _full_build(self) -> RunRecord:
        """Run the registered method from scratch on the current graph.

        Resets the forest, the kept set, the off-tree budget, the ball
        cache and the drift estimate.  The emitted
        :class:`~repro.api.records.RunRecord` is fingerprint-identical
        to a direct :func:`repro.sparsify` of the current graph.
        """
        session = SparsifierSession(
            self.graph, self.label,
            persistent=self._persistent, cache_dir=self._cache_dir,
        )
        result = session.sparsify(self.method, self.config)
        record = RunRecord.from_result(
            result, method=self.method, label=self.label
        )
        u, v = self.graph.u, self.graph.v
        kept_ids = np.nonzero(result.edge_mask)[0]
        self._kept = {
            (int(u[e]), int(v[e])) for e in kept_ids
        }
        self._tree = {
            (int(u[e]), int(v[e])) for e in result.tree_edge_ids
        }
        self._offtree_target = len(self._kept) - len(self._tree)
        self._log_drift = 0.0
        self._cache = BallCache(self.locality_beta)
        indptr, nbr, _ = self.graph.adjacency()
        self._cache.attach_subgraph(indptr, nbr)
        return record

    def rebuild(self) -> RunRecord:
        """Force a from-scratch rebuild on the current graph.

        Returns the :class:`~repro.api.records.RunRecord`, whose
        :meth:`~repro.api.records.RunRecord.fingerprint` equals a
        direct ``repro.sparsify(ev.graph, ...)`` run's.  Logged as a
        ``rebuild`` entry in :attr:`record`.
        """
        timer = Timer()
        with timer:
            record = self._full_build()
        self.base_record = record
        self.record.append({
            "inserted": 0,
            "deleted": 0,
            "touched_nodes": 0,
            "reranked_edges": 0,
            "forest_replacements": 0,
            "kept_added": 0,
            "kept_dropped": 0,
            "graph_edges": self.graph.edge_count,
            "sparsifier_edges": len(self._kept),
            "drift_estimate": self.drift_estimate,
            "rebuild": True,
            "seconds": timer.elapsed,
        })
        return record

    # ------------------------------------------------------------------
    # the delta path
    # ------------------------------------------------------------------
    def apply_batch(self, inserts=(), deletes=(), *,
                    batch: dict | None = None) -> dict:
        """Apply one batch of edge mutations and update the sparsifier.

        Deletions are applied before insertions (so delete-then-insert
        re-weights an edge in one batch).  Deleting an absent edge or
        inserting an existing one raises
        :class:`~repro.exceptions.IncrementalError`; the graph is not
        modified on a rejected batch.

        Returns the per-batch :class:`DeltaRecord` entry, including
        ``rebuild=True`` when the drift monitor fell back to the full
        pipeline.
        """
        eb = normalize_batch(inserts, deletes, batch=batch)
        timer = Timer()
        with timer:
            entry = self._apply(eb)
        entry["seconds"] = timer.elapsed
        return self.record.append(entry)

    def _apply(self, eb: EdgeBatch) -> dict:
        self._check_batch(eb)
        old_graph = self.graph
        deleted_kept = [
            (pair, self._edges[pair])
            for pair in eb.deletes if pair in self._kept
        ]
        tree_deleted = any(pair in self._tree for pair in eb.deletes)
        for pair in eb.deletes:
            del self._edges[pair]
            self._kept.discard(pair)
            self._tree.discard(pair)
        for u, v, w in eb.inserts:
            self._edges[(u, v)] = w
        self.graph = self._materialize()

        touched = np.asarray(eb.touched_nodes, dtype=np.int64)
        region = self._touched_region(old_graph, touched)
        replacements = self._repair_forest(region, tree_deleted)
        inserted_pairs = {(u, v) for u, v, _ in eb.inserts}
        reranked, added, dropped, displaced, scores = self._rerank(
            region, inserted_pairs
        )
        self._accumulate_drift(eb, deleted_kept, dropped, scores)

        # The entry logs the estimate that made the rebuild decision;
        # a rebuild resets the live estimate back to 1.
        drift_at_batch = self.drift_estimate
        rebuilt = False
        if drift_at_batch > self.drift_budget:
            self.base_record = self._full_build()
            rebuilt = True
        return {
            "inserted": len(eb.inserts),
            "deleted": len(eb.deletes),
            "touched_nodes": len(region),
            "reranked_edges": reranked,
            "forest_replacements": replacements,
            "kept_added": len(added),
            "kept_dropped": len(dropped) + len(displaced),
            "graph_edges": self.graph.edge_count,
            "sparsifier_edges": len(self._kept),
            "drift_estimate": drift_at_batch,
            "rebuild": rebuilt,
        }

    def _check_batch(self, eb: EdgeBatch) -> None:
        """Validate a normalized batch against the current edge map."""
        for u, v, _ in eb.inserts:
            if not (0 <= u and v < self.n):
                raise IncrementalError(
                    f"edge ({u}, {v}) out of range for n={self.n}"
                )
        for pair in eb.deletes:
            if pair not in self._edges:
                raise IncrementalError(
                    f"cannot delete absent edge {pair}"
                )
        deleted = set(eb.deletes)
        for u, v, _ in eb.inserts:
            if (u, v) in self._edges and (u, v) not in deleted:
                raise IncrementalError(
                    f"edge ({u}, {v}) already exists; delete it first to "
                    "re-weight"
                )

    def _touched_region(self, old_graph: Graph,
                        touched: np.ndarray) -> np.ndarray:
        """Nodes whose local state a batch may have changed.

        The :class:`BallCache` invalidation rule, applied symmetrically:
        a node is affected iff a mutated endpoint is within
        ``locality_beta`` hops in the old **or** new adjacency (deleted
        edges only show up in the old one).  Also rolls the cache onto
        the new adjacency, dropping exactly these entries.
        """
        indptr, nbr, _ = self.graph.adjacency()
        self._cache.attach_subgraph(indptr, nbr, invalidate=touched)
        if len(touched) == 0:
            return touched
        old_indptr, old_nbr, _ = old_graph.adjacency()
        old_finder = BallFinder(old_indptr, old_nbr)
        region: set = set()
        for node in touched:
            region.update(self._cache.ball(int(node)).tolist())
            region.update(
                old_finder.ball_nodes(int(node), self.locality_beta).tolist()
            )
        return np.asarray(sorted(region), dtype=np.int64)

    def _repair_forest(self, region: np.ndarray, tree_deleted: bool) -> int:
        """Restore the spanning forest after a batch, local-first.

        Surviving forest edges are unioned into a DSU; replacement
        candidates incident to the touched *region* are tried first (by
        descending feGRASS effective weight, ties on ``(u, v)``), and a
        global Kruskal completion runs only when a tree edge was
        deleted — insertions can only ever *add* forest edges between
        previously separate components, and those are always local.
        """
        graph = self.graph
        dsu = DisjointSetUnion(self.n)
        for u, v in self._tree:
            dsu.union(u, v)
        eff = effective_weights(graph)
        u_arr, v_arr = graph.u, graph.v

        def _absorb(edge_ids) -> int:
            count = 0
            order = sorted(
                (int(e) for e in edge_ids),
                key=lambda e: (-eff[e], int(u_arr[e]), int(v_arr[e])),
            )
            for e in order:
                if dsu.union(int(u_arr[e]), int(v_arr[e])):
                    self._tree.add((int(u_arr[e]), int(v_arr[e])))
                    count += 1
            return count

        local_mask = np.isin(u_arr, region) | np.isin(v_arr, region)
        replacements = _absorb(np.nonzero(local_mask)[0])
        if tree_deleted:
            # A deleted tree edge's replacement may live outside the
            # locality radius; the Kruskal completion is a no-op when
            # the local pass already reconnected everything.
            replacements += _absorb(np.nonzero(~local_mask)[0])
        self._kept.update(self._tree)
        return replacements

    def _rerank(self, region: np.ndarray, inserted_pairs: set):
        """Re-rank off-tree edges inside the touched region.

        Scores every non-forest edge with an endpoint in *region* by
        the leverage surrogate ``w_e * R_T(e)`` (tree resistance via
        one Tarjan offline-LCA batch) and adjusts the kept set toward
        the off-tree budget of the last full build: top-up with the
        best unkept local edges, trim the worst kept local edges, and
        swap in inserted edges that beat a kept local edge.  Only
        *mutation-caused* changes move the kept set — surviving edges
        are never displaced by one another (their base ranking came
        from the full trace-reduction run, which the tree-resistance
        surrogate must not relitigate).

        Returns ``(scored_count, added_pairs, dropped_pairs,
        displaced_pairs, scores)`` where *scores* maps local ``(u, v)``
        pairs to their leverage; *displaced* pairs left through a swap
        (compensated by the incoming edge), *dropped* pairs through a
        trim (charged to the drift monitor).
        """
        if len(region) == 0:
            return 0, [], [], [], {}
        graph = self.graph
        lookup = graph.edge_lookup()
        forest = RootedForest(
            graph,
            np.asarray(sorted(lookup[p] for p in self._tree),
                       dtype=np.int64),
        )
        self._forest = forest
        u_arr, v_arr, w_arr = graph.u, graph.v, graph.w
        tree_mask = np.zeros(graph.edge_count, dtype=bool)
        tree_mask[forest.edge_ids] = True
        local = np.nonzero(
            (np.isin(u_arr, region) | np.isin(v_arr, region)) & ~tree_mask
        )[0]
        if len(local) == 0:
            return 0, [], [], [], {}
        resist, _ = batch_tree_resistances(
            forest, u_arr[local], v_arr[local]
        )
        scores = {
            (int(u_arr[e]), int(v_arr[e])): float(w_arr[e] * resist[k])
            for k, e in enumerate(local)
        }

        added, dropped = [], []
        offtree = len(self._kept) - len(self._tree)
        if offtree < self._offtree_target:
            candidates = sorted(
                (p for p in scores if p not in self._kept),
                key=lambda p: (-scores[p], p),
            )
            for pair in candidates[: self._offtree_target - offtree]:
                self._kept.add(pair)
                added.append(pair)
        elif offtree > self._offtree_target:
            droppable = sorted(
                (p for p in scores
                 if p in self._kept and p not in self._tree),
                key=lambda p: (scores[p], p),
            )
            for pair in droppable[: offtree - self._offtree_target]:
                self._kept.discard(pair)
                dropped.append(pair)
        # Swap pass: a freshly inserted edge that beats a kept local
        # edge displaces it.  This is what makes a high-leverage
        # insertion *compensated* — it enters the sparsifier instead of
        # being charged to the drift monitor, and the exchange itself
        # is quality-neutral-or-better (incoming leverage strictly
        # exceeds outgoing), so displaced edges are not charged either.
        displaced = []
        kept_local = sorted(
            (p for p in scores if p in self._kept and p not in self._tree),
            key=lambda p: (scores[p], p),
        )
        incoming = sorted(
            (p for p in inserted_pairs
             if p in scores and p not in self._kept),
            key=lambda p: (-scores[p], p),
        )
        for worst, best in zip(kept_local, incoming):
            if scores[best] <= scores[worst]:
                break
            self._kept.discard(worst)
            self._kept.add(best)
            displaced.append(worst)
            added.append(best)
        return len(local), added, dropped, displaced, scores

    def _accumulate_drift(self, eb: EdgeBatch, deleted_kept: list,
                          dropped: list, scores: dict) -> None:
        """Fold this batch's uncompensated changes into the drift log.

        Each change the local pass did not absorb — an inserted edge
        left out of the sparsifier, or a previously kept edge removed —
        inflates the condition number by at most ``1 + w_e * R_eff(e)``
        (rank-one interlacing); tree resistance overestimates effective
        resistance, so the accumulated product is a conservative bound.
        A deleted kept edge whose endpoints fall into different
        components has unbounded leverage and forces a rebuild.
        """
        forest = getattr(self, "_forest", None)
        inserted_pairs = {(u, v) for u, v, _ in eb.inserts}
        charges = []
        for u, v, w in eb.inserts:
            if (u, v) not in self._kept:
                charges.append((u, v, w, scores.get((u, v))))
        for u, v in dropped:
            if (u, v) in inserted_pairs:
                # Already charged above as an uncompensated insertion.
                continue
            charges.append((u, v, self._edges[(u, v)], scores[(u, v)]))
        for (u, v), w in deleted_kept:
            charges.append((u, v, w, None))
        for u, v, w, score in charges:
            leverage = score
            if leverage is None:
                leverage = self._tree_leverage(forest, u, v, w)
            # Any u-v path in the kept subgraph upper-bounds effective
            # resistance, and the best detour is usually far shorter
            # than the forest path (local off-tree kept edges bypass
            # the change), so take the tighter of the two bounds.
            detour = self._kept_detour_resistance(u, v)
            if detour is not None:
                leverage = (
                    w * detour if leverage is None
                    else min(leverage, w * detour)
                )
            if leverage is None:
                # Endpoints in different components: the change is not
                # spectrally bounded, only a rebuild can tell.
                self._log_drift = math.inf
                return
            self._log_drift += math.log1p(leverage)

    def _kept_detour_resistance(self, u: int, v: int):
        """Resistance of the best u-v path in the kept subgraph.

        Dijkstra with ``1/w`` edge lengths over the maintained
        sparsifier; series resistance of any path upper-bounds the
        effective resistance between its endpoints.  Returns ``None``
        when no path exists.
        """
        adjacency: dict = {}
        for (a, b), w in self._edges.items():
            if (a, b) not in self._kept:
                continue
            adjacency.setdefault(a, []).append((b, 1.0 / w))
            adjacency.setdefault(b, []).append((a, 1.0 / w))
        dist = {u: 0.0}
        heap = [(0.0, u)]
        while heap:
            d, node = heapq.heappop(heap)
            if node == v:
                return d
            if d > dist.get(node, math.inf):
                continue
            for nbr, length in adjacency.get(node, ()):
                nd = d + length
                if nd < dist.get(nbr, math.inf):
                    dist[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        return None

    def _tree_leverage(self, forest, u: int, v: int, w: float):
        """``w * R_T(u, v)`` in the current forest, or None across cuts."""
        if forest is None or forest.graph is not self.graph:
            lookup = self.graph.edge_lookup()
            forest = RootedForest(
                self.graph,
                np.asarray(sorted(lookup[p] for p in self._tree),
                           dtype=np.int64),
            )
            self._forest = forest
        if forest.component_labels[u] != forest.component_labels[v]:
            return None
        resist, _ = batch_tree_resistances(
            forest, np.asarray([u]), np.asarray([v])
        )
        return float(w * resist[0])


def sparsify_delta(graph: Graph, batches=(), method: str = "proposed",
                   config=None, *, drift_budget: float = 32.0,
                   locality_beta: int = 2, label: str = "graph",
                   **options) -> EvolvingSparsifier:
    """Sparsify *graph* and replay a stream of edge batches onto it.

    The facade counterpart of :func:`repro.sparsify` for evolving
    graphs: builds an :class:`EvolvingSparsifier` and applies every
    batch (wire-format dicts — ``{"insert": [[u, v, w], ...],
    "delete": [[u, v], ...]}`` — or :class:`EdgeBatch` instances).

    Returns the evolving sparsifier; the per-batch trail is on
    ``.record`` (a :class:`~repro.incremental.delta.DeltaRecord`) and
    the maintained graph on ``.sparsifier``.

    Examples
    --------
    >>> import repro
    >>> ev = repro.sparsify_delta(
    ...     repro.grid2d(8, 8, seed=0),
    ...     batches=[{"insert": [[0, 27, 1.0]], "delete": [[0, 1]]}],
    ...     edge_fraction=0.2,
    ... )
    >>> ev.record.batches
    1
    """
    evolving = EvolvingSparsifier(
        graph, method, config,
        drift_budget=drift_budget, locality_beta=locality_beta,
        label=label, **options,
    )
    for item in batches:
        if isinstance(item, EdgeBatch):
            evolving.apply_batch(item.inserts, item.deletes)
        else:
            evolving.apply_batch(batch=item)
    return evolving


def _plain(value):
    """Recursively strip numpy scalar types for JSON round-tripping."""
    if isinstance(value, dict):
        return {key: _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    return value
