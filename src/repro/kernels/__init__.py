"""Auto-detected hot-path kernel tiers.

The profiled hot loops of the trace-reduction pipeline — criticality
scoring (the restricted quadratic form of Eqs. 15/20), BFS ball
expansion, the SPAI column gather and the Hutchinson probe right-hand
sides — are swappable as a unit through :class:`~repro.kernels.base.KernelSet`:

* ``"python"`` — pure-Python reference loops: the differential oracle
  every other tier is tested against, and the baseline of the
  ``BENCH_kernels.json`` speedups;
* ``"vector"`` — the numpy vector kernels the package has always run
  (the default fallback; bit-identical to the pre-kernel-layer code by
  construction);
* ``"numba"`` — fused ``@njit`` loops, auto-detected at import probe
  (exactly the CHOLMOD pattern: registered but unavailable when numba
  is missing, never auto-installed).

Selection is per call: the ``kernels`` config field /
``repro.sparsify(..., kernels=...)`` / the ``--kernels`` CLI flag name
a tier, ``"auto"`` (the default) honors the ``REPRO_KERNELS``
environment variable and otherwise picks the best available tier
(numba when importable, vector otherwise).  The resolved tier lands in
``RunRecord.environment["kernels"]``.

**Every tier is bit-identical** — the parity contract is spelled out in
:mod:`repro.kernels.base` and enforced by ``tests/kernels``: the same
``RunRecord`` fingerprint must come out of every registered method no
matter which tier executed it.  A tier is therefore an execution
detail, like thread count — never an input.
"""

from __future__ import annotations

import os

from repro.exceptions import KernelError
from repro.kernels.base import KERNEL_CAPABILITY_FLAGS, KernelSet
from repro.kernels.numba_kernels import NumbaKernels
from repro.kernels.reference import PythonKernels
from repro.kernels.vector import VectorKernels

__all__ = [
    "KernelSet",
    "PythonKernels",
    "VectorKernels",
    "NumbaKernels",
    "KERNEL_CAPABILITY_FLAGS",
    "DEFAULT_KERNELS",
    "KERNELS_ENV_VAR",
    "list_kernel_sets",
    "available_kernel_sets",
    "kernel_capabilities",
    "kernel_description",
    "check_kernels",
    "resolve_kernels",
    "get_kernels",
    "resolve_kernel_set",
]

#: The tier used when a config does not choose one: best available.
DEFAULT_KERNELS = "auto"

#: Environment override consulted by ``"auto"`` resolution only — an
#: explicit ``kernels=``/``--kernels`` always wins over the variable.
KERNELS_ENV_VAR = "REPRO_KERNELS"

_KERNEL_CLASSES: dict[str, type] = {
    cls.name: cls for cls in (PythonKernels, VectorKernels, NumbaKernels)
}
_INSTANCES: dict[str, KernelSet] = {}


def list_kernel_sets() -> tuple:
    """Sorted names of every registered tier (available or not)."""
    return tuple(sorted(_KERNEL_CLASSES))


def available_kernel_sets() -> tuple:
    """Sorted names of the tiers usable in this environment."""
    return tuple(
        name for name in list_kernel_sets()
        if _KERNEL_CLASSES[name].is_available()
    )


def kernel_capabilities() -> dict:
    """Capability flags of every tier: ``{name: {flag: bool}}``."""
    return {
        name: _KERNEL_CLASSES[name].capabilities()
        for name in list_kernel_sets()
    }


def _registered_class(name: str) -> type:
    """The tier class registered under *name*, or a useful error."""
    if name not in _KERNEL_CLASSES:
        raise KernelError(
            f"unknown kernel tier {name!r}; registered tiers: "
            f"{', '.join(list_kernel_sets())} (or 'auto')"
        )
    return _KERNEL_CLASSES[name]


def kernel_description(name: str) -> str:
    """One-line description of a tier (available or not)."""
    return _registered_class(name).description


def check_kernels(name: str) -> str:
    """Validate a ``kernels=`` value, returning it; raise a useful error.

    ``"auto"`` always validates (resolution falls back as needed); an
    explicit tier must be registered *and* available — silently
    substituting a different tier for a named one would contradict the
    package's no-silent-drop contract.

    Raises
    ------
    repro.exceptions.KernelError
        When *name* is neither ``"auto"`` nor an available registered
        tier.
    """
    if name == "auto":
        return name
    if not _registered_class(name).is_available():
        raise KernelError(
            f"kernel tier {name!r} is not available in this environment; "
            f"available tiers: {', '.join(available_kernel_sets())} "
            "(or 'auto')"
        )
    return name


def resolve_kernels(name: str | None = None) -> str:
    """Resolve a ``kernels=`` value to a concrete tier name.

    ``None``/``"auto"`` consults :data:`KERNELS_ENV_VAR` and otherwise
    picks the best available tier — ``"numba"`` when the import probe
    succeeded, else ``"vector"``.  Explicit names are validated and
    returned unchanged, so a run never silently executes a different
    tier than the one recorded.
    """
    if name is None:
        name = DEFAULT_KERNELS
    name = str(name)
    if name == "auto":
        name = os.environ.get(KERNELS_ENV_VAR, "").strip() or "auto"
    if name == "auto":
        return "numba" if NumbaKernels.is_available() else "vector"
    return check_kernels(name)


def get_kernels(name: str = DEFAULT_KERNELS) -> KernelSet:
    """Return the (cached) tier instance for a ``kernels=`` value."""
    resolved = resolve_kernels(name)
    if resolved not in _INSTANCES:
        _INSTANCES[resolved] = _KERNEL_CLASSES[resolved]()
    return _INSTANCES[resolved]


def resolve_kernel_set(kernels=None) -> KernelSet:
    """Coerce a kernels argument (name, instance or None) to a set.

    The plumbing helper every kernel consumer calls on its optional
    ``kernels=`` parameter: instances pass through, names and ``None``
    resolve through :func:`get_kernels`.
    """
    if isinstance(kernels, KernelSet):
        return kernels
    return get_kernels(DEFAULT_KERNELS if kernels is None else kernels)
