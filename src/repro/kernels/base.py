"""The hot-path kernel protocol.

Profiling ``bench_table1`` charges most of the pipeline's wall clock to
a handful of tight per-edge loops: the restricted Laplacian quadratic
form behind the criticality scores (Eqs. 15/20), the beta-ball BFS
frontier expansion, the SPAI column gather and the Hutchinson probe
right-hand sides of the JL resistance sketch.  :class:`KernelSet` names
exactly those operations so they can be swapped as a unit — the pure
Python reference loops (:mod:`repro.kernels.reference`), the numpy
vector implementations the package has always shipped
(:mod:`repro.kernels.vector`, the default), and optional
numba-compiled fused loops (:mod:`repro.kernels.numba_kernels`,
auto-detected at import probe exactly like the CHOLMOD backend).

**The parity contract.**  Every tier must produce *bit-identical*
output — not merely close.  That is achievable because the tiers only
compete on exact work (selection, deduplication, gathering, graph
traversal: all integer or order-preserving operations), while every
floating-point *reduction* is pinned to one shared expression evaluated
on identically ordered arrays (:func:`restricted_quadratic_form`) or to
a fixed sequential accumulation order (:meth:`KernelSet.probe_rhs`
follows scipy's CSC matvec order).  ``tests/kernels`` enforces the
contract differentially — kernel by kernel on adversarial inputs and
end to end on every registered method's ``RunRecord`` fingerprint.

Like linalg backends, kernel sets are stateless and hashable by name.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KernelSet", "KERNEL_CAPABILITY_FLAGS", "restricted_quadratic_form"]

#: Capability flags every kernel set reports through ``capabilities()``.
KERNEL_CAPABILITY_FLAGS = ("available", "compiled_kernels")


def restricted_quadratic_form(weights, ueids, usrc, unbr, values):
    """``sum w_e (values[i] - values[j])^2`` over pre-selected edges.

    The one floating-point reduction of the scoring kernels, shared by
    every tier: *ueids* must be the deduplicated edge ids in ascending
    order with *usrc*/*unbr* the first-seen orientation of each —
    exactly what :meth:`KernelSet.select_ball_pair_edges` returns.
    Because every tier feeds identically ordered arrays into this one
    numpy expression, the scores are bit-identical across tiers by
    construction.
    """
    if len(ueids) == 0:
        return 0.0
    diffs = values[usrc] - values[unbr]
    return float(np.sum(weights[ueids] * diffs * diffs))


class KernelSet:
    """One pluggable implementation of the package's hot-path kernels.

    Subclasses override the tier-specific operations; the base class
    supplies the compositions (:meth:`ball_pair_edge_sum_flat` and
    :meth:`ball_pair_edge_sum` are selection + the shared reduction)
    so a tier only implements the exact-arithmetic parts.

    Class attributes
    ----------------
    name:
        Registry key (``"python"``, ``"vector"``, ``"numba"``).
    description:
        One line for CLI/markdown listings.
    compiled_kernels:
        True when the tier's loops are JIT/AOT-compiled as fused native
        code (numba) rather than interpreted Python or generic numpy
        vector calls.
    """

    name = "base"
    description = ""
    compiled_kernels = False

    # ------------------------------------------------------------------
    # availability / introspection
    # ------------------------------------------------------------------
    @classmethod
    def is_available(cls) -> bool:
        """Whether this tier can run in this environment."""
        return True

    @classmethod
    def capabilities(cls) -> dict:
        """The tier's capability flags as a plain (JSON-safe) dict."""
        return {
            "available": bool(cls.is_available()),
            "compiled_kernels": bool(cls.compiled_kernels),
        }

    # ------------------------------------------------------------------
    # tier-specific kernels (exact arithmetic only)
    # ------------------------------------------------------------------
    def concat_ranges(self, starts, lengths) -> np.ndarray:
        """Concatenate integer ranges ``[starts[k], starts[k]+lengths[k])``.

        Zero-length ranges contribute nothing; the result is one
        ``int64`` array.  See
        :func:`repro.core._kernels.concat_ranges` for the reference
        semantics.
        """
        raise NotImplementedError

    def select_ball_pair_edges(self, sources, nbrs, eids, in_q_stamp, clock):
        """Select and dedupe the ball-to-ball edges of Eq. 15/20.

        From the flattened incidence triples of the ball around ``p``,
        keep the entries whose neighbor is stamped as belonging to the
        ball around ``q`` (``in_q_stamp[x] == clock``) and collapse the
        two orientations of an undirected edge to its first occurrence.

        Returns
        -------
        (ueids, usrc, unbr) : tuple of numpy.ndarray
            Unique qualifying edge ids in **ascending order**, with the
            source/neighbor of each edge's **first occurrence** in the
            input order — the exact contract
            :func:`restricted_quadratic_form` consumes.
        """
        raise NotImplementedError

    def expand_frontier(self, indptr, neighbors, frontier, stamp, clock):
        """Expand one BFS layer over a stamped CSR adjacency.

        Visits the neighbors of *frontier*, stamps every node not yet
        carrying *clock*, and returns the fresh nodes as a **sorted**
        ``int64`` array (empty when the layer adds nothing).
        """
        raise NotImplementedError

    def gather_csc_columns(self, indptr, indices, data, cols):
        """Gather many columns of a CSC matrix in one pass.

        Returns ``(out_indptr, out_indices, out_data)`` where column
        ``cols[k]`` occupies ``[out_indptr[k], out_indptr[k+1])``;
        *out_indices* is ``int64`` and *out_data* a fresh array.  See
        :func:`repro.linalg.spai.extract_columns`.
        """
        raise NotImplementedError

    def probe_rhs(self, incidence, q) -> np.ndarray:
        """``incidence.T @ q`` — one Hutchinson probe right-hand side.

        *incidence* is the ``m x n`` CSR matrix ``W^{1/2} B``; the
        result must follow scipy's CSC matvec accumulation order
        (columns of ``incidence.T`` in ascending order, entries within
        a column in storage order), which pins the floating-point sum
        bit-for-bit across tiers.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # compositions shared by every tier
    # ------------------------------------------------------------------
    def ball_pair_edge_sum_flat(
        self, sources, nbrs, eids, weights, in_q_stamp, clock, values
    ) -> float:
        """The scoring kernel on pre-flattened incidence triples.

        Tier-specific selection plus the shared reduction; bit-identical
        to :func:`repro.core._kernels.ball_pair_edge_sum_flat` on every
        tier.
        """
        ueids, usrc, unbr = self.select_ball_pair_edges(
            sources, nbrs, eids, in_q_stamp, clock
        )
        return restricted_quadratic_form(weights, ueids, usrc, unbr, values)

    def ball_pair_edge_sum(
        self, indptr, neighbors, edge_ids, weights, nodes_p,
        in_q_stamp, clock, values,
    ) -> float:
        """The scoring kernel from a CSR adjacency and a ball node set.

        Flattens the incidence ranges of *nodes_p* through
        :meth:`concat_ranges`, then applies
        :meth:`ball_pair_edge_sum_flat`; bit-identical to
        :func:`repro.core._kernels.ball_pair_edge_sum` on every tier.
        """
        starts = indptr[nodes_p]
        lengths = indptr[nodes_p + 1] - starts
        flat = self.concat_ranges(starts, lengths)
        if len(flat) == 0:
            return 0.0
        return self.ball_pair_edge_sum_flat(
            np.repeat(nodes_p, lengths), neighbors[flat], edge_ids[flat],
            weights, in_q_stamp, clock, values,
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, KernelSet) and other.name == self.name

    def __hash__(self) -> int:
        return hash((KernelSet, self.name))
