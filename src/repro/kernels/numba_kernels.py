"""Optional numba-compiled kernel tier.

When ``numba`` is importable (and JIT compilation is not disabled via
``NUMBA_DISABLE_JIT``), this tier replaces the per-candidate cascade of
small numpy calls with single fused ``@njit`` loops: one pass selects,
dedupes and orders the ball-to-ball edges; one pass expands a BFS
layer; one pass gathers SPAI columns; one pass accumulates a probe
right-hand side.  Availability is detected once at import probe time —
exactly the CHOLMOD pattern: on machines without numba the tier stays
registered, reports ``available=False``, and the auto selection falls
back to the vector tier silently (no warnings, no behavior change,
since every tier is bit-identical by contract).

The fused loops only perform exact arithmetic (integer selection and
ordering); the one floating-point reduction still happens in the shared
:func:`repro.kernels.base.restricted_quadratic_form`, and the probe
right-hand side follows scipy's CSC accumulation order — which is what
makes the compiled tier fingerprint-identical to the reference, not
merely close.
"""

from __future__ import annotations

import os

import numpy as np

from repro.kernels.base import KernelSet

__all__ = ["NumbaKernels"]

_NUMBA = None
_PROBED = False
_JITTED: dict = {}


def _jit_disabled() -> bool:
    """True when the environment disables numba's JIT.

    Under ``NUMBA_DISABLE_JIT=1`` the decorated functions would run as
    interpreted Python — legal, but then calling this the *compiled*
    tier would be a lie and slower than the vector tier, so the probe
    reports the tier unavailable and auto selection falls back.
    """
    return os.environ.get("NUMBA_DISABLE_JIT", "0") not in ("", "0")


def _numba_module():
    """Import ``numba`` once and verify a kernel compiles; cache it."""
    global _NUMBA, _PROBED
    if not _PROBED:
        _PROBED = True
        try:
            import numba  # type: ignore[import-not-found]

            # Warm-compile the smallest kernel so a toolchain that
            # imports but cannot compile is caught here, at probe time,
            # instead of mid-sparsification.
            compiled = numba.njit(cache=True)(_concat_ranges_py)
            compiled(np.zeros(1, dtype=np.int64), np.ones(1, dtype=np.int64))
            _JITTED["concat_ranges"] = compiled
            _NUMBA = numba
        except Exception:  # pragma: no cover - environment-dependent
            _NUMBA = None
    return _NUMBA


# ----------------------------------------------------------------------
# Plain-Python kernel bodies, compiled lazily by _jitted().  Keeping
# them importable (undecorated) lets the probe fail soft and the test
# suite exercise their logic even where numba is absent.
# ----------------------------------------------------------------------
def _concat_ranges_py(starts, lengths):
    total = 0
    for k in range(len(lengths)):
        if lengths[k] > 0:
            total += lengths[k]
    out = np.empty(total, dtype=np.int64)
    pos = 0
    for k in range(len(starts)):
        start = starts[k]
        for offset in range(lengths[k]):
            out[pos] = start + offset
            pos += 1
    return out


def _select_py(sources, nbrs, eids, in_q_stamp, clock):
    kept = 0
    keep_eid = np.empty(len(eids), dtype=np.int64)
    keep_src = np.empty(len(eids), dtype=np.int64)
    keep_nbr = np.empty(len(eids), dtype=np.int64)
    for k in range(len(eids)):
        if in_q_stamp[nbrs[k]] == clock:
            keep_eid[kept] = eids[k]
            keep_src[kept] = sources[k]
            keep_nbr[kept] = nbrs[k]
            kept += 1
    if kept == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    # First occurrence per edge id (both orientations can qualify),
    # output ascending by id — np.unique(return_index=True) semantics.
    order = np.argsort(keep_eid[:kept], kind="mergesort")
    ueids = np.empty(kept, dtype=np.int64)
    usrc = np.empty(kept, dtype=np.int64)
    unbr = np.empty(kept, dtype=np.int64)
    unique = 0
    previous = np.int64(-1)
    for j in range(kept):
        k = order[j]
        eid = keep_eid[k]
        if unique == 0 or eid != previous:
            ueids[unique] = eid
            usrc[unique] = keep_src[k]
            unbr[unique] = keep_nbr[k]
            unique += 1
            previous = eid
    return ueids[:unique], usrc[:unique], unbr[:unique]


def _expand_py(indptr, neighbors, frontier, stamp, clock):
    cap = 0
    for j in range(len(frontier)):
        node = frontier[j]
        cap += indptr[node + 1] - indptr[node]
    fresh = np.empty(cap, dtype=np.int64)
    count = 0
    for j in range(len(frontier)):
        node = frontier[j]
        for k in range(indptr[node], indptr[node + 1]):
            nbr = neighbors[k]
            if stamp[nbr] != clock:
                stamp[nbr] = clock
                fresh[count] = nbr
                count += 1
    return np.sort(fresh[:count])


def _gather_py(indptr, indices, data, cols):
    out_indptr = np.zeros(len(cols) + 1, dtype=np.int64)
    for k in range(len(cols)):
        col = cols[k]
        out_indptr[k + 1] = out_indptr[k] + (indptr[col + 1] - indptr[col])
    total = out_indptr[len(cols)]
    out_indices = np.empty(total, dtype=np.int64)
    out_data = np.empty(total, dtype=np.float64)
    pos = 0
    for k in range(len(cols)):
        col = cols[k]
        for j in range(indptr[col], indptr[col + 1]):
            out_indices[pos] = indices[j]
            out_data[pos] = data[j]
            pos += 1
    return out_indptr, out_indices, out_data


def _probe_rhs_py(indptr, indices, data, rows, columns, q):
    out = np.zeros(columns, dtype=np.float64)
    for row in range(rows):
        scale = q[row]
        for k in range(indptr[row], indptr[row + 1]):
            out[indices[k]] += data[k] * scale
    return out


_BODIES = {
    "concat_ranges": _concat_ranges_py,
    "select": _select_py,
    "expand": _expand_py,
    "gather": _gather_py,
    "probe_rhs": _probe_rhs_py,
}


def _jitted(name: str):
    """The compiled version of a kernel body (compiled on first use)."""
    fn = _JITTED.get(name)
    if fn is None:
        numba = _numba_module()
        if numba is None:
            raise RuntimeError(
                "numba kernels requested but numba is not available"
            )
        fn = numba.njit(cache=True)(_BODIES[name])
        _JITTED[name] = fn
    return fn


class NumbaKernels(KernelSet):
    """Fused ``@njit`` loops, auto-detected and never required."""

    name = "numba"
    description = "numba @njit fused loops (optional, auto-detected)"
    compiled_kernels = True

    @classmethod
    def is_available(cls) -> bool:
        """True when numba imports, compiles, and JIT is not disabled."""
        return not _jit_disabled() and _numba_module() is not None

    def concat_ranges(self, starts, lengths) -> np.ndarray:
        """Fused single-pass range concatenation."""
        return _jitted("concat_ranges")(
            np.ascontiguousarray(starts, dtype=np.int64),
            np.ascontiguousarray(lengths, dtype=np.int64),
        )

    def select_ball_pair_edges(self, sources, nbrs, eids, in_q_stamp, clock):
        """One fused pass: stamp filter, stable dedup, ascending ids."""
        return _jitted("select")(
            sources, nbrs, eids, in_q_stamp, np.int64(clock)
        )

    def expand_frontier(self, indptr, neighbors, frontier, stamp, clock):
        """One fused pass over the frontier's CSR ranges."""
        return _jitted("expand")(
            indptr, neighbors,
            np.ascontiguousarray(frontier, dtype=np.int64),
            stamp, np.int64(clock),
        )

    def gather_csc_columns(self, indptr, indices, data, cols):
        """Fused two-pass column gather (count, then fill)."""
        return _jitted("gather")(
            np.ascontiguousarray(indptr, dtype=np.int64),
            np.ascontiguousarray(indices, dtype=np.int64),
            np.ascontiguousarray(data, dtype=np.float64),
            np.ascontiguousarray(cols, dtype=np.int64),
        )

    def probe_rhs(self, incidence, q) -> np.ndarray:
        """Fused transpose-matvec in scipy's CSC accumulation order."""
        import scipy.sparse as sp

        csr = sp.csr_matrix(incidence)
        return _jitted("probe_rhs")(
            np.ascontiguousarray(csr.indptr, dtype=np.int64),
            np.ascontiguousarray(csr.indices, dtype=np.int64),
            np.ascontiguousarray(csr.data, dtype=np.float64),
            csr.shape[0], csr.shape[1],
            np.ascontiguousarray(q, dtype=np.float64),
        )
