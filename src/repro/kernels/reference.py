"""The pure-Python reference tier.

Every kernel is written as the plainest possible interpreted loop — no
vector tricks, no fused passes — which makes this tier the differential
oracle the compiled tiers are tested against (``tests/kernels``) and
the baseline the ``BENCH_kernels.json`` speedups are measured from.
Selecting it in production (``kernels="python"``) is supported and
bit-identical, just slow; it exists for debugging and for pinning down
exactly what every faster tier must reproduce.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelSet

__all__ = ["PythonKernels"]


class PythonKernels(KernelSet):
    """Interpreted reference loops (the differential oracle)."""

    name = "python"
    description = "pure-Python reference loops (differential oracle)"
    compiled_kernels = False

    def concat_ranges(self, starts, lengths) -> np.ndarray:
        """Reference loop: append each range element by element."""
        out = []
        for start, length in zip(starts, lengths):
            start = int(start)
            for offset in range(max(0, int(length))):
                out.append(start + offset)
        return np.asarray(out, dtype=np.int64)

    def select_ball_pair_edges(self, sources, nbrs, eids, in_q_stamp, clock):
        """Reference loop: stamped filter, first-seen dedup, sort by id."""
        first: dict = {}
        for k in range(len(eids)):
            if in_q_stamp[nbrs[k]] != clock:
                continue
            eid = int(eids[k])
            if eid not in first:
                first[eid] = (int(sources[k]), int(nbrs[k]))
        ueids = sorted(first)
        usrc = [first[eid][0] for eid in ueids]
        unbr = [first[eid][1] for eid in ueids]
        return (
            np.asarray(ueids, dtype=np.int64),
            np.asarray(usrc, dtype=np.int64),
            np.asarray(unbr, dtype=np.int64),
        )

    def expand_frontier(self, indptr, neighbors, frontier, stamp, clock):
        """Reference loop: visit, stamp, collect, sort."""
        fresh = []
        for node in frontier:
            node = int(node)
            for k in range(int(indptr[node]), int(indptr[node + 1])):
                nbr = int(neighbors[k])
                if stamp[nbr] != clock:
                    stamp[nbr] = clock
                    fresh.append(nbr)
        fresh.sort()
        return np.asarray(fresh, dtype=np.int64)

    def gather_csc_columns(self, indptr, indices, data, cols):
        """Reference loop: copy each requested column entry by entry."""
        out_indptr = np.zeros(len(cols) + 1, dtype=np.int64)
        out_indices = []
        out_data = []
        for k, col in enumerate(cols):
            col = int(col)
            start, stop = int(indptr[col]), int(indptr[col + 1])
            for j in range(start, stop):
                out_indices.append(int(indices[j]))
                out_data.append(float(data[j]))
            out_indptr[k + 1] = out_indptr[k] + (stop - start)
        return (
            out_indptr,
            np.asarray(out_indices, dtype=np.int64),
            np.asarray(out_data, dtype=np.float64),
        )

    def probe_rhs(self, incidence, q) -> np.ndarray:
        """Reference loop in scipy's CSC matvec accumulation order."""
        import scipy.sparse as sp

        csr = sp.csr_matrix(incidence)
        indptr, indices, data = csr.indptr, csr.indices, csr.data
        out = np.zeros(csr.shape[1], dtype=np.float64)
        # incidence.T is CSC with one column per incidence row; scipy
        # walks columns in ascending order, entries in storage order.
        for row in range(csr.shape[0]):
            scale = float(q[row])
            for k in range(int(indptr[row]), int(indptr[row + 1])):
                out[indices[k]] += float(data[k]) * scale
        return out
