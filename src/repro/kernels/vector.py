"""The numpy vector tier — the default, and the historical code path.

Every operation delegates to (or restates verbatim) the vectorized
micro-kernels the package has always run —
:mod:`repro.core._kernels`, the CSR layer gather of
:meth:`repro.graph.bfs.BallFinder.ball_nodes`, the column gather of
:func:`repro.linalg.spai.extract_columns` and the sparse matvec behind
the JL probes — so selecting ``kernels="vector"`` is bit-identical to
every release before the kernel layer existed, by construction.  The
loops run inside numpy's compiled C vector routines; the numba tier
exists to fuse them further.
"""

from __future__ import annotations

import numpy as np

from repro.core._kernels import (
    ball_pair_edge_sum,
    ball_pair_edge_sum_flat,
    concat_ranges,
)
from repro.kernels.base import KernelSet

__all__ = ["VectorKernels"]


class VectorKernels(KernelSet):
    """Vectorized numpy kernels (the pre-kernel-layer code path)."""

    name = "vector"
    description = "numpy vector kernels (the default, historical path)"
    compiled_kernels = False

    def concat_ranges(self, starts, lengths) -> np.ndarray:
        """Two-cumsum range concatenation (the historical kernel)."""
        return concat_ranges(starts, lengths)

    def select_ball_pair_edges(self, sources, nbrs, eids, in_q_stamp, clock):
        """Stamp mask + ``np.unique`` first-occurrence dedup."""
        mask = in_q_stamp[nbrs] == clock
        if not np.any(mask):
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        eids = eids[mask]
        ueids, first = np.unique(eids, return_index=True)
        return ueids, sources[mask][first], nbrs[mask][first]

    def expand_frontier(self, indptr, neighbors, frontier, stamp, clock):
        """One CSR gather + stamp filter + ``np.unique`` per layer."""
        starts = indptr[frontier]
        lengths = indptr[frontier + 1] - starts
        flat = concat_ranges(starts, lengths)
        if len(flat) == 0:
            return np.empty(0, dtype=np.int64)
        nbrs = neighbors[flat]
        fresh = np.unique(nbrs[stamp[nbrs] != clock])
        stamp[fresh] = clock
        return fresh

    def gather_csc_columns(self, indptr, indices, data, cols):
        """One ``concat_ranges`` pass over the requested columns."""
        starts = indptr[cols].astype(np.int64)
        lengths = indptr[cols + 1].astype(np.int64) - starts
        flat = concat_ranges(starts, lengths)
        out_indptr = np.zeros(len(cols) + 1, dtype=np.int64)
        np.cumsum(lengths, out=out_indptr[1:])
        return out_indptr, indices[flat].astype(np.int64), data[flat]

    def probe_rhs(self, incidence, q) -> np.ndarray:
        """scipy's compiled CSC matvec (the historical expression)."""
        return incidence.T @ q

    # The compositions delegate straight to the historical kernels so
    # the default path executes literally the pre-layer code.
    def ball_pair_edge_sum_flat(
        self, sources, nbrs, eids, weights, in_q_stamp, clock, values
    ) -> float:
        """Verbatim :func:`repro.core._kernels.ball_pair_edge_sum_flat`."""
        return ball_pair_edge_sum_flat(
            sources, nbrs, eids, weights, in_q_stamp, clock, values
        )

    def ball_pair_edge_sum(
        self, indptr, neighbors, edge_ids, weights, nodes_p,
        in_q_stamp, clock, values,
    ) -> float:
        """Verbatim :func:`repro.core._kernels.ball_pair_edge_sum`."""
        return ball_pair_edge_sum(
            indptr, neighbors, edge_ids, weights, nodes_p,
            in_q_stamp, clock, values,
        )
