"""Sparse linear algebra: Cholesky, SPAI (Algorithm 1), PCG, eigen-tools."""

from repro.linalg.ordering import (
    natural_ordering,
    rcm_ordering,
    minimum_degree_ordering,
)
from repro.linalg.etree import elimination_tree, ereach, postorder
from repro.linalg.triangular import solve_lower_csc, solve_upper_from_lower_csc
from repro.linalg.cholesky import CholeskyFactor, cholesky
from repro.linalg.spai import extract_columns, sparse_approximate_inverse
from repro.linalg.pcg import pcg, PCGResult
from repro.linalg.eigen import (
    generalized_lambda_max,
    relative_condition_number,
    power_iteration_lambda_max,
)

__all__ = [
    "natural_ordering",
    "rcm_ordering",
    "minimum_degree_ordering",
    "elimination_tree",
    "ereach",
    "postorder",
    "solve_lower_csc",
    "solve_upper_from_lower_csc",
    "CholeskyFactor",
    "cholesky",
    "sparse_approximate_inverse",
    "extract_columns",
    "pcg",
    "PCGResult",
    "generalized_lambda_max",
    "relative_condition_number",
    "power_iteration_lambda_max",
]
