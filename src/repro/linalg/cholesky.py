"""Sparse Cholesky factorization of SPD (SDD) matrices.

Two backends behind one :class:`CholeskyFactor` interface:

``"python"``
    A from-scratch up-looking factorization (CSparse's ``cs_chol``
    algorithm): elimination tree, per-row ``ereach`` symbolic pattern,
    numpy-vectorized sparse triangular updates.  The reference
    implementation — slow but transparent and heavily tested.

``"superlu"``
    scipy's compiled SuperLU in symmetric mode (``diag_pivot_thresh=0``)
    — the fast path, standing in for CHOLMOD [3] in the paper's
    experiments.  For an SPD matrix SuperLU returns ``A[p][:, p] = L U``
    with unit-diagonal ``L`` and ``U = D L^T``; we expose the true
    Cholesky factor ``L_chol = L sqrt(D)`` so that downstream code
    (Algorithm 1's sparse approximate inverse) sees an ordinary lower
    Cholesky factor either way.

``"auto"`` picks SuperLU and silently falls back to Python if SuperLU's
row/column permutations disagree (which would mean it pivoted
asymmetrically and the Cholesky reading is invalid).

Both backends keep the fill-reducing permutation ``perm`` with the
convention ``A[perm][:, perm] = L @ L.T``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.exceptions import FactorizationError
from repro.linalg.etree import elimination_tree, ereach
from repro.linalg.ordering import (
    minimum_degree_ordering,
    natural_ordering,
    rcm_ordering,
)
from repro.linalg.triangular import solve_lower_csc, solve_upper_from_lower_csc
from repro.utils.validation import check_square_sparse

__all__ = ["CholeskyFactor", "cholesky"]

_ORDERINGS = {
    "natural": natural_ordering,
    "rcm": rcm_ordering,
    "mindeg": minimum_degree_ordering,
}


class CholeskyFactor:
    """Factored SPD matrix: ``A[perm][:, perm] = L @ L.T``.

    Use :func:`cholesky` to construct one.  The object supports repeated
    solves (factor once / solve many, as the paper's PCG preconditioner
    and direct transient solver both require).
    """

    def __init__(self, L, perm, backend, lu=None):
        self.L = L                     # csc, lower triangular, diag first
        self.perm = np.asarray(perm, dtype=np.int64)
        self.backend = backend
        self._lu = lu                  # SuperLU object when available
        self.n = L.shape[0]
        self.iperm = np.empty(self.n, dtype=np.int64)
        self.iperm[self.perm] = np.arange(self.n)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Nonzeros in the lower factor."""
        return int(self.L.nnz)

    def memory_bytes(self) -> int:
        """Approximate storage of the factor (values + row indices)."""
        return int(self.L.nnz) * (8 + 4) + 8 * self.n

    # ------------------------------------------------------------------
    def solve(self, b) -> np.ndarray:
        """Solve ``A x = b`` (vector or matrix right-hand side)."""
        b = np.asarray(b, dtype=np.float64)
        if self._lu is not None:
            return self._lu.solve(b)
        pb = b[self.perm]
        y = solve_lower_csc(self.L, pb)
        z = solve_upper_from_lower_csc(self.L, y)
        x = np.empty_like(z)
        x[self.perm] = z
        return x

    def solve_lower(self, b_permuted) -> np.ndarray:
        """Solve ``L y = b`` in the permuted domain (advanced use)."""
        return solve_lower_csc(self.L, np.asarray(b_permuted, dtype=np.float64))

    def solve_upper(self, b_permuted) -> np.ndarray:
        """Solve ``L^T x = b`` in the permuted domain (advanced use)."""
        return solve_upper_from_lower_csc(
            self.L, np.asarray(b_permuted, dtype=np.float64)
        )

    def as_preconditioner(self):
        """Return ``M_solve(r) = A^{-1} r`` for use as a PCG preconditioner."""
        return self.solve

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CholeskyFactor(n={self.n}, nnz={self.nnz}, "
            f"backend={self.backend!r})"
        )


def cholesky(matrix, backend="auto", ordering="auto", check=False):
    """Factor an SPD sparse matrix, returning a :class:`CholeskyFactor`.

    Parameters
    ----------
    matrix:
        Square SPD scipy sparse matrix (SDD Laplacian + shift in this
        package's use).
    backend:
        ``"auto"`` | ``"superlu"`` | ``"python"``.
    ordering:
        Only used by the Python backend: ``"auto"`` (= RCM), ``"rcm"``,
        ``"mindeg"`` or ``"natural"``.  SuperLU applies its own MMD
        ordering internally.
    check:
        When true, verify ``A[perm][:, perm] - L L^T`` is numerically
        tiny (costs one sparse multiply; meant for tests).
    """
    check_square_sparse("matrix", matrix)
    matrix = sp.csc_matrix(matrix)
    if backend not in ("auto", "superlu", "python"):
        raise FactorizationError(f"unknown backend {backend!r}")

    factor = None
    if backend in ("auto", "superlu"):
        try:
            factor = _factor_superlu(matrix)
        except FactorizationError:
            if backend == "superlu":
                raise
    if factor is None:
        factor = _factor_python(matrix, ordering)
    if check:
        _verify(matrix, factor)
    return factor


def _verify(matrix, factor, tol=1e-8) -> None:
    reordered = matrix[factor.perm][:, factor.perm]
    residual = (reordered - factor.L @ factor.L.T)
    scale = max(1.0, abs(matrix.data).max())
    err = abs(residual.data).max() if residual.nnz else 0.0
    if err > tol * scale:
        raise FactorizationError(
            f"factor verification failed: residual {err:.3e}"
        )


# ----------------------------------------------------------------------
# SuperLU backend
# ----------------------------------------------------------------------
def _factor_superlu(matrix) -> CholeskyFactor:
    n = matrix.shape[0]
    try:
        lu = splu(
            matrix,
            permc_spec="MMD_AT_PLUS_A",
            diag_pivot_thresh=0.0,
            options=dict(SymmetricMode=True),
        )
    except RuntimeError as exc:  # singular matrix
        raise FactorizationError(f"SuperLU failed: {exc}") from exc
    if not np.array_equal(lu.perm_r, lu.perm_c):
        raise FactorizationError("SuperLU pivoted asymmetrically")
    diag = lu.U.diagonal()
    if np.any(diag <= 0):
        raise FactorizationError("matrix is not positive definite")
    L = (lu.L @ sp.diags(np.sqrt(diag))).tocsc()
    L.sort_indices()
    # scipy convention: A[ipc][:, ipc] = L U with ipc the inverse of
    # perm_c (verified numerically in tests); our perm is that inverse.
    perm = np.empty(n, dtype=np.int64)
    perm[lu.perm_c] = np.arange(n)
    return CholeskyFactor(L, perm, backend="superlu", lu=lu)


# ----------------------------------------------------------------------
# Pure-Python up-looking backend
# ----------------------------------------------------------------------
def _factor_python(matrix, ordering="auto") -> CholeskyFactor:
    if ordering == "auto":
        ordering = "rcm"
    if ordering not in _ORDERINGS:
        raise FactorizationError(f"unknown ordering {ordering!r}")
    perm = _ORDERINGS[ordering](matrix)
    reordered = sp.csc_matrix(matrix[perm][:, perm])
    L = _up_looking_cholesky(reordered)
    return CholeskyFactor(L, perm, backend="python", lu=None)


def _up_looking_cholesky(A) -> sp.csc_matrix:
    """Up-looking Cholesky of a reordered CSC matrix (CSparse cs_chol)."""
    n = A.shape[0]
    upper = sp.triu(A, k=0, format="csc")
    upper.sort_indices()
    parent = elimination_tree(A)
    marker = np.full(n, -1, dtype=np.int64)

    # Factor columns stored as growable python lists; column j of L gets
    # its diagonal first, then row entries are appended as rows k > j
    # are processed (rows arrive in increasing k, keeping columns sorted).
    col_rows: list = [[] for _ in range(n)]
    col_vals: list = [[] for _ in range(n)]
    diag = np.zeros(n)
    x = np.zeros(n)  # dense accumulator for the current row

    up_indptr, up_indices, up_data = upper.indptr, upper.indices, upper.data
    for k in range(n):
        pattern = ereach(upper, k, parent, marker, k)
        # Scatter A[0:k+1, k] into the accumulator.
        akk = 0.0
        for idx in range(up_indptr[k], up_indptr[k + 1]):
            i = int(up_indices[idx])
            if i == k:
                akk = up_data[idx]
            else:
                x[i] = up_data[idx]
        d = akk
        for j in pattern:
            lkj = x[j] / diag[j]
            x[j] = 0.0
            rows_j = col_rows[j]
            if rows_j:
                vals_j = col_vals[j]
                rows_array = np.asarray(rows_j, dtype=np.int64)
                vals_array = np.asarray(vals_j, dtype=np.float64)
                x[rows_array] -= vals_array * lkj
            d -= lkj * lkj
            col_rows[j].append(k)
            col_vals[j].append(lkj)
        if d <= 0.0:
            raise FactorizationError(
                f"matrix is not positive definite at pivot {k}"
            )
        diag[k] = np.sqrt(d)

    # Assemble CSC: diagonal entry first in each column.
    lengths = np.asarray([1 + len(col_rows[j]) for j in range(n)])
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    indices = np.empty(indptr[-1], dtype=np.int32)
    data = np.empty(indptr[-1], dtype=np.float64)
    for j in range(n):
        start = indptr[j]
        indices[start] = j
        data[start] = diag[j]
        count = len(col_rows[j])
        if count:
            indices[start + 1 : start + 1 + count] = col_rows[j]
            data[start + 1 : start + 1 + count] = col_vals[j]
    L = sp.csc_matrix((data, indices, indptr), shape=(n, n))
    L.sort_indices()
    return L
