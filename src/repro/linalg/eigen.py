"""Generalized eigenvalue tools: lambda_max and relative condition number.

With the footnote-1 regularization (identical diagonal shift on ``L_G``
and ``L_S``) the smallest generalized eigenvalue of the pencil
``(L_G, L_S)`` is pinned at 1, so the relative condition number is
simply ``kappa(L_G, L_S) = lambda_max(L_S^{-1} L_G)`` — Eq. (5) of the
paper.  We compute it with ARPACK's generalized Lanczos using the
factored ``L_S`` as the inner solver, falling back to power iteration
when ARPACK has trouble converging.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import ConvergenceError
from repro.utils.rng import as_rng

__all__ = [
    "generalized_lambda_max",
    "power_iteration_lambda_max",
    "relative_condition_number",
]


def power_iteration_lambda_max(A, B_solve, B=None, tol=1e-4, maxiter=1000, seed=0):
    """Largest eigenvalue of the pencil ``(A, B)`` by power iteration.

    Parameters
    ----------
    A:
        Sparse SPD matrix.
    B_solve:
        Callable applying ``B^{-1}`` (e.g. a Cholesky factor's solve).
    B:
        The matrix ``B`` itself (optional but recommended: enables the
        generalized Rayleigh quotient ``x^T A x / x^T B x``, which
        converges monotonically from below).
    tol:
        Relative change stopping criterion on the eigenvalue estimate.
    """
    A = sp.csr_matrix(A)
    n = A.shape[0]
    rng = as_rng(seed)
    x = rng.standard_normal(n)
    x /= np.linalg.norm(x)
    value = 0.0
    for _ in range(maxiter):
        y = B_solve(A @ x)
        norm = float(np.linalg.norm(y))
        if norm == 0:
            raise ConvergenceError("power iteration collapsed to zero")
        y /= norm
        if B is not None:
            new_value = float(y @ (A @ y)) / float(y @ (B @ y))
        else:
            new_value = float(x @ B_solve(A @ x))
        x = y
        if abs(new_value - value) <= tol * max(abs(new_value), 1.0):
            return new_value
        value = new_value
    return value


def generalized_lambda_max(A, B, B_solve, tol=1e-8, maxiter=20000, seed=0,
                           refine_steps=8):
    """``lambda_max`` of the symmetric pencil ``(A, B)``.

    Runs ARPACK's generalized Lanczos (with ``Minv`` supplied by the
    factored ``B`` and a *seeded* start vector, so results are
    deterministic), then polishes the returned eigenvector with a few
    power-iteration steps — the generalized Rayleigh quotient converges
    monotonically from below, which guards against an under-converged
    ARPACK estimate on ill-conditioned pencils.  Falls back to plain
    power iteration if ARPACK fails.
    """
    A = sp.csr_matrix(A)
    B = sp.csr_matrix(B)
    n = A.shape[0]
    if n <= 2:
        dense_a = A.toarray()
        dense_b = B.toarray()
        values = np.linalg.eigvals(np.linalg.solve(dense_b, dense_a))
        return float(np.max(values.real))
    rng = as_rng(seed)
    v0 = rng.standard_normal(n)
    minv = spla.LinearOperator((n, n), matvec=B_solve)
    # A generous Lanczos subspace: clustered large eigenvalues (common
    # for tree-heavy sparsifiers of smooth-coefficient problems) make
    # the default ncv=20 converge painfully slowly.
    ncv = int(min(n - 1, 64))
    try:
        values, vectors = spla.eigsh(
            A,
            k=1,
            M=B,
            Minv=minv,
            which="LA",
            tol=tol,
            maxiter=maxiter,
            v0=v0,
            ncv=ncv,
            return_eigenvectors=True,
        )
        estimate = float(values[0])
        x = vectors[:, 0]
    except (spla.ArpackNoConvergence, RuntimeError, ValueError):
        return power_iteration_lambda_max(
            A, B_solve, B=B, tol=max(tol, 1e-8), maxiter=20000, seed=seed
        )
    for _ in range(refine_steps):
        x = B_solve(A @ x)
        norm = float(np.linalg.norm(x))
        if norm == 0:
            break
        x /= norm
        rayleigh = float(x @ (A @ x)) / float(x @ (B @ x))
        estimate = max(estimate, rayleigh)
    return estimate


def relative_condition_number(L_G, L_S_factor, L_S, tol=1e-5, seed=0):
    """``kappa(L_G, L_S) = lambda_max(L_S^{-1} L_G)`` (Eq. 5).

    Parameters
    ----------
    L_G:
        Regularized Laplacian of the original graph.
    L_S_factor:
        :class:`~repro.linalg.cholesky.CholeskyFactor` of the
        regularized subgraph Laplacian.
    L_S:
        The regularized subgraph Laplacian itself.

    Notes
    -----
    Valid because both Laplacians carry the *same* diagonal shift, which
    pins ``lambda_min`` at 1 (paper footnote 1); tests verify this
    against dense generalized spectra on small graphs.
    """
    return generalized_lambda_max(L_G, L_S, L_S_factor.solve, tol=tol, seed=seed)
