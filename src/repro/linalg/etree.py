"""Elimination tree and symbolic row-pattern machinery.

Classic CSparse-style symbolic analysis used by the pure-Python
up-looking Cholesky factorization:

* :func:`elimination_tree` — parent pointers of the etree of ``A``;
* :func:`ereach` — nonzero pattern of one row of the Cholesky factor,
  in topological (descendants-first) order;
* :func:`postorder` — a postordering of the etree.

References: T. Davis, *Direct Methods for Sparse Linear Systems*.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_square_sparse

__all__ = ["elimination_tree", "ereach", "postorder"]


def _upper_csc(matrix) -> sp.csc_matrix:
    """Upper triangle (including diagonal) in CSC with sorted indices."""
    upper = sp.triu(sp.csc_matrix(matrix), k=0, format="csc")
    upper.sort_indices()
    return upper


def elimination_tree(matrix) -> np.ndarray:
    """Parent array of the elimination tree (``-1`` marks roots).

    ``parent[i]`` is the smallest ``k > i`` such that ``L[k, i] != 0``
    in the Cholesky factor of the (pattern-symmetric) matrix.
    """
    check_square_sparse("matrix", matrix)
    upper = _upper_csc(matrix)
    n = upper.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr, indices = upper.indptr, upper.indices
    for k in range(n):
        for idx in range(indptr[k], indptr[k + 1]):
            i = int(indices[idx])
            # Walk from i up the partially built tree toward k, applying
            # path compression through the `ancestor` shortcut array.
            while i != -1 and i < k:
                next_ancestor = int(ancestor[i])
                ancestor[i] = k
                if next_ancestor == -1:
                    parent[i] = k
                i = next_ancestor
    return parent


def ereach(upper, k, parent, marker, stamp):
    """Row pattern of ``L[k, :k]`` in topological order.

    Parameters
    ----------
    upper:
        Upper triangle of the matrix in CSC (sorted indices).
    k:
        Row index being computed.
    parent:
        Elimination tree parents from :func:`elimination_tree`.
    marker:
        Length-``n`` int work array (callers reuse it across rows).
    stamp:
        Unique stamp value for this call (e.g. ``k`` itself when rows
        are processed in order).

    Returns
    -------
    list of int
        Column indices ``j < k`` with ``L[k, j] != 0``, ordered so that
        every etree descendant appears before its ancestors (the order
        the up-looking triangular solve consumes).
    """
    marker[k] = stamp
    result: list = []
    indptr, indices = upper.indptr, upper.indices
    for idx in range(indptr[k], indptr[k + 1]):
        i = int(indices[idx])
        if i >= k:
            continue
        path = []
        while marker[i] != stamp:
            path.append(i)
            marker[i] = stamp
            i = int(parent[i])
        # `path` runs leaf -> ancestor (already topological within the
        # path); later-discovered paths are prepended, matching CSparse:
        # their nodes are descendants of nodes already in `result`.
        result = path + result
    return result


def postorder(parent: np.ndarray) -> np.ndarray:
    """Postorder the forest given by *parent* pointers."""
    n = len(parent)
    children: list = [[] for _ in range(n)]
    roots = []
    for node in range(n):
        par = int(parent[node])
        if par == -1:
            roots.append(node)
        else:
            children[par].append(node)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    for root in roots:
        stack = [(root, 0)]
        while stack:
            node, child_index = stack.pop()
            if child_index < len(children[node]):
                stack.append((node, child_index + 1))
                stack.append((children[node][child_index], 0))
            else:
                order[pos] = node
                pos += 1
    if pos != n:
        raise ValueError("parent array does not describe a forest")
    return order
