"""Fill-reducing orderings for sparse Cholesky factorization.

Three orderings are provided:

* ``natural_ordering`` — identity (useful for tests and tiny systems);
* ``rcm_ordering`` — reverse Cuthill-McKee (bandwidth reduction), via
  :func:`scipy.sparse.csgraph.reverse_cuthill_mckee`;
* ``minimum_degree_ordering`` — our own (exact, non-approximate) minimum
  degree elimination ordering on the quotient graph, the classic
  fill-reduction heuristic CHOLMOD-era solvers are built on.

All functions return a permutation array ``perm`` meaning "new position
``i`` holds old index ``perm[i]``", i.e. the reordered matrix is
``A[perm][:, perm]``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro.utils.validation import check_square_sparse

__all__ = ["natural_ordering", "rcm_ordering", "minimum_degree_ordering"]


def natural_ordering(matrix) -> np.ndarray:
    """Identity permutation."""
    check_square_sparse("matrix", matrix)
    return np.arange(matrix.shape[0], dtype=np.int64)


def rcm_ordering(matrix) -> np.ndarray:
    """Reverse Cuthill-McKee ordering (symmetric pattern assumed)."""
    check_square_sparse("matrix", matrix)
    perm = reverse_cuthill_mckee(sp.csr_matrix(matrix), symmetric_mode=True)
    return np.asarray(perm, dtype=np.int64)


def minimum_degree_ordering(matrix) -> np.ndarray:
    """Exact minimum-degree elimination ordering.

    Simulates symmetric Gaussian elimination on the sparsity pattern:
    repeatedly eliminate a node of smallest current degree and connect
    its neighbors into a clique.  Runs in roughly
    ``O(n * fill-degree^2)``; intended for small/medium systems and for
    the ordering ablation, not for very large meshes (use RCM there).
    """
    check_square_sparse("matrix", matrix)
    coo = sp.coo_matrix(matrix)
    n = coo.shape[0]
    adjacency = [set() for _ in range(n)]
    for i, j in zip(coo.row, coo.col):
        if i != j:
            adjacency[int(i)].add(int(j))
            adjacency[int(j)].add(int(i))

    import heapq

    heap = [(len(adjacency[v]), v) for v in range(n)]
    heapq.heapify(heap)
    eliminated = np.zeros(n, dtype=bool)
    perm = np.empty(n, dtype=np.int64)
    pos = 0
    while heap:
        degree, node = heapq.heappop(heap)
        if eliminated[node] or degree != len(adjacency[node]):
            continue  # stale heap entry
        eliminated[node] = True
        perm[pos] = node
        pos += 1
        neighbors = [v for v in adjacency[node] if not eliminated[v]]
        # Form the elimination clique among the remaining neighbors.
        for v in neighbors:
            adjacency[v].discard(node)
        for a_index, a in enumerate(neighbors):
            for b in neighbors[a_index + 1 :]:
                if b not in adjacency[a]:
                    adjacency[a].add(b)
                    adjacency[b].add(a)
        for v in neighbors:
            heapq.heappush(heap, (len(adjacency[v]), v))
        adjacency[node].clear()
    return perm
