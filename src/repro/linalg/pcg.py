"""Preconditioned conjugate gradient solver.

The package's workhorse iterative solver: the paper's Tables 1-3 all
measure PCG iteration counts / times with the factored sparsifier
Laplacian as preconditioner.  Implemented from scratch (not scipy's
``cg``) so the iteration count, residual history and convergence
criterion exactly match the paper's setup (relative residual
``||r|| <= rtol * ||b||``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConvergenceError

__all__ = ["pcg", "PCGResult"]


@dataclass
class PCGResult:
    """Outcome of a PCG solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    rhs_norm: float
    residual_history: list = field(default_factory=list)

    @property
    def relative_residual(self) -> float:
        """Final ``||b - A x|| / ||b||`` (0 for a zero right-hand side)."""
        if self.rhs_norm == 0:
            return 0.0
        return self.residual_norm / self.rhs_norm


def _as_operator(A):
    if sp.issparse(A):
        matrix = sp.csr_matrix(A)
        return matrix.dot
    if callable(A):
        return A
    raise TypeError(f"A must be sparse or callable, got {type(A)!r}")


def pcg(
    A,
    b,
    M_solve=None,
    rtol=1e-3,
    maxiter=None,
    x0=None,
    record_history=False,
    raise_on_fail=False,
):
    """Solve ``A x = b`` by preconditioned conjugate gradients.

    Parameters
    ----------
    A:
        SPD sparse matrix or matvec callable.
    b:
        Right-hand side vector.
    M_solve:
        Preconditioner application ``r -> M^{-1} r`` (e.g.
        ``CholeskyFactor.solve``); ``None`` for plain CG.
    rtol:
        Convergence when ``||r||_2 <= rtol * ||b||_2`` (paper uses 1e-3
        for Table 1 and 1e-6 for transient analysis).
    maxiter:
        Iteration cap (default ``10 n``).
    x0:
        Initial guess (default zero).
    record_history:
        Keep per-iteration residual norms.
    raise_on_fail:
        Raise :class:`ConvergenceError` instead of returning a
        non-converged result.
    """
    b = np.asarray(b, dtype=np.float64)
    n = len(b)
    matvec = _as_operator(A)
    if maxiter is None:
        maxiter = 10 * n
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - matvec(x)
    rhs_norm = float(np.linalg.norm(b))
    tol = rtol * rhs_norm
    history = []

    res_norm = float(np.linalg.norm(r))
    if record_history:
        history.append(res_norm)
    if res_norm <= tol or rhs_norm == 0.0:
        return PCGResult(x, 0, True, res_norm, rhs_norm, history)

    z = M_solve(r) if M_solve is not None else r.copy()
    p = z.copy()
    rz = float(r @ z)
    iterations = 0
    converged = False
    for iterations in range(1, maxiter + 1):
        Ap = matvec(p)
        pAp = float(p @ Ap)
        if pAp <= 0:
            break  # matrix is not SPD along p; bail out
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        res_norm = float(np.linalg.norm(r))
        if record_history:
            history.append(res_norm)
        if res_norm <= tol:
            converged = True
            break
        z = M_solve(r) if M_solve is not None else r
        rz_next = float(r @ z)
        beta = rz_next / rz
        rz = rz_next
        p = z + beta * p
    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"PCG did not reach rtol={rtol} in {iterations} iterations "
            f"(relative residual {res_norm / max(rhs_norm, 1e-300):.3e})"
        )
    return PCGResult(x, iterations, converged, res_norm, rhs_norm, history)
