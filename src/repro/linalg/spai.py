"""Algorithm 1 — sparse approximate inverse of a Cholesky factor.

Given the lower Cholesky factor ``L`` of an SDD matrix, the exact
inverse ``Z = L^{-1}`` satisfies the column recurrence (Proposition 2 of
the paper)::

    z_j = (1 / L_jj) e_j + sum_{i > j, L_ij != 0} (-L_ij / L_jj) z_i

Because ``L`` comes from an SDD M-matrix, its off-diagonal entries are
nonpositive and every entry of ``Z`` is nonnegative (Proposition 1), so
columns can be built from ``j = n-1`` down to ``0`` with a simple
magnitude-threshold pruning: entries smaller than ``delta * max`` are
dropped, except that columns with at most ``log n`` entries are kept
exactly.  The result ``Z~`` approximates ``L^{-1}`` with per-column
error bounded by the worst pruned column (Eq. 19).

With ``delta = 0.1`` the paper observes ``nnz(Z~) ~ n log n``; the
ablation benchmark ``bench_ablation_delta`` measures the same curve for
this implementation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import FactorizationError
from repro.utils.validation import check_square_sparse

__all__ = ["sparse_approximate_inverse", "spai_nnz_profile", "extract_columns"]


def sparse_approximate_inverse(L, delta=0.1, keep_threshold=None):
    """Compute ``Z~ ~= L^{-1}`` for a lower-triangular Cholesky factor.

    Parameters
    ----------
    L:
        Lower-triangular CSC factor with positive diagonal and
        nonpositive off-diagonal entries (e.g. ``CholeskyFactor.L``).
    delta:
        Pruning threshold: entries below ``delta * max(column)`` are
        dropped (paper default 0.1).
    keep_threshold:
        Columns with at most this many nonzeros are never pruned;
        defaults to ``log(n)`` as in Algorithm 1.

    Returns
    -------
    scipy.sparse.csc_matrix
        Sparse approximation to ``L^{-1}`` (lower triangular,
        nonnegative entries).
    """
    check_square_sparse("L", L)
    if not (0.0 <= delta < 1.0):
        raise ValueError(f"delta must be in [0, 1), got {delta}")
    L = sp.csc_matrix(L)
    if not L.has_sorted_indices:
        L.sort_indices()
    n = L.shape[0]
    if keep_threshold is None:
        keep_threshold = max(1, int(np.ceil(np.log(max(n, 2)))))

    indptr, indices, data = L.indptr, L.indices, L.data
    col_idx: list = [None] * n
    col_val: list = [None] * n
    one = np.ones(1, dtype=np.float64)

    for j in range(n - 1, -1, -1):
        start, stop = indptr[j], indptr[j + 1]
        if start == stop or indices[start] != j:
            raise FactorizationError(f"missing diagonal in column {j}")
        diag = data[start]
        if diag <= 0:
            raise FactorizationError(f"nonpositive diagonal at column {j}")
        inv_diag = 1.0 / diag
        sub_rows = indices[start + 1 : stop]
        sub_vals = data[start + 1 : stop]
        if len(sub_rows) == 0:
            col_idx[j] = np.array([j], dtype=np.int64)
            col_val[j] = np.array([inv_diag], dtype=np.float64)
            continue
        # Gather the already-computed columns z~_i scaled by -L_ij/L_jj.
        parts_idx = [np.array([j], dtype=np.int64)]
        parts_val = [one * inv_diag]
        coeffs = -sub_vals * inv_diag
        for i, coeff in zip(sub_rows, coeffs):
            if coeff == 0.0:
                continue
            parts_idx.append(col_idx[i])
            parts_val.append(col_val[i] * coeff)
        cat_idx = np.concatenate(parts_idx)
        cat_val = np.concatenate(parts_val)
        uniq, inverse = np.unique(cat_idx, return_inverse=True)
        sums = np.bincount(inverse, weights=cat_val)
        # Proposition 1: every entry is a sum of nonnegative terms.
        if len(uniq) > keep_threshold:
            keep = sums >= delta * sums.max()
            if np.count_nonzero(keep) < keep_threshold:
                # Algorithm 1 deems columns with <= log n entries sparse
                # enough to keep verbatim; enforcing the same floor after
                # pruning reproduces the paper's observed nnz(Z~) ~ n log n
                # and keeps the column error bounded on near-singular
                # factors (see DESIGN.md).
                top = np.argpartition(-sums, keep_threshold - 1)
                keep = np.zeros(len(sums), dtype=bool)
                keep[top[:keep_threshold]] = True
            uniq = uniq[keep]
            sums = sums[keep]
        col_idx[j] = uniq
        col_val[j] = sums

    lengths = np.asarray([len(col_idx[j]) for j in range(n)], dtype=np.int64)
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=out_indptr[1:])
    out_indices = np.concatenate(col_idx) if n else np.empty(0, dtype=np.int64)
    out_data = np.concatenate(col_val) if n else np.empty(0)
    Z = sp.csc_matrix(
        (out_data, out_indices.astype(np.int32), out_indptr), shape=(n, n)
    )
    Z.has_sorted_indices = True  # np.unique returns sorted indices
    return Z


def extract_columns(Z, cols, kernels=None):
    """Gather many columns of a CSC matrix in one pass.

    The batched rankers need the SPAI columns of every candidate-edge
    endpoint; slicing ``Z`` column by column costs one Python call per
    endpoint.  This helper gathers all requested columns through the
    active kernel tier's
    :meth:`~repro.kernels.KernelSet.gather_csc_columns` (a single
    ``concat_ranges`` pass on the default vector tier).

    Parameters
    ----------
    Z : scipy.sparse.csc_matrix
        Column-sparse matrix (e.g. the output of
        :func:`sparse_approximate_inverse`).
    cols : array_like of int
        Column indices to extract (duplicates allowed).
    kernels : KernelSet or str, optional
        Hot-path kernel tier; defaults to the auto-resolved tier (see
        :mod:`repro.kernels`).  Bit-identical across tiers.

    Returns
    -------
    indptr : numpy.ndarray
        ``int64`` offsets into *indices*/*data*; column ``cols[k]``
        occupies ``[indptr[k], indptr[k + 1])``.
    indices : numpy.ndarray
        Row indices of the gathered entries (``int64``).
    data : numpy.ndarray
        Values of the gathered entries.
    """
    from repro.kernels import resolve_kernel_set  # deferred: cycle

    cols = np.asarray(cols, dtype=np.int64)
    return resolve_kernel_set(kernels).gather_csc_columns(
        Z.indptr, Z.indices, Z.data, cols
    )


def spai_nnz_profile(L, deltas):
    """nnz(Z~) for each pruning threshold (used by the delta ablation)."""
    return [
        int(sparse_approximate_inverse(L, delta=float(d)).nnz) for d in deltas
    ]
