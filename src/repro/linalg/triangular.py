"""Sparse triangular solves on CSC lower factors.

These are column-oriented solves vectorized with numpy per column, used
by the pure-Python Cholesky backend (the SuperLU backend solves through
its own compiled routines).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import FactorizationError

__all__ = ["solve_lower_csc", "solve_upper_from_lower_csc"]


def _as_sorted_csc(L) -> sp.csc_matrix:
    matrix = sp.csc_matrix(L)
    if not matrix.has_sorted_indices:
        matrix.sort_indices()
    return matrix


def solve_lower_csc(L, b) -> np.ndarray:
    """Solve ``L y = b`` for lower-triangular CSC ``L`` (diagonal first).

    *b* may be a vector or a 2-D array of right-hand sides (columns).
    """
    L = _as_sorted_csc(L)
    n = L.shape[0]
    x = np.array(b, dtype=np.float64, copy=True)
    indptr, indices, data = L.indptr, L.indices, L.data
    for j in range(n):
        start, stop = indptr[j], indptr[j + 1]
        if start == stop or indices[start] != j:
            raise FactorizationError(f"missing diagonal in column {j}")
        x[j] = x[j] / data[start]
        if stop > start + 1:
            rows = indices[start + 1 : stop]
            vals = data[start + 1 : stop]
            if x.ndim == 1:
                x[rows] -= vals * x[j]
            else:
                x[rows] -= np.outer(vals, x[j])
    return x


def solve_upper_from_lower_csc(L, b) -> np.ndarray:
    """Solve ``L^T x = b`` given the lower factor ``L`` in CSC.

    Column ``j`` of ``L`` is row ``j`` of ``L^T``, so the backward solve
    reads each column once: ``x[j] = (b[j] - L[j+1:, j] . x[j+1:]) / L[j, j]``.
    """
    L = _as_sorted_csc(L)
    n = L.shape[0]
    x = np.array(b, dtype=np.float64, copy=True)
    indptr, indices, data = L.indptr, L.indices, L.data
    for j in range(n - 1, -1, -1):
        start, stop = indptr[j], indptr[j + 1]
        if start == stop or indices[start] != j:
            raise FactorizationError(f"missing diagonal in column {j}")
        if stop > start + 1:
            rows = indices[start + 1 : stop]
            vals = data[start + 1 : stop]
            if x.ndim == 1:
                x[j] -= vals @ x[rows]
            else:
                x[j] -= vals @ x[rows]
        x[j] = x[j] / data[start]
    return x
