"""Spectral graph partitioning and clustering substrate (paper Sec. 4.3)."""

from repro.partitioning.fiedler import FiedlerResult, fiedler_vector
from repro.partitioning.precondition import build_partition_preconditioner
from repro.partitioning.spectral import (
    spectral_bipartition,
    partition_relative_error,
    cut_weight,
)
from repro.partitioning.clustering import (
    EmbeddingResult,
    ClusteringResult,
    spectral_embedding,
    kmeans,
    spectral_clustering,
    cluster_conductances,
    adjusted_rand_index,
)

__all__ = [
    "FiedlerResult",
    "fiedler_vector",
    "build_partition_preconditioner",
    "spectral_bipartition",
    "partition_relative_error",
    "cut_weight",
    "EmbeddingResult",
    "ClusteringResult",
    "spectral_embedding",
    "kmeans",
    "spectral_clustering",
    "cluster_conductances",
    "adjusted_rand_index",
]
