"""Spectral k-way clustering on top of the backend/sparsifier stack.

Generalizes the Fiedler machinery (paper Sec. 4.3) from bipartition to
k clusters: a low-eigenvector embedding of the regularized Laplacian is
computed by block inverse (orthogonal) iteration — each step solves one
linear system per embedding column, either

* directly (factor the full Laplacian once, the dense reference), or
* by PCG preconditioned with a factored *sparsifier* Laplacian, the
  configuration the application benchmark measures — the sparsifier as
  a component of a downstream pipeline, not the endpoint,

and the rows of the embedding are grouped by a seeded k-means.
Quality is judged the downstream way (Li–Schild's argument): adjusted
Rand index against planted labels (:func:`adjusted_rand_index`) and
per-cluster conductance (:func:`cluster_conductances`), not condition
number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.laplacian import regularization_shift, regularized_laplacian
from repro.linalg.cholesky import cholesky
from repro.linalg.pcg import pcg
from repro.utils.rng import as_rng
from repro.utils.timers import Timer

__all__ = [
    "EmbeddingResult",
    "ClusteringResult",
    "spectral_embedding",
    "kmeans",
    "spectral_clustering",
    "cluster_conductances",
    "adjusted_rand_index",
]


@dataclass
class EmbeddingResult:
    """Low-eigenvector embedding and solver statistics."""

    vectors: np.ndarray        # (n, k) orthonormal embedding columns
    method: str                # "direct" | "pcg"
    steps: int                 # inverse-iteration steps taken
    avg_iterations: float      # mean PCG iterations per inner solve
    seconds: float             # embedding wall-clock (excl. factor setup)
    setup_seconds: float       # factorization / preconditioner setup
    memory_bytes: int          # factor memory footprint


@dataclass
class ClusteringResult:
    """Outcome of one spectral-clustering run."""

    labels: np.ndarray         # per-node cluster id in [0, k)
    k: int
    embedding: EmbeddingResult
    kmeans_iterations: int
    kmeans_seconds: float

    @property
    def avg_iterations(self) -> float:
        """Mean PCG iterations per inner embedding solve."""
        return self.embedding.avg_iterations


def spectral_embedding(
    graph: Graph,
    k: int,
    method: str = "direct",
    preconditioner=None,
    steps: int = 8,
    rtol: float = 1e-6,
    reg_rel: float = 1e-6,
    seed: int = 0,
) -> EmbeddingResult:
    """Embedding spanned by the *k* lowest non-trivial eigenvectors.

    Block inverse iteration on the regularized Laplacian: a random
    ``(n, k)`` block is repeatedly solved against, deflated against the
    all-ones vector (the trivial eigenvector) and re-orthonormalized by
    QR.  ``method="direct"`` factors the full Laplacian once;
    ``method="pcg"`` runs each inner solve through PCG with
    *preconditioner* (a factored sparsifier Laplacian, e.g. from
    :func:`repro.partitioning.build_partition_preconditioner`).

    Raises :class:`~repro.exceptions.GraphError` for ``k`` outside
    ``[1, n - 1]`` or a missing preconditioner in PCG mode.
    """
    n = graph.n
    if not 1 <= k <= n - 1:
        raise GraphError(f"embedding dimension k={k} must be in [1, {n - 1}]")
    if method not in ("direct", "pcg"):
        raise GraphError(f"unknown embedding method {method!r}")
    if method == "pcg" and preconditioner is None:
        raise GraphError("method='pcg' needs a preconditioner")
    shift = regularization_shift(graph, reg_rel)
    laplacian_g = regularized_laplacian(graph, shift, fmt="csr")
    rng = as_rng(seed)

    setup = Timer()
    factor = None
    with setup:
        if method == "direct":
            factor = cholesky(laplacian_g.tocsc())
    memory = (factor.memory_bytes() if factor is not None
              else preconditioner.memory_bytes())

    ones = np.full(n, 1.0 / np.sqrt(n))
    block = rng.standard_normal((n, k))
    block -= np.outer(ones, ones @ block)
    block, _ = np.linalg.qr(block)

    total_iterations = 0
    solves = 0
    run = Timer()
    with run:
        for _ in range(steps):
            if method == "direct":
                solved = np.column_stack(
                    [factor.solve(block[:, j]) for j in range(k)]
                )
            else:
                columns = []
                for j in range(k):
                    result = pcg(
                        laplacian_g,
                        block[:, j],
                        M_solve=preconditioner.solve,
                        rtol=rtol,
                        x0=block[:, j],
                    )
                    total_iterations += result.iterations
                    columns.append(result.x)
                solved = np.column_stack(columns)
            solves += k
            solved -= np.outer(ones, ones @ solved)
            block, _ = np.linalg.qr(solved)
    return EmbeddingResult(
        vectors=block,
        method=method,
        steps=steps,
        avg_iterations=total_iterations / max(solves, 1),
        seconds=run.elapsed,
        setup_seconds=setup.elapsed,
        memory_bytes=int(memory),
    )


def kmeans(points, k, seed: int = 0, iters: int = 64):
    """Seeded Lloyd's k-means with k-means++ initialization.

    Deterministic per seed (no scikit-learn dependency).  Returns
    ``(labels, iterations)`` where *iterations* is the number of Lloyd
    updates until assignment convergence (or *iters*).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim == 1:
        points = points[:, None]
    n = len(points)
    if not 1 <= k <= n:
        raise GraphError(f"kmeans needs 1 <= k <= {n}, got {k}")
    rng = as_rng(seed)

    # k-means++ seeding: spread the initial centers out.
    centers = [points[int(rng.integers(0, n))]]
    for _ in range(1, k):
        dist2 = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centers], axis=0
        )
        total = dist2.sum()
        if total <= 0:
            centers.append(points[int(rng.integers(0, n))])
            continue
        centers.append(points[int(rng.choice(n, p=dist2 / total))])
    centers = np.array(centers)

    labels = np.zeros(n, dtype=np.int64)
    for iteration in range(1, iters + 1):
        dist2 = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = np.argmin(dist2, axis=1)
        for j in range(k):
            members = points[new_labels == j]
            if len(members):
                centers[j] = members.mean(axis=0)
        if np.array_equal(new_labels, labels) and iteration > 1:
            return new_labels, iteration
        labels = new_labels
    return labels, iters


def spectral_clustering(
    graph: Graph,
    k: int,
    method: str = "direct",
    preconditioner=None,
    steps: int = 8,
    rtol: float = 1e-6,
    reg_rel: float = 1e-6,
    seed: int = 0,
) -> ClusteringResult:
    """Cluster *graph* into *k* groups via spectral embedding + k-means.

    The embedding uses ``k`` non-trivial low eigenvectors
    (:func:`spectral_embedding`, same *method*/*preconditioner*
    semantics); rows are normalized before the seeded k-means so
    clusters separate by direction, not magnitude.
    """
    embedding = spectral_embedding(
        graph, k, method=method, preconditioner=preconditioner,
        steps=steps, rtol=rtol, reg_rel=reg_rel, seed=seed,
    )
    rows = embedding.vectors
    norms = np.linalg.norm(rows, axis=1, keepdims=True)
    rows = rows / np.maximum(norms, 1e-12)
    timer = Timer()
    with timer:
        labels, iterations = kmeans(rows, k, seed=seed)
    return ClusteringResult(
        labels=labels,
        k=k,
        embedding=embedding,
        kmeans_iterations=iterations,
        kmeans_seconds=timer.elapsed,
    )


def cluster_conductances(graph: Graph, labels) -> np.ndarray:
    """Conductance ``cut(S) / min(vol(S), vol(V - S))`` per cluster.

    Lower is better; a planted partition recovered exactly yields one
    small value per block.  Empty clusters get conductance 1.0 (the
    worst value), so a collapsed clustering cannot look artificially
    good.
    """
    labels = np.asarray(labels)
    if labels.shape != (graph.n,):
        raise GraphError(f"labels must have shape ({graph.n},)")
    volumes = np.zeros(int(labels.max()) + 1)
    np.add.at(volumes, labels[graph.u], graph.w)
    np.add.at(volumes, labels[graph.v], graph.w)
    total = float(graph.w.sum()) * 2.0
    crossing = labels[graph.u] != labels[graph.v]
    cuts = np.zeros_like(volumes)
    np.add.at(cuts, labels[graph.u[crossing]], graph.w[crossing])
    np.add.at(cuts, labels[graph.v[crossing]], graph.w[crossing])
    conductances = np.ones_like(volumes)
    for j in range(len(volumes)):
        denom = min(volumes[j], total - volumes[j])
        if denom > 0:
            conductances[j] = cuts[j] / denom
    return conductances


def adjusted_rand_index(labels_a, labels_b) -> float:
    """Adjusted Rand index between two labelings (1 = identical).

    Chance-corrected pair-counting agreement, invariant to label
    permutation; the clustering benchmark's quality score against
    planted partitions.  Implemented from the contingency table (no
    scikit-learn dependency).
    """
    labels_a = np.asarray(labels_a).ravel()
    labels_b = np.asarray(labels_b).ravel()
    if labels_a.shape != labels_b.shape:
        raise GraphError("label arrays must have the same shape")
    n = len(labels_a)
    if n == 0:
        raise GraphError("label arrays are empty")
    _, a_ids = np.unique(labels_a, return_inverse=True)
    _, b_ids = np.unique(labels_b, return_inverse=True)
    contingency = np.zeros((a_ids.max() + 1, b_ids.max() + 1))
    np.add.at(contingency, (a_ids, b_ids), 1.0)

    def comb2(x):
        return x * (x - 1.0) / 2.0

    sum_cells = comb2(contingency).sum()
    sum_rows = comb2(contingency.sum(axis=1)).sum()
    sum_cols = comb2(contingency.sum(axis=0)).sum()
    total = comb2(float(n))
    expected = sum_rows * sum_cols / total if total else 0.0
    maximum = 0.5 * (sum_rows + sum_cols)
    if maximum == expected:
        return 1.0
    return float((sum_cells - expected) / (maximum - expected))
