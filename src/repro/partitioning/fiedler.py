"""Fiedler vector by inverse power iteration (paper Sec. 4.3).

The Fiedler vector is the eigenvector of the second-smallest Laplacian
eigenvalue.  Following the paper, it is computed with a fixed number of
inverse power iterations (5 steps): each step solves one system with
the graph Laplacian, either

* directly (factor ``L_G`` once, the paper's CHOLMOD baseline), or
* by PCG preconditioned with the factored *sparsifier* Laplacian.

The iterate is deflated against the all-ones vector each step (with the
footnote-1 regularization the smallest eigenpair is ~(1s, shift); the
deflation steers the iteration to the Fiedler direction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.graph.laplacian import regularization_shift, regularized_laplacian
from repro.linalg.cholesky import cholesky
from repro.linalg.pcg import pcg
from repro.utils.rng import as_rng
from repro.utils.timers import Timer

__all__ = ["FiedlerResult", "fiedler_vector"]


@dataclass
class FiedlerResult:
    """Fiedler computation outcome and solver statistics."""

    vector: np.ndarray
    method: str
    steps: int
    avg_iterations: float
    seconds: float
    memory_bytes: int
    eigenvalue_estimate: float


def fiedler_vector(
    graph: Graph,
    method: str = "direct",
    preconditioner=None,
    steps: int = 5,
    rtol: float = 1e-6,
    reg_rel: float = 1e-6,
    seed: int = 0,
) -> FiedlerResult:
    """Approximate Fiedler vector of *graph*.

    Parameters
    ----------
    graph:
        Connected weighted graph.
    method:
        ``"direct"`` (factor the full Laplacian) or ``"pcg"``
        (sparsifier-preconditioned inner solves; pass *preconditioner*,
        a :class:`CholeskyFactor` of the regularized sparsifier
        Laplacian).
    steps:
        Inverse-power steps (paper uses 5).
    rtol:
        PCG tolerance per inner solve.
    """
    shift = regularization_shift(graph, reg_rel)
    laplacian_g = regularized_laplacian(graph, shift, fmt="csr")
    n = graph.n
    rng = as_rng(seed)

    ones = np.full(n, 1.0 / np.sqrt(n))
    x = rng.standard_normal(n)
    x -= (x @ ones) * ones
    x /= np.linalg.norm(x)

    total_iterations = 0
    timer = Timer()
    with timer:
        if method == "direct":
            factor = cholesky(laplacian_g.tocsc())
            solve = factor.solve
            memory = factor.memory_bytes()
        elif method == "pcg":
            if preconditioner is None:
                raise ValueError("pcg method needs a preconditioner factor")
            memory = preconditioner.memory_bytes()
            solve = None
        else:
            raise ValueError(f"unknown method {method!r}")

        for _ in range(steps):
            if method == "direct":
                y = solve(x)
            else:
                result = pcg(
                    laplacian_g,
                    x,
                    M_solve=preconditioner.solve,
                    rtol=rtol,
                    x0=x,
                )
                total_iterations += result.iterations
                y = result.x
            y -= (y @ ones) * ones
            norm = np.linalg.norm(y)
            if norm == 0:
                break
            x = y / norm
    eigenvalue = float(x @ (laplacian_g @ x))
    return FiedlerResult(
        vector=x,
        method=method,
        steps=steps,
        avg_iterations=total_iterations / max(steps, 1),
        seconds=timer.elapsed,
        memory_bytes=memory,
        eigenvalue_estimate=eigenvalue,
    )
