"""Sparsifier preconditioners for the partitioning pipeline.

The spectral-partitioning comparison (paper Table 3) solves inner
Laplacian systems by PCG preconditioned with a factored *sparsifier*
Laplacian.  This module builds that preconditioner through the method
registry, so the partitioning pipeline accepts every registered
sparsifier (and any method registered later) instead of hard-coding
the proposed one.
"""

from __future__ import annotations

from repro.api import sparsify
from repro.graph.laplacian import regularization_shift, regularized_laplacian
from repro.linalg.cholesky import cholesky

__all__ = ["build_partition_preconditioner"]


def build_partition_preconditioner(
    graph,
    method: str = "proposed",
    *,
    artifacts=None,
    **options,
):
    """Sparsify *graph* and factor the regularized sparsifier Laplacian.

    Parameters
    ----------
    graph : repro.graph.Graph
        The graph whose Fiedler vector is sought.
    method : str
        Any registered sparsifier method name.
    artifacts : repro.core.base.ArtifactStore, optional
        Session artifact store (shared trees/factors across calls).
    **options
        Options of the chosen method's config dataclass.  A ``reg_rel``
        option reaches the sparsifier *and* sets the relative diagonal
        shift of the final factorization (footnote 1 of the paper);
        default 1e-6.

    Returns
    -------
    (CholeskyFactor, SparsifierResult)
        The preconditioner and the sparsification it came from.
    """
    result = sparsify(graph, method=method, artifacts=artifacts, **options)
    shift = regularization_shift(graph, options.get("reg_rel", 1e-6))
    factor = cholesky(regularized_laplacian(result.sparsifier, shift))
    return factor, result
