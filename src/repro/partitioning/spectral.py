"""Spectral bipartitioning from a Fiedler vector."""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph

__all__ = ["spectral_bipartition", "partition_relative_error", "cut_weight"]


def spectral_bipartition(fiedler: np.ndarray, balanced: bool = True):
    """0/1 labels from the Fiedler vector.

    With ``balanced=True`` the split is at the median (equal halves,
    the classic spectral-partitioning recipe [17]); otherwise at zero.
    """
    fiedler = np.asarray(fiedler)
    threshold = np.median(fiedler) if balanced else 0.0
    return (fiedler > threshold).astype(np.int8)


def partition_relative_error(labels_a, labels_b) -> float:
    """Fraction of nodes assigned differently (Table 3's RelErr).

    Invariant to a global label swap (a partition and its complement
    are the same partition).
    """
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if labels_a.shape != labels_b.shape:
        raise ValueError("label arrays must have the same shape")
    direct = float(np.mean(labels_a != labels_b))
    swapped = float(np.mean(labels_a != (1 - labels_b)))
    return min(direct, swapped)


def cut_weight(graph: Graph, labels) -> float:
    """Total weight of edges crossing the partition."""
    labels = np.asarray(labels)
    crossing = labels[graph.u] != labels[graph.v]
    return float(graph.w[crossing].sum())
