"""Power-grid analysis substrate (paper Sec. 4.2).

Synthetic IBM/THU-style power-grid benchmarks, MNA assembly, DC
analysis, and backward-Euler transient simulation with either a direct
(factor-once) solver or a sparsifier-preconditioned PCG solver.
"""

from repro.powergrid.waveforms import PulsePattern, breakpoints_union
from repro.powergrid.netlist import PowerGridNetlist, CurrentLoad
from repro.powergrid.benchmarks import (
    make_pg_case,
    netlist_from_graph,
    PG_CASE_REGISTRY,
    PGCaseSpec,
)
from repro.powergrid.mna import conductance_matrix, capacitance_vector
from repro.powergrid.dc import dc_solve
from repro.powergrid.transient import (
    TransientResult,
    simulate_transient_direct,
    simulate_transient_pcg,
    build_sparsifier_preconditioner,
)

__all__ = [
    "PulsePattern",
    "breakpoints_union",
    "PowerGridNetlist",
    "CurrentLoad",
    "make_pg_case",
    "netlist_from_graph",
    "PG_CASE_REGISTRY",
    "PGCaseSpec",
    "conductance_matrix",
    "capacitance_vector",
    "dc_solve",
    "TransientResult",
    "simulate_transient_direct",
    "simulate_transient_pcg",
    "build_sparsifier_preconditioner",
]
