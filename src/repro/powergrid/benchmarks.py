"""Synthetic power-grid benchmark generator.

Stand-ins for the IBM [14] and THU [18] power-grid benchmarks used in
the paper's Table 2 (ibmpg3t...thupg2t), which are not redistributable
here (DESIGN.md, substitution 2).  Each case contains a VDD plane and a
GND plane (two grid components, as in real PG netlists — Fig. 1 of the
paper plots one node from each), with:

* wire conductances drawn log-uniformly (sheet-resistance spread);
* pads on a coarse regular lattice, Norton-modeled;
* decoupling/load capacitances 1-10 pF per node (the paper's range);
* periodic pulse current loads at random cells, with all waveform
  corners snapped to a 10 ps grid so a fixed-step direct method with
  h = 10 ps hits every breakpoint exactly (the constraint the paper
  describes).
"""

from __future__ import annotations

from dataclasses import dataclass

import zlib

import numpy as np

from repro.graph.generators import grid2d
from repro.graph.graph import Graph
from repro.graph.suitesparse_like import scaled_size
from repro.powergrid.netlist import CurrentLoad, PowerGridNetlist
from repro.powergrid.waveforms import PulsePattern
from repro.utils.rng import as_rng

__all__ = [
    "PGCaseSpec",
    "PG_CASE_REGISTRY",
    "make_pg_case",
    "build_pg_plane",
    "netlist_from_graph",
]

_PS = 1e-12
_PF = 1e-12


@dataclass(frozen=True)
class PGCaseSpec:
    """Metadata for one synthetic PG case."""

    name: str
    paper_nodes: float
    base_nodes: int       # reproduction size at scale 1.0 (both planes)
    load_density: float   # fraction of nodes carrying a current load
    detail: str


PG_CASE_REGISTRY = {
    "ibmpg3t": PGCaseSpec("ibmpg3t", 8.5e5, 3200, 0.05, "IBM-like, medium"),
    "ibmpg4t": PGCaseSpec("ibmpg4t", 9.5e5, 4050, 0.05, "IBM-like, medium"),
    "ibmpg5t": PGCaseSpec("ibmpg5t", 1.1e6, 5000, 0.04, "IBM-like, large"),
    "ibmpg6t": PGCaseSpec("ibmpg6t", 1.7e6, 6050, 0.04, "IBM-like, large"),
    "thupg1t": PGCaseSpec("thupg1t", 5.0e6, 8450, 0.03, "THU-like, XL"),
    "thupg2t": PGCaseSpec("thupg2t", 9.0e6, 10952, 0.03, "THU-like, XXL"),
}


def build_pg_plane(
    side,
    rail_voltage,
    rng,
    pad_pitch=8,
    load_density=0.05,
    load_sign=-1.0,
    waveform_groups=4,
):
    """One power plane: grid graph + pads + caps + loads.

    Returns ``(graph, capacitance, pad_g, rail, loads)`` with node ids
    local to the plane.
    """
    graph = grid2d(side, side, weights="uniform", seed=rng.integers(0, 2**31))
    n = graph.n
    # Wire conductances: rescale the generator's spread into 0.5..20 S
    # (wire resistances of 50 mOhm .. 2 Ohm).
    w = graph.w
    w = 0.5 + (w - w.min()) / max(w.max() - w.min(), 1e-30) * 19.5
    graph = graph.reweighted(w)

    capacitance = rng.uniform(1.0, 10.0, size=n) * _PF

    pad_g = np.zeros(n)
    for i in range(0, side, pad_pitch):
        for j in range(0, side, pad_pitch):
            pad_g[i * side + j] = rng.uniform(50.0, 200.0)

    rail = np.full(n, rail_voltage)

    loads = _pulse_loads(n, rng, load_density=load_density,
                         load_sign=load_sign,
                         waveform_groups=waveform_groups)
    return graph, capacitance, pad_g, rail, loads


def _pulse_loads(n, rng, load_density=0.05, load_sign=-1.0,
                 waveform_groups=4):
    """Pulse current loads on a random node subset, 10 ps-snapped.

    Loads share a handful of waveform templates (clock domains): cells
    switch in synchronized groups, so the breakpoint union stays small
    and variable-step integration can actually take large steps — the
    regime the paper's iterative solver exploits.  All corners snap to
    the 10 ps grid so a fixed h = 10 ps hits every breakpoint.
    """
    templates = []
    for _ in range(waveform_groups):
        rise = 10 * _PS * int(rng.integers(2, 11))       # 20-100 ps
        fall = 10 * _PS * int(rng.integers(2, 11))
        width = 10 * _PS * int(rng.integers(5, 40))      # 50-390 ps
        delay = 10 * _PS * int(rng.integers(0, 50))
        period = 10 * _PS * int(rng.integers(100, 250))  # 1.0-2.5 ns
        period = max(period, rise + width + fall + 10 * _PS)
        templates.append((delay, rise, width, fall, period))

    loads = []
    count = max(1, int(load_density * n))
    nodes = rng.choice(n, size=count, replace=False)
    for node in nodes:
        delay, rise, width, fall, period = templates[
            int(rng.integers(0, len(templates)))
        ]
        pattern = PulsePattern(
            amplitude=float(rng.uniform(5e-3, 5e-2)),
            delay=delay,
            rise=rise,
            width=width,
            fall=fall,
            period=period,
        )
        loads.append(CurrentLoad(int(node), pattern, sign=load_sign))
    return loads


def netlist_from_graph(
    graph: Graph,
    seed: int = 0,
    rail_voltage: float = 1.8,
    pad_fraction: float = 0.02,
    load_density: float = 0.05,
    waveform_groups: int = 4,
    name: str = "graph-pg",
) -> PowerGridNetlist:
    """Dress an arbitrary connected graph as a power-delivery network.

    The bridge the application-level transient benchmark uses to sweep
    *workload families*: any :class:`~repro.graph.Graph` (a Kronecker
    social graph as much as a regular plane) becomes a single-rail PG
    netlist — edge weights rescaled into the 0.5–20 S wire-conductance
    band, 1–10 pF node capacitances, Norton-modeled pads on a random
    ``pad_fraction`` of nodes (at least one), and 10 ps-snapped pulse
    loads on a random ``load_density`` of nodes, exactly the waveform
    regime of :func:`build_pg_plane`.  Deterministic per seed.
    """
    rng = as_rng(seed)
    n = graph.n
    w = graph.w
    span = max(w.max() - w.min(), 1e-30)
    conductances = 0.5 + (w - w.min()) / span * 19.5
    dressed = graph.reweighted(conductances)

    capacitance = rng.uniform(1.0, 10.0, size=n) * _PF
    pad_count = max(1, int(round(pad_fraction * n)))
    pads = rng.choice(n, size=pad_count, replace=False)
    pad_g = np.zeros(n)
    pad_g[pads] = rng.uniform(50.0, 200.0, size=pad_count)
    rail = np.full(n, rail_voltage)
    loads = _pulse_loads(n, rng, load_density=load_density,
                         waveform_groups=waveform_groups)
    return PowerGridNetlist(
        graph=dressed,
        capacitance=capacitance,
        pad_conductance=pad_g,
        rail_voltage=rail,
        loads=loads,
        name=name,
    )


def make_pg_case(name: str, scale=None, seed: int = 0):
    """Build the named PG case; returns ``(PowerGridNetlist, PGCaseSpec)``.

    The netlist contains two disconnected planes: VDD (1.8 V) on node
    ids ``[0, n/2)`` and GND (0 V) on ``[n/2, n)``.
    """
    if name not in PG_CASE_REGISTRY:
        raise KeyError(
            f"unknown PG case {name!r}; available: {sorted(PG_CASE_REGISTRY)}"
        )
    spec = PG_CASE_REGISTRY[name]
    total = scaled_size(spec.base_nodes, scale)
    side = max(4, int(round(np.sqrt(total / 2))))
    # Deterministic per-case offset: hash() is salted per process.
    rng = as_rng(seed + (zlib.crc32(name.encode()) % 1000))

    vdd = build_pg_plane(
        side, 1.8, rng, load_density=spec.load_density, load_sign=-1.0
    )
    gnd = build_pg_plane(
        side, 0.0, rng, load_density=spec.load_density, load_sign=+1.0
    )

    per_plane = side * side
    graph = Graph(
        2 * per_plane,
        np.concatenate([vdd[0].u, gnd[0].u + per_plane]),
        np.concatenate([vdd[0].v, gnd[0].v + per_plane]),
        np.concatenate([vdd[0].w, gnd[0].w]),
        validate=False,
    )
    capacitance = np.concatenate([vdd[1], gnd[1]])
    pad_g = np.concatenate([vdd[2], gnd[2]])
    rail = np.concatenate([vdd[3], gnd[3]])
    loads = list(vdd[4]) + [
        CurrentLoad(load.node + per_plane, load.pattern, load.sign)
        for load in gnd[4]
    ]
    netlist = PowerGridNetlist(
        graph=graph,
        capacitance=capacitance,
        pad_conductance=pad_g,
        rail_voltage=rail,
        loads=loads,
        name=name,
    )
    return netlist, spec
