"""DC (operating-point) analysis of a power grid: ``G x = u(0)``."""

from __future__ import annotations

import numpy as np

from repro.linalg.cholesky import cholesky
from repro.linalg.pcg import pcg
from repro.powergrid.mna import conductance_matrix
from repro.powergrid.netlist import PowerGridNetlist

__all__ = ["dc_solve"]


def dc_solve(netlist: PowerGridNetlist, method="direct", preconditioner=None,
             rtol=1e-9):
    """Solve the DC operating point.

    Parameters
    ----------
    netlist:
        The power grid.
    method:
        ``"direct"`` (factor + solve) or ``"pcg"`` (requires
        *preconditioner*, a :class:`CholeskyFactor` of the sparsified
        conductance matrix).
    rtol:
        PCG tolerance when ``method="pcg"``.

    Returns
    -------
    (x, info)
        Node voltages and a dict with solver statistics.
    """
    G = conductance_matrix(netlist)
    rhs = netlist.source_vector(0.0)
    if method == "direct":
        factor = cholesky(G)
        x = factor.solve(rhs)
        return x, {"method": "direct", "factor_nnz": factor.nnz}
    if method == "pcg":
        if preconditioner is None:
            raise ValueError("pcg DC solve needs a preconditioner factor")
        result = pcg(
            G.tocsr(), rhs, M_solve=preconditioner.solve, rtol=rtol
        )
        return result.x, {
            "method": "pcg",
            "iterations": result.iterations,
            "converged": result.converged,
        }
    raise ValueError(f"unknown method {method!r}")
