"""Modified nodal analysis (MNA) assembly.

With all voltage sources Norton-transformed at the pads, the MNA system
for a power grid reduces to node equations only::

    (L_G + diag(g_pad)) x  +  C dx/dt  =  u(t)

where ``L_G`` is the wire-conductance Laplacian.  Backward Euler at
step ``h`` gives Eq. (21) of the paper:

    (G + C/h) x(t+h) = (C/h) x(t) + u(t+h)
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.laplacian import laplacian
from repro.powergrid.netlist import PowerGridNetlist

__all__ = ["conductance_matrix", "capacitance_vector", "backward_euler_matrix"]


def conductance_matrix(netlist: PowerGridNetlist, fmt: str = "csc"):
    """``G = L_graph + diag(pad conductances)`` (nonsingular SDD)."""
    return laplacian(netlist.graph, shift=netlist.pad_conductance, fmt=fmt)


def capacitance_vector(netlist: PowerGridNetlist) -> np.ndarray:
    """Per-node capacitance (the diagonal of the C matrix)."""
    return netlist.capacitance


def backward_euler_matrix(netlist: PowerGridNetlist, step: float, fmt="csc"):
    """``A = G + C/h`` for a backward-Euler step of size *step*."""
    G = conductance_matrix(netlist, fmt="csc")
    A = G + sp.diags(netlist.capacitance / step)
    return A.asformat(fmt)
