"""Power-grid netlist model.

A power grid is a resistive network (the :class:`~repro.graph.Graph`
holds wire *conductances* as edge weights) plus, per node:

* a capacitance to ground (the paper adds 1-10 pF caps, as in the IBM
  benchmarks);
* an optional *pad* connection — a conductance to the ideal supply rail
  (C4 bumps / package pins), modeled as a Norton equivalent so the MNA
  matrix stays SDD: pad current injection ``g_pad * V_rail`` and a
  diagonal conductance ``g_pad``;
* optional pulse current loads (cell current draw).

Both VDD and GND planes are representable: each node carries the rail
voltage of its net, and load currents leave VDD nodes / enter GND nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError
from repro.graph.graph import Graph
from repro.powergrid.waveforms import PulsePattern

__all__ = ["CurrentLoad", "PowerGridNetlist"]


@dataclass(frozen=True)
class CurrentLoad:
    """A pulse current source attached to one node.

    ``sign`` is -1 when the load draws current *out* of the node (VDD
    plane) and +1 when it pushes current *in* (GND return path).
    """

    node: int
    pattern: PulsePattern
    sign: float = -1.0


@dataclass
class PowerGridNetlist:
    """Complete description of a power grid for MNA analysis."""

    graph: Graph                      # wire conductances
    capacitance: np.ndarray           # per-node C to ground (farads)
    pad_conductance: np.ndarray       # per-node conductance to the rail
    rail_voltage: np.ndarray          # per-node ideal rail voltage
    loads: list = field(default_factory=list)
    name: str = "pg"

    def __post_init__(self):
        n = self.graph.n
        self.capacitance = np.asarray(self.capacitance, dtype=np.float64)
        self.pad_conductance = np.asarray(
            self.pad_conductance, dtype=np.float64
        )
        self.rail_voltage = np.asarray(self.rail_voltage, dtype=np.float64)
        for label, vector in (
            ("capacitance", self.capacitance),
            ("pad_conductance", self.pad_conductance),
            ("rail_voltage", self.rail_voltage),
        ):
            if vector.shape != (n,):
                raise SimulationError(
                    f"{label} must have shape ({n},), got {vector.shape}"
                )
        if np.any(self.capacitance < 0) or np.any(self.pad_conductance < 0):
            raise SimulationError("capacitance/pad conductance must be >= 0")
        if not np.any(self.pad_conductance > 0):
            raise SimulationError("netlist needs at least one pad")
        for load in self.loads:
            if not 0 <= load.node < n:
                raise SimulationError(f"load node {load.node} out of range")

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.graph.n

    def pad_nodes(self) -> np.ndarray:
        """Indices of nodes with a pad connection."""
        return np.flatnonzero(self.pad_conductance > 0)

    def load_patterns(self):
        """The waveform of every load (for breakpoint extraction)."""
        return [load.pattern for load in self.loads]

    def source_vector(self, t: float) -> np.ndarray:
        """MNA right-hand side ``u(t)``: pad injections + load currents."""
        u = self.pad_conductance * self.rail_voltage
        for load in self.loads:
            u[load.node] += load.sign * load.pattern.value(t)
        return u
