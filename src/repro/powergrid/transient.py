"""Backward-Euler transient simulation (Eq. 21 and Table 2 of the paper).

Two solver strategies, mirroring the paper's comparison:

* **Direct, fixed step** (:func:`simulate_transient_direct`) — factor
  ``A = G + C/h`` once and reuse it for every step.  Efficient only
  because ``h`` is pinned to the smallest breakpoint spacing of the
  current-source waveforms (10 ps here), which forces many steps.
* **PCG, variable step** (:func:`simulate_transient_pcg`) — steps jump
  from breakpoint to breakpoint (capped at ``max_step`` = 200 ps for
  error control); the system matrix changes with ``h`` but PCG only
  needs matvecs, and the preconditioner — the factored *sparsifier* of
  the conductance matrix, built once at DC — is reused throughout.

Both record per-node probe waveforms so Fig. 1 can be regenerated, and
report runtime / steps / average PCG iterations / memory (Table 2's
columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.api import sparsify
from repro.exceptions import SimulationError
from repro.graph.laplacian import laplacian
from repro.linalg.cholesky import cholesky
from repro.linalg.pcg import pcg
from repro.powergrid.dc import dc_solve
from repro.powergrid.mna import conductance_matrix
from repro.powergrid.netlist import PowerGridNetlist
from repro.powergrid.waveforms import breakpoints_union
from repro.utils.timers import Timer

__all__ = [
    "TransientResult",
    "simulate_transient_direct",
    "simulate_transient_direct_varied",
    "simulate_transient_pcg",
    "build_sparsifier_preconditioner",
    "max_probe_difference",
]


@dataclass
class TransientResult:
    """Waveforms and solver statistics from one transient run."""

    method: str
    times: np.ndarray
    probes: dict                      # node -> voltage array
    steps: int
    avg_iterations: float
    transient_seconds: float
    setup_seconds: float
    memory_bytes: int
    extra: dict = field(default_factory=dict)

    def probe(self, node: int) -> np.ndarray:
        return self.probes[int(node)]


def _record(probes, store, x):
    for node in probes:
        store[node].append(float(x[node]))


def simulate_transient_direct(
    netlist: PowerGridNetlist,
    t_end: float = 5e-9,
    step: float = 10e-12,
    probes=(),
):
    """Fixed-step backward Euler with a factor-once direct solver."""
    if step <= 0 or t_end <= step:
        raise SimulationError("need 0 < step < t_end")
    probes = [int(p) for p in probes]
    setup = Timer()
    with setup:
        G = conductance_matrix(netlist)
        cap = netlist.capacitance
        A = (G + sp.diags(cap / step)).tocsc()
        factor = cholesky(A)
        x, _ = dc_solve(netlist, method="direct")
    store = {p: [float(x[p])] for p in probes}
    times = [0.0]
    scale = cap / step
    run = Timer()
    with run:
        t = 0.0
        steps = 0
        while t < t_end - 1e-15:
            t_next = min(t + step, t_end)
            rhs = scale * x + netlist.source_vector(t_next)
            x = factor.solve(rhs)
            _record(probes, store, x)
            times.append(t_next)
            t = t_next
            steps += 1
    memory = factor.memory_bytes() + int(A.nnz) * 12
    return TransientResult(
        method="direct",
        times=np.asarray(times),
        probes={p: np.asarray(v) for p, v in store.items()},
        steps=steps,
        avg_iterations=0.0,
        transient_seconds=run.elapsed,
        setup_seconds=setup.elapsed,
        memory_bytes=memory,
        extra={"factor_nnz": factor.nnz, "fixed_step": step},
    )


def simulate_transient_direct_varied(
    netlist: PowerGridNetlist,
    t_end: float = 5e-9,
    max_step: float = 200e-12,
    probes=(),
):
    """Variable-step backward Euler with a *direct* solver.

    The paper's Sec. 4.2 argument against this configuration: every
    time the step size changes, ``A = G + C/h`` changes and must be
    re-factored, which dominates the runtime.  Provided for the
    step-policy ablation benchmark; refactorizations are counted in
    ``extra["refactorizations"]``.
    """
    probes = [int(p) for p in probes]
    setup = Timer()
    with setup:
        G = conductance_matrix(netlist)
        cap = netlist.capacitance
        x, _ = dc_solve(netlist, method="direct")
        points = breakpoints_union(netlist.load_patterns(), t_end)
    store = {p: [float(x[p])] for p in probes}
    times = [0.0]
    run = Timer()
    refactorizations = 0
    factor = None
    current_h = None
    steps = 0
    with run:
        t = 0.0
        bp_index = 0
        while t < t_end - 1e-15:
            while bp_index < len(points) and points[bp_index] <= t + 1e-18:
                bp_index += 1
            next_bp = points[bp_index] if bp_index < len(points) else t_end
            t_next = min(next_bp, t + max_step, t_end)
            h = t_next - t
            if factor is None or abs(h - current_h) > 1e-18:
                A = (G + sp.diags(cap / h)).tocsc()
                factor = cholesky(A)
                current_h = h
                refactorizations += 1
            rhs = (cap / h) * x + netlist.source_vector(t_next)
            x = factor.solve(rhs)
            _record(probes, store, x)
            times.append(t_next)
            t = t_next
            steps += 1
    memory = factor.memory_bytes() + int(G.nnz) * 12
    return TransientResult(
        method="direct-varied",
        times=np.asarray(times),
        probes={p: np.asarray(v) for p, v in store.items()},
        steps=steps,
        avg_iterations=0.0,
        transient_seconds=run.elapsed,
        setup_seconds=setup.elapsed,
        memory_bytes=memory,
        extra={"refactorizations": refactorizations, "max_step": max_step},
    )


def build_sparsifier_preconditioner(
    netlist: PowerGridNetlist,
    method: str = "proposed",
    edge_fraction: float = 0.10,
    seed: int = 0,
    **sparsifier_kwargs,
):
    """Sparsify the PG conductance graph and factor the result.

    Returns ``(factor, sparsify_seconds, SparsifierResult)``.  The
    preconditioner is ``chol(L_P + diag(g_pad))`` — the sparsifier's
    Laplacian grounded by the same pad conductances as the full grid,
    which is exactly how the paper reuses the DC-analysis preconditioner
    for every transient step.

    *method* is any registered sparsifier
    (:func:`repro.api.list_methods`); unknown methods raise
    :class:`~repro.exceptions.UnknownMethodError` and options the
    method does not accept raise
    :class:`~repro.exceptions.UnknownOptionError`.
    """
    result = sparsify(
        netlist.graph,
        method=method,
        edge_fraction=edge_fraction,
        seed=seed,
        **sparsifier_kwargs,
    )
    sparsifier = result.sparsifier
    matrix = laplacian(sparsifier, shift=netlist.pad_conductance, fmt="csc")
    factor = cholesky(matrix)
    return factor, result.setup_seconds, result


def simulate_transient_pcg(
    netlist: PowerGridNetlist,
    preconditioner,
    t_end: float = 5e-9,
    max_step: float = 200e-12,
    rtol: float = 1e-6,
    probes=(),
):
    """Variable-step backward Euler with sparsifier-preconditioned PCG.

    Steps land exactly on waveform breakpoints (never crossing one) and
    are capped at *max_step*; the preconditioner (from
    :func:`build_sparsifier_preconditioner`) is fixed for the whole run.
    """
    probes = [int(p) for p in probes]
    setup = Timer()
    with setup:
        G = conductance_matrix(netlist, fmt="csr")
        cap = netlist.capacitance
        x, dc_info = dc_solve(
            netlist, method="pcg", preconditioner=preconditioner, rtol=rtol
        )
        points = breakpoints_union(netlist.load_patterns(), t_end)
    store = {p: [float(x[p])] for p in probes}
    times = [0.0]
    run = Timer()
    total_iterations = 0
    steps = 0
    with run:
        t = 0.0
        bp_index = 0
        while t < t_end - 1e-15:
            while bp_index < len(points) and points[bp_index] <= t + 1e-18:
                bp_index += 1
            next_bp = points[bp_index] if bp_index < len(points) else t_end
            t_next = min(next_bp, t + max_step, t_end)
            h = t_next - t
            scale = cap / h

            def matvec(v, scale=scale):
                return G @ v + scale * v

            rhs = scale * x + netlist.source_vector(t_next)
            result = pcg(
                matvec,
                rhs,
                M_solve=preconditioner.solve,
                rtol=rtol,
                x0=x,
            )
            x = result.x
            total_iterations += result.iterations
            _record(probes, store, x)
            times.append(t_next)
            t = t_next
            steps += 1
    memory = preconditioner.memory_bytes() + int(G.nnz) * 12
    return TransientResult(
        method="pcg",
        times=np.asarray(times),
        probes={p: np.asarray(v) for p, v in store.items()},
        steps=steps,
        avg_iterations=total_iterations / max(steps, 1),
        transient_seconds=run.elapsed,
        setup_seconds=setup.elapsed,
        memory_bytes=memory,
        extra={"dc": dc_info, "max_step": max_step},
    )


def max_probe_difference(result_a: TransientResult, result_b: TransientResult,
                         node: int) -> float:
    """Max |V_a(t) - V_b(t)| over a common time grid (Fig. 1 check)."""
    node = int(node)
    grid = np.union1d(result_a.times, result_b.times)
    va = np.interp(grid, result_a.times, result_a.probe(node))
    vb = np.interp(grid, result_b.times, result_b.probe(node))
    return float(np.max(np.abs(va - vb)))
