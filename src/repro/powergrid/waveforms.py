r"""Periodic pulse current waveforms.

The paper drives transient analysis with "periodic pulse currents ...
generated at each current source" and derives the iterative solver's
variable time steps from the waveform *breakpoints* (corners of the
piecewise-linear pulses).  :class:`PulsePattern` models a standard
trapezoidal pulse train:

::

      amp ___________
         /|          |\
        / |          | \
    ___/  |          |  \__________ ... (repeats with `period`)
      delay rise  width fall
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError

__all__ = ["PulsePattern", "breakpoints_union"]


@dataclass(frozen=True)
class PulsePattern:
    """Periodic trapezoidal pulse (times in seconds, amplitude in amps)."""

    amplitude: float
    delay: float
    rise: float
    width: float
    fall: float
    period: float

    def __post_init__(self):
        if min(self.rise, self.fall) <= 0:
            raise SimulationError("rise/fall must be positive")
        if self.width < 0 or self.delay < 0:
            raise SimulationError("width/delay must be nonnegative")
        pulse = self.rise + self.width + self.fall
        # Relative tolerance: summing the segments in a different order
        # (e.g. period = (rise + width + fall) * dt vs the sum of the
        # scaled segments) differs by an ulp, and a zero-off-time pulse
        # (period == pulse) is valid.
        if self.period < pulse * (1.0 - 1e-9):
            raise SimulationError("period shorter than one pulse")

    def value(self, t: float) -> float:
        """Waveform value at time *t* (vectorized over numpy arrays)."""
        t = np.asarray(t, dtype=np.float64)
        local = np.mod(t - self.delay, self.period)
        local = np.where(t < self.delay, -1.0, local)  # before first pulse
        up_end = self.rise
        top_end = self.rise + self.width
        down_end = self.rise + self.width + self.fall
        result = np.where(
            (local >= 0) & (local < up_end),
            self.amplitude * local / self.rise,
            0.0,
        )
        result = np.where(
            (local >= up_end) & (local < top_end), self.amplitude, result
        )
        result = np.where(
            (local >= top_end) & (local < down_end),
            self.amplitude * (down_end - local) / self.fall,
            result,
        )
        if result.ndim == 0:
            return float(result)
        return result

    def breakpoints(self, t_end: float) -> np.ndarray:
        """All pulse corner times in ``(0, t_end]``."""
        corners = np.array(
            [
                0.0,
                self.rise,
                self.rise + self.width,
                self.rise + self.width + self.fall,
            ]
        )
        points = []
        start = self.delay
        while start < t_end:
            for corner in corners:
                t = start + corner
                if 0.0 < t <= t_end:
                    points.append(t)
            start += self.period
        return np.asarray(sorted(set(points)))


def breakpoints_union(patterns, t_end: float) -> np.ndarray:
    """Sorted union of the breakpoints of many waveforms in ``(0, t_end]``."""
    merged: set = {float(t_end)}
    for pattern in patterns:
        merged.update(pattern.breakpoints(t_end).tolist())
    return np.asarray(sorted(merged))
