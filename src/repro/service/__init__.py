"""Sparsification service layer: job queue, dedup, and HTTP daemon.

The serving counterpart to the one-shot :func:`repro.sparsify` call:
a long-lived daemon that batches, deduplicates and schedules
sparsification requests so their expensive setup phases — spanning
trees, tree-phase criticalities, resistance sketches — amortize
across clients and across restarts (through the shared persistent
artifact cache of :mod:`repro.core.diskcache`).

The layers, each usable on its own:

* :class:`SparsifierService` (:mod:`repro.service.scheduler`) — the
  in-process core: a priority queue drained by bounded worker threads,
  per-graph-fingerprint request deduplication, per-graph warm
  :class:`~repro.api.SparsifierSession` reuse, graceful drain;
* the execution backends (:mod:`repro.service.executors`) — *where*
  a job's sparsification runs: inline on the scheduler's threads
  (``executor="thread"``, the default) or in fingerprint-pinned
  worker processes (``executor="process"``) that sidestep the GIL for
  concurrent distinct-graph traffic;
* :class:`ServiceDaemon` / :func:`serve` (:mod:`repro.service.http`) —
  a zero-dependency stdlib HTTP front end (``repro serve``);
* :class:`ServiceClient` (:mod:`repro.service.client`) — the typed
  client behind ``repro submit`` / ``repro jobs``;
* fault injection (:mod:`repro.service.faults`) — armable
  kill-worker / raise / delay faults and cache corruption, so the
  recovery claims above stay tested against real failures.

Quick start::

    from repro.service import ServiceDaemon, ServiceClient

    with ServiceDaemon(workers=2) as daemon:       # ephemeral port
        client = ServiceClient(daemon.url)
        job = client.submit(case="ecology2", scale=0.1, rounds=2)
        record = client.result(job["id"])          # RunRecord dict
"""

from repro.service.client import ServiceClient
from repro.service.executors import EXECUTOR_NAMES
from repro.service.faults import FaultInjector, InjectedFaultError
from repro.service.http import ROUTES, ServiceDaemon, serve
from repro.service.jobs import (
    JOB_STATUSES,
    Job,
    JobSpec,
    graph_source_key,
    load_graph_source,
)
from repro.service.scheduler import SparsifierService

__all__ = [
    "EXECUTOR_NAMES",
    "JOB_STATUSES",
    "Job",
    "JobSpec",
    "FaultInjector",
    "InjectedFaultError",
    "graph_source_key",
    "load_graph_source",
    "SparsifierService",
    "ServiceDaemon",
    "ServiceClient",
    "ROUTES",
    "serve",
]
