"""Typed Python client for the sparsification daemon.

:class:`ServiceClient` speaks the JSON protocol of
:mod:`repro.service.http` over the standard library's
:mod:`urllib.request` — no third-party HTTP stack — and is what
``repro submit`` / ``repro jobs`` / ``repro graphs`` / ``repro patch``
are built on::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8734")
    job = client.submit(case="ecology2", scale=0.1,
                        method="proposed", rounds=2)
    record = client.result(job["id"])        # polls until done

Non-2xx responses raise :class:`~repro.exceptions.ServiceError` with
the server's error message attached; transport-level failures — the
daemon is *gone*, not merely unhappy — raise the sharper
:class:`~repro.exceptions.ServiceConnectionError`, which is why
:meth:`ServiceClient.wait` can abort immediately when the daemon dies
under a polling client instead of burning the rest of its timeout
against a dead socket.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.exceptions import ServiceConnectionError, ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """HTTP client bound to one daemon base URL.

    Parameters
    ----------
    url : str
        Daemon base URL, e.g. ``"http://127.0.0.1:8734"``.
    timeout : float
        Per-request socket timeout in seconds.
    """

    def __init__(self, url: str, *, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload=None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServiceError(
                f"{method} {path} failed ({exc.code}): {detail}"
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceConnectionError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from None
        except (ConnectionError, TimeoutError) as exc:
            # A reset/aborted socket mid-response bypasses urllib's
            # URLError wrapping; it is the same "daemon went away".
            raise ServiceConnectionError(
                f"connection to service at {self.url} was interrupted: "
                f"{exc}"
            ) from None

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    @staticmethod
    def _graph_source(case, scale, mtx_path, mtx_file, graph) -> dict:
        """Build the wire graph-source dict from the keyword spelling.

        Exactly one source must be given: a registered ``case`` name
        (with optional ``scale``), a server-side ``mtx_path``, a local
        ``mtx_file`` whose content is uploaded inline, or a raw
        ``graph`` source dict.  Shared by :meth:`submit` and
        :meth:`create_graph`.
        """
        sources = [s for s in (case, mtx_path, mtx_file, graph)
                   if s is not None]
        if len(sources) != 1:
            raise ServiceError(
                "pass exactly one of case=, mtx_path=, mtx_file= or "
                "graph="
            )
        if scale is not None and case is None and graph is None:
            # Matrix Market sources are fixed-size; silently ignoring
            # the knob would break the no-silent-no-op CLI contract.
            raise ServiceError(
                "scale= only applies to generated case= graphs; "
                "MTX sources are loaded as-is"
            )
        if graph is not None:
            return graph
        if case is not None:
            source = {"case": case}
            if scale is not None:
                source["scale"] = scale
            return source
        if mtx_path is not None:
            return {"mtx_path": str(mtx_path)}
        try:
            return {"mtx": Path(mtx_file).read_text()}
        except OSError as exc:
            raise ServiceError(
                f"cannot read mtx_file {str(mtx_file)!r}: {exc}"
            ) from None

    def health(self) -> dict:
        """``GET /healthz`` — liveness/version/uptime."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """``GET /stats`` — queue/dedup/session/cache counters."""
        return self._request("GET", "/stats")

    def submit(self, *, case: str | None = None, scale: float | None = None,
               mtx_path: str | None = None, mtx_file=None,
               graph: dict | None = None, method: str = "proposed",
               label: str | None = None, priority: int = 0,
               evaluate: bool = False, options: dict | None = None,
               **more_options) -> dict:
        """``POST /jobs`` — submit a sparsification request.

        Exactly one graph source must be given: a registered ``case``
        name (with optional ``scale``), a **server-side** ``mtx_path``,
        a local ``mtx_file`` whose content is uploaded inline, or a
        raw ``graph`` source dict.  Method options go in ``options``
        or simply as extra keyword arguments
        (``client.submit(case="ecology2", rounds=3)``).

        Returns the job dict; ``job["dedup_of"]`` is set when the
        daemon coalesced this request onto an identical in-flight one.
        """
        payload = {
            "graph": self._graph_source(case, scale, mtx_path,
                                        mtx_file, graph),
            "method": method,
            "options": {**(options or {}), **more_options},
            "label": label,
            "priority": priority,
            "evaluate": evaluate,
        }
        return self._request("POST", "/jobs", payload)

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` — one job's current state."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self, *, status: str | None = None,
             limit: int | None = None) -> list:
        """``GET /jobs`` — every job the daemon has seen.

        ``status=`` narrows to one lifecycle state, ``limit=`` to the
        most recent *n* jobs; bad values are rejected by the daemon
        with a 400.
        """
        from urllib.parse import urlencode

        params = {}
        if status is not None:
            params["status"] = status
        if limit is not None:
            params["limit"] = limit
        path = "/jobs"
        if params:
            path += "?" + urlencode(params)
        return self._request("GET", path)["jobs"]

    def wait(self, job_id: str, *, timeout: float = 600.0,
             poll_seconds: float = 0.05) -> dict:
        """Poll until a job reaches a terminal status; return the job.

        Polls with exponential backoff — starting at ``poll_seconds``
        and doubling up to a 2 s cap — so short jobs return promptly
        while a minutes-long job costs the daemon a handful of status
        requests, not twenty per second.

        A job that is merely still queued keeps the poll alive; a
        daemon that *went away* (connection refused / reset mid-poll)
        raises :class:`~repro.exceptions.ServiceConnectionError`
        immediately — waiting out the timeout against a dead socket
        would just delay the bad news.
        """
        deadline = time.time() + timeout
        delay = poll_seconds
        while True:
            try:
                job = self.job(job_id)
            except ServiceConnectionError as exc:
                raise ServiceConnectionError(
                    f"daemon went away while waiting for {job_id}: "
                    f"{exc}"
                ) from None
            if job["status"] in ("done", "failed", "cancelled"):
                return job
            remaining = deadline - time.time()
            if remaining <= 0:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for "
                    f"{job_id} (status {job['status']!r})"
                )
            time.sleep(min(delay, remaining))
            delay = min(delay * 2, 2.0)

    def result(self, job_id: str, *, wait: bool = True,
               timeout: float = 600.0) -> dict:
        """``GET /jobs/<id>/result`` — the finished RunRecord dict.

        With ``wait=True`` (default) the call polls until the job
        finishes first; a failed or cancelled job raises
        :class:`~repro.exceptions.ServiceError`.
        """
        if wait:
            job = self.wait(job_id, timeout=timeout)
            if job["status"] != "done":
                raise ServiceError(
                    f"job {job_id} did not finish: status "
                    f"{job['status']!r}"
                    + (f" ({job['error']})" if job.get("error") else "")
                )
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        """``DELETE /jobs/<id>`` — cancel a queued job.

        Raises :class:`~repro.exceptions.ServiceError` when the job is
        already running or finished (HTTP 409).
        """
        return self._request("DELETE", f"/jobs/{job_id}")

    # ------------------------------------------------------------------
    # evolving-graph sessions
    # ------------------------------------------------------------------
    def create_graph(self, *, case: str | None = None,
                     scale: float | None = None,
                     mtx_path: str | None = None, mtx_file=None,
                     graph: dict | None = None,
                     method: str = "proposed",
                     label: str | None = None,
                     drift_budget: float = 32.0,
                     locality_beta: int = 2,
                     options: dict | None = None,
                     **more_options) -> dict:
        """``POST /graphs`` — open an evolving-graph session.

        Takes the same graph-source keywords as :meth:`submit`; the
        method must carry the ``supports_incremental`` capability.
        Returns the session description, whose ``id``
        (``graph-NNNNNN``) keys every later :meth:`patch_graph` /
        :meth:`graph_sparsifier` call.
        """
        payload = {
            "graph": self._graph_source(case, scale, mtx_path,
                                        mtx_file, graph),
            "method": method,
            "options": {**(options or {}), **more_options},
            "label": label,
            "drift_budget": drift_budget,
            "locality_beta": locality_beta,
        }
        return self._request("POST", "/graphs", payload)

    def patch_graph(self, graph_id: str, *, inserts=(),
                    deletes=()) -> dict:
        """``PATCH /graphs/<id>/edges`` — apply one mutation batch.

        ``inserts`` holds ``(u, v, w)`` triples, ``deletes`` holds
        ``(u, v)`` pairs.  Returns ``{"id", "entry", "summary"}``;
        ``entry`` is the per-batch delta log line (touched nodes,
        re-ranked edges, drift estimate, ``rebuild`` flag).
        """
        payload = {
            "insert": [list(edge) for edge in inserts],
            "delete": [list(edge) for edge in deletes],
        }
        return self._request(
            "PATCH", f"/graphs/{graph_id}/edges", payload
        )

    def graph(self, graph_id: str) -> dict:
        """``GET /graphs/<id>`` — one session's current description."""
        return self._request("GET", f"/graphs/{graph_id}")

    def graphs(self) -> list:
        """``GET /graphs`` — every live evolving-graph session."""
        return self._request("GET", "/graphs")["graphs"]

    def graph_sparsifier(self, graph_id: str) -> dict:
        """``GET /graphs/<id>/sparsifier`` — the current sparsifier.

        Returns ``{"id", "summary", "record", "delta"}``: the last
        full build's RunRecord dict plus the whole per-batch
        DeltaRecord trail.
        """
        return self._request("GET", f"/graphs/{graph_id}/sparsifier")

    def delete_graph(self, graph_id: str) -> dict:
        """``DELETE /graphs/<id>`` — close an evolving-graph session."""
        return self._request("DELETE", f"/graphs/{graph_id}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceClient(url={self.url!r})"
