"""Pluggable execution backends for the sparsification scheduler.

The scheduler (:class:`~repro.service.scheduler.SparsifierService`)
owns the queue, dedup and lifecycle; *where a job's sparsification
actually runs* is this module's concern, behind one tiny interface
(``start`` / ``run`` / ``close``):

* :class:`ThreadJobExecutor` — the job runs on the scheduler's own
  worker thread, on the shared in-process per-graph session (the
  original PR 5 behavior; zero serialization cost, but every
  pure-python stage of concurrent jobs contends for one GIL);
* :class:`ProcessJobExecutor` — the job runs in a dedicated worker
  *process*.  Jobs are pinned to workers by graph fingerprint (each
  worker keeps warm :class:`~repro.api.SparsifierSession` objects for
  the graphs routed to it), the content-addressed disk cache is the
  shared artifact plane across all workers, and the process boundary
  carries exactly what already crosses the HTTP wire: a
  :class:`~repro.service.jobs.JobSpec` dict in, a RunRecord dict out.
  Concurrent distinct-graph traffic therefore scales with cores
  instead of serializing on the GIL.

Both backends produce byte-identical RunRecord fingerprints — the
executor-parity suite (``tests/service/test_executor_parity.py``)
pins thread == process == direct :func:`repro.sparsify`.

Worker processes come from :func:`repro.core.parallel.worker_context`
(forkserver preferred: safe under the scheduler's threads, cheap to
respawn after a crash).  A worker killed mid-job — ``SIGKILL``, the
OOM killer, a segfault — surfaces as
:class:`~repro.exceptions.WorkerCrashError`; the executor rebuilds the
broken pool immediately so the *next* attempt (the scheduler retries)
lands on a fresh worker, and the daemon keeps serving.

Besides one-shot jobs, both backends carry *graph-session ops* — the
mutable :class:`~repro.incremental.EvolvingSparsifier` state behind
``PATCH /graphs/<id>/edges``.  The holder of that state is an
:class:`_EvolvingStore` (in-process for threads, inside the pinned
worker for processes); every op payload ships the session's full
replay ledger, so a holder that lost its state — evicted, restarted,
or crashed mid-patch — rebuilds it deterministically from the graph
source plus the already-applied batches instead of failing the client.
"""

from __future__ import annotations

import os
import sys
import threading
from collections import OrderedDict

from repro.exceptions import ServiceError, WorkerCrashError
from repro.service import faults
from repro.service.jobs import JobSpec, graph_source_key, load_graph_source

__all__ = [
    "EXECUTOR_NAMES",
    "ProcessJobExecutor",
    "ThreadJobExecutor",
    "make_executor",
    "run_spec_on_session",
]

#: Registered execution backends (the ``--executor`` CLI choices).
EXECUTOR_NAMES = ("thread", "process")

#: Disk-cache counters a process worker reports back per job, so the
#: parent's ``/stats`` aggregation stays meaningful when the sessions
#: live in child processes.
_CACHE_COUNTERS = ("hits", "misses", "stores", "evictions", "errors")


def _sanitize_main_module() -> None:
    """Drop a pseudo-path ``__main__.__file__`` before spawning workers.

    Scripts fed on stdin (``python -``, heredocs, executable doc
    snippets) advertise ``__file__ = '<stdin>'``; forkserver/spawn
    children would then try to re-import that non-file and die at
    bootstrap.  Workers only ever touch importable ``repro`` modules,
    so when the main module's file does not exist on disk the attribute
    is deleted, which makes multiprocessing skip re-importing main.
    """
    main = sys.modules.get("__main__")
    path = getattr(main, "__file__", None)
    if path is not None and not os.path.exists(path):
        del main.__file__


def run_spec_on_session(session, spec: JobSpec, label: str) -> dict:
    """Execute one job spec on a (warm) session; return the record dict.

    The single execution path both backends share — and the reason
    their RunRecords cannot drift apart: sparsify via the session
    (artifact reuse included), optionally evaluate quality, stamp a
    :class:`~repro.api.records.RunRecord`.
    """
    from repro.api import RunRecord
    from repro.core.metrics import evaluate_sparsifier
    from repro.utils.timers import Timer

    result = session.sparsify(spec.method, **spec.options)
    quality = None
    evaluate_seconds = None
    if spec.evaluate:
        timer = Timer()
        with timer:
            quality = evaluate_sparsifier(
                session.graph, result.sparsifier, seed=result.config.seed,
            )
        evaluate_seconds = timer.elapsed
    record = RunRecord.from_result(
        result, method=spec.method, label=label,
        quality=quality, evaluate_seconds=evaluate_seconds,
    )
    return record.to_dict()


class _EvolvingStore:
    """LRU-bounded holder of live evolving-sparsifier state.

    One instance per state holder: the thread backend keeps one in the
    daemon process, every process-backend worker keeps its own.  The
    scheduler owns the durable part of a graph session (its source and
    the ledger of applied batches); this store only caches the
    materialized :class:`~repro.incremental.EvolvingSparsifier`.  An op
    payload always carries the full ledger, so a cache miss — first
    touch, LRU eviction, a fresh worker after a crash — replays the
    session deterministically instead of erroring.
    """

    def __init__(self, *, persistent, cache_dir, max_sessions) -> None:
        self._persistent = bool(persistent)
        self._cache_dir = cache_dir
        self._max_sessions = int(max_sessions)
        # graph_id -> [evolving, batches_applied]
        self._live: "OrderedDict" = OrderedDict()

    def op(self, payload: dict) -> dict:
        """Apply one graph-session op; return its JSON-ready outcome."""
        kind = payload["op"]
        graph_id = payload["graph_id"]
        if kind == "delete":
            self._live.pop(graph_id, None)
            return {"id": graph_id, "deleted": True}
        evolving = self._evolving(payload)
        if kind == "patch":
            entry = evolving.apply_batch(batch=payload["batch"])
            self._live[graph_id][1] += 1
            return {"entry": entry, "summary": evolving.summary()}
        if kind == "export":
            return {
                "summary": evolving.summary(),
                "record": evolving.base_record.to_dict(),
                "delta": evolving.record.to_dict(),
            }
        if kind == "create":
            return {"summary": evolving.summary()}
        raise ServiceError(f"unknown graph op {kind!r}")

    def _evolving(self, payload: dict):
        """The live sparsifier for a payload, replayed on a miss."""
        from repro.incremental import EvolvingSparsifier

        graph_id = payload["graph_id"]
        ledger = payload.get("ledger") or []
        slot = self._live.get(graph_id)
        if slot is not None and slot[1] == len(ledger):
            self._live.move_to_end(graph_id)
            return slot[0]
        # State is missing or stale (this holder crashed or was evicted
        # mid-stream): rebuild from the source, then replay the batches
        # the scheduler recorded as applied.  Every step is
        # deterministic, so the replayed state equals the lost one.
        graph, _ = load_graph_source(
            payload["source"], seed=int(payload["seed"])
        )
        evolving = EvolvingSparsifier(
            graph, payload["method"],
            drift_budget=payload["drift_budget"],
            locality_beta=payload["locality_beta"],
            label=payload["label"],
            persistent=self._persistent, cache_dir=self._cache_dir,
            **(payload.get("options") or {}),
        )
        for batch in ledger:
            evolving.apply_batch(batch=batch)
        self._live[graph_id] = [evolving, len(ledger)]
        while len(self._live) > self._max_sessions:
            self._live.popitem(last=False)
        return evolving


class ThreadJobExecutor:
    """Run jobs inline on the scheduler's worker threads.

    The default-compatible backend: delegates to the scheduler's
    shared per-graph session memo (one
    :class:`~repro.api.SparsifierSession` per graph fingerprint,
    LRU-bounded, jobs on one graph serialized on its lock).  Fault
    hooks fire in-process; the kill-worker fault is *not* installed
    here — killing the thread's process would kill the daemon.
    """

    name = "thread"

    def __init__(self, service) -> None:
        self._service = service
        self._evolving = _EvolvingStore(
            persistent=service.persistent,
            cache_dir=service.cache_dir,
            max_sessions=service.max_sessions,
        )

    def start(self) -> None:
        """No worker processes to boot; idempotent no-op."""

    def run(self, job):
        """Execute one job; return ``(record_dict, cache_delta)``.

        The cache delta is ``None``: thread-mode sessions are owned by
        the scheduler, whose ``stats()`` reads their disk counters
        directly.
        """
        faults.maybe_raise("worker", self._service.faults_dir)
        faults.maybe_delay("worker", self._service.faults_dir)
        return self._service._execute(job), None

    def graph_op(self, payload: dict) -> dict:
        """Apply one graph-session op on the in-process store."""
        faults.maybe_raise("worker", self._service.faults_dir)
        faults.maybe_delay("worker", self._service.faults_dir)
        return self._evolving.op(payload)

    def close(self, timeout: float | None = None) -> None:
        """Nothing to tear down; idempotent no-op."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ThreadJobExecutor()"


class ProcessJobExecutor:
    """Run jobs on fingerprint-pinned single-worker process pools.

    ``workers`` pools of one process each, with a job routed to pool
    ``int(fingerprint, 16) % workers`` — so all jobs on one graph land
    on one worker process, whose in-memory session memo stays warm
    across them (and same-graph jobs serialize naturally on their
    worker, mirroring the thread backend's per-session lock).  Every
    worker shares the same persistent disk-cache root, so a graph
    whose pinned worker died — or that hashes to a different worker
    after a restart — restores artifacts instead of re-deriving them,
    fingerprint-identically.

    Parameters
    ----------
    workers : int
        Number of worker processes (= pools).
    persistent : bool
        Attach the shared disk cache to every worker-side session.
    cache_dir : str or pathlib.Path or None
        Disk-cache root; resolved by the *parent* (environment
        variables are frozen in forkserver children, so the resolved
        path travels explicitly).
    max_sessions : int
        Per-worker session/graph memo bound (LRU).
    faults_dir : str or None
        Fault-token directory workers poll at their hook points.
    mp_context : multiprocessing context, optional
        Override the start method (tests); default
        :func:`repro.core.parallel.worker_context`.
    """

    name = "process"

    def __init__(self, *, workers: int, persistent: bool, cache_dir,
                 max_sessions: int, faults_dir=None,
                 mp_context=None) -> None:
        if workers < 1:
            raise ServiceError(
                f"process executor needs workers >= 1, got {workers}"
            )
        if mp_context is None:
            from repro.core.parallel import worker_context

            mp_context = worker_context()
        _sanitize_main_module()
        self._context = mp_context
        self._initargs = (
            bool(persistent),
            str(cache_dir) if cache_dir is not None else None,
            int(max_sessions),
            str(faults_dir) if faults_dir is not None else None,
        )
        self._pools: list = [None] * int(workers)
        self._locks = [threading.Lock() for _ in range(int(workers))]
        self._closed = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot every worker pool (idempotent)."""
        for index in range(len(self._pools)):
            self._pool(index)

    def _new_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=1, mp_context=self._context,
            initializer=_init_worker, initargs=self._initargs,
        )

    def _pool(self, index: int):
        with self._locks[index]:
            if self._closed:
                raise ServiceError("process executor already closed")
            if self._pools[index] is None:
                self._pools[index] = self._new_pool()
            return self._pools[index]

    def _rebuild(self, index: int, broken) -> None:
        """Replace a broken pool so the next attempt gets a fresh
        worker; concurrent crash observers rebuild exactly once."""
        with self._locks[index]:
            if self._pools[index] is broken:
                broken.shutdown(wait=False, cancel_futures=True)
                self._pools[index] = None if self._closed \
                    else self._new_pool()

    def route(self, fingerprint: str) -> int:
        """The pool index a graph fingerprint is pinned to."""
        return int(fingerprint[:16], 16) % len(self._pools)

    def run(self, job):
        """Execute one job in its pinned worker process.

        Returns ``(record_dict, cache_delta)`` where the delta holds
        the worker-side session's disk-cache counter increments for
        this job (the parent folds them into ``/stats``).

        Raises
        ------
        repro.exceptions.WorkerCrashError
            When the worker process died mid-job; the pool has already
            been rebuilt when this propagates, so a retry runs on a
            fresh worker.
        """
        from concurrent.futures.process import BrokenProcessPool

        index = self.route(job._fingerprint)
        payload = {
            "spec": job.spec.to_dict(),
            "label": job._resolved_label,
            "seed": job._seed,
            "fingerprint": job._fingerprint,
        }
        pool = self._pool(index)
        try:
            future = pool.submit(_run_payload, payload)
            outcome = future.result()
        except BrokenProcessPool as exc:
            self._rebuild(index, pool)
            raise WorkerCrashError(
                f"worker process for {job.id} died mid-job "
                f"(pool {index}): {exc}"
            ) from exc
        return outcome["record"], outcome["cache"]

    def graph_op(self, payload: dict) -> dict:
        """Apply one graph-session op in its pinned worker process.

        Routed by the *base* graph's fingerprint — exactly like jobs —
        so every op on one evolving session lands on the worker holding
        its live state.  A crash mid-op raises
        :class:`~repro.exceptions.WorkerCrashError` after rebuilding
        the pool; the scheduler's retry re-sends the payload, whose
        ledger lets the fresh worker replay the session first.
        """
        from concurrent.futures.process import BrokenProcessPool

        index = self.route(payload["fingerprint"])
        pool = self._pool(index)
        try:
            future = pool.submit(_graph_payload, payload)
            return future.result()
        except BrokenProcessPool as exc:
            self._rebuild(index, pool)
            raise WorkerCrashError(
                f"worker process for graph op on {payload['graph_id']} "
                f"died mid-op (pool {index}): {exc}"
            ) from exc

    def close(self, timeout: float | None = None) -> None:
        """Shut every pool down, reaping the worker processes.

        Called after the scheduler's threads have drained, so the
        pools are idle; still terminates (rather than waits on) the
        workers so a wedged child cannot stall daemon shutdown.
        """
        from repro.core.parallel import terminate_pool

        self._closed = True
        for index, lock in enumerate(self._locks):
            with lock:
                pool = self._pools[index]
                self._pools[index] = None
            if pool is not None:
                terminate_pool(pool)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessJobExecutor(workers={len(self._pools)})"


def make_executor(name: str, service):
    """Build the execution backend *name* for a scheduler instance."""
    if name == "thread":
        return ThreadJobExecutor(service)
    if name == "process":
        return ProcessJobExecutor(
            workers=service.workers,
            persistent=service.persistent,
            cache_dir=service.resolved_cache_dir,
            max_sessions=service.max_sessions,
            faults_dir=service.faults_dir,
        )
    raise ServiceError(
        f"unknown executor {name!r}; choose from "
        f"{', '.join(EXECUTOR_NAMES)}"
    )


# ----------------------------------------------------------------------
# Worker-process side.  Everything below runs inside a pool worker:
# module-level state is per-process, initialized once by _init_worker
# and reused across every job pinned to this worker.
# ----------------------------------------------------------------------

_WORKER_CONFIG: dict = {}
_WORKER_GRAPHS: "OrderedDict" = OrderedDict()    # (source, seed) -> graph
_WORKER_SESSIONS: "OrderedDict" = OrderedDict()  # fingerprint -> session
_WORKER_EVOLVING: "_EvolvingStore | None" = None  # graph-session holder


def _init_worker(persistent, cache_dir, max_sessions, faults_dir) -> None:
    """Pool-worker initializer: record the executor's resolved config."""
    global _WORKER_EVOLVING
    _WORKER_CONFIG.update(
        persistent=persistent, cache_dir=cache_dir,
        max_sessions=max_sessions, faults_dir=faults_dir,
    )
    _WORKER_GRAPHS.clear()
    _WORKER_SESSIONS.clear()
    _WORKER_EVOLVING = _EvolvingStore(
        persistent=persistent, cache_dir=cache_dir,
        max_sessions=max_sessions,
    )


def _worker_graph(spec: JobSpec, seed: int):
    """Load (or reuse) the graph a job targets, LRU-memoized."""
    key = (graph_source_key(spec.graph), seed)
    cached = _WORKER_GRAPHS.get(key)
    if cached is not None:
        _WORKER_GRAPHS.move_to_end(key)
        return cached
    graph, _ = load_graph_source(spec.graph, seed=seed)
    _WORKER_GRAPHS[key] = graph
    while len(_WORKER_GRAPHS) > _WORKER_CONFIG["max_sessions"]:
        _WORKER_GRAPHS.popitem(last=False)
    return graph


def _worker_session(graph, fingerprint: str, label: str):
    """The per-process warm session for a fingerprint, LRU-memoized."""
    from repro.api import SparsifierSession

    session = _WORKER_SESSIONS.get(fingerprint)
    if session is not None:
        _WORKER_SESSIONS.move_to_end(fingerprint)
        return session
    session = SparsifierSession(
        graph, label=label,
        persistent=_WORKER_CONFIG["persistent"],
        cache_dir=_WORKER_CONFIG["cache_dir"],
    )
    _WORKER_SESSIONS[fingerprint] = session
    while len(_WORKER_SESSIONS) > _WORKER_CONFIG["max_sessions"]:
        _WORKER_SESSIONS.popitem(last=False)
    return session


def _disk_totals(session) -> dict:
    """Per-counter sums of a session's disk-cache stats (zeros when
    the session is memory-only)."""
    disk = session.stats().get("disk")
    if not disk:
        return {name: 0 for name in _CACHE_COUNTERS}
    return {
        name: sum(disk[name].values()) for name in _CACHE_COUNTERS
    }


def _run_payload(payload: dict) -> dict:
    """Worker entry point: run one serialized job spec end to end."""
    faults_dir = _WORKER_CONFIG.get("faults_dir")
    faults.maybe_kill_worker(faults_dir)
    faults.maybe_raise("worker", faults_dir)
    faults.maybe_delay("worker", faults_dir)
    spec = JobSpec.from_dict(payload["spec"])
    graph = _worker_graph(spec, int(payload["seed"]))
    session = _worker_session(
        graph, payload["fingerprint"], payload["label"]
    )
    before = _disk_totals(session)
    record = run_spec_on_session(session, spec, payload["label"])
    after = _disk_totals(session)
    return {
        "record": record,
        "cache": {
            name: after[name] - before[name] for name in _CACHE_COUNTERS
        },
    }


def _graph_payload(payload: dict) -> dict:
    """Worker entry point for one serialized graph-session op."""
    faults_dir = _WORKER_CONFIG.get("faults_dir")
    faults.maybe_kill_worker(faults_dir)
    faults.maybe_raise("worker", faults_dir)
    faults.maybe_delay("worker", faults_dir)
    return _WORKER_EVOLVING.op(payload)
