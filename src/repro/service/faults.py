"""Fault injection for the sparsification service.

Production claims ("a killed worker never wedges the queue") are only
believable when the failure is actually exercised, so this module
gives the scheduler, the execution backends and the load-test harness
one shared way to *arm* faults and have them fire at well-defined hook
points:

* **kill-worker** — the executing worker process ``SIGKILL``\\ s itself
  at the start of a job (process executor only; the scheduler sees a
  :class:`~repro.exceptions.WorkerCrashError` and retries or fails the
  job cleanly);
* **raise-<stage>** — the hook raises :class:`InjectedFaultError`
  (works under both executors, modelling a job whose run blows up);
* **delay-<stage>** — the hook sleeps for the armed number of seconds
  (scheduler-delay injection for latency/timeout testing).

Faults are **token files** in a directory (one file per armed shot),
so they cross the process boundary for free: the parent arms a token,
any worker process — including one respawned after a crash — consumes
it with an atomic rename, and a consumed token never fires twice.
That single property is what makes "kill the worker once, then let
the retry succeed" expressible at all.

The directory is named explicitly (``SparsifierService(faults_dir=…)``)
or through the ``REPRO_SERVICE_FAULTS_DIR`` environment variable; when
neither is set every hook is a no-op costing one ``None`` check, so
production traffic never pays for the machinery.

Cache corruption — the third fault class the service must survive —
needs no token: :func:`corrupt_cache_entries` clobbers on-disk
artifact entries directly, and the disk cache's evict-and-rebuild
contract (:class:`~repro.core.diskcache.DiskCache`) is what the tests
then assert.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.exceptions import ReproError

__all__ = [
    "FAULTS_DIR_ENV",
    "FaultInjector",
    "InjectedFaultError",
    "corrupt_cache_entries",
    "maybe_delay",
    "maybe_kill_worker",
    "maybe_raise",
    "resolve_faults_dir",
]

#: Environment variable naming the shared fault-token directory.
FAULTS_DIR_ENV = "REPRO_SERVICE_FAULTS_DIR"


class InjectedFaultError(ReproError):
    """Raised by a ``raise-<stage>`` fault token at its hook point.

    A distinct type so tests (and operators reading a job's ``error``
    field) can tell an injected failure from a genuine one.
    """


class FaultInjector:
    """Arm and consume fault tokens in a shared directory.

    Each armed fault is one small JSON file named
    ``<kind>-<nanotime>-<pid>.fault``; consuming claims the file with
    an atomic ``os.rename`` before reading it, so exactly one consumer
    fires per token even when several worker processes race on the
    same directory.

    Parameters
    ----------
    root : str or pathlib.Path
        Token directory; created on first :meth:`arm`.

    Examples
    --------
    >>> import tempfile
    >>> injector = FaultInjector(tempfile.mkdtemp())
    >>> injector.arm("kill-worker")
    >>> injector.armed("kill-worker")
    1
    >>> injector.consume("kill-worker")
    (True, None)
    >>> injector.consume("kill-worker")
    (False, None)
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    def arm(self, kind: str, *, count: int = 1, value=None) -> None:
        """Write *count* tokens of *kind*, each carrying *value*.

        ``value`` must be JSON-serializable (delay tokens carry their
        sleep seconds; kill/raise tokens carry ``None``).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        for _ in range(count):
            name = f"{kind}-{time.time_ns()}-{os.getpid()}.fault"
            tmp = self.root / (name + ".tmp")
            tmp.write_text(json.dumps(value))
            os.replace(tmp, self.root / name)

    def consume(self, kind: str):
        """Claim one token of *kind*; return ``(fired, value)``.

        The oldest token wins; a losing racer simply moves on to the
        next token (or reports ``(False, None)`` when none are left).
        """
        if not self.root.is_dir():
            return False, None
        for token in sorted(self.root.glob(f"{kind}-*.fault")):
            claimed = token.with_suffix(f".claimed-{os.getpid()}")
            try:
                os.rename(token, claimed)
            except OSError:          # another consumer won this token
                continue
            try:
                value = json.loads(claimed.read_text())
            finally:
                claimed.unlink(missing_ok=True)
            return True, value
        return False, None

    def armed(self, kind: str) -> int:
        """How many unconsumed tokens of *kind* are waiting."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob(f"{kind}-*.fault"))

    def clear(self) -> int:
        """Drop every unconsumed token; return how many were dropped."""
        removed = 0
        if self.root.is_dir():
            for token in self.root.glob("*.fault"):
                try:
                    token.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing consumer
                    pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjector(root={str(self.root)!r})"


def resolve_faults_dir(faults_dir=None):
    """The effective fault directory: explicit arg, else env, else None.

    Resolved in the *parent* process and passed explicitly to worker
    processes, so spawned/forkserver children (whose environment was
    frozen at an earlier time) still honor per-test directories.
    """
    if faults_dir is not None:
        return str(faults_dir)
    return os.environ.get(FAULTS_DIR_ENV) or None


def _consume(kind: str, faults_dir):
    if faults_dir is None:
        return False, None
    return FaultInjector(faults_dir).consume(kind)


def maybe_kill_worker(faults_dir=None) -> None:
    """Hook: ``SIGKILL`` the calling process if a token is armed.

    The token is consumed *before* the kill, so the respawned worker
    that retries the job finds the directory empty and proceeds —
    "crash once, recover on retry" in one arm() call.  Only the
    process executor installs this hook; in-thread execution would
    take the whole daemon down with it.
    """
    import signal

    fired, _ = _consume("kill-worker", faults_dir)
    if fired:
        os.kill(os.getpid(), signal.SIGKILL)


def maybe_raise(stage: str, faults_dir=None) -> None:
    """Hook: raise :class:`InjectedFaultError` if a token is armed.

    The token kind is ``raise-<stage>`` (e.g. ``raise-worker``), so a
    test can target one hook point without tripping the others.
    """
    fired, _ = _consume(f"raise-{stage}", faults_dir)
    if fired:
        raise InjectedFaultError(
            f"injected fault: forced failure at stage {stage!r}"
        )


def maybe_delay(stage: str, faults_dir=None) -> float:
    """Hook: sleep for an armed ``delay-<stage>`` token's seconds.

    Returns the injected delay (0.0 when nothing was armed), so call
    sites can account for it in their own timings.
    """
    fired, value = _consume(f"delay-{stage}", faults_dir)
    if not fired:
        return 0.0
    seconds = float(value or 0.0)
    if seconds > 0:
        time.sleep(seconds)
    return seconds


def corrupt_cache_entries(cache_root, count: int = 1) -> list:
    """Overwrite up to *count* disk-cache entries with garbage bytes.

    Returns the paths corrupted (oldest-path-first, deterministically).
    The disk cache treats an unpicklable entry as a miss, evicts it and
    rebuilds — :func:`~repro.core.diskcache.DiskCache.load` — so a
    service job hitting a corrupted artifact must still complete; the
    fault suite arms this and asserts exactly that.
    """
    from repro.core.diskcache import iter_cache_entries

    corrupted = []
    for path in iter_cache_entries(Path(cache_root)):
        if len(corrupted) >= count:
            break
        try:
            path.write_bytes(b"\x00corrupted-by-fault-injection")
        except OSError:  # pragma: no cover - racing eviction
            continue
        corrupted.append(str(path))
    return corrupted
