"""Zero-dependency HTTP front end for the sparsification service.

Built entirely on the standard library
(:class:`http.server.ThreadingHTTPServer`), so ``repro serve`` runs on
a bare checkout.  :class:`ServiceDaemon` binds a
:class:`~repro.service.scheduler.SparsifierService` to a listening
socket; every request handler thread talks to the shared scheduler
under its own locking, and JSON is the only wire format.

Endpoints (also rendered into ``docs/api-reference.md``):

``POST /jobs``
    Submit a job.  Body: ``{"graph": {...}, "method": "proposed",
    "options": {...}, "label": ..., "priority": 0, "evaluate": false}``
    where ``graph`` is a case name, a server-side MTX path, or inline
    MTX text (see :mod:`repro.service.jobs`).  Returns the job dict
    (``201``); identical in-flight submissions are deduplicated and
    carry ``dedup_of``.
``GET /jobs`` / ``GET /jobs/<id>`` / ``GET /jobs/<id>/result``
    List jobs (``?status=<state>&limit=<n>`` filter to one lifecycle
    state / the most recent *n*; anything else is a ``400``), poll one
    job, fetch a finished job's RunRecord JSON.
``DELETE /jobs/<id>``
    Cancel a queued job (``409`` when it is already running/finished).
``GET /healthz`` and ``GET /stats``
    Liveness probe and queue/dedup/cache counters.
``POST /graphs``
    Open an evolving-graph session.  Body: ``{"graph": {...},
    "method": "proposed", "options": {...}, "label": ...,
    "drift_budget": 32.0, "locality_beta": 2}`` — the method must
    carry the ``supports_incremental`` capability.  Returns the
    session description (``201``) with its ``graph-NNNNNN`` id.
``PATCH /graphs/<id>/edges``
    Apply one edge-mutation batch.  Body: ``{"insert":
    [[u, v, w], ...], "delete": [[u, v], ...]}``.  Returns the
    per-batch :class:`~repro.incremental.DeltaRecord` entry (touched
    nodes, re-ranked edges, drift estimate, whether a full rebuild
    fired) plus the updated session summary.
``GET /graphs`` / ``GET /graphs/<id>`` / ``GET /graphs/<id>/sparsifier``
    List live sessions, poll one session, fetch its current
    sparsifier — the last full build's RunRecord plus the whole
    per-batch DeltaRecord trail.
``DELETE /graphs/<id>``
    Close an evolving-graph session.

Every error is a JSON body ``{"error": ...}`` with a deliberate status:
``400`` malformed request (including invalid edge batches), ``404``
unknown endpoint, job or graph id, ``405`` unsupported verb (with an
``Allow`` header), ``409`` invalid lifecycle transition, ``413``
request body over the daemon's ``max_body_bytes`` bound, ``503``
shutting down or worker lost beyond its retry budget.  The error-path
matrix in ``tests/service/test_service_http.py`` pins each row.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from urllib.parse import parse_qs, urlsplit

from repro.exceptions import (
    PayloadTooLargeError,
    ReproError,
    ServiceError,
    ServiceUnavailableError,
    UnknownMethodError,
    UnknownOptionError,
    WorkerCrashError,
)
from repro.service.jobs import JOB_STATUSES, JobSpec
from repro.service.scheduler import SparsifierService

__all__ = ["ROUTES", "ServiceDaemon", "serve"]

#: The HTTP surface, as ``(verb, path, description)`` rows — the single
#: source the generated API reference renders its endpoint table from.
ROUTES = (
    ("POST", "/jobs",
     "submit a job (graph source + method/options); deduplicates "
     "against identical in-flight requests"),
    ("GET", "/jobs",
     "list every job (records elided); ?status=<state>&limit=<n> "
     "narrows to one lifecycle state / the most recent n"),
    ("GET", "/jobs/<id>", "poll one job's status"),
    ("GET", "/jobs/<id>/result",
     "the finished job's RunRecord JSON (409 until it is done)"),
    ("DELETE", "/jobs/<id>", "cancel a queued job (409 otherwise)"),
    ("GET", "/healthz",
     "liveness probe (status/version/uptime/workers/executor)"),
    ("GET", "/stats",
     "queue depth, per-status job counts, dedup hits, worker "
     "restarts, session and disk-cache counters"),
    ("POST", "/graphs",
     "open an evolving-graph session (graph source + incremental "
     "method, drift_budget, locality_beta)"),
    ("GET", "/graphs", "list live evolving-graph sessions"),
    ("GET", "/graphs/<id>", "poll one evolving-graph session"),
    ("PATCH", "/graphs/<id>/edges",
     "apply one edge-mutation batch ({\"insert\": [[u, v, w], ...], "
     "\"delete\": [[u, v], ...]}); returns the per-batch delta entry"),
    ("GET", "/graphs/<id>/sparsifier",
     "the session's current sparsifier: last full build's RunRecord "
     "plus the per-batch DeltaRecord trail"),
    ("DELETE", "/graphs/<id>", "close an evolving-graph session"),
)


class _Handler(BaseHTTPRequestHandler):
    """Route one HTTP request to the shared scheduler."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    @property
    def service(self) -> SparsifierService:
        return self.server.daemon.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        if getattr(self.server.daemon, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, payload, status: int = 200,
                   headers: dict | None = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               headers: dict | None = None) -> None:
        self._send_json({"error": message}, status=status,
                        headers=headers)

    def _read_body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise ServiceError(
                "Content-Length header must be an integer"
            ) from None
        limit = self.server.daemon.max_body_bytes
        if length > limit:
            raise PayloadTooLargeError(
                f"request body is {length} bytes; this daemon accepts "
                f"at most {limit} (raise max_body_bytes to change)"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("request body must be a JSON object")
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _list_query(self, query: str):
        """Parse ``GET /jobs`` query params; raise for unknown/bad
        ones (mapped to 400 — a typo'd filter must not silently
        return the unfiltered listing)."""
        params = parse_qs(query, keep_blank_values=True)
        unknown = sorted(set(params) - {"status", "limit"})
        if unknown:
            raise ServiceError(
                f"unknown query parameter(s) "
                f"{', '.join(map(repr, unknown))}; valid: limit, status"
            )
        status = params["status"][-1] if "status" in params else None
        if status is not None and status not in JOB_STATUSES:
            raise ServiceError(
                f"unknown status filter {status!r}; valid: "
                f"{', '.join(JOB_STATUSES)}"
            )
        limit = None
        if "limit" in params:
            raw = params["limit"][-1]
            try:
                limit = int(raw)
            except ValueError:
                raise ServiceError(
                    f"limit must be an integer, got {raw!r}"
                ) from None
            if limit < 1:
                raise ServiceError(f"limit must be >= 1, got {limit}")
        return status, limit

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        if parts == ["healthz"]:
            daemon = self.server.daemon
            self._send_json({
                "status": "ok",
                "version": _package_version(),
                "uptime_seconds": time.time() - daemon.started_at,
                "workers": self.service.workers,
                "executor": self.service.executor,
                "accepting": self.service.accepting,
            })
        elif parts == ["stats"]:
            self._send_json(self.service.stats())
        elif parts == ["jobs"]:
            try:
                status, limit = self._list_query(split.query)
            except ServiceError as exc:
                self._error(400, str(exc))
                return
            jobs = self.service.jobs()
            if status is not None:
                jobs = [job for job in jobs if job.status == status]
            if limit is not None:
                jobs = jobs[-limit:]
            self._send_json({
                "jobs": [job.to_dict(include_record=False,
                                     redact_upload=True)
                         for job in jobs]
            })
        elif len(parts) == 2 and parts[0] == "jobs":
            self._with_job(parts[1], lambda job: self._send_json(
                job.to_dict(redact_upload=True)))
        elif len(parts) == 3 and parts[:1] == ["jobs"] \
                and parts[2] == "result":
            self._with_job(parts[1], self._send_result)
        elif parts == ["graphs"]:
            self._send_json({"graphs": self.service.graph_sessions()})
        elif len(parts) == 2 and parts[0] == "graphs":
            self._with_graph(parts[1], lambda gid: self._send_json(
                self.service.graph_session(gid)))
        elif len(parts) == 3 and parts[0] == "graphs" \
                and parts[2] == "sparsifier":
            self._with_graph(parts[1], self._send_graph_sparsifier)
        else:
            self._error(404, f"no such endpoint: GET {self.path}")

    def do_POST(self) -> None:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["jobs"]:
            self._submit_job()
        elif parts == ["graphs"]:
            self._create_graph()
        else:
            self._error(404, f"no such endpoint: POST {self.path}")

    def _submit_job(self) -> None:
        try:
            spec = JobSpec.from_dict(self._read_body())
            job = self.service.submit(
                spec.graph, method=spec.method, options=spec.options,
                label=spec.label, priority=spec.priority,
                evaluate=spec.evaluate,
            )
        except ServiceUnavailableError as exc:
            self._error(503, str(exc))
        except PayloadTooLargeError as exc:
            self._error(413, str(exc))
        except (ServiceError, UnknownMethodError, UnknownOptionError,
                TypeError, ValueError) as exc:
            self._error(400, str(exc))
        except ReproError as exc:
            self._error(400, f"{type(exc).__name__}: {exc}")
        else:
            self._send_json(job.to_dict(redact_upload=True), status=201)

    _GRAPH_FIELDS = frozenset({
        "graph", "method", "options", "label", "drift_budget",
        "locality_beta",
    })

    def _create_graph(self) -> None:
        try:
            body = self._read_body()
            unknown = sorted(set(body) - self._GRAPH_FIELDS)
            if unknown:
                raise ServiceError(
                    f"unknown graph-session field(s) "
                    f"{', '.join(map(repr, unknown))}; valid: "
                    f"{', '.join(sorted(self._GRAPH_FIELDS))}"
                )
            if not body.get("graph"):
                raise ServiceError("graph session needs a 'graph' source")
            session = self.service.create_graph(
                body["graph"],
                method=str(body.get("method") or "proposed"),
                options=dict(body.get("options") or {}),
                label=body.get("label"),
                drift_budget=float(
                    32.0 if body.get("drift_budget") is None
                    else body["drift_budget"]
                ),
                locality_beta=int(
                    2 if body.get("locality_beta") is None
                    else body["locality_beta"]
                ),
            )
        except WorkerCrashError as exc:
            self._error(503, f"{type(exc).__name__}: {exc}")
        except ServiceUnavailableError as exc:
            self._error(503, str(exc))
        except PayloadTooLargeError as exc:
            self._error(413, str(exc))
        except (ServiceError, UnknownMethodError, UnknownOptionError,
                TypeError, ValueError) as exc:
            self._error(400, str(exc))
        except ReproError as exc:
            self._error(400, f"{type(exc).__name__}: {exc}")
        else:
            self._send_json(session, status=201)

    def do_PUT(self) -> None:
        self._method_not_allowed("PUT")

    def do_PATCH(self) -> None:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 3 and parts[0] == "graphs" \
                and parts[2] == "edges":
            self._with_graph(parts[1], self._patch_graph)
        else:
            # PATCH on anything but a graph session's edge collection
            # keeps the documented 405 contract.
            self._method_not_allowed("PATCH")

    def _patch_graph(self, graph_id: str) -> None:
        try:
            outcome = self.service.patch_graph(
                graph_id, batch=self._read_body()
            )
        except WorkerCrashError as exc:
            self._error(503, f"{type(exc).__name__}: {exc}")
        except ServiceUnavailableError as exc:
            self._error(503, str(exc))
        except PayloadTooLargeError as exc:
            self._error(413, str(exc))
        except (ServiceError, TypeError, ValueError) as exc:
            self._error(400, str(exc))
        except ReproError as exc:
            self._error(400, f"{type(exc).__name__}: {exc}")
        else:
            self._send_json(outcome)

    def _send_graph_sparsifier(self, graph_id: str) -> None:
        try:
            outcome = self.service.graph_sparsifier(graph_id)
        except WorkerCrashError as exc:
            self._error(503, f"{type(exc).__name__}: {exc}")
        except ServiceError as exc:
            self._error(400, str(exc))
        except ReproError as exc:
            self._error(400, f"{type(exc).__name__}: {exc}")
        else:
            self._send_json(outcome)

    def _method_not_allowed(self, verb: str) -> None:
        """A *known path* reached with an unsupported verb is a 405
        (with the ``Allow`` header RFC 9110 requires), still as a JSON
        body — no client of this service should ever have to parse
        HTML error pages."""
        allowed = sorted({route_verb for route_verb, _, _ in ROUTES})
        self._error(
            405,
            f"method {verb} is not supported; allowed methods: "
            f"{', '.join(allowed)}",
            headers={"Allow": ", ".join(allowed)},
        )

    def do_DELETE(self) -> None:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "graphs":
            self._with_graph(parts[1], lambda gid: self._send_json(
                self.service.delete_graph(gid)))
            return
        if len(parts) != 2 or parts[0] != "jobs":
            self._error(404, f"no such endpoint: DELETE {self.path}")
            return

        def _cancel(job) -> None:
            try:
                cancelled = self.service.cancel(job.id)
            except ServiceError as exc:
                self._error(409, str(exc))
            else:
                self._send_json(cancelled.to_dict(redact_upload=True))

        self._with_job(parts[1], _cancel)

    # -- helpers -------------------------------------------------------
    def _with_job(self, job_id: str, action) -> None:
        try:
            job = self.service.job(job_id)
        except ServiceError as exc:
            self._error(404, str(exc))
            return
        action(job)

    def _with_graph(self, graph_id: str, action) -> None:
        try:
            self.service.graph_session(graph_id)
        except ServiceError as exc:
            self._error(404, str(exc))
            return
        action(graph_id)

    def _send_result(self, job) -> None:
        if job.status == "done":
            self._send_json(job.record)
        elif job.status == "failed":
            self._error(409, f"job {job.id} failed: {job.error}")
        elif job.status == "cancelled":
            self._error(409, f"job {job.id} was cancelled")
        else:
            self._error(
                409, f"job {job.id} is not finished (status "
                f"{job.status!r}); poll GET /jobs/{job.id}"
            )


def _package_version() -> str:
    import repro

    return repro.__version__


class ServiceDaemon:
    """A listening sparsification daemon: scheduler + HTTP server.

    Parameters
    ----------
    service : SparsifierService, optional
        The scheduler to expose; one is constructed from
        ``**service_options`` (``workers``, ``cache_dir``,
        ``persistent``, ``max_sessions``, ``executor``, ``retries``,
        ``faults_dir``, ``start``) when omitted.
    host / port :
        Bind address.  ``port=0`` (the default) picks an ephemeral
        port — read it back from :attr:`port` / :attr:`url`.
    verbose : bool
        Log one line per HTTP request to stderr.
    max_body_bytes : int
        Largest request body accepted (default 16 MiB); a bigger
        ``Content-Length`` — a runaway inline MTX upload — is refused
        with a 413 before the body is read.

    Examples
    --------
    >>> import tempfile
    >>> from repro.service import ServiceDaemon, ServiceClient
    >>> daemon = ServiceDaemon(workers=1, cache_dir=tempfile.mkdtemp())
    >>> daemon.start()
    >>> client = ServiceClient(daemon.url)
    >>> client.health()["status"]
    'ok'
    >>> daemon.shutdown()
    """

    def __init__(self, service: SparsifierService | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False,
                 max_body_bytes: int = 16 * 1024 * 1024,
                 **service_options) -> None:
        if service is not None and service_options:
            raise ServiceError(
                "pass either a ready service or service options, not both"
            )
        self.max_body_bytes = int(max_body_bytes)
        if self.max_body_bytes < 1:
            raise ServiceError("max_body_bytes must be >= 1")
        self.service = service or SparsifierService(**service_options)
        self.verbose = verbose
        self.started_at = time.time()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.daemon = self
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def host(self) -> str:
        """The bound host address."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The actually-bound port (resolves ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve in a background thread (returns immediately)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-service-http", daemon=True,
            )
            self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` is called
        from another thread (the blocking shape :func:`serve` uses)."""
        self._httpd.serve_forever()

    def shutdown(self, *, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Stop the service gracefully, then close the socket.

        ``drain=True`` (default) finishes every queued job first;
        ``drain=False`` cancels the queue and only lets running jobs
        complete.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self.service.shutdown(drain=drain, timeout=timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(*, host: str = "127.0.0.1", port: int = 8734,
          workers: int = 2, persistent: bool = True, cache_dir=None,
          max_sessions: int = 8, max_jobs: int = 1000,
          executor: str = "thread", retries: int = 1,
          verbose: bool = False,
          install_signal_handlers: bool = True,
          announce=print) -> int:
    """Run a daemon in the foreground until SIGINT/SIGTERM.

    The blocking entry point behind ``repro serve``: boots a
    :class:`ServiceDaemon`, announces the bound URL on stdout, and
    waits.  The first SIGINT/SIGTERM drains gracefully (queued jobs
    finish); a second signal cancels the remaining queue and exits as
    soon as running jobs complete.  Returns the process exit code.
    ``executor="process"`` runs jobs in fingerprint-pinned worker
    processes (see :mod:`repro.service.executors`); ``retries`` bounds
    how often a crashed worker's job is re-run.
    """
    import signal

    daemon = ServiceDaemon(
        host=host, port=port, workers=workers, persistent=persistent,
        cache_dir=cache_dir, max_sessions=max_sessions,
        max_jobs=max_jobs, executor=executor, retries=retries,
        verbose=verbose,
    )
    stop = threading.Event()
    signals_seen = []

    def _request_stop(signum, frame) -> None:
        signals_seen.append(signum)
        if len(signals_seen) > 1:
            daemon.service.shutdown(drain=False, timeout=0.0)
        stop.set()

    if install_signal_handlers:
        signal.signal(signal.SIGINT, _request_stop)
        signal.signal(signal.SIGTERM, _request_stop)
    daemon.start()
    announce(f"repro service listening on {daemon.url} "
             f"({daemon.service.workers} {daemon.service.executor} "
             f"workers, cache "
             f"{'on' if daemon.service.persistent else 'off'})",
             flush=True)
    stop.wait()
    announce("repro service draining...", flush=True)
    daemon.shutdown(drain=len(signals_seen) <= 1)
    announce("repro service stopped", flush=True)
    return 0
