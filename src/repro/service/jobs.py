"""The service layer's job model.

A :class:`Job` is one sparsification request travelling through the
daemon: a :class:`JobSpec` (what to run, on which graph, at what
priority) plus the lifecycle state the scheduler stamps onto it —
``queued → running → done`` / ``failed`` / ``cancelled`` — and, once
finished, the resulting :class:`~repro.api.records.RunRecord` as a
plain dict.  Like ``RunRecord`` itself, jobs round-trip through JSON
losslessly (``Job.from_json(job.to_json()) == job``), so the HTTP
front end, the typed client and any on-disk job log all speak the same
schema.

The graph a job targets is described by a *graph source* dict rather
than a live :class:`~repro.graph.Graph` object, so it can cross the
wire: a registered case name (``{"case": "ecology2", "scale": 0.04}``),
a server-side Matrix Market path (``{"mtx_path": "/data/g.mtx"}``) or
inline Matrix Market text uploaded with the request
(``{"mtx": "%%MatrixMarket ..."}``).
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ServiceError

__all__ = [
    "JOB_STATUSES",
    "TERMINAL_STATUSES",
    "JobSpec",
    "Job",
    "graph_source_key",
    "load_graph_source",
]

#: Every lifecycle state a job can be in, in rough temporal order.
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves once reached.
TERMINAL_STATUSES = frozenset({"done", "failed", "cancelled"})

#: Keys a graph-source dict may carry (exactly one of the first three).
_SOURCE_KINDS = ("case", "mtx_path", "mtx")
_SOURCE_KEYS = frozenset({"case", "mtx_path", "mtx", "scale", "seed"})


def _validate_graph_source(source: dict) -> None:
    if not isinstance(source, dict):
        raise ServiceError(
            f"graph source must be a dict, got {type(source).__name__}"
        )
    unknown = sorted(set(source) - _SOURCE_KEYS)
    if unknown:
        raise ServiceError(
            f"unknown graph-source key(s) {', '.join(map(repr, unknown))}; "
            f"valid keys: {', '.join(sorted(_SOURCE_KEYS))}"
        )
    kinds = [kind for kind in _SOURCE_KINDS if source.get(kind)]
    if len(kinds) != 1:
        raise ServiceError(
            "graph source needs exactly one of 'case', 'mtx_path' or "
            f"'mtx', got {kinds or 'none'}"
        )
    if kinds != ["case"] and source.get("scale") is not None:
        # Matrix Market sources are fixed-size; a scale knob on one
        # would be a silent no-op, and this package's contract is that
        # inapplicable knobs are hard errors.
        raise ServiceError(
            "'scale' only applies to generated 'case' graphs; "
            "MTX sources are loaded as-is"
        )


def graph_source_key(source: dict) -> str:
    """A stable identity string for a graph-source dict.

    Inline MTX uploads are folded to a SHA-256 of their text, so two
    clients uploading the same file content share one key (and with it
    one loaded graph and one warm session) without the key itself
    holding megabytes of text.
    """
    _validate_graph_source(source)
    canonical = dict(source)
    if canonical.get("mtx"):
        canonical["mtx"] = hashlib.sha256(
            canonical["mtx"].encode()
        ).hexdigest()
    return json.dumps(canonical, sort_keys=True)


def load_graph_source(source: dict, seed: int = 0):
    """Materialize a graph-source dict into ``(graph, label)``.

    ``{"case": name}`` goes through the case registry (honoring
    ``scale``/``seed``), ``{"mtx_path": path}`` reads a server-side
    Matrix Market file, and ``{"mtx": text}`` parses uploaded Matrix
    Market content.  Raises :class:`~repro.exceptions.ServiceError`
    for malformed sources (unknown keys, missing files, bad MTX text).
    """
    _validate_graph_source(source)
    seed = int(source.get("seed", seed))
    if source.get("case"):
        from repro.graph import CASE_REGISTRY, make_case

        name = str(source["case"])
        if name not in CASE_REGISTRY:
            raise ServiceError(
                f"unknown case {name!r}; choose from "
                f"{', '.join(sorted(CASE_REGISTRY))}"
            )
        graph, spec = make_case(
            name, scale=source.get("scale"), seed=seed
        )
        return graph, spec.name
    from repro.graph import read_graph_mtx

    if source.get("mtx_path"):
        path = str(source["mtx_path"])
        if not Path(path).is_file():
            raise ServiceError(f"mtx_path {path!r} does not exist")
        graph, _ = read_graph_mtx(path)
        return graph, path
    with tempfile.NamedTemporaryFile(
        "w", suffix=".mtx", delete=False
    ) as handle:
        handle.write(source["mtx"])
        tmp_name = handle.name
    try:
        graph, _ = read_graph_mtx(tmp_name)
    finally:
        Path(tmp_name).unlink(missing_ok=True)
    return graph, "upload"


@dataclass
class JobSpec:
    """What one service request asks for (immutable once submitted).

    Parameters
    ----------
    graph : dict
        Graph source: ``{"case": name, "scale": s}``,
        ``{"mtx_path": path}`` or ``{"mtx": text}`` (see
        :func:`load_graph_source`).
    method : str
        Registered sparsifier method name.
    options : dict
        Keyword options for the method's config dataclass, exactly as
        :func:`repro.sparsify` accepts them.
    label : str, optional
        Graph label stamped into the resulting RunRecord; defaults to
        the label the graph source implies (case name / file path).
    priority : int
        Scheduling priority — higher runs sooner; ties run in
        submission order.
    evaluate : bool
        Score the sparsifier with
        :func:`~repro.core.metrics.evaluate_sparsifier` and attach the
        quality block to the record (slower; default off so a service
        result is fingerprint-identical to a direct
        ``repro.sparsify`` call).
    """

    graph: dict
    method: str = "proposed"
    options: dict = field(default_factory=dict)
    label: str | None = None
    priority: int = 0
    evaluate: bool = False

    def validate(self):
        """Check the spec end to end; return the validated config.

        Validates the graph source shape, the method name and every
        option (via the method registry, so inapplicable options are
        rejected with the same message the CLI gives).
        """
        from repro.api import get_method

        _validate_graph_source(self.graph)
        return get_method(self.method).make_config(**self.options)

    def to_dict(self, *, redact_upload: bool = False) -> dict:
        """The spec as one plain JSON-serializable dict.

        ``redact_upload=True`` replaces inline MTX text with its
        SHA-256 digest and character count — the form the HTTP layer
        ships, so polling a multi-megabyte upload's status does not
        echo the upload back on every response.
        """
        graph = self.graph
        if redact_upload and graph.get("mtx"):
            graph = dict(graph)
            graph["mtx_sha256"] = hashlib.sha256(
                graph["mtx"].encode()
            ).hexdigest()
            graph["mtx_chars"] = len(graph.pop("mtx"))
        return {
            "graph": graph,
            "method": self.method,
            "options": self.options,
            "label": self.label,
            "priority": self.priority,
            "evaluate": self.evaluate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Inverse of :meth:`to_dict` (tolerates ``null`` fields).

        Raises :class:`~repro.exceptions.ServiceError` for unknown
        fields, a missing graph source, or field values of the wrong
        type (a ``priority`` that is not a number, a non-dict
        ``options``, ...) — the HTTP layer maps these to 400s.
        """
        unknown = sorted(
            set(data) - {"graph", "method", "options", "label",
                         "priority", "evaluate"}
        )
        if unknown:
            raise ServiceError(
                f"unknown job field(s) {', '.join(map(repr, unknown))}"
            )
        if not data.get("graph"):
            raise ServiceError("job spec needs a 'graph' source")
        try:
            return cls(
                graph=data["graph"],
                method=str(data.get("method") or "proposed"),
                options=dict(data.get("options") or {}),
                label=data.get("label"),
                priority=int(data.get("priority") or 0),
                evaluate=bool(data.get("evaluate") or False),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed job spec: {exc}") from None


@dataclass
class Job:
    """One request plus the lifecycle state the scheduler stamps on it.

    Attributes
    ----------
    id:
        Service-assigned identifier (``job-000001``, ...).
    spec:
        The submitted :class:`JobSpec`.
    status:
        One of :data:`JOB_STATUSES`.
    created_at / started_at / finished_at:
        Wall-clock timestamps (``time.time()``); ``None`` until the
        corresponding transition happens.  A deduplicated follower
        inherits its primary's ``started_at``/``finished_at``.
    error:
        Failure message when ``status == "failed"``.
    record:
        The finished run's :class:`~repro.api.records.RunRecord` as a
        plain dict (``None`` until ``done``).
    dedup_of:
        Id of the in-flight primary job this request was coalesced
        onto, when the scheduler deduplicated it; the follower shares
        the primary's computation and record.
    attempts:
        Execution attempts made (0 until the job first runs; > 1 only
        when a worker-process crash forced a retry).
    """

    id: str
    spec: JobSpec
    status: str = "queued"
    created_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    record: dict | None = None
    dedup_of: str | None = None
    attempts: int = 0

    @property
    def finished(self) -> bool:
        """True once the job reached a terminal status."""
        return self.status in TERMINAL_STATUSES

    def to_dict(self, *, include_record: bool = True,
                redact_upload: bool = False) -> dict:
        """The job as one plain JSON-serializable dict.

        ``include_record=False`` replaces the (potentially large)
        RunRecord payload with a ``has_record`` flag — the shape the
        ``GET /jobs`` listing uses; ``redact_upload=True`` digests
        inline MTX text out of the spec (every HTTP response does
        both or one of these — only the lossless default round-trips
        through :meth:`from_dict`).
        """
        data = {
            "id": self.id,
            "spec": self.spec.to_dict(redact_upload=redact_upload),
            "status": self.status,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "dedup_of": self.dedup_of,
            "attempts": self.attempts,
        }
        if include_record:
            data["record"] = self.record
        else:
            data["has_record"] = self.record is not None
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        """Inverse of :meth:`to_dict` (full form, with the record)."""
        status = data.get("status", "queued")
        if status not in JOB_STATUSES:
            raise ServiceError(
                f"unknown job status {status!r}; valid: "
                f"{', '.join(JOB_STATUSES)}"
            )
        return cls(
            id=str(data["id"]),
            spec=JobSpec.from_dict(data["spec"]),
            status=status,
            created_at=float(data.get("created_at", 0.0)),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            error=data.get("error"),
            record=data.get("record"),
            dedup_of=data.get("dedup_of"),
            attempts=int(data.get("attempts", 0)),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize losslessly to JSON text."""
        return json.dumps(
            self.to_dict(), indent=indent, sort_keys=True
        )

    @classmethod
    def from_json(cls, text: str) -> "Job":
        """Inverse of :meth:`to_json`: ``from_json(j.to_json()) == j``."""
        return cls.from_dict(json.loads(text))
