"""The in-process sparsification scheduler.

:class:`SparsifierService` is the long-lived serving core the HTTP
daemon (:mod:`repro.service.http`) wraps: a priority queue of
:class:`~repro.service.jobs.Job` objects drained by a bounded pool of
worker threads, with three properties a one-shot CLI call cannot give:

* **Request deduplication.**  Two clients submitting the same graph +
  method + config while the first request is still queued or running
  share one computation: the second job becomes a *follower*
  (``job.dedup_of`` names the primary) and receives the primary's
  RunRecord verbatim when it finishes.  The dedup key is the graph's
  content fingerprint plus the fully-resolved config — two spellings
  of the same options coalesce, and the same file uploaded twice
  coalesces with a server-side path to identical content.
* **Warm artifact reuse.**  Jobs on the same graph share one
  :class:`~repro.api.SparsifierSession` (memoized per graph
  fingerprint, LRU-bounded), and every session shares one persistent
  disk-cache root — so repeated traffic warms monotonically: the
  spanning tree, tree-phase scores and resistance sketches derived for
  one request serve every later request on that graph, across daemon
  restarts.
* **Graceful drain.**  :meth:`SparsifierService.shutdown` stops
  accepting work, finishes (or cancels) the queue, and joins every
  worker — the hook the daemon's SIGINT/SIGTERM handling calls.

Worker concurrency is bounded with the same knob semantics as the
fork pool (:func:`repro.core.parallel.resolve_workers`: ``0`` = one
per CPU); jobs with ``shards > 1`` route through
:func:`repro.core.sharding.sharded_sparsify` exactly like a direct
:func:`repro.sparsify` call.  Jobs touching the *same* graph are
serialized on a per-session lock (they contend for the same artifacts
anyway), while jobs on different graphs run concurrently.

*Where* a job's sparsification runs is delegated to a pluggable
execution backend (:mod:`repro.service.executors`): ``executor=
"thread"`` runs it inline on the scheduler's worker threads (the
default), ``executor="process"`` ships the serialized spec to a
fingerprint-pinned worker *process* so concurrent distinct-graph jobs
escape the GIL.  The scheduler's contract — dedup, priority order,
cancellation/promotion, drain — is backend-independent, and a worker
process that dies mid-job (:class:`~repro.exceptions.WorkerCrashError`)
is retried up to ``retries`` times on a fresh worker before the job
fails; deduplicated followers of a permanently-crashed primary are
promoted to run for themselves rather than inheriting the crash.

Besides one-shot jobs, the service hosts **evolving-graph sessions**
(:meth:`SparsifierService.create_graph` /
:meth:`~SparsifierService.patch_graph` /
:meth:`~SparsifierService.graph_sparsifier` — the ``/graphs`` HTTP
surface): a mutable :class:`~repro.incremental.EvolvingSparsifier`
kept alive under edge-mutation batches instead of re-submitting a full
job per change.  The scheduler records each session's source and its
ledger of applied batches; the live state lives in the execution
backend and is replayed deterministically from that ledger whenever
its holder is lost (LRU eviction, a crashed worker process).
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import threading
import time
from collections import Counter, OrderedDict

from repro.core.parallel import resolve_workers
from repro.exceptions import (
    IncrementalError,
    ServiceError,
    ServiceUnavailableError,
    WorkerCrashError,
)
from repro.service import faults
from repro.service.executors import make_executor, run_spec_on_session
from repro.service.jobs import Job, JobSpec, graph_source_key, load_graph_source

__all__ = ["SparsifierService"]


class _SessionSlot:
    """One per-graph session plus the lock serializing jobs on it."""

    def __init__(self, session) -> None:
        self.session = session
        self.lock = threading.Lock()


def _redacted_source(source: dict) -> dict:
    """A graph-source dict with inline MTX text digested out (the
    same shape :meth:`~repro.service.jobs.JobSpec.to_dict` ships)."""
    if not source.get("mtx"):
        return dict(source)
    redacted = dict(source)
    redacted["mtx_sha256"] = hashlib.sha256(
        redacted["mtx"].encode()
    ).hexdigest()
    redacted["mtx_chars"] = len(redacted.pop("mtx"))
    return redacted


class _GraphSlot:
    """One evolving-graph session the scheduler tracks.

    The scheduler side holds the *durable* description — graph source,
    resolved config, and the ledger of successfully applied batches —
    while the live :class:`~repro.incremental.EvolvingSparsifier` lives
    in the execution backend (in-process for threads, inside the
    fingerprint-pinned worker for processes).  The ledger travels with
    every op, so any holder can replay the session deterministically.
    The per-slot lock serializes ops on one session; distinct sessions
    mutate concurrently.
    """

    def __init__(self, graph_id: str, *, source: dict, seed: int,
                 fingerprint: str, method: str, options: dict,
                 label: str, drift_budget: float,
                 locality_beta: int) -> None:
        self.id = graph_id
        self.source = source
        self.seed = seed
        self.fingerprint = fingerprint
        self.method = method
        self.options = options
        self.label = label
        self.drift_budget = drift_budget
        self.locality_beta = locality_beta
        self.ledger: list = []          # applied batches, wire format
        self.summary: dict = {}         # last summary the backend sent
        self.created_at = time.time()
        self.lock = threading.Lock()

    def payload(self, op: str, **extra) -> dict:
        """The serialized op the execution backend receives."""
        data = {
            "op": op,
            "graph_id": self.id,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "seed": self.seed,
            "method": self.method,
            "options": self.options,
            "label": self.label,
            "drift_budget": self.drift_budget,
            "locality_beta": self.locality_beta,
            "ledger": list(self.ledger),
        }
        data.update(extra)
        return data

    def describe(self) -> dict:
        """The JSON shape ``GET /graphs`` rows carry."""
        return {
            "id": self.id,
            "source": _redacted_source(self.source),
            "created_at": self.created_at,
            "drift_budget": self.drift_budget,
            "locality_beta": self.locality_beta,
            "summary": dict(self.summary),
        }


class SparsifierService:
    """Priority-queue scheduler with dedup and shared warm sessions.

    Parameters
    ----------
    workers : int
        Worker-thread count: ``1`` serial, ``N > 1`` that many threads,
        ``0`` one per CPU (same semantics as
        :func:`repro.core.parallel.resolve_workers`).
    persistent : bool
        Attach the content-addressed disk cache
        (:class:`~repro.core.diskcache.DiskCache`) to every per-graph
        session, so artifacts survive daemon restarts (default on —
        warm restarts are the point of a service).
    cache_dir : str or pathlib.Path, optional
        Shared disk-cache root for *all* sessions (default
        ``$REPRO_CACHE_DIR`` / ``~/.cache/repro``); implies
        ``persistent=True``.
    max_sessions : int
        In-memory session LRU bound: the service keeps warm sessions
        (and loaded graphs) for at most this many distinct graphs;
        evicted graphs fall back to the disk cache (still warm, just
        restored from disk) or are re-read from their source.
    max_jobs : int
        Finished-job retention bound: once the ledger exceeds this,
        the oldest *finished* jobs (and their records) are dropped —
        a long-lived daemon must not accumulate every record (and
        every inline MTX upload) it ever served.  Queued/running jobs
        are never dropped.
    executor : str
        Execution backend: ``"thread"`` (default) runs jobs inline on
        the worker threads; ``"process"`` runs each job in a
        fingerprint-pinned worker process
        (:class:`~repro.service.executors.ProcessJobExecutor`), so
        concurrent jobs on distinct graphs scale with cores instead
        of serializing on the GIL.  RunRecord fingerprints are
        identical under both.
    retries : int
        How many times a job whose worker *process* died mid-job
        (killed, OOM, segfault) is retried on a fresh worker before
        it is failed (default 1).  Only infrastructure crashes are
        retried — a job whose own run raises fails immediately.
    faults_dir : str or pathlib.Path, optional
        Fault-injection token directory (see
        :mod:`repro.service.faults`); defaults to
        ``$REPRO_SERVICE_FAULTS_DIR``, and to no-op hooks when neither
        is set.
    start : bool
        Start the worker threads immediately (default).  ``start=False``
        leaves the queue paused — submissions accumulate (and
        deduplicate) until :meth:`start` — which is also how tests and
        docs demonstrate dedup deterministically.

    Examples
    --------
    >>> import tempfile
    >>> from repro.service import SparsifierService
    >>> service = SparsifierService(workers=1,
    ...                             cache_dir=tempfile.mkdtemp())
    >>> job = service.submit({"case": "ecology2", "scale": 0.02},
    ...                      method="grass",
    ...                      options={"edge_fraction": 0.1})
    >>> service.wait(job.id).status
    'done'
    >>> service.shutdown()
    """

    def __init__(self, *, workers: int = 2, persistent: bool = True,
                 cache_dir=None, max_sessions: int = 8,
                 max_jobs: int = 1000, executor: str = "thread",
                 retries: int = 1, faults_dir=None,
                 start: bool = True) -> None:
        from repro.service.executors import EXECUTOR_NAMES

        self.workers = resolve_workers(workers)
        self.persistent = bool(persistent) or cache_dir is not None
        self.cache_dir = cache_dir
        self.max_sessions = int(max_sessions)
        self.max_jobs = int(max_jobs)
        self.retries = int(retries)
        self.faults_dir = faults.resolve_faults_dir(faults_dir)
        if self.max_sessions < 1:
            raise ServiceError("max_sessions must be >= 1")
        if self.max_jobs < 1:
            raise ServiceError("max_jobs must be >= 1")
        if self.retries < 0:
            raise ServiceError("retries must be >= 0")
        if executor not in EXECUTOR_NAMES:
            raise ServiceError(
                f"unknown executor {executor!r}; choose from "
                f"{', '.join(EXECUTOR_NAMES)}"
            )
        self.executor = str(executor)

        self._cond = threading.Condition()
        self._queue: list = []            # (-priority, order, job_id)
        self._seq = itertools.count(1)    # job ids
        self._order = itertools.count(1)  # FIFO tie-break in the heap
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._inflight: dict = {}         # dedup key -> primary job id
        self._followers: dict = {}        # primary id -> [follower ids]
        # (source, seed) -> (graph, label); pure load memo, LRU-bounded
        # like the sessions — jobs hold their own graph reference until
        # they finish, so eviction here can never strand a queued job.
        self._graphs: "OrderedDict" = OrderedDict()
        self._sessions: "OrderedDict[str, _SessionSlot]" = OrderedDict()
        self._graph_sessions: "OrderedDict[str, _GraphSlot]" = OrderedDict()
        self._graph_seq = itertools.count(1)  # graph-session ids
        self._running: set = set()
        self._threads: list = []
        self._accepting = True
        self._stopping = False
        self.started_at = time.time()

        #: Submissions coalesced onto an in-flight identical request.
        self.dedup_hits = 0
        #: Sparsifications actually executed (primaries only).
        self.completed_runs = 0
        #: Total submissions accepted (primaries + followers).
        self.submitted = 0
        #: Worker-process crashes observed (each one rebuilt a pool).
        self.worker_restarts = 0
        #: Edge-mutation batches applied across all graph sessions.
        self.graph_patches = 0
        #: Disk-cache counter deltas reported by worker processes —
        #: their sessions live out-of-process, so /stats aggregates
        #: these instead of reading the sessions directly.
        self._external_cache: Counter = Counter()

        self._backend = make_executor(self.executor, self)
        if start:
            self.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start (or resume) the worker threads; idempotent.

        Also boots the execution backend (worker processes under
        ``executor="process"``), so a paused service pays the process
        spawn cost here rather than on its first job.
        """
        with self._cond:
            if self._stopping:
                raise ServiceError("service already shut down")
        self._backend.start()
        with self._cond:
            missing = self.workers - len(self._threads)
            for k in range(missing):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{len(self._threads) + 1}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
            self._cond.notify_all()

    @property
    def accepting(self) -> bool:
        """False once shutdown started; submissions are then rejected."""
        return self._accepting

    @property
    def resolved_cache_dir(self):
        """The effective disk-cache root (``None`` when memory-only).

        Resolved in this (parent) process — worker processes inherit
        the *path*, never re-read the environment, because forkserver
        children freeze their environment at server start.
        """
        if not self.persistent:
            return None
        if self.cache_dir is not None:
            return self.cache_dir
        from repro.core.diskcache import default_cache_root

        return default_cache_root()

    def shutdown(self, *, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Stop accepting work and wind the service down.

        With ``drain=True`` (default) every already-queued job still
        runs to completion before the workers exit — the graceful path
        the daemon's SIGTERM handler takes.  With ``drain=False`` the
        queued jobs are cancelled and only the currently-running ones
        finish — including publishing their result to followers that
        were deduplicated onto them (those followers are *not*
        cancelled: their computation is already paid for).  Idempotent;
        ``timeout`` bounds the join on each worker thread.
        """
        with self._cond:
            self._accepting = False
            if not drain:
                # Cancel every still-queued job — primaries and their
                # deduplicated followers (never in the heap) — except
                # followers of a *running* primary, which inherit its
                # in-flight result moments from now.
                running = set(self._running)
                for job in self._jobs.values():
                    if job.status == "queued" and \
                            job.dedup_of not in running:
                        self._mark_cancelled(job)
                self._queue.clear()
                self._followers = {
                    primary_id: follower_ids
                    for primary_id, follower_ids in
                    self._followers.items()
                    if primary_id in running
                }
                self._inflight = {
                    key: job_id for key, job_id in self._inflight.items()
                    if job_id in running
                }
            self._stopping = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = [t for t in self._threads if t.is_alive()]
        if not self._threads:
            # Backend teardown (reaping worker processes) only once the
            # scheduler threads are gone — a still-joining worker might
            # have a job in flight on the backend.
            self._backend.close(timeout=timeout)

    def _live_queue_depth(self) -> int:
        """Heap entries whose job is still queued (lock held) —
        cancelled jobs leave ghosts behind until a worker pops them."""
        return sum(
            1 for entry in self._queue
            if self._jobs.get(entry[2]) is not None
            and self._jobs[entry[2]].status == "queued"
        )

    def drain(self, timeout: float | None = None) -> bool:
        """Block until queue and workers are idle; True when they are."""
        deadline = None if timeout is None else time.time() + timeout
        with self._cond:
            while self._live_queue_depth() or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.time()
                    if remaining <= 0:
                        return False
                self._cond.wait(timeout=remaining)
        return True

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, graph_source: dict, *, method: str = "proposed",
               options: dict | None = None, label: str | None = None,
               priority: int = 0, evaluate: bool = False) -> Job:
        """Queue one sparsification request; return its :class:`Job`.

        The graph source is loaded **now** (memoized per source), so
        malformed requests fail synchronously and the dedup key — the
        graph's content fingerprint plus the fully-resolved config —
        exists before the job enters the queue.  An identical request
        already queued or running absorbs this one: the returned job
        carries ``dedup_of`` and will receive the primary's record.

        Raises
        ------
        repro.exceptions.ServiceError
            When the service is no longer accepting (shutdown started),
            or the graph source is malformed.
        repro.exceptions.UnknownMethodError / UnknownOptionError
            For an unknown method or options it does not accept.
        """
        spec = JobSpec(
            graph=dict(graph_source), method=str(method),
            options=dict(options or {}), label=label,
            priority=int(priority), evaluate=bool(evaluate),
        )
        config = spec.validate()
        # The effective generation seed: the source dict's own wins,
        # else the method options' (matching load_graph_source).  It is
        # part of the graph's identity for generated cases, so it must
        # be part of the memo key — otherwise a second submission with
        # a different options seed would silently reuse the first
        # seed's graph.
        seed = int(spec.graph.get("seed", spec.options.get("seed", 0)))
        source_key = (graph_source_key(spec.graph), seed)
        graph, default_label = self._load_graph(source_key, spec.graph, seed)
        from repro.core.diskcache import graph_fingerprint

        fingerprint = graph_fingerprint(graph)
        resolved_label = spec.label if spec.label is not None else default_label
        dedup_key = (
            fingerprint, spec.method,
            tuple(sorted(config.to_dict().items())),
            bool(spec.evaluate), resolved_label,
        )
        with self._cond:
            if not self._accepting:
                raise ServiceUnavailableError(
                    "service is shutting down and no longer accepts jobs"
                )
            job = Job(
                id=f"job-{next(self._seq):06d}", spec=spec,
                created_at=time.time(),
            )
            job._fingerprint = fingerprint            # internal routing
            job._dedup_key = dedup_key
            job._graph = graph                 # released when finished
            job._resolved_label = resolved_label
            job._seed = seed          # crosses the process boundary
            self._jobs[job.id] = job
            self.submitted += 1
            primary_id = self._inflight.get(dedup_key)
            if primary_id is not None:
                job.dedup_of = primary_id
                self._followers.setdefault(primary_id, []).append(job.id)
                self.dedup_hits += 1
            else:
                self._inflight[dedup_key] = job.id
                heapq.heappush(
                    self._queue, (-spec.priority, next(self._order), job.id)
                )
                self._cond.notify()
        return job

    def _load_graph(self, source_key, source: dict, seed: int):
        """Load (or reuse) the graph a ``(source, seed)`` key names."""
        with self._cond:
            cached = self._graphs.get(source_key)
            if cached is not None:
                self._graphs.move_to_end(source_key)
                return cached
        graph, label = load_graph_source(source, seed=seed)
        with self._cond:
            entry = self._graphs.setdefault(source_key, (graph, label))
            self._graphs.move_to_end(source_key)
            while len(self._graphs) > self.max_sessions:
                self._graphs.popitem(last=False)
            return entry

    # ------------------------------------------------------------------
    # evolving-graph sessions
    # ------------------------------------------------------------------
    def create_graph(self, graph_source: dict, *,
                     method: str = "proposed",
                     options: dict | None = None,
                     label: str | None = None,
                     drift_budget: float = 32.0,
                     locality_beta: int = 2) -> dict:
        """Open a mutable graph session; return its description.

        Loads the graph source now (like :meth:`submit`), runs the
        base full build on the execution backend, and registers the
        session under a fresh ``graph-NNNNNN`` id for later
        :meth:`patch_graph` / :meth:`graph_sparsifier` calls.  The
        method must carry the ``supports_incremental`` capability.

        Raises
        ------
        repro.exceptions.IncrementalError
            When the method cannot be maintained incrementally, or the
            drift/locality knobs are out of range.
        repro.exceptions.ServiceError
            For a malformed graph source, or when ``max_sessions``
            live graph sessions already exist (delete one first).
        """
        from repro.api import get_method, sparsifier_methods
        from repro.core.diskcache import graph_fingerprint

        options = dict(options or {})
        spec = get_method(method)
        if not spec.supports_incremental:
            capable = sorted(
                name for name, other in sparsifier_methods().items()
                if other.supports_incremental
            )
            raise IncrementalError(
                f"method {method!r} does not support incremental "
                "updates; methods with the supports_incremental "
                f"capability: {', '.join(capable)}"
            )
        spec.make_config(**options)
        seed = int(graph_source.get("seed", options.get("seed", 0)))
        source_key = (graph_source_key(graph_source), seed)
        graph, default_label = self._load_graph(
            source_key, graph_source, seed
        )
        fingerprint = graph_fingerprint(graph)
        resolved_label = label if label is not None else default_label
        with self._cond:
            if not self._accepting:
                raise ServiceUnavailableError(
                    "service is shutting down and no longer accepts "
                    "graph sessions"
                )
            if len(self._graph_sessions) >= self.max_sessions:
                raise ServiceError(
                    f"graph-session limit reached ({self.max_sessions} "
                    "live sessions); delete one (DELETE /graphs/<id>) "
                    "or raise max_sessions"
                )
            slot = _GraphSlot(
                f"graph-{next(self._graph_seq):06d}",
                source=dict(graph_source), seed=seed,
                fingerprint=fingerprint, method=str(method),
                options=options, label=resolved_label,
                drift_budget=float(drift_budget),
                locality_beta=int(locality_beta),
            )
            self._graph_sessions[slot.id] = slot
        try:
            with slot.lock:
                outcome = self._graph_op(slot.payload("create"))
                slot.summary = outcome["summary"]
        except Exception:
            # A failed base build (bad knobs, crashed worker beyond
            # retries) must not leave a half-open session behind.
            with self._cond:
                self._graph_sessions.pop(slot.id, None)
            raise
        return slot.describe()

    def patch_graph(self, graph_id: str, batch: dict | None = None, *,
                    inserts=(), deletes=()) -> dict:
        """Apply one edge-mutation batch to a live graph session.

        The batch is validated and canonicalized here (shape errors
        fail before touching the backend); content errors — deleting
        an absent edge, inserting an existing one — surface as
        :class:`~repro.exceptions.IncrementalError` from the backend
        with the session state unchanged, and only successful batches
        enter the replay ledger.  Returns ``{"id", "entry",
        "summary"}`` where ``entry`` is the per-batch
        :class:`~repro.incremental.DeltaRecord` line (including
        ``rebuild``/``drift_estimate``).
        """
        from repro.incremental import normalize_batch

        slot = self._graph_slot(graph_id)
        wire = normalize_batch(inserts, deletes, batch=batch).to_dict()
        with self._cond:
            if not self._accepting:
                raise ServiceUnavailableError(
                    "service is shutting down and no longer accepts "
                    "graph mutations"
                )
        with slot.lock:
            outcome = self._graph_op(slot.payload("patch", batch=wire))
            slot.ledger.append(wire)
            slot.summary = outcome["summary"]
        with self._cond:
            self.graph_patches += 1
        return {"id": slot.id, "entry": outcome["entry"],
                "summary": outcome["summary"]}

    def graph_sparsifier(self, graph_id: str) -> dict:
        """The current sparsifier of a live graph session.

        Returns ``{"id", "summary", "record", "delta"}``: the last
        full build's :class:`~repro.api.records.RunRecord` dict plus
        the whole per-batch
        :class:`~repro.incremental.DeltaRecord` trail.
        """
        slot = self._graph_slot(graph_id)
        with slot.lock:
            outcome = self._graph_op(slot.payload("export"))
            slot.summary = outcome["summary"]
        return {"id": slot.id, **outcome}

    def graph_session(self, graph_id: str) -> dict:
        """One graph session's description; ServiceError if absent."""
        return self._graph_slot(graph_id).describe()

    def graph_sessions(self) -> list:
        """Every live graph session, in creation order."""
        with self._cond:
            slots = list(self._graph_sessions.values())
        return [slot.describe() for slot in slots]

    def delete_graph(self, graph_id: str) -> dict:
        """Close a graph session, freeing its slot and backend state."""
        slot = self._graph_slot(graph_id)
        with slot.lock:
            with self._cond:
                self._graph_sessions.pop(graph_id, None)
            try:
                self._graph_op(slot.payload("delete"))
            except (ServiceError, WorkerCrashError):
                # Backend state rebuilds from the ledger on demand
                # anyway; a dead or closed worker must not block
                # freeing the slot.
                pass
        return {"id": slot.id, "deleted": True,
                "summary": dict(slot.summary)}

    def _graph_slot(self, graph_id: str) -> _GraphSlot:
        with self._cond:
            slot = self._graph_sessions.get(graph_id)
        if slot is None:
            raise ServiceError(f"unknown graph id {graph_id!r}")
        return slot

    def _graph_op(self, payload: dict) -> dict:
        """Run one graph-session op on the backend, retrying crashes.

        Mirrors :meth:`_run_job`: a worker process that died mid-op is
        retried on a fresh worker up to ``retries`` times — the
        payload's ledger lets the fresh worker replay the session
        first, so the retry is exact.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._backend.graph_op(payload)
            except WorkerCrashError:
                with self._cond:
                    self.worker_restarts += 1
                if attempt > self.retries:
                    raise

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Job:
        """Look up a job by id; raise :class:`ServiceError` if absent."""
        with self._cond:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ServiceError(f"unknown job id {job_id!r}") from None

    def jobs(self) -> list:
        """Every job the service has seen, in submission order."""
        with self._cond:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until a job reaches a terminal status; return it."""
        deadline = None if timeout is None else time.time() + timeout
        with self._cond:
            job = self.job(job_id)
            while not job.finished:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.time()
                    if remaining <= 0:
                        raise ServiceError(
                            f"timed out waiting for {job_id} "
                            f"(status {job.status!r})"
                        )
                self._cond.wait(timeout=remaining)
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (primaries promote their first follower).

        Running and finished jobs cannot be cancelled — the attempt
        raises :class:`~repro.exceptions.ServiceError` (the HTTP layer
        maps it to 409).  Cancelling a deduplicated follower only
        detaches that follower; cancelling a primary with followers
        promotes the oldest follower to primary so the shared
        computation still happens for the clients still waiting on it.
        """
        with self._cond:
            job = self.job(job_id)
            if job.status != "queued":
                raise ServiceError(
                    f"cannot cancel {job_id}: status is {job.status!r} "
                    "(only queued jobs are cancellable)"
                )
            if job.dedup_of is not None:
                self._followers.get(job.dedup_of, []).remove(job.id)
                self._mark_cancelled(job)
                return job
            self._mark_cancelled(job)
            self._promote_followers(job)
            return job

    def _promote_followers(self, job: Job) -> None:
        """Detach a dead primary's followers onto a new heir (lock held).

        The oldest still-queued follower becomes primary — re-queued at
        the original priority, inheriting the remaining followers — so
        the shared computation still happens for the clients waiting on
        it.  With no followers left, the dedup slot is simply released.
        Shared by :meth:`cancel` and the worker-crash path: in both, the
        primary is gone but its followers' work is still owed.
        """
        followers = [
            fid for fid in self._followers.pop(job.id, [])
            if self._jobs[fid].status == "queued"
        ]
        if followers:
            heir = self._jobs[followers[0]]
            heir.dedup_of = None
            self._inflight[heir._dedup_key] = heir.id
            remaining = followers[1:]
            if remaining:
                self._followers[heir.id] = remaining
                for fid in remaining:
                    self._jobs[fid].dedup_of = heir.id
            heapq.heappush(
                self._queue,
                (-heir.spec.priority, next(self._order), heir.id),
            )
            self._cond.notify()
        elif self._inflight.get(job._dedup_key) == job.id:
            del self._inflight[job._dedup_key]

    def stats(self) -> dict:
        """Queue/dedup/session/cache counters (the ``/stats`` payload).

        ``cache`` aggregates the per-kind disk-cache counters of every
        live session (hit/miss/store/eviction/error totals), so a
        monotonically-warming service shows ``hits`` growing while
        ``stores`` stalls.
        """
        with self._cond:
            by_status = Counter(job.status for job in self._jobs.values())
            sessions = list(self._sessions.values())
            external = dict(self._external_cache)
            stats = {
                "queue_depth": self._live_queue_depth(),
                "running": len(self._running),
                "jobs": {status: by_status.get(status, 0)
                         for status in
                         ("queued", "running", "done", "failed",
                          "cancelled")},
                "submitted": self.submitted,
                "completed_runs": self.completed_runs,
                "dedup_hits": self.dedup_hits,
                "workers": self.workers,
                "executor": self.executor,
                "worker_restarts": self.worker_restarts,
                "accepting": self._accepting,
                "sessions": len(self._sessions),
                "graph_sessions": len(self._graph_sessions),
                "graph_patches": self.graph_patches,
                "uptime_seconds": time.time() - self.started_at,
            }
        cache = {
            "persistent": self.persistent,
            "hits": 0, "misses": 0, "stores": 0,
            "evictions": 0, "errors": 0,
        }
        resolved = self.resolved_cache_dir
        if resolved is not None:
            cache["root"] = str(resolved)
        for slot in sessions:
            disk = slot.session.stats().get("disk")
            if disk is None:
                continue
            for counter in ("hits", "misses", "stores", "evictions",
                            "errors"):
                cache[counter] += sum(disk[counter].values())
        for counter, delta in external.items():
            cache[counter] += delta
        stats["cache"] = cache
        return stats

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _session_for(self, job: Job) -> _SessionSlot:
        """The (memoized, LRU-bounded) session slot for a job's graph."""
        from repro.api import SparsifierSession

        fingerprint = job._fingerprint
        with self._cond:
            slot = self._sessions.get(fingerprint)
            if slot is not None:
                self._sessions.move_to_end(fingerprint)
                return slot
            graph = job._graph
        session = SparsifierSession(
            graph, label=job._resolved_label,
            persistent=self.persistent, cache_dir=self.cache_dir,
        )
        slot = _SessionSlot(session)
        with self._cond:
            existing = self._sessions.get(fingerprint)
            if existing is not None:
                return existing
            self._sessions[fingerprint] = slot
            # Evict LRU-first, but never a session mid-job (its lock is
            # held): evicting one would let a second job on that graph
            # build a duplicate session and run unserialized beside it.
            # If every session is busy, tolerate a temporary overshoot.
            while len(self._sessions) > self.max_sessions:
                victims = [
                    victim
                    for victim, victim_slot in self._sessions.items()
                    if victim != fingerprint
                    and not victim_slot.lock.locked()
                ]
                if not victims:
                    break
                del self._sessions[victims[0]]
        return slot

    def _worker_loop(self) -> None:
        """One worker thread: pop → run → publish, until shutdown."""
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait()
                if not self._queue and self._stopping:
                    return
                _, _, job_id = heapq.heappop(self._queue)
                job = self._jobs.get(job_id)
                if job is None or job.status != "queued":
                    # Ghost entry (cancelled/pruned while queued): tell
                    # drain()/shutdown waiters the queue shrank, or a
                    # drain that last saw the ghost would sleep forever.
                    self._cond.notify_all()
                    continue
                job.status = "running"
                job.started_at = time.time()
                self._running.add(job.id)
                self._cond.notify_all()
            try:
                record = self._run_job(job)
            except WorkerCrashError as exc:
                # Infrastructure death (retries exhausted): fail only
                # the crashed primary; its followers asked for a result
                # the crash says nothing about, so they re-queue under
                # a promoted heir instead of inheriting the failure.
                self._crash(job, f"{type(exc).__name__}: {exc}")
            except Exception as exc:
                # Any in-job failure — bad numerics, a runner bug —
                # fails this job (and its followers); the worker
                # itself survives.
                self._finish(job, error=f"{type(exc).__name__}: {exc}")
            else:
                self._finish(job, record=record)

    def _run_job(self, job: Job) -> dict:
        """Run one primary on the backend, retrying worker crashes.

        Stamps ``job.attempts``; folds worker-side cache deltas into
        the service totals.  A crash beyond the retry budget
        propagates :class:`~repro.exceptions.WorkerCrashError`.
        """
        faults.maybe_delay("scheduler", self.faults_dir)
        attempt = 0
        while True:
            attempt += 1
            job.attempts = attempt
            try:
                record, cache_delta = self._backend.run(job)
            except WorkerCrashError:
                with self._cond:
                    self.worker_restarts += 1
                if attempt > self.retries:
                    raise
                continue
            if cache_delta:
                with self._cond:
                    self._external_cache.update(cache_delta)
            return record

    def _execute(self, job: Job) -> dict:
        """Run one primary job on its graph's shared warm session.

        The in-process path the thread backend delegates to; the
        actual run logic is the backend-shared
        :func:`~repro.service.executors.run_spec_on_session`.
        """
        slot = self._session_for(job)
        with slot.lock:
            return run_spec_on_session(
                slot.session, job.spec, job._resolved_label
            )

    def _crash(self, job: Job, error: str) -> None:
        """Fail a primary whose worker died; promote its followers."""
        with self._cond:
            self._running.discard(job.id)
            self._promote_followers(job)
            job.status = "failed"
            job.error = error
            job.finished_at = time.time()
            job._graph = None
            self._prune_jobs()
            self._cond.notify_all()

    def _finish(self, job: Job, *, record: dict | None = None,
                error: str | None = None) -> None:
        """Publish a primary's outcome to it and all its followers."""
        with self._cond:
            self._running.discard(job.id)
            if self._inflight.get(job._dedup_key) == job.id:
                del self._inflight[job._dedup_key]
            finished_at = time.time()
            targets = [job] + [
                self._jobs[fid]
                for fid in self._followers.pop(job.id, [])
                if self._jobs[fid].status == "queued"
            ]
            for target in targets:
                target.record = record
                target.error = error
                target.status = "done" if error is None else "failed"
                if target.started_at is None:
                    target.started_at = job.started_at
                target.finished_at = finished_at
                target._graph = None        # release the loaded graph
            if record is not None:
                self.completed_runs += 1
            self._prune_jobs()
            self._cond.notify_all()

    def _mark_cancelled(self, job: Job) -> None:
        """Transition a queued job to ``cancelled`` (lock held)."""
        job.status = "cancelled"
        job.finished_at = time.time()
        job._graph = None                   # release the loaded graph
        self._prune_jobs()
        self._cond.notify_all()

    def _prune_jobs(self) -> None:
        """Drop the oldest finished jobs beyond ``max_jobs`` (lock
        held); their ids become unknown to :meth:`job` afterwards."""
        excess = len(self._jobs) - self.max_jobs
        if excess <= 0:
            return
        stale = [
            job_id for job_id, job in self._jobs.items()
            if job.finished
        ][:excess]
        for job_id in stale:
            del self._jobs[job_id]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._cond:
            return (
                f"SparsifierService(workers={self.workers}, "
                f"jobs={len(self._jobs)}, queued={len(self._queue)}, "
                f"dedup_hits={self.dedup_hits})"
            )
