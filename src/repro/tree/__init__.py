"""Spanning trees/forests, rooted structure, offline LCA and stretch."""

from repro.tree.dsu import DisjointSetUnion
from repro.tree.spanning import (
    maximum_spanning_forest,
    effective_weights,
    mewst,
    bfs_spanning_forest,
)
from repro.tree.rooted import RootedForest
from repro.tree.lca import tarjan_offline_lca, batch_tree_resistances
from repro.tree.stretch import edge_stretches, total_stretch, average_stretch

__all__ = [
    "DisjointSetUnion",
    "maximum_spanning_forest",
    "effective_weights",
    "mewst",
    "bfs_spanning_forest",
    "RootedForest",
    "tarjan_offline_lca",
    "batch_tree_resistances",
    "edge_stretches",
    "total_stretch",
    "average_stretch",
]
