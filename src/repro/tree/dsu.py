"""Disjoint-set union (union-find) with path compression and union by rank.

Used by Kruskal's spanning-forest construction and Tarjan's offline LCA
(the paper cites Gabow & Tarjan [9] for the latter).
"""

from __future__ import annotations

import numpy as np

__all__ = ["DisjointSetUnion"]


class DisjointSetUnion:
    """Array-backed DSU over the integers ``0..n-1``."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)

    def find(self, x: int) -> int:
        """Representative of x's set (iterative, with path compression)."""
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of *x* and *y*; returns False if already merged."""
        root_x, root_y = self.find(x), self.find(y)
        if root_x == root_y:
            return False
        rank = self.rank
        if rank[root_x] < rank[root_y]:
            root_x, root_y = root_y, root_x
        self.parent[root_y] = root_x
        if rank[root_x] == rank[root_y]:
            rank[root_x] += 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """True when *x* and *y* are in the same set."""
        return self.find(x) == self.find(y)

    def component_count(self) -> int:
        """Number of disjoint sets."""
        return int(np.sum(self.parent == np.arange(len(self.parent))))
