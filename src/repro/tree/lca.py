"""Tarjan's offline lowest-common-ancestor algorithm.

The paper (Sec. 3.2) computes tree effective resistances for *all*
off-tree edges in one pass with Tarjan's offline LCA [9]: one DFS over
the spanning forest plus near-constant-time DSU operations, answering
every query ``lca(p, q)`` in overall ``O((n + q) alpha(n))`` time.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotATreeError
from repro.tree.dsu import DisjointSetUnion
from repro.tree.rooted import RootedForest

__all__ = ["tarjan_offline_lca", "batch_tree_resistances"]


def tarjan_offline_lca(forest: RootedForest, qu, qv) -> np.ndarray:
    """Answer a batch of LCA queries over a rooted forest.

    Parameters
    ----------
    forest:
        The rooted spanning forest.
    qu, qv:
        Query endpoint arrays (same length).  Both endpoints of each
        query must lie in the same component.

    Returns
    -------
    numpy.ndarray
        ``lca[k]`` for each query ``(qu[k], qv[k])``.
    """
    qu = np.asarray(qu, dtype=np.int64)
    qv = np.asarray(qv, dtype=np.int64)
    if qu.shape != qv.shape:
        raise ValueError("query arrays must have the same shape")
    n = forest.n
    n_queries = len(qu)
    if n_queries == 0:
        return np.empty(0, dtype=np.int64)
    labels = forest.component_labels
    if np.any(labels[qu] != labels[qv]):
        raise NotATreeError("an LCA query spans two components")

    # Bucket queries by endpoint (each query hangs off both endpoints).
    heads = np.concatenate([qu, qv])
    others = np.concatenate([qv, qu])
    qids = np.concatenate([np.arange(n_queries), np.arange(n_queries)])
    order = np.argsort(heads, kind="stable")
    qother = others[order]
    qid_sorted = qids[order]
    counts = np.bincount(heads, minlength=n)
    qptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=qptr[1:])

    indptr, nbr, _ = forest.tree.adjacency()
    parent = forest.parent
    dsu = DisjointSetUnion(n)
    ancestor = np.arange(n, dtype=np.int64)
    black = np.zeros(n, dtype=bool)
    answers = np.full(n_queries, -1, dtype=np.int64)

    # Iterative DFS with an explicit (node, adjacency-cursor) stack.
    stack_node = np.empty(n, dtype=np.int64)
    stack_cursor = np.empty(n, dtype=np.int64)
    for root in forest.roots:
        top = 0
        stack_node[0] = root
        stack_cursor[0] = indptr[root]
        while top >= 0:
            node = stack_node[top]
            cursor = stack_cursor[top]
            if cursor < indptr[node + 1]:
                stack_cursor[top] = cursor + 1
                child = int(nbr[cursor])
                if child == parent[node]:
                    continue
                top += 1
                stack_node[top] = child
                stack_cursor[top] = indptr[child]
            else:
                # All children of *node* are finished: color it black,
                # answer its pending queries, then merge into its parent.
                top -= 1
                black[node] = True
                for k in range(qptr[node], qptr[node + 1]):
                    other = int(qother[k])
                    if black[other]:
                        answers[qid_sorted[k]] = ancestor[dsu.find(other)]
                par = int(parent[node])
                if par >= 0:
                    dsu.union(par, node)
                    ancestor[dsu.find(par)] = par
    if np.any(answers < 0):  # pragma: no cover - defensive
        raise NotATreeError("offline LCA left queries unanswered")
    return answers


def batch_tree_resistances(forest: RootedForest, qu, qv):
    """Tree effective resistances for many node pairs at once.

    Returns ``(resistances, lcas)``; uses Tarjan's offline LCA so the
    whole batch costs one DFS.
    """
    lcas = tarjan_offline_lca(forest, qu, qv)
    rdist = forest.rdist
    resistances = rdist[qu] + rdist[qv] - 2.0 * rdist[lcas]
    return resistances, lcas
