"""Rooted spanning forest structure.

:class:`RootedForest` wraps a spanning forest of a graph with parent
pointers, hop depths and *resistive* root distances (sum of ``1/w``
along the root path).  It provides tree effective resistances

    ``R_T(p, q) = rdist[p] + rdist[q] - 2 rdist[lca(p, q)]``

(Eq. 4 restricted to trees) and tree paths, both of which the tree phase
of Algorithm 2 consumes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotATreeError
from repro.graph.bfs import bfs_tree_order
from repro.graph.components import connected_components, component_roots
from repro.graph.graph import Graph

__all__ = ["RootedForest"]


class RootedForest:
    """A spanning forest of *graph* rooted at each component's min node.

    Parameters
    ----------
    graph:
        The parent graph.
    tree_edge_ids:
        Ids (into the parent graph's edge arrays) of the forest edges.
        Must be acyclic and span every component of the induced node set.

    Attributes
    ----------
    parent : numpy.ndarray
        Parent node of each node (``-1`` at roots).
    parent_edge : numpy.ndarray
        Global edge id of the (parent, node) edge (``-1`` at roots).
    depth : numpy.ndarray
        Hop distance from the component root.
    rdist : numpy.ndarray
        Resistive distance from the root: sum of ``1/w`` on the path.
    """

    def __init__(self, graph: Graph, tree_edge_ids, validate_spanning=True):
        tree_edge_ids = np.sort(np.asarray(tree_edge_ids, dtype=np.int64))
        self.graph = graph
        self.edge_ids = tree_edge_ids
        self.tree = graph.subgraph(tree_edge_ids)
        count, labels = connected_components(self.tree)
        if len(tree_edge_ids) != graph.n - count:
            raise NotATreeError(
                f"{len(tree_edge_ids)} edges cannot be a spanning forest of "
                f"{graph.n} nodes with {count} components"
            )
        if validate_spanning:
            graph_count, _ = connected_components(graph)
            if count != graph_count:
                raise NotATreeError(
                    f"forest has {count} components but the graph has "
                    f"{graph_count}: the forest does not span every component"
                )
        self.component_count = count
        self.component_labels = labels
        self.roots = component_roots(labels)

        indptr, nbr, local_eid = self.tree.adjacency()
        order, pred = bfs_tree_order(indptr, nbr, self.roots, n=graph.n)
        if len(order) != graph.n:
            raise NotATreeError("forest does not reach every node")
        self.order = order
        self.parent = pred

        # Map (parent, node) pairs back to global edge ids and accumulate
        # depth / resistive distance in BFS order (parents come first).
        local_lookup = self.tree.edge_lookup()
        parent_edge = np.full(graph.n, -1, dtype=np.int64)
        depth = np.zeros(graph.n, dtype=np.int64)
        rdist = np.zeros(graph.n, dtype=np.float64)
        weights = graph.w
        for node in order:
            par = pred[node]
            if par < 0:
                continue
            a, b = (int(par), int(node)) if par < node else (int(node), int(par))
            local = local_lookup[(a, b)]
            global_id = tree_edge_ids[local]
            parent_edge[node] = global_id
            depth[node] = depth[par] + 1
            rdist[node] = rdist[par] + 1.0 / weights[global_id]
        self.parent_edge = parent_edge
        self.depth = depth
        self.rdist = rdist
        self._tin = None
        self._tout = None

    # ------------------------------------------------------------------
    # membership helpers
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Node count of the parent graph."""
        return self.graph.n

    def tree_edge_mask(self) -> np.ndarray:
        """Boolean mask over the parent graph's edges (True = in forest)."""
        mask = np.zeros(self.graph.edge_count, dtype=bool)
        mask[self.edge_ids] = True
        return mask

    # ------------------------------------------------------------------
    # Euler tour intervals (subtree membership in O(1))
    # ------------------------------------------------------------------
    def euler_intervals(self):
        """DFS entry/exit times ``(tin, tout)`` for subtree tests.

        Node ``x`` lies in the subtree rooted at ``c`` iff
        ``tin[c] <= tin[x] < tout[c]``.  Used by the tree phase to test
        in O(1) whether a tree edge lies on the path between two nodes.
        """
        if self._tin is None:
            n = self.graph.n
            indptr, nbr, _ = self.tree.adjacency()
            tin = np.empty(n, dtype=np.int64)
            tout = np.empty(n, dtype=np.int64)
            parent = self.parent
            clock = 0
            stack_node = np.empty(n, dtype=np.int64)
            stack_cursor = np.empty(n, dtype=np.int64)
            for root in self.roots:
                top = 0
                stack_node[0] = root
                stack_cursor[0] = indptr[root]
                tin[root] = clock
                clock += 1
                while top >= 0:
                    node = stack_node[top]
                    cursor = stack_cursor[top]
                    if cursor < indptr[node + 1]:
                        stack_cursor[top] = cursor + 1
                        child = int(nbr[cursor])
                        if child == parent[node]:
                            continue
                        tin[child] = clock
                        clock += 1
                        top += 1
                        stack_node[top] = child
                        stack_cursor[top] = indptr[child]
                    else:
                        tout[node] = clock
                        top -= 1
            self._tin = tin
            self._tout = tout
        return self._tin, self._tout

    def edge_on_path(self, child: int, p: int, q: int) -> bool:
        """True when the tree edge (parent(child), child) is on path(p, q).

        The edge separates ``child``'s subtree from the rest of the
        tree, so it lies on the path iff exactly one endpoint is inside
        that subtree.
        """
        tin, tout = self.euler_intervals()
        in_p = tin[child] <= tin[p] < tout[child]
        in_q = tin[child] <= tin[q] < tout[child]
        return bool(in_p != in_q)

    # ------------------------------------------------------------------
    # LCA and paths
    # ------------------------------------------------------------------
    def lca_naive(self, p: int, q: int) -> int:
        """LCA by climbing parent pointers (reference implementation)."""
        if self.component_labels[p] != self.component_labels[q]:
            raise NotATreeError("nodes are in different components")
        depth = self.depth
        parent = self.parent
        while depth[p] > depth[q]:
            p = parent[p]
        while depth[q] > depth[p]:
            q = parent[q]
        while p != q:
            p = parent[p]
            q = parent[q]
        return int(p)

    def tree_resistance(self, p: int, q: int, lca: int = None) -> float:
        """Effective resistance between *p* and *q* through the forest."""
        if lca is None:
            lca = self.lca_naive(p, q)
        return float(self.rdist[p] + self.rdist[q] - 2.0 * self.rdist[lca])

    def path_edges(self, p: int, q: int, lca: int = None) -> np.ndarray:
        """Global edge ids on the unique forest path from *p* to *q*."""
        if lca is None:
            lca = self.lca_naive(p, q)
        edges = []
        node = p
        while node != lca:
            edges.append(int(self.parent_edge[node]))
            node = int(self.parent[node])
        tail = []
        node = q
        while node != lca:
            tail.append(int(self.parent_edge[node]))
            node = int(self.parent[node])
        edges.extend(reversed(tail))
        return np.asarray(edges, dtype=np.int64)

    def path_nodes(self, p: int, q: int, lca: int = None) -> np.ndarray:
        """Nodes on the forest path from *p* to *q* (inclusive)."""
        if lca is None:
            lca = self.lca_naive(p, q)
        front = []
        node = p
        while node != lca:
            front.append(int(node))
            node = int(self.parent[node])
        back = []
        node = q
        while node != lca:
            back.append(int(node))
            node = int(self.parent[node])
        return np.asarray(front + [int(lca)] + list(reversed(back)), dtype=np.int64)
