"""Spanning-forest extraction (Algorithm 2, step 1).

The paper constructs its initial subgraph with the *maximum effective
weight spanning tree* (MEWST) of feGRASS [13]: a maximum spanning tree
computed not on the raw weights but on "effective weights" that fold in
local degree information, which empirically yields a low-stretch tree.
We implement MEWST plus two alternatives used in the tree ablation
benchmark: the plain maximum-weight spanning forest and a BFS forest.

All functions return *edge id arrays* indexing into the parent graph's
edge storage, and operate per connected component (forests).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bfs import bfs_tree_order
from repro.graph.components import connected_components, component_roots
from repro.graph.graph import Graph
from repro.tree.dsu import DisjointSetUnion

__all__ = [
    "maximum_spanning_forest",
    "effective_weights",
    "mewst",
    "bfs_spanning_forest",
]


def maximum_spanning_forest(graph: Graph, key=None) -> np.ndarray:
    """Kruskal maximum spanning forest.

    Parameters
    ----------
    graph:
        Input graph (may be disconnected).
    key:
        Optional per-edge sort key (defaults to the edge weights); the
        forest maximizes the total key.

    Returns
    -------
    numpy.ndarray
        Sorted ids of the selected edges (``n - #components`` of them).
    """
    if key is None:
        key = graph.w
    key = np.asarray(key, dtype=np.float64)
    order = np.argsort(-key, kind="stable")
    dsu = DisjointSetUnion(graph.n)
    picked = []
    u, v = graph.u, graph.v
    for edge in order:
        if dsu.union(int(u[edge]), int(v[edge])):
            picked.append(int(edge))
    return np.sort(np.asarray(picked, dtype=np.int64))


def effective_weights(graph: Graph) -> np.ndarray:
    """feGRASS-style effective edge weights.

    For edge ``e = (u, v)`` we use
    ``w_e * (1/d_w(u) + 1/d_w(v)) / 2`` where ``d_w`` is the weighted
    degree.  ``(1/d_w(u) + 1/d_w(v)) / 2`` is the classic degree-local
    surrogate for effective resistance, so the product approximates the
    leverage score ``w_e * R_eff(e)``; maximizing it favours edges that
    the spectrum depends on, giving a low-stretch tree (see DESIGN.md,
    substitution 5).
    """
    deg = graph.weighted_degrees()
    inv_u = 1.0 / deg[graph.u]
    inv_v = 1.0 / deg[graph.v]
    return graph.w * 0.5 * (inv_u + inv_v)


def mewst(graph: Graph) -> np.ndarray:
    """Maximum effective weight spanning forest (feGRASS MEWST)."""
    return maximum_spanning_forest(graph, key=effective_weights(graph))


def bfs_spanning_forest(graph: Graph) -> np.ndarray:
    """BFS spanning forest from each component's smallest node id."""
    count, labels = connected_components(graph)
    roots = component_roots(labels)
    indptr, nbr, eid = graph.adjacency()
    order, pred = bfs_tree_order(indptr, nbr, roots, n=graph.n)
    # Recover edge ids: for each non-root node, find the edge to pred.
    lookup = graph.edge_lookup()
    picked = []
    for node in order:
        parent = pred[node]
        if parent < 0:
            continue
        a, b = (int(parent), int(node))
        if a > b:
            a, b = b, a
        picked.append(lookup[(a, b)])
    return np.sort(np.asarray(picked, dtype=np.int64))
