"""Stretch diagnostics for spanning trees.

The *stretch* of an off-tree edge ``e = (p, q)`` with respect to a tree
``T`` is ``w_e * R_T(p, q)``.  Low total stretch is the classic quality
measure for the spanning tree underlying a spectral sparsifier: it
equals ``Trace(L_T^{-1} L_G) - n`` up to regularization, which is
exactly the quantity Algorithm 2 attacks.  Used by the tree-choice
ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.tree.lca import batch_tree_resistances
from repro.tree.rooted import RootedForest

__all__ = ["edge_stretches", "total_stretch", "average_stretch"]


def edge_stretches(graph: Graph, forest: RootedForest) -> np.ndarray:
    """Stretch ``w_e * R_T(e)`` for every edge of *graph*.

    Tree edges have stretch exactly 1 (their tree path is themselves);
    they are included so the result aligns with the graph's edge arrays.
    """
    resistances, _ = batch_tree_resistances(forest, graph.u, graph.v)
    return graph.w * resistances


def total_stretch(graph: Graph, forest: RootedForest) -> float:
    """Sum of stretches over all edges."""
    return float(edge_stretches(graph, forest).sum())


def average_stretch(graph: Graph, forest: RootedForest) -> float:
    """Mean stretch per edge."""
    if graph.edge_count == 0:
        return 0.0
    return total_stretch(graph, forest) / graph.edge_count
