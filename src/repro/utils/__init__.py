"""Shared utilities: validation, timing, RNG plumbing and table reporting."""

from repro.utils.rng import as_rng
from repro.utils.timers import Timer
from repro.utils.reporting import Table, format_seconds, format_bytes
from repro.utils.validation import (
    check_positive,
    check_in_range,
    check_integer,
    check_square_sparse,
)

__all__ = [
    "as_rng",
    "Timer",
    "Table",
    "format_seconds",
    "format_bytes",
    "check_positive",
    "check_in_range",
    "check_integer",
    "check_square_sparse",
]
