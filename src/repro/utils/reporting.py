"""Plain-text table rendering for benchmark harnesses.

The benchmark scripts print rows in the same layout as the paper's
Tables 1-3; this module holds the shared formatting code.
"""

from __future__ import annotations

__all__ = ["Table", "format_seconds", "format_bytes", "format_count"]


def format_seconds(value: float) -> str:
    """Render a duration with sensible precision (``1.23`` / ``0.045``)."""
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def format_bytes(value: float) -> str:
    """Render a byte count as ``12.3MB`` / ``1.2GB``."""
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0:
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}PB"


def format_count(value: float) -> str:
    """Render a large count as ``1.0E6``-style scientific shorthand."""
    if value >= 1e5:
        return f"{value:.1E}"
    return str(int(value))


class Table:
    """Minimal monospace table builder.

    >>> t = Table(["case", "kappa"])
    >>> t.add_row(["grid", 12.5])
    >>> print(t.render())  # doctest: +ELLIPSIS
    case | kappa...
    """

    def __init__(self, columns: list) -> None:
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, values: list) -> None:
        """Append a row; values are stringified (floats get 4 sig figs)."""
        rendered = []
        for value in values:
            if isinstance(value, float):
                rendered.append(f"{value:.4g}")
            else:
                rendered.append(str(value))
        if len(rendered) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(rendered)}"
            )
        self.rows.append(rendered)

    def render(self) -> str:
        """Return the table as an aligned monospace string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)
