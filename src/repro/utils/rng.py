"""Deterministic random-number-generator plumbing.

Every stochastic entry point in the package accepts either an integer
seed, an existing :class:`numpy.random.Generator`, or ``None``.  This
module normalizes all three into a ``Generator`` so that benchmarks and
tests are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng"]


def as_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
