"""Small wall-clock timing helpers used by benchmarks and reports."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context-manager wall-clock timer.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self.start

    def restart(self) -> None:
        """Reset the start time to *now*."""
        self.start = time.perf_counter()

    def lap(self) -> float:
        """Return seconds elapsed since construction/``restart``."""
        return time.perf_counter() - self.start
