"""Argument validation helpers.

These helpers centralize the error messages so every public API in the
package reports bad input in the same voice.
"""

from __future__ import annotations

import numbers

import scipy.sparse as sp

__all__ = [
    "check_positive",
    "check_in_range",
    "check_integer",
    "check_square_sparse",
]


def check_positive(name: str, value) -> None:
    """Raise ``ValueError`` unless *value* is a real number > 0."""
    if not isinstance(value, numbers.Real) or not value > 0:
        raise ValueError(f"{name} must be a positive number, got {value!r}")


def check_in_range(name: str, value, low, high) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not isinstance(value, numbers.Real) or not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_integer(name: str, value, minimum: int = 0) -> None:
    """Raise ``ValueError`` unless *value* is an integer >= *minimum*."""
    if not isinstance(value, numbers.Integral) or value < minimum:
        raise ValueError(f"{name} must be an integer >= {minimum}, got {value!r}")


def check_square_sparse(name: str, matrix) -> None:
    """Raise ``TypeError``/``ValueError`` unless *matrix* is square sparse."""
    if not sp.issparse(matrix):
        raise TypeError(f"{name} must be a scipy sparse matrix, got {type(matrix)!r}")
    rows, cols = matrix.shape
    if rows != cols:
        raise ValueError(f"{name} must be square, got shape {matrix.shape}")
