"""repro.sparsify must be bit-identical to the per-method entry points."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.api import list_methods, sparsify
from repro.core import (
    ErSamplingConfig,
    SparsifierConfig,
    er_sample_sparsify,
    fegrass_sparsify,
    grass_sparsify,
    trace_reduction_sparsify,
)
from repro.exceptions import UnknownMethodError, UnknownOptionError
from repro.graph import grid2d

LEGACY = {
    "proposed": trace_reduction_sparsify,
    "grass": grass_sparsify,
    "fegrass": fegrass_sparsify,
    "er_sampling": er_sample_sparsify,
}


@pytest.fixture(scope="module")
def grid():
    return grid2d(13, 13, weights="uniform", seed=33)


@pytest.mark.parametrize("method", sorted(LEGACY))
@pytest.mark.parametrize("fraction", [0.0, 0.05, 0.15])
def test_facade_matches_legacy_entry_points(grid, method, fraction):
    new = sparsify(grid, method=method, edge_fraction=fraction, seed=2)
    old = LEGACY[method](grid, edge_fraction=fraction, seed=2)
    np.testing.assert_array_equal(new.edge_mask, old.edge_mask)
    np.testing.assert_array_equal(new.tree_edge_ids, old.tree_edge_ids)
    np.testing.assert_array_equal(
        new.recovered_edge_ids, old.recovered_edge_ids
    )


@settings(max_examples=15, deadline=None)
@given(
    method=st.sampled_from(sorted(LEGACY)),
    fraction=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_facade_bit_identity_property(method, fraction, seed):
    """Acceptance property: for every registered method and any
    (fraction, seed), the unified entry point reproduces the
    pre-refactor per-method function bit for bit."""
    graph = grid2d(9, 9, weights="uniform", seed=17)
    new = sparsify(graph, method=method, edge_fraction=fraction, seed=seed)
    old = LEGACY[method](graph, edge_fraction=fraction, seed=seed)
    np.testing.assert_array_equal(new.edge_mask, old.edge_mask)


def test_facade_accepts_config_instance(grid):
    config = SparsifierConfig(edge_fraction=0.08, rounds=2)
    via_config = sparsify(grid, method="proposed", config=config)
    via_options = sparsify(grid, method="proposed", edge_fraction=0.08,
                           rounds=2)
    np.testing.assert_array_equal(
        via_config.edge_mask, via_options.edge_mask
    )
    assert via_config.config is config


def test_facade_is_exported_at_top_level(grid):
    assert repro.sparsify is sparsify
    result = repro.sparsify(grid, method="er_sampling",
                            config=ErSamplingConfig(edge_fraction=0.05))
    assert result.edge_count > 0


def test_unknown_method_raises(grid):
    with pytest.raises(UnknownMethodError):
        sparsify(grid, method="nope")


def test_unknown_option_raises(grid):
    with pytest.raises(UnknownOptionError):
        sparsify(grid, method="er_sampling", rounds=3)
    with pytest.raises(UnknownOptionError):
        sparsify(grid, method="proposed", bogus_option=1)


def test_all_methods_share_budget_convention(grid):
    """Equal edge budget is what makes the paper's comparison fair."""
    counts = {
        method: sparsify(grid, method=method, edge_fraction=0.1).edge_count
        for method in list_methods()
    }
    assert len(set(counts.values())) == 1, counts
