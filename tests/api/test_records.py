"""RunRecord: lossless JSON round-trip and config reconstruction."""

import dataclasses
import json

import pytest

from repro.api import RunRecord, capture_environment, get_method, list_methods
from repro.api import sparsify
from repro.core import evaluate_sparsifier
from repro.graph import grid2d


@pytest.fixture(scope="module")
def grid():
    return grid2d(12, 12, weights="uniform", seed=7)


@pytest.mark.parametrize("method", sorted(list_methods()))
def test_config_roundtrips_through_json(grid, method):
    """config -> RunRecord -> JSON -> config must be equality-exact."""
    config = get_method(method).make_config(edge_fraction=0.08, seed=3)
    result = sparsify(grid, method=method, config=config)
    record = RunRecord.from_result(result, method=method, label="grid12")
    rebuilt = RunRecord.from_json(record.to_json())
    assert rebuilt == record
    assert rebuilt.to_config() == config
    assert type(rebuilt.to_config()) is type(config)


@pytest.mark.parametrize("method", sorted(list_methods()))
def test_record_roundtrip_with_quality(grid, method):
    result = sparsify(grid, method=method, edge_fraction=0.1)
    quality = evaluate_sparsifier(grid, result.sparsifier)
    record = RunRecord.from_result(
        result, method=method, label="grid12",
        quality=quality, evaluate_seconds=0.25,
    )
    text = record.to_json()
    json.loads(text)  # valid JSON
    rebuilt = RunRecord.from_json(text)
    assert rebuilt == record
    assert rebuilt.quality["kappa"] == pytest.approx(quality.kappa)
    assert rebuilt.quality["pcg_iterations"] == quality.pcg_iterations
    assert rebuilt.timings == {
        "sparsify_seconds": result.setup_seconds,
        "evaluate_seconds": 0.25,
    }
    assert rebuilt.rounds_log == record.rounds_log
    assert rebuilt.graph["nodes"] == grid.n
    assert rebuilt.graph["sparsifier_edges"] == result.edge_count


def test_record_everything_is_json_native(grid):
    """No numpy scalars may survive into the record."""

    def check(value, path="record"):
        if isinstance(value, dict):
            for k, v in value.items():
                assert isinstance(k, str), f"non-str key at {path}"
                check(v, f"{path}.{k}")
        elif isinstance(value, list):
            for i, v in enumerate(value):
                check(v, f"{path}[{i}]")
        else:
            assert value is None or isinstance(
                value, (bool, int, float, str)
            ), f"non-JSON type {type(value)} at {path}"

    result = sparsify(grid, method="proposed", edge_fraction=0.1, rounds=2)
    quality = evaluate_sparsifier(grid, result.sparsifier)
    record = RunRecord.from_result(
        result, method="proposed", label="grid12", quality=quality
    )
    check(record.to_dict())


def test_environment_capture():
    env = capture_environment()
    for key in ("python", "platform", "numpy", "scipy", "repro"):
        assert env[key]
    import repro

    assert env["repro"] == repro.__version__


def test_from_dict_tolerates_missing_optionals():
    record = RunRecord.from_dict(
        {"method": "proposed", "graph": {}, "config": {}}
    )
    assert record.quality is None
    assert record.rounds_log == []
    assert record.schema_version == 1


def test_schema_version_present(grid):
    result = sparsify(grid, method="fegrass", edge_fraction=0.05)
    record = RunRecord.from_result(result, method="fegrass")
    assert json.loads(record.to_json())["schema_version"] == 1


def test_record_is_dataclass():
    assert dataclasses.is_dataclass(RunRecord)
