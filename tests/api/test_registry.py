"""Registry introspection: every method publishes options + capabilities."""

import pytest

from repro.api import (
    MethodSpec,
    get_method,
    list_methods,
    methods_supporting,
    register_sparsifier,
    sparsifier_methods,
)
from repro.api.registry import _REGISTRY, CAPABILITY_FLAGS
from repro.core import (
    ErSamplingConfig,
    FegrassConfig,
    GrassConfig,
    SparsifierConfig,
)
from repro.exceptions import UnknownMethodError, UnknownOptionError

EXPECTED = {
    "proposed": SparsifierConfig,
    "grass": GrassConfig,
    "fegrass": FegrassConfig,
    "er_sampling": ErSamplingConfig,
}


def test_all_four_methods_registered():
    assert set(list_methods()) == set(EXPECTED)
    for name, config_cls in EXPECTED.items():
        assert get_method(name).config_cls is config_cls


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_every_method_lists_options_and_capabilities(name):
    spec = get_method(name)
    options = spec.options()
    # Options mirror the config dataclass exactly.
    assert set(options) == set(spec.option_names())
    assert set(options) == {
        f.name for f in __import__("dataclasses").fields(spec.config_cls)
    }
    # The shared contract fields are always present.
    assert "edge_fraction" in options
    assert "seed" in options
    assert options["edge_fraction"].type is float
    assert options["seed"].type is int
    # Capability flags are complete booleans.
    caps = spec.capabilities
    assert set(caps) == set(CAPABILITY_FLAGS)
    assert all(isinstance(v, bool) for v in caps.values())
    assert spec.description


def test_capability_flags_match_reality():
    assert get_method("proposed").supports_rounds
    assert get_method("proposed").supports_workers
    assert get_method("grass").supports_rounds
    assert not get_method("grass").supports_workers
    assert not get_method("fegrass").supports_rounds
    assert not get_method("er_sampling").supports_rounds
    assert all(spec.deterministic for spec in sparsifier_methods().values())


def test_optional_types_resolve_to_concrete():
    assert get_method("proposed").options()["cache_max_nodes"].type is int
    assert get_method("er_sampling").options()["sketch_size"].type is int


def test_make_config_rejects_inapplicable_option():
    with pytest.raises(UnknownOptionError) as excinfo:
        get_method("fegrass").make_config(rounds=3)
    message = str(excinfo.value)
    assert "fegrass" in message and "'rounds'" in message
    assert "grass" in message and "proposed" in message  # who supports it


def test_make_config_rejects_config_plus_options():
    with pytest.raises(UnknownOptionError):
        get_method("proposed").make_config(SparsifierConfig(), rounds=2)


def test_make_config_rejects_wrong_config_type():
    with pytest.raises(UnknownOptionError):
        get_method("fegrass").make_config(SparsifierConfig())


def test_make_config_validates():
    from repro.exceptions import GraphError

    with pytest.raises(GraphError):
        get_method("proposed").make_config(rounds=0)


def test_configs_reject_positional_construction():
    """Deriving from BaseSparsifierConfig moved the shared fields to
    the front; keyword-only construction keeps old positional calls
    (e.g. ``GrassConfig(0.1, 3)`` meaning rounds=3) from silently
    re-binding to the new order."""
    for config_cls in EXPECTED.values():
        with pytest.raises(TypeError):
            config_cls(0.1)


def test_partition_preconditioner_forwards_reg_rel():
    """Regression: reg_rel must reach the sparsifier config (and the
    final factorization), not be swallowed by the helper."""
    from repro.graph import grid2d
    from repro.partitioning import build_partition_preconditioner

    graph = grid2d(8, 8, weights="uniform", seed=2)
    _, result = build_partition_preconditioner(
        graph, method="proposed", reg_rel=1e-4, rounds=1
    )
    assert result.config.reg_rel == 1e-4


def test_unknown_method_lists_registry():
    with pytest.raises(UnknownMethodError) as excinfo:
        get_method("magic")
    assert "proposed" in str(excinfo.value)


def test_methods_supporting():
    assert methods_supporting("workers") == ("proposed",)
    assert set(methods_supporting("rounds")) == {"grass", "proposed"}
    assert set(methods_supporting("edge_fraction")) == set(EXPECTED)
    assert methods_supporting("no_such_option") == ()


def test_register_and_duplicate_rejection():
    @register_sparsifier(
        "_test_method", config_cls=FegrassConfig, description="test stub"
    )
    def _stub(graph, config, artifacts=None):  # pragma: no cover
        raise NotImplementedError

    try:
        assert "_test_method" in list_methods()
        spec = get_method("_test_method")
        assert isinstance(spec, MethodSpec)
        assert spec.runner is _stub
        with pytest.raises(ValueError):
            register_sparsifier(
                "_test_method", config_cls=FegrassConfig
            )(_stub)
    finally:
        _REGISTRY.pop("_test_method", None)
    assert "_test_method" not in list_methods()
