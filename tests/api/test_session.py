"""SparsifierSession: artifact reuse must be observable and bit-exact."""

import numpy as np
import pytest

from repro.api import SparsifierSession, sparsify
from repro.graph import grid2d, triangular_mesh


@pytest.fixture()
def grid():
    return grid2d(14, 14, weights="uniform", seed=21)


def test_fraction_sweep_reuses_tree_artifacts_bit_identically(grid):
    """The acceptance shape: a proposed-method fraction sweep derives the
    spanning tree / forest / shift / tree-phase scores once, and every
    warm result equals its cold counterpart exactly."""
    fractions = (0.03, 0.06, 0.10, 0.15)
    session = SparsifierSession(grid, label="grid14")
    warm = [session.sparsify("proposed", edge_fraction=f, rounds=2)
            for f in fractions]
    cold = [sparsify(grid, method="proposed", edge_fraction=f, rounds=2)
            for f in fractions]
    for w, c in zip(warm, cold):
        np.testing.assert_array_equal(w.edge_mask, c.edge_mask)
        np.testing.assert_array_equal(
            w.recovered_edge_ids, c.recovered_edge_ids
        )
    stats = session.stats()
    for kind in ("tree", "forest", "shift", "tree_phase"):
        assert stats["misses"][kind] == 1
        assert stats["hits"][kind] == len(fractions) - 1, kind


def test_er_sampling_sweep_reuses_factor_and_sketch(grid):
    """The full-graph Cholesky factor and the JL resistance sketch are
    fraction-independent; reuse must keep the sampled masks identical
    (the RNG state is restored to its post-sketch position)."""
    fractions = (0.05, 0.10, 0.20)
    session = SparsifierSession(grid)
    warm = [session.sparsify("er_sampling", edge_fraction=f, seed=4)
            for f in fractions]
    cold = [sparsify(grid, method="er_sampling", edge_fraction=f, seed=4)
            for f in fractions]
    for w, c in zip(warm, cold):
        np.testing.assert_array_equal(w.edge_mask, c.edge_mask)
    stats = session.stats()
    assert stats["misses"]["factor_g"] == 1
    assert stats["misses"]["er_resistances"] == 1
    assert stats["hits"]["er_resistances"] == len(fractions) - 1


def test_cross_method_sharing(grid):
    """Methods share the tree/forest/shift artifacts between them."""
    session = SparsifierSession(grid)
    session.sparsify("fegrass", edge_fraction=0.1)
    session.sparsify("grass", edge_fraction=0.1, rounds=2)
    session.sparsify("proposed", edge_fraction=0.1, rounds=2)
    stats = session.stats()
    assert stats["misses"]["tree"] == 1       # mewst computed once
    assert stats["hits"]["tree"] == 2
    assert stats["misses"]["forest"] == 1
    # grass-only artifact exists alongside.
    assert stats["misses"]["laplacian_g"] == 1


def test_grass_repeat_reuses_laplacian(grid):
    session = SparsifierSession(grid)
    a = session.sparsify("grass", edge_fraction=0.08, rounds=2, seed=9)
    b = session.sparsify("grass", edge_fraction=0.12, rounds=2, seed=9)
    cold_a = sparsify(grid, method="grass", edge_fraction=0.08, rounds=2,
                      seed=9)
    cold_b = sparsify(grid, method="grass", edge_fraction=0.12, rounds=2,
                      seed=9)
    np.testing.assert_array_equal(a.edge_mask, cold_a.edge_mask)
    np.testing.assert_array_equal(b.edge_mask, cold_b.edge_mask)
    assert session.stats()["hits"]["laplacian_g"] == 1


def test_fegrass_sweep_reuses_stretch(grid):
    session = SparsifierSession(grid)
    for f in (0.05, 0.10, 0.25):
        warm = session.sparsify("fegrass", edge_fraction=f)
        cold = sparsify(grid, method="fegrass", edge_fraction=f)
        np.testing.assert_array_equal(warm.edge_mask, cold.edge_mask)
    assert session.stats()["hits"]["tree_stretch"] == 2


def test_beta_change_is_a_cache_miss(grid):
    """Artifact keys pin every determining input: a different beta must
    not be served from the beta=5 tree-phase entry."""
    session = SparsifierSession(grid)
    a = session.sparsify("proposed", edge_fraction=0.1, rounds=1, beta=5)
    b = session.sparsify("proposed", edge_fraction=0.1, rounds=1, beta=2)
    assert session.stats()["misses"]["tree_phase"] == 2
    cold_b = sparsify(grid, method="proposed", edge_fraction=0.1, rounds=1,
                      beta=2)
    np.testing.assert_array_equal(b.edge_mask, cold_b.edge_mask)
    # Same budget either way — only the ranking (and hence the mask)
    # may differ between beta values.
    assert a.edge_count == b.edge_count


def test_run_emits_record_and_sweep_grid(grid):
    session = SparsifierSession(grid, label="grid14")
    record = session.run("fegrass", edge_fraction=0.1)
    assert record.method == "fegrass"
    assert record.graph["label"] == "grid14"
    assert record.quality is not None
    assert record.timings["evaluate_seconds"] >= 0

    bare = session.run("fegrass", evaluate=False, edge_fraction=0.1)
    assert bare.quality is None
    assert "evaluate_seconds" not in bare.timings

    records = session.sweep(
        methods=("proposed", "fegrass"), fractions=(0.05, 0.1),
        evaluate=False,
    )
    assert [(r.method, r.config["edge_fraction"]) for r in records] == [
        ("proposed", 0.05), ("proposed", 0.1),
        ("fegrass", 0.05), ("fegrass", 0.1),
    ]


def test_clear_resets_cache(grid):
    session = SparsifierSession(grid)
    session.sparsify("fegrass", edge_fraction=0.1)
    assert len(session.artifacts) > 0
    session.clear()
    assert len(session.artifacts) == 0
    assert session.stats() == {"hits": {}, "misses": {}, "entries": 0}


def test_session_on_mesh_matches_cold():
    mesh = triangular_mesh(150, shape="disk", weights="smooth", seed=5)
    session = SparsifierSession(mesh)
    for method in ("proposed", "grass", "fegrass", "er_sampling"):
        kwargs = {"rounds": 2} if method in ("proposed", "grass") else {}
        warm = session.sparsify(method, edge_fraction=0.12, seed=1, **kwargs)
        cold = sparsify(mesh, method=method, edge_fraction=0.12, seed=1,
                        **kwargs)
        np.testing.assert_array_equal(warm.edge_mask, cold.edge_mask)
