"""Concurrency regression tests for SparsifierSession/ArtifactStore.

The service scheduler hammers one session's artifact store from many
worker threads; the store's lock must make that safe — every thread
observes the same artifacts and results stay bit-identical to a
single-threaded (and to a session-less cold) run.
"""

import threading

import numpy as np
import pytest

from repro.api import SparsifierSession, sparsify
from repro.graph import grid2d

CONFIGS = [
    ("proposed", {"edge_fraction": 0.1, "rounds": 2}),
    ("grass", {"edge_fraction": 0.1, "rounds": 1}),
    ("er_sampling", {"edge_fraction": 0.1}),
]
N_THREADS = 6


def _edges(result):
    g = result.sparsifier
    return (g.u.tobytes(), g.v.tobytes(), g.w.tobytes())


class TestSessionThreadSafety:
    @pytest.fixture(scope="class")
    def graph(self):
        return grid2d(12, 12, weights="uniform", seed=7)

    def test_hammered_session_is_bit_identical_to_cold(self, graph):
        baselines = {
            method: sparsify(graph, method, **options)
            for method, options in CONFIGS
        }
        session = SparsifierSession(graph, label="hammer")
        outcomes = [None] * N_THREADS
        errors = []

        def _worker(slot: int) -> None:
            try:
                outcomes[slot] = {
                    method: _edges(session.sparsify(method, **options))
                    for method, options in CONFIGS
                }
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=_worker, args=(slot,))
            for slot in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors
        expected = {
            method: _edges(result)
            for method, result in baselines.items()
        }
        for outcome in outcomes:
            assert outcome == expected

    def test_stats_do_not_block_behind_an_inflight_build(self, graph):
        """Regression: a long artifact build must not freeze readers —
        the service's /stats endpoint snapshots counters while worker
        threads are mid-build."""
        session = SparsifierSession(graph, label="nonblocking")
        build_started = threading.Event()
        release_build = threading.Event()

        def _slow_build():
            build_started.set()
            assert release_build.wait(timeout=60)
            return "built"

        builder = threading.Thread(
            target=lambda: session.artifacts.get(
                "slow-artifact", (), _slow_build
            ),
        )
        builder.start()
        try:
            assert build_started.wait(timeout=60)
            done = threading.Event()
            stats_holder = {}
            reader = threading.Thread(
                target=lambda: (stats_holder.update(session.stats()),
                                done.set()),
            )
            reader.start()
            assert done.wait(timeout=10), \
                "stats() blocked behind an in-flight build"
            assert stats_holder["misses"]["slow-artifact"] == 1
        finally:
            release_build.set()
            builder.join(timeout=60)

    def test_artifacts_built_exactly_once_under_contention(self, graph):
        session = SparsifierSession(graph, label="contention")
        barrier = threading.Barrier(N_THREADS)
        built = []
        build_lock = threading.Lock()

        def _build():
            with build_lock:
                built.append(threading.get_ident())
            return np.arange(graph.n)

        values = [None] * N_THREADS

        def _worker(slot: int) -> None:
            barrier.wait()
            values[slot] = session.artifacts.get(
                "test-artifact", ("shared",), _build
            )

        threads = [
            threading.Thread(target=_worker, args=(slot,))
            for slot in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(built) == 1                    # single build won
        for value in values:
            assert value is values[0]             # everyone shares it
        stats = session.stats()
        assert stats["hits"]["test-artifact"] == N_THREADS - 1
        assert stats["misses"]["test-artifact"] == 1
