"""Shared fixtures: small deterministic graphs and factored Laplacians."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    grid2d,
    regularization_shift,
    regularized_laplacian,
    triangular_mesh,
)
from repro.linalg import cholesky
from repro.tree import RootedForest, mewst


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point the persistent artifact cache at a per-test directory.

    No test may read or pollute the developer's real ``~/.cache/repro``
    — and no test may go warm off another test's (or an earlier test
    run's) artifacts."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture(scope="session")
def small_grid():
    """8x8 grid with random weights (64 nodes, 112 edges)."""
    return grid2d(8, 8, weights="uniform", seed=11)


@pytest.fixture(scope="session")
def medium_grid():
    """20x20 grid (400 nodes) for slightly larger checks."""
    return grid2d(20, 20, weights="uniform", seed=12)


@pytest.fixture(scope="session")
def small_mesh():
    """Small Delaunay mesh (200 nodes)."""
    return triangular_mesh(200, shape="disk", weights="smooth", seed=13)


@pytest.fixture(scope="session")
def path_graph():
    """Path 0-1-2-3-4 with distinct weights (hand-checkable)."""
    return Graph.from_edges(5, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0), (3, 4, 0.5)])


@pytest.fixture(scope="session")
def triangle_graph():
    """Triangle with unequal weights."""
    return Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])


@pytest.fixture(scope="session")
def forest_graph():
    """Two disconnected components (tests forest-awareness)."""
    edges = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 1.5), (3, 4, 1.0), (4, 5, 3.0)]
    return Graph.from_edges(6, edges)


@pytest.fixture(scope="session")
def small_grid_tree(small_grid):
    return RootedForest(small_grid, mewst(small_grid))


@pytest.fixture(scope="session")
def small_grid_laplacians(small_grid):
    """(L_G, shift) for the small grid."""
    shift = regularization_shift(small_grid)
    return regularized_laplacian(small_grid, shift), shift


@pytest.fixture(scope="session")
def small_grid_factor(small_grid_laplacians):
    laplacian_g, _ = small_grid_laplacians
    return cholesky(laplacian_g)
