"""Tests for the GRASS and feGRASS baselines."""

import numpy as np
import pytest

from repro.core import (
    GrassConfig,
    evaluate_sparsifier,
    fegrass_sparsify,
    grass_sparsify,
    perturbation_criticality,
)
from repro.exceptions import GraphError
from repro.graph import (
    connected_components,
    grid2d,
    regularization_shift,
    regularized_laplacian,
)
from repro.linalg import cholesky
from repro.tree import mewst


@pytest.fixture(scope="module")
def grid():
    return grid2d(15, 15, seed=61)


class TestGrass:
    def test_budget_and_connectivity(self, grid):
        result = grass_sparsify(grid, edge_fraction=0.10, rounds=3, seed=0)
        budget = int(round(0.10 * grid.n))
        assert len(result.recovered_edge_ids) <= budget + 3
        count, _ = connected_components(result.sparsifier)
        assert count == 1

    def test_criticality_formula(self, grid):
        """Criticality == w_pq (h^T e_pq)^2 summed over probes."""
        shift = regularization_shift(grid)
        L_G = regularized_laplacian(grid, shift, fmt="csr")
        tree_ids = mewst(grid)
        L_T = regularized_laplacian(grid.subgraph(tree_ids), shift)
        factor = cholesky(L_T)
        off = np.setdiff1d(np.arange(grid.edge_count), tree_ids)
        crit = perturbation_criticality(
            grid, L_G, factor, off, power_steps=2, probe_vectors=2, rng=7
        )
        assert (crit >= 0).all()
        assert crit.shape == (len(off),)

    def test_criticality_detects_bottleneck(self):
        """Two clusters joined by off-tree edges: those edges dominate."""
        from repro.graph import Graph

        edges = []
        # Two 4-cliques.
        for base in (0, 4):
            for i in range(4):
                for j in range(i + 1, 4):
                    edges.append((base + i, base + j, 10.0))
        # One weak tree bridge + one strong off-tree bridge.
        edges.append((3, 4, 0.01))
        edges.append((0, 7, 1.0))
        g = Graph.from_edges(8, edges)
        shift = regularization_shift(g)
        L_G = regularized_laplacian(g, shift, fmt="csr")
        tree_ids = mewst(g)
        # Ensure the strong bridge is off-tree for this test to make sense.
        bridge = g.edge_lookup()[(0, 7)]
        if bridge in tree_ids:
            pytest.skip("bridge landed in tree")
        L_T = regularized_laplacian(g.subgraph(tree_ids), shift)
        factor = cholesky(L_T)
        off = np.setdiff1d(np.arange(g.edge_count), tree_ids)
        crit = perturbation_criticality(
            g, L_G, factor, off, power_steps=3, probe_vectors=4, rng=1
        )
        assert off[np.argmax(crit)] == bridge

    def test_config_validation(self):
        with pytest.raises(GraphError):
            GrassConfig(rounds=0).validate()
        with pytest.raises(GraphError):
            GrassConfig(power_steps=0).validate()
        with pytest.raises(GraphError):
            GrassConfig(probe_vectors=0).validate()
        with pytest.raises(GraphError):
            GrassConfig(tree_method="x").validate()

    def test_deterministic(self, grid):
        a = grass_sparsify(grid, edge_fraction=0.05, rounds=2, seed=9)
        b = grass_sparsify(grid, edge_fraction=0.05, rounds=2, seed=9)
        np.testing.assert_array_equal(a.edge_mask, b.edge_mask)

    def test_conflicting_args(self, grid):
        with pytest.raises(GraphError):
            grass_sparsify(grid, GrassConfig(), rounds=2)


class TestFegrass:
    def test_budget_and_connectivity(self, grid):
        result = fegrass_sparsify(grid, edge_fraction=0.10)
        count, _ = connected_components(result.sparsifier)
        assert count == 1
        budget = int(round(0.10 * grid.n))
        assert len(result.recovered_edge_ids) <= budget

    def test_single_pass(self, grid):
        result = fegrass_sparsify(grid, edge_fraction=0.10)
        assert len(result.rounds_log) == 1
        assert result.rounds_log[0]["phase"] == "fegrass"

    def test_highest_stretch_edge_recovered_without_similarity(self, grid):
        from repro.tree import RootedForest, batch_tree_resistances

        result = fegrass_sparsify(grid, edge_fraction=0.10, use_similarity=False)
        forest = RootedForest(grid, result.tree_edge_ids)
        mask = forest.tree_edge_mask()
        off = np.flatnonzero(~mask)
        resistances, _ = batch_tree_resistances(
            forest, grid.u[off], grid.v[off]
        )
        stretch = grid.w[off] * resistances
        top = off[np.argmax(stretch)]
        assert top in result.recovered_edge_ids


class TestOrdering:
    """The paper's quality ordering: proposed < GRASS on kappa.

    The locality approximations (beta-ball truncation, SPAI pruning)
    need a graph large enough that 5-hop balls are genuinely local;
    below a few thousand nodes GRASS's global power iteration is nearly
    exact and the ordering can flip, so this test uses a 60x60 grid
    (the benchmark suite checks the paper-scale cases).
    """

    def test_proposed_beats_grass_on_grid(self):
        from repro.core import trace_reduction_sparsify

        grid = grid2d(60, 60, seed=7)
        proposed = trace_reduction_sparsify(
            grid, edge_fraction=0.10, rounds=5, seed=1
        )
        grass = grass_sparsify(grid, edge_fraction=0.10, rounds=5, seed=1)
        q_prop = evaluate_sparsifier(grid, proposed.sparsifier)
        q_grass = evaluate_sparsifier(grid, grass.sparsifier)
        # Same edge budget.
        assert q_prop.sparsifier_edges == q_grass.sparsifier_edges
        assert q_prop.kappa <= q_grass.kappa
