"""The on-disk artifact cache: addressing, recovery and isolation.

The contract under test: a warm run in a *fresh process* (modeled by a
fresh session sharing nothing in memory) reproduces the cold run bit
for bit while loading its setup from disk; corrupt entries are evicted
and rebuilt instead of poisoning results; and every entry is content-
addressed, so a different graph, backend or package version can never
be served another's artifacts.
"""

import numpy as np
import pytest

import repro
from repro.api import SparsifierSession
from repro.core.base import ArtifactStore
from repro.core.diskcache import (
    CACHE_SCHEMA_VERSION,
    DiskCache,
    default_cache_root,
    graph_fingerprint,
)
from repro.graph import Graph, grid2d


@pytest.fixture()
def grid():
    return grid2d(12, 12, weights="uniform", seed=31)


class TestFingerprint:
    def test_identical_content_same_fingerprint(self):
        a = grid2d(10, 10, weights="uniform", seed=4)
        b = grid2d(10, 10, weights="uniform", seed=4)
        assert a is not b
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_single_weight_bit_changes_fingerprint(self):
        a = grid2d(10, 10, weights="uniform", seed=4)
        w = a.w.copy()
        w[0] = np.nextafter(w[0], np.inf)
        b = Graph(a.n, a.u.copy(), a.v.copy(), w)
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_seed_changes_fingerprint(self):
        a = grid2d(10, 10, weights="uniform", seed=4)
        b = grid2d(10, 10, weights="uniform", seed=5)
        assert graph_fingerprint(a) != graph_fingerprint(b)


class TestHitMiss:
    def test_roundtrip_numpy_payload(self, grid, tmp_path):
        cache = DiskCache(grid, root=tmp_path)
        value = {"ids": np.arange(7), "score": np.float64(0.25)}
        assert cache.store("tree", ("mewst",), value)
        found, loaded = cache.load("tree", ("mewst",))
        assert found
        np.testing.assert_array_equal(loaded["ids"], value["ids"])
        assert cache.stats()["hits"] == {"tree": 1}

    def test_absent_entry_is_miss(self, grid, tmp_path):
        cache = DiskCache(grid, root=tmp_path)
        found, value = cache.load("tree", ("mewst",))
        assert (found, value) == (False, None)
        assert cache.misses["tree"] == 1

    def test_key_distinguishes_backend(self, grid, tmp_path):
        cache = DiskCache(grid, root=tmp_path)
        cache.store("factor_g", (1e-6, "numpy"), "numpy-factor")
        found, _ = cache.load("factor_g", (1e-6, "scipy"))
        assert not found

    def test_graphs_are_namespaced(self, grid, tmp_path):
        other = grid2d(12, 12, weights="uniform", seed=32)
        DiskCache(grid, root=tmp_path).store("tree", ("mewst",), [1, 2])
        found, _ = DiskCache(other, root=tmp_path).load("tree", ("mewst",))
        assert not found

    def test_version_bump_starts_fresh_namespace(
        self, grid, tmp_path, monkeypatch
    ):
        cache = DiskCache(grid, root=tmp_path)
        cache.store("tree", ("mewst",), [1, 2, 3])
        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        found, _ = DiskCache(grid, root=tmp_path).load("tree", ("mewst",))
        assert not found

    def test_source_edit_starts_fresh_namespace(
        self, grid, tmp_path, monkeypatch
    ):
        """Any change to the package source — not just a version bump —
        must invalidate the cache, or a mid-development rerun would
        serve artifacts computed by the old code."""
        from repro.core import diskcache

        cache = DiskCache(grid, root=tmp_path)
        cache.store("tree", ("mewst",), [1, 2, 3])
        monkeypatch.setattr(
            diskcache, "_SOURCE_FINGERPRINT", "edited-source-digest"
        )
        found, _ = DiskCache(grid, root=tmp_path).load("tree", ("mewst",))
        assert not found

    def test_library_upgrade_starts_fresh_namespace(
        self, grid, tmp_path, monkeypatch
    ):
        """A numpy/scipy upgrade can change factor bits; pre-upgrade
        artifacts must never be served under the new libraries."""
        from repro.core import diskcache

        cache = DiskCache(grid, root=tmp_path)
        cache.store("tree", ("mewst",), [1, 2, 3])
        monkeypatch.setattr(
            diskcache, "_library_versions", lambda: ("9.9.9", "9.9.9")
        )
        found, _ = DiskCache(grid, root=tmp_path).load("tree", ("mewst",))
        assert not found

    def test_stale_entries_garbage_collected_at_init(
        self, grid, tmp_path
    ):
        """Orphaned entries (every source edit strands the previous
        namespace) must not accumulate forever."""
        import os
        import time

        cache = DiskCache(grid, root=tmp_path)
        cache.store("tree", ("mewst",), [1, 2])
        cache.store("shift", (1e-6,), 0.5)
        (old,) = [p for p in tmp_path.rglob("*.pkl") if "tree" in p.name]
        ancient = time.time() - (DiskCache.max_age_days + 1) * 86400
        os.utime(old, (ancient, ancient))
        fresh = DiskCache(grid, root=tmp_path)
        assert not old.exists(), "stale entry must be collected"
        assert fresh.load("shift", (1e-6,))[0], "recent entry survives"

    def test_forest_kind_never_persisted(self, grid, tmp_path):
        """A RootedForest pickle embeds a full copy of the graph's edge
        arrays; it is rebuilt on warm runs instead of stored."""
        cache = DiskCache(grid, root=tmp_path)
        assert not cache.store("forest", ("mewst",), object())
        assert cache.skips["forest"] == 1
        assert not list(tmp_path.rglob("*.pkl"))
        assert cache.load("forest", ("mewst",)) == (False, None)

    def test_unpicklable_value_skipped_not_persisted(self, grid, tmp_path):
        cache = DiskCache(grid, root=tmp_path)
        assert not cache.store("factor_g", (1e-6, "scipy"), lambda: None)
        assert cache.skips["factor_g"] == 1
        assert not list(tmp_path.rglob("*.pkl"))

    def test_clear_removes_only_this_graph(self, grid, tmp_path):
        other = grid2d(12, 12, weights="uniform", seed=32)
        mine = DiskCache(grid, root=tmp_path)
        theirs = DiskCache(other, root=tmp_path)
        mine.store("tree", ("mewst",), [1])
        theirs.store("tree", ("mewst",), [2])
        assert mine.clear() == 1
        assert DiskCache(other, root=tmp_path).load("tree", ("mewst",))[0]


class TestCorruptionRecovery:
    def _entry_path(self, cache, tmp_path):
        files = list(tmp_path.rglob("*.pkl"))
        assert len(files) == 1
        return files[0]

    @pytest.mark.parametrize("damage", ["truncate", "garbage", "empty"])
    def test_corrupt_entry_evicted_and_rebuilt(
        self, grid, tmp_path, damage
    ):
        cache = DiskCache(grid, root=tmp_path)
        cache.store("tree", ("mewst",), list(range(100)))
        path = self._entry_path(cache, tmp_path)
        blob = path.read_bytes()
        if damage == "truncate":
            path.write_bytes(blob[: len(blob) // 2])
        elif damage == "garbage":
            path.write_bytes(b"\x80not a pickle at all")
        else:
            path.write_bytes(b"")
        found, value = cache.load("tree", ("mewst",))
        assert (found, value) == (False, None)
        assert cache.evictions["tree"] == 1
        assert not path.exists(), "corrupt entry must be deleted"
        # The store rebuilds through its normal build path.
        store = ArtifactStore(disk=cache)
        rebuilt = store.get("tree", ("mewst",), lambda: list(range(100)))
        assert rebuilt == list(range(100))
        assert cache.load("tree", ("mewst",)) == (True, list(range(100)))

    def test_unwritable_root_degrades_to_memory_only(self, grid, tmp_path):
        """An unwritable cache root must not abort the run after the
        expensive build succeeded — write-through is best-effort."""
        blocker = tmp_path / "root-is-a-file"
        blocker.write_text("not a directory")
        session = SparsifierSession(grid, cache_dir=blocker)
        result = session.sparsify("er_sampling", edge_fraction=0.05)
        assert result.edge_count > 0
        disk = session.stats()["disk"]
        assert sum(disk["errors"].values()) > 0
        assert sum(disk["stores"].values()) == 0
        # And the results equal a memory-only session's, bit for bit.
        plain = SparsifierSession(grid).sparsify(
            "er_sampling", edge_fraction=0.05
        )
        np.testing.assert_array_equal(result.edge_mask, plain.edge_mask)

    def test_explicit_store_still_raises_cache_error(self, grid, tmp_path):
        from repro.exceptions import CacheError

        blocker = tmp_path / "root-is-a-file"
        blocker.write_text("not a directory")
        cache = DiskCache(grid, root=blocker)
        with pytest.raises(CacheError, match="cannot write"):
            cache.store("tree", ("mewst",), [1, 2])

    def test_artifact_store_writes_through(self, grid, tmp_path):
        cache = DiskCache(grid, root=tmp_path)
        store = ArtifactStore(disk=cache)
        store.get("shift", (1e-6,), lambda: 0.125)
        warm = ArtifactStore(disk=DiskCache(grid, root=tmp_path))
        calls = []
        value = warm.get("shift", (1e-6,), lambda: calls.append(1) or 1.0)
        assert value == 0.125
        assert not calls, "disk hit must not invoke the builder"
        assert warm.stats()["disk"]["hits"] == {"shift": 1}


class TestCacheDirIsolation:
    def test_env_var_overrides_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-root"))
        assert default_cache_root() == tmp_path / "env-root"

    def test_default_root_is_user_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        root = default_cache_root()
        assert root.name == "repro" and root.parent.name == ".cache"

    def test_persistent_session_respects_env_root(
        self, grid, tmp_path, monkeypatch
    ):
        root = tmp_path / "session-root"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        session = SparsifierSession(grid, persistent=True)
        session.sparsify("er_sampling", edge_fraction=0.05)
        assert session.stats()["disk"]["root"] == str(root)
        assert list(root.rglob("*.pkl")), "artifacts must land under root"
        assert root.joinpath(f"v{CACHE_SCHEMA_VERSION}").is_dir()

    def test_roots_do_not_leak_into_each_other(self, grid, tmp_path):
        a = SparsifierSession(grid, cache_dir=tmp_path / "a")
        a.sparsify("er_sampling", edge_fraction=0.05)
        b = SparsifierSession(grid, cache_dir=tmp_path / "b")
        b.sparsify("er_sampling", edge_fraction=0.05)
        assert sum(b.stats()["disk"]["hits"].values()) == 0

    def test_memory_only_session_never_touches_disk(
        self, grid, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        session = SparsifierSession(grid)  # persistent not requested
        session.sparsify("er_sampling", edge_fraction=0.05)
        assert "disk" not in session.stats()
        assert not list(tmp_path.rglob("*.pkl"))


class TestWarmEqualsCold:
    @pytest.mark.parametrize("method,options", [
        ("proposed", {"rounds": 2}),
        ("er_sampling", {}),
        ("grass", {"rounds": 2}),
    ])
    def test_fresh_session_reproduces_run_from_disk(
        self, grid, tmp_path, method, options
    ):
        """Fresh sessions over one cache dir model two processes: the
        warm one must hit the disk and emit a bit-identical record."""
        cold_session = SparsifierSession(grid, cache_dir=tmp_path)
        cold = cold_session.run(
            method, edge_fraction=0.10, seed=1, **options
        )
        warm_session = SparsifierSession(grid, cache_dir=tmp_path)
        warm = warm_session.run(
            method, edge_fraction=0.10, seed=1, **options
        )
        assert warm.fingerprint() == cold.fingerprint()
        disk = warm_session.stats()["disk"]
        assert sum(disk["hits"].values()) > 0
        assert not disk["evictions"]

    def test_warm_er_sampling_skips_setup_entirely(self, grid, tmp_path):
        cold = SparsifierSession(grid, cache_dir=tmp_path)
        cold.sparsify("er_sampling", edge_fraction=0.10)
        warm = SparsifierSession(grid, cache_dir=tmp_path)
        warm.sparsify("er_sampling", edge_fraction=0.10)
        disk = warm.stats()["disk"]
        # Everything needed was loaded; nothing new was written.
        assert sum(disk["stores"].values()) == 0
        assert {"tree", "er_resistances"} <= set(disk["hits"])
