"""Tests for the Spielman-Srivastava effective-resistance baseline."""

import numpy as np
import pytest

from repro.core import (
    approximate_effective_resistances,
    er_sample_sparsify,
    evaluate_sparsifier,
)
from repro.core.resistance import effective_resistance
from repro.graph import connected_components, grid2d, regularization_shift
from repro.graph.laplacian import regularized_laplacian
from repro.linalg import cholesky


@pytest.fixture(scope="module")
def grid():
    return grid2d(12, 12, seed=101)


def test_jl_resistances_close_to_exact(grid):
    approx = approximate_effective_resistances(grid, sketch_size=400, seed=0)
    shift = regularization_shift(grid, 1e-6)
    factor = cholesky(regularized_laplacian(grid, shift))
    rng = np.random.default_rng(1)
    picks = rng.choice(grid.edge_count, size=20, replace=False)
    for edge in picks:
        exact = effective_resistance(
            factor.solve, int(grid.u[edge]), int(grid.v[edge]), grid.n
        )
        assert approx[edge] == pytest.approx(exact, rel=0.5)


def test_jl_resistances_bounded_by_direct_edge(grid):
    """R_eff(u,v) <= 1/w_uv for an existing edge (parallel paths help)."""
    approx = approximate_effective_resistances(grid, sketch_size=600, seed=2)
    assert (approx <= 1.3 / grid.w).all()


def test_sparsifier_is_connected(grid):
    result = er_sample_sparsify(grid, edge_fraction=0.10, seed=0)
    count, _ = connected_components(result.sparsifier)
    assert count == 1


def test_budget_respected(grid):
    result = er_sample_sparsify(grid, edge_fraction=0.10, seed=0)
    budget = int(round(0.10 * grid.n))
    assert len(result.recovered_edge_ids) == budget


def test_deterministic(grid):
    a = er_sample_sparsify(grid, edge_fraction=0.05, seed=5)
    b = er_sample_sparsify(grid, edge_fraction=0.05, seed=5)
    np.testing.assert_array_equal(a.edge_mask, b.edge_mask)


def test_positional_edge_fraction_still_works(grid):
    """Back-compat: the pre-registry signature passed edge_fraction as
    the second positional argument."""
    old_style = er_sample_sparsify(grid, 0.05, seed=5)
    new_style = er_sample_sparsify(grid, edge_fraction=0.05, seed=5)
    np.testing.assert_array_equal(old_style.edge_mask, new_style.edge_mask)


def test_wrong_config_type_is_a_clear_error(grid):
    from repro.core import SparsifierConfig
    from repro.exceptions import GraphError

    with pytest.raises(GraphError):
        er_sample_sparsify(grid, SparsifierConfig())


def test_quality_beats_tree_alone(grid):
    from repro.linalg import relative_condition_number

    result = er_sample_sparsify(grid, edge_fraction=0.15, seed=1)
    quality = evaluate_sparsifier(grid, result.sparsifier)
    shift = regularization_shift(grid)
    L_G = regularized_laplacian(grid, shift)
    tree = grid.subgraph(result.tree_edge_ids)
    L_T = regularized_laplacian(tree, shift)
    kappa_tree = relative_condition_number(L_G, cholesky(L_T), L_T)
    assert quality.kappa < kappa_tree


def test_without_tree_backbone(grid):
    result = er_sample_sparsify(
        grid, edge_fraction=0.3, include_tree=False, seed=3
    )
    assert len(result.tree_edge_ids) == 0
    assert result.edge_count == int(round(0.3 * grid.n))
