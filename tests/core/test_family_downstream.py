"""Downstream-quality regression over the new workload families.

Every registered sparsifier method must *work* — not merely run — on
every workload family the generator registry added beyond the
paper-style meshes: scale-free (ba), small-world, R-MAT (kronecker),
Poisson random (configmodel) and planted-block bipartite graphs.
"Work" is pinned the downstream way: relative condition number and PCG
iteration count within per-family bounds (measured values enjoy ~3x /
~2x headroom, so only a genuine quality regression trips them), and
PCG must converge.  Sizes are small; this is a tier-1 gate, not a
benchmark.
"""

import pytest

from repro.api import list_methods, sparsify
from repro.core.metrics import evaluate_sparsifier
from repro.graph import make_family_graph

#: family -> (kappa bound, PCG-iteration bound) at n=400, fraction 0.15.
FAMILY_BOUNDS = {
    "ba": (400.0, 60),
    "smallworld": (250.0, 50),
    "kronecker": (100.0, 40),
    "configmodel": (150.0, 45),
    "bipartite": (900.0, 80),
}


@pytest.mark.parametrize("family", sorted(FAMILY_BOUNDS))
@pytest.mark.parametrize("method", list_methods())
def test_every_method_handles_every_new_family(family, method):
    graph = make_family_graph(family, 400, seed=0)
    result = sparsify(graph, method=method, edge_fraction=0.15, seed=1)
    quality = evaluate_sparsifier(graph, result.sparsifier, seed=2)
    kappa_bound, iteration_bound = FAMILY_BOUNDS[family]
    assert quality.pcg_converged, (
        f"{method} on {family}: PCG failed to converge"
    )
    assert quality.kappa <= kappa_bound, (
        f"{method} on {family}: kappa {quality.kappa:.1f} "
        f"exceeds the {kappa_bound:.0f} regression bound"
    )
    assert quality.pcg_iterations <= iteration_bound, (
        f"{method} on {family}: {quality.pcg_iterations} PCG iterations "
        f"exceed the {iteration_bound} regression bound"
    )
    assert result.sparsifier.n == graph.n
