"""Tests for the vectorized micro-kernels in repro.core._kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core._kernels import (
    ball_pair_edge_sum,
    ball_pair_edge_sum_flat,
    concat_ranges,
)
from repro.graph import Graph


class TestConcatRanges:
    def test_basic(self):
        out = concat_ranges(np.array([0, 10]), np.array([3, 2]))
        np.testing.assert_array_equal(out, [0, 1, 2, 10, 11])

    def test_empty(self):
        assert len(concat_ranges(np.array([]), np.array([]))) == 0

    def test_zero_length_ranges_skipped(self):
        out = concat_ranges(np.array([5, 7, 9]), np.array([2, 0, 1]))
        np.testing.assert_array_equal(out, [5, 6, 9])

    def test_single_range(self):
        np.testing.assert_array_equal(
            concat_ranges(np.array([4]), np.array([4])), [4, 5, 6, 7]
        )

    def test_all_zero_lengths(self):
        assert len(concat_ranges(np.array([1, 2]), np.array([0, 0]))) == 0

    def test_all_empty_ranges_regression(self):
        """All-zero lengths early-return before any cum[-1] path.

        Pins down the defensive restructure (total-length check first):
        the old filter-then-check path also handled this, but the guard
        keeps any future edit from reordering the empty check after the
        cumsum indexing.  The empty result must carry the right dtype
        so downstream fancy indexing keeps working.
        """
        out = concat_ranges(np.arange(100), np.zeros(100, dtype=np.int64))
        assert out.shape == (0,)
        assert out.dtype == np.int64
        # An isolated node's adjacency range is the canonical producer
        # of the all-empty case: indexing with the result must not raise.
        assert len(np.arange(10)[out]) == 0

    def test_empty_input_arrays(self):
        out = concat_ranges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert out.shape == (0,)
        assert out.dtype == np.int64

    def test_negative_lengths_dropped(self):
        """Negative lengths are treated as empty ranges, not corruption."""
        out = concat_ranges(np.array([0, 5, 9]), np.array([3, -1, 2]))
        np.testing.assert_array_equal(out, [0, 1, 2, 9, 10])

    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 20)),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_naive(self, ranges):
        starts = np.array([s for s, _ in ranges], dtype=np.int64)
        lengths = np.array([l for _, l in ranges], dtype=np.int64)
        expected = np.concatenate(
            [np.arange(s, s + l) for s, l in ranges] or [np.empty(0)]
        ).astype(np.int64)
        np.testing.assert_array_equal(concat_ranges(starts, lengths), expected)


class TestBallPairEdgeSum:
    @pytest.fixture()
    def graph(self):
        # Square 0-1-2-3-0 plus diagonal (0, 2).
        return Graph.from_edges(
            4,
            [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 3, 4.0), (0, 2, 5.0)],
        )

    def _sum(self, graph, ball_p, ball_q, values):
        indptr, nbr, eid = graph.adjacency()
        stamp = np.zeros(graph.n, dtype=np.int64)
        stamp[np.asarray(ball_q)] = 1
        return ball_pair_edge_sum(
            indptr, nbr, eid, graph.w,
            np.asarray(ball_p, dtype=np.int64), stamp, 1,
            np.asarray(values, dtype=np.float64),
        )

    def test_single_edge(self, graph):
        values = np.array([1.0, 0.0, 0.0, 0.0])
        # Only edge (0,1) joins {0} to {1}: w=1, diff=1.
        assert self._sum(graph, [0], [1], values) == pytest.approx(1.0)

    def test_counts_each_edge_once(self, graph):
        """Edge with both endpoints in both balls is not double counted."""
        values = np.array([2.0, 1.0, 0.0, 0.0])
        result = self._sum(graph, [0, 1], [0, 1], values)
        # Only edge (0,1) has both endpoints inside both balls -> 1*(1)^2;
        # but edges from 0 or 1 leaving the ball of q don't count.
        assert result == pytest.approx(1.0)

    def test_full_balls_give_laplacian_quadratic_form(self, graph):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(4)
        everything = self._sum(graph, [0, 1, 2, 3], [0, 1, 2, 3], values)
        expected = float(
            np.sum(graph.w * (values[graph.u] - values[graph.v]) ** 2)
        )
        assert everything == pytest.approx(expected)

    def test_disjoint_balls_no_edges(self, graph):
        values = np.zeros(4)
        # Balls {1} and {3} are joined by no direct edge.
        assert self._sum(graph, [1], [3], values) == 0.0

    def test_empty_ball(self, graph):
        assert self._sum(graph, [], [0, 1], np.zeros(4)) == 0.0

    def test_flat_variant_matches(self, graph):
        """ball_pair_edge_sum == its pre-flattened twin on cached input."""
        rng = np.random.default_rng(1)
        values = rng.standard_normal(4)
        indptr, nbr, eid = graph.adjacency()
        ball_p = np.array([0, 1], dtype=np.int64)
        stamp = np.zeros(graph.n, dtype=np.int64)
        stamp[[1, 2]] = 1
        expected = ball_pair_edge_sum(
            indptr, nbr, eid, graph.w, ball_p, stamp, 1, values
        )
        starts = indptr[ball_p]
        lengths = indptr[ball_p + 1] - starts
        flat = concat_ranges(starts, lengths)
        got = ball_pair_edge_sum_flat(
            np.repeat(ball_p, lengths), nbr[flat], eid[flat],
            graph.w, stamp, 1, values,
        )
        assert got == expected
