"""Tests for sparsifier quality metrics."""

import numpy as np
import pytest

from repro.core import evaluate_sparsifier, pcg_performance, trace_reduction_sparsify
from repro.graph import grid2d, regularization_shift, regularized_laplacian
from repro.linalg import cholesky
from repro.tree import mewst


@pytest.fixture(scope="module")
def grid():
    return grid2d(12, 12, seed=71)


def test_report_fields(grid):
    result = trace_reduction_sparsify(grid, edge_fraction=0.10, rounds=2)
    report = evaluate_sparsifier(grid, result.sparsifier)
    assert report.nodes == grid.n
    assert report.graph_edges == grid.edge_count
    assert report.sparsifier_edges == result.edge_count
    assert report.kappa >= 1.0
    assert report.pcg_converged
    assert report.pcg_iterations > 0
    assert report.pcg_seconds >= 0
    assert report.factor_nnz > 0
    assert report.density == pytest.approx(result.edge_count / grid.n)


def test_self_sparsifier_is_perfect(grid):
    report = evaluate_sparsifier(grid, grid)
    assert report.kappa == pytest.approx(1.0, abs=1e-4)
    assert report.pcg_iterations <= 2


def test_pcg_performance_custom_rhs(grid):
    shift = regularization_shift(grid)
    L_G = regularized_laplacian(grid, shift, fmt="csr")
    tree = grid.subgraph(mewst(grid))
    factor = cholesky(regularized_laplacian(tree, shift))
    rhs = np.ones(grid.n)
    iters, seconds, result = pcg_performance(L_G, factor, rtol=1e-6, rhs=rhs)
    assert result.converged
    np.testing.assert_allclose(L_G @ result.x, rhs, atol=1e-3)


def test_lower_kappa_fewer_iterations(grid):
    """Quality ordering must show up in PCG iteration counts."""
    shift = regularization_shift(grid)
    sparse = trace_reduction_sparsify(grid, edge_fraction=0.01, rounds=1)
    dense = trace_reduction_sparsify(grid, edge_fraction=0.30, rounds=2)
    q_sparse = evaluate_sparsifier(grid, sparse.sparsifier, rtol=1e-8)
    q_dense = evaluate_sparsifier(grid, dense.sparsifier, rtol=1e-8)
    assert q_dense.kappa <= q_sparse.kappa
    assert q_dense.pcg_iterations <= q_sparse.pcg_iterations
