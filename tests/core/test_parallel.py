"""Tests for the chunked worker-pool executor (repro.core.parallel)."""

import sys
import warnings

import numpy as np
import pytest

from repro.core import (
    ApproxRanker,
    DEFAULT_CHUNK_SIZE,
    TreePhaseRanker,
    approximate_trace_reduction,
    chunk_spans,
    resolve_workers,
    score_edges,
    trace_reduction_sparsify,
)
from repro.graph import regularization_shift, regularized_laplacian
from repro.linalg import cholesky, sparse_approximate_inverse
from repro.tree import RootedForest, mewst


class TestChunkSpans:
    def test_exact_cover(self):
        spans = chunk_spans(10, 3)
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_span(self):
        assert chunk_spans(5, 100) == [(0, 5)]

    def test_empty(self):
        assert chunk_spans(0, 4) == []

    def test_auto_uses_default(self):
        spans = chunk_spans(DEFAULT_CHUNK_SIZE + 1, 0)
        assert spans == [
            (0, DEFAULT_CHUNK_SIZE),
            (DEFAULT_CHUNK_SIZE, DEFAULT_CHUNK_SIZE + 1),
        ]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chunk_spans(10, -1)


class TestResolveWorkers:
    def test_passthrough(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_zero_means_cpu_count(self):
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


needs_fork_pool = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="fork-based worker pool only runs on Linux",
)


def _score_pool_strict(ranker, edge_ids, **kwargs):
    """score_edges that FAILS (instead of passing vacuously) if the
    pool silently degrades to the serial path — the RuntimeWarning the
    fallback emits is escalated to an error."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        return score_edges(ranker, edge_ids, **kwargs)


@pytest.fixture(scope="module")
def approx_setting(request):
    graph = request.getfixturevalue("small_mesh")
    shift = regularization_shift(graph)
    forest = RootedForest(graph, mewst(graph))
    subgraph = graph.subgraph(forest.tree_edge_mask())
    factor = cholesky(regularized_laplacian(subgraph, shift))
    Z = sparse_approximate_inverse(factor.L, delta=0.1)
    off = np.flatnonzero(~forest.tree_edge_mask())
    return graph, forest, subgraph, factor, Z, off


class TestScoreEdges:
    def test_empty_candidates(self, approx_setting):
        graph, _, subgraph, factor, Z, _ = approx_setting
        ranker = ApproxRanker(graph, subgraph, factor, Z)
        assert len(score_edges(ranker, np.empty(0, dtype=np.int64))) == 0

    def test_serial_matches_reference(self, approx_setting):
        graph, _, subgraph, factor, Z, off = approx_setting
        expected = approximate_trace_reduction(
            graph, subgraph, factor, Z, off, beta=5
        )
        ranker = ApproxRanker(graph, subgraph, factor, Z, beta=5)
        got = score_edges(ranker, off, workers=1, chunk_size=13)
        assert np.array_equal(got, expected)

    @needs_fork_pool
    def test_workers_bit_identical_to_serial(self, approx_setting):
        """The headline determinism guarantee: workers > 1 changes nothing."""
        graph, _, subgraph, factor, Z, off = approx_setting
        serial = score_edges(
            ApproxRanker(graph, subgraph, factor, Z, beta=5),
            off, workers=1, chunk_size=11,
        )
        parallel = _score_pool_strict(
            ApproxRanker(graph, subgraph, factor, Z, beta=5),
            off, workers=3, chunk_size=11,
        )
        assert np.array_equal(serial, parallel)

    def test_chunk_size_does_not_change_scores(self, approx_setting):
        graph, _, subgraph, factor, Z, off = approx_setting
        baseline = score_edges(
            ApproxRanker(graph, subgraph, factor, Z, beta=5), off
        )
        for chunk_size in (1, 7, 64, len(off) + 5):
            got = score_edges(
                ApproxRanker(graph, subgraph, factor, Z, beta=5),
                off, chunk_size=chunk_size,
            )
            assert np.array_equal(got, baseline), chunk_size

    @needs_fork_pool
    def test_tree_ranker_parallel(self, approx_setting):
        graph, forest, *_ , off = approx_setting
        ranker = TreePhaseRanker(graph, forest, beta=4)
        serial = score_edges(ranker, off, workers=1, chunk_size=9)
        parallel = _score_pool_strict(ranker, off, workers=2, chunk_size=9)
        assert np.array_equal(serial, parallel)


class TestSparsifierParallel:
    @needs_fork_pool
    def test_workers_reproduce_serial_result(self, medium_grid):
        serial = trace_reduction_sparsify(
            medium_grid, edge_fraction=0.1, rounds=3
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            parallel = trace_reduction_sparsify(
                medium_grid, edge_fraction=0.1, rounds=3,
                workers=2, chunk_size=17,
            )
        assert np.array_equal(serial.edge_mask, parallel.edge_mask)
        assert np.array_equal(
            serial.recovered_edge_ids, parallel.recovered_edge_ids
        )

    def test_bad_knobs_rejected(self, small_grid):
        from repro.exceptions import GraphError

        with pytest.raises(GraphError):
            trace_reduction_sparsify(small_grid, workers=-1)
        with pytest.raises(GraphError):
            trace_reduction_sparsify(small_grid, chunk_size=-2)
        with pytest.raises(GraphError):
            trace_reduction_sparsify(small_grid, ranking="nope")
