"""Regression: an interrupted parallel_map leaves no orphaned children.

A SIGINT (or a SIGTERM handler raising SystemExit) delivered to the
*driver* process while a fork pool is mid-flight must terminate and
reap every forked worker before the exception propagates — otherwise
``kill <pid>`` on a long sparsification leaves detached children
burning CPU.  Exercised through a real subprocess, because the failure
mode is a process-tree property.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

DRIVER = """
import os, sys, time
from repro.core.parallel import parallel_map

pid_dir = sys.argv[1]

def task(index):
    path = os.path.join(pid_dir, f"child-{index}.pid")
    with open(path, "w") as handle:
        handle.write(str(os.getpid()))
    time.sleep(120)            # far beyond the test budget
    return index

try:
    parallel_map(task, 2, workers=2)
except KeyboardInterrupt:
    sys.exit(42)               # cleanup ran; exception propagated
sys.exit(7)                    # pool finished?! should be unreachable
"""


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


@pytest.mark.skipif(not sys.platform.startswith("linux"),
                    reason="fork pool is Linux-only")
def test_sigint_terminates_forked_children(tmp_path):
    pid_dir = tmp_path / "pids"
    pid_dir.mkdir()
    script = tmp_path / "driver.py"
    script.write_text(DRIVER)
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{REPO_SRC}:{env['PYTHONPATH']}"
        if env.get("PYTHONPATH") else str(REPO_SRC)
    )
    proc = subprocess.Popen(
        [sys.executable, str(script), str(pid_dir)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    try:
        # Wait until both forked workers checked in, then interrupt
        # the driver only (the children never see the signal — that is
        # exactly the orphaning scenario).
        deadline = time.time() + 60
        while len(list(pid_dir.glob("child-*.pid"))) < 2:
            assert time.time() < deadline, "workers never started"
            assert proc.poll() is None, proc.communicate()
            time.sleep(0.05)
        child_pids = [
            int(path.read_text())
            for path in sorted(pid_dir.glob("child-*.pid"))
        ]
        assert all(_alive(pid) for pid in child_pids)
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=60)
    finally:
        proc.kill()
    assert proc.returncode == 42, (out, err)
    # The children must be gone shortly after the driver exits —
    # terminated and reaped by the interrupt path, not orphaned.
    deadline = time.time() + 20
    while any(_alive(pid) for pid in child_pids):
        assert time.time() < deadline, (
            f"orphaned fork-pool children survive: "
            f"{[p for p in child_pids if _alive(p)]}"
        )
        time.sleep(0.1)
