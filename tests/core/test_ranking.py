"""Tests for the batched edge-ranking engine (repro.core.ranking)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ApproxRanker,
    BallCache,
    EdgeRanker,
    ExactRanker,
    TreePhaseRanker,
    approximate_trace_reduction,
    exact_trace_reduction_batch,
    tree_truncated_trace_reduction,
)
from repro.graph import (
    grid2d,
    regularization_shift,
    regularized_laplacian,
    triangular_mesh,
)
from repro.linalg import cholesky, sparse_approximate_inverse
from repro.tree import RootedForest, mewst


def _attached_cache(graph, subgraph, beta, max_entries=None):
    cache = BallCache(beta, max_entries=max_entries)
    indptr, nbr, _ = subgraph.adjacency()
    cache.attach_subgraph(indptr, nbr)
    return cache


def _setting(graph, extra_edges=0, beta=5, delta=0.1):
    """Tree(+extra)-subgraph ranking setting for *graph*."""
    shift = regularization_shift(graph)
    forest = RootedForest(graph, mewst(graph))
    mask = forest.tree_edge_mask()
    off = np.flatnonzero(~mask)
    if extra_edges:
        mask = mask.copy()
        mask[off[:extra_edges]] = True
        off = off[extra_edges:]
    subgraph = graph.subgraph(mask)
    factor = cholesky(regularized_laplacian(subgraph, shift))
    Z = sparse_approximate_inverse(factor.L, delta=delta)
    return forest, subgraph, factor, Z, off, shift


class TestProtocol:
    def test_rankers_satisfy_protocol(self, small_grid):
        forest, subgraph, factor, Z, off, shift = _setting(small_grid)
        assert isinstance(TreePhaseRanker(small_grid, forest), EdgeRanker)
        assert isinstance(
            ApproxRanker(small_grid, subgraph, factor, Z), EdgeRanker
        )
        assert isinstance(
            ExactRanker(small_grid, factor.solve), EdgeRanker
        )


class TestTreePhaseRanker:
    def test_matches_reference(self, small_mesh):
        forest, *_ = _setting(small_mesh)
        off = np.flatnonzero(~forest.tree_edge_mask())
        ranker = TreePhaseRanker(small_mesh, forest, beta=4)
        expected, _, _ = tree_truncated_trace_reduction(
            small_mesh, forest, edge_ids=off, beta=4
        )
        assert np.array_equal(ranker.score_batch(off), expected)

    def test_chunk_stable(self, small_grid):
        forest, *_ = _setting(small_grid)
        off = np.flatnonzero(~forest.tree_edge_mask())
        ranker = TreePhaseRanker(small_grid, forest, beta=3)
        whole = ranker.score_batch(off)
        pieces = np.concatenate(
            [ranker.score_batch(off[k : k + 5]) for k in range(0, len(off), 5)]
        )
        assert np.array_equal(whole, pieces)


class TestExactRanker:
    def test_matches_reference(self, small_grid):
        forest, subgraph, factor, Z, off, shift = _setting(small_grid)
        ranker = ExactRanker(small_grid, factor.solve)
        expected = exact_trace_reduction_batch(
            small_grid, factor.solve, off
        )
        assert np.array_equal(ranker.score_batch(off), expected)

    def test_from_subgraph(self, small_grid):
        forest, subgraph, factor, Z, off, shift = _setting(small_grid)
        ranker = ExactRanker.from_subgraph(small_grid, subgraph, shift)
        expected = exact_trace_reduction_batch(
            small_grid, factor.solve, off[:10]
        )
        np.testing.assert_allclose(
            ranker.score_batch(off[:10]), expected, rtol=1e-9
        )


class TestApproxRanker:
    def test_matches_reference_bitwise(self, small_mesh):
        forest, subgraph, factor, Z, off, _ = _setting(
            small_mesh, extra_edges=10
        )
        expected = approximate_trace_reduction(
            small_mesh, subgraph, factor, Z, off, beta=5
        )
        ranker = ApproxRanker(small_mesh, subgraph, factor, Z, beta=5)
        assert np.array_equal(ranker.score_batch(off), expected)

    def test_chunk_stable(self, small_mesh):
        forest, subgraph, factor, Z, off, _ = _setting(small_mesh)
        ranker = ApproxRanker(small_mesh, subgraph, factor, Z, beta=5)
        whole = ranker.score_batch(off)
        pieces = np.concatenate(
            [ranker.score_batch(off[k : k + 7]) for k in range(0, len(off), 7)]
        )
        assert np.array_equal(whole, pieces)

    def test_empty_batch(self, small_grid):
        forest, subgraph, factor, Z, off, _ = _setting(small_grid)
        ranker = ApproxRanker(small_grid, subgraph, factor, Z)
        assert len(ranker.score_batch(np.empty(0, dtype=np.int64))) == 0

    def test_prepare_is_idempotent(self, small_grid):
        forest, subgraph, factor, Z, off, _ = _setting(small_grid)
        ranker = ApproxRanker(small_grid, subgraph, factor, Z)
        ranker.prepare(off)
        cached = len(ranker.cache)
        ranker.prepare(off)
        assert len(ranker.cache) == cached
        expected = approximate_trace_reduction(
            small_grid, subgraph, factor, Z, off, beta=5
        )
        assert np.array_equal(ranker.score_batch(off), expected)

    def test_beta_mismatch_rejected(self, small_grid):
        forest, subgraph, factor, Z, off, _ = _setting(small_grid)
        with pytest.raises(ValueError, match="radius"):
            ApproxRanker(
                small_grid, subgraph, factor, Z, beta=5, cache=BallCache(3)
            )

    @given(seed=st.integers(0, 2**16), nodes=st.integers(60, 160))
    @settings(max_examples=8, deadline=None)
    def test_property_matches_looped_reference(self, seed, nodes):
        """score_batch == per-edge approximate_trace_reduction to 1e-12."""
        graph = triangular_mesh(nodes, shape="disk", weights="smooth",
                                seed=seed)
        forest, subgraph, factor, Z, off, _ = _setting(graph, beta=3)
        ranker = ApproxRanker(graph, subgraph, factor, Z, beta=3)
        got = ranker.score_batch(off)
        looped = np.array([
            float(
                approximate_trace_reduction(
                    graph, subgraph, factor, Z, [edge], beta=3
                )[0]
            )
            for edge in off
        ])
        np.testing.assert_allclose(got, looped, rtol=1e-12, atol=1e-14)


class TestBallCache:
    def test_requires_attachment(self):
        cache = BallCache(2)
        with pytest.raises(RuntimeError):
            cache.ball(0)
        with pytest.raises(RuntimeError):
            cache.ensure([0])

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            BallCache(0)

    def test_balls_match_finder(self, small_grid):
        from repro.graph.bfs import BallFinder

        indptr, nbr, _ = small_grid.adjacency()
        cache = BallCache(2)
        cache.attach_subgraph(indptr, nbr)
        finder = BallFinder(indptr, nbr)
        for node in (0, 17, 63):
            expected = np.sort(finder.ball(node, 2)[0])
            assert np.array_equal(cache.ball(node), expected)

    def test_capacity_bound_does_not_change_scores(self, small_mesh):
        """At max_entries the cache stops storing but stays correct."""
        forest, subgraph, factor, Z, off, _ = _setting(small_mesh)
        unbounded = ApproxRanker(small_mesh, subgraph, factor, Z, beta=5)
        expected = unbounded.score_batch(off)
        capped = ApproxRanker(
            small_mesh, subgraph, factor, Z, beta=5,
            cache=_attached_cache(small_mesh, subgraph, beta=5, max_entries=5),
        )
        got = capped.score_batch(off)
        assert np.array_equal(got, expected)
        assert len(capped.cache) <= 5

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            BallCache(2, max_entries=-1)

    def test_invalidation_matches_fresh_cache(self, small_mesh):
        """Scores after advance(invalidate=touched) == fresh-cache scores.

        This is the caching/invalidation contract the sparsifier relies
        on: recovering edges and invalidating only the touched
        neighborhoods must reproduce exactly what a cold cache computes
        against the new subgraph.
        """
        graph = small_mesh
        shift = regularization_shift(graph)
        forest = RootedForest(graph, mewst(graph))
        mask = forest.tree_edge_mask().copy()
        off = np.flatnonzero(~mask)
        beta = 4

        cache = BallCache(beta)
        sub1 = graph.subgraph(mask)
        f1 = cholesky(regularized_laplacian(sub1, shift))
        Z1 = sparse_approximate_inverse(f1.L, delta=0.1)
        indptr1, nbr1, _ = sub1.adjacency()
        cache.attach_subgraph(indptr1, nbr1)
        ranker1 = ApproxRanker(graph, sub1, f1, Z1, beta=beta, cache=cache)
        ranker1.score_batch(off)
        warm_entries = len(cache)
        assert warm_entries > 0

        # "Recover" a handful of edges, as a densification round would.
        recovered = off[:: max(1, len(off) // 6)][:6]
        mask[recovered] = True
        touched = np.unique(
            np.concatenate([graph.u[recovered], graph.v[recovered]])
        )
        remaining = np.flatnonzero(~mask)

        sub2 = graph.subgraph(mask)
        f2 = cholesky(regularized_laplacian(sub2, shift))
        Z2 = sparse_approximate_inverse(f2.L, delta=0.1)
        indptr2, nbr2, _ = sub2.adjacency()
        cache.attach_subgraph(indptr2, nbr2, invalidate=touched)
        assert len(cache) < warm_entries  # something was dropped
        warm = ApproxRanker(graph, sub2, f2, Z2, beta=beta, cache=cache)
        cold = ApproxRanker(graph, sub2, f2, Z2, beta=beta)
        assert np.array_equal(
            warm.score_batch(remaining), cold.score_batch(remaining)
        )


class TestBallCacheMutation:
    """The evolving-graph contract: stale entries must never survive."""

    def _tree_cache(self, graph, beta=3):
        forest = RootedForest(graph, mewst(graph))
        mask = forest.tree_edge_mask().copy()
        sub = graph.subgraph(mask)
        cache = BallCache(beta)
        indptr, nbr, _ = sub.adjacency()
        cache.attach_subgraph(indptr, nbr)
        return cache, mask

    def test_changed_adjacency_without_invalidate_raises(self, small_grid):
        """Regression for the documented silent-staleness hazard:

        re-attaching a *changed* adjacency while entries are cached
        must raise instead of silently serving stale balls."""
        graph = small_grid
        cache, mask = self._tree_cache(graph)
        cache.ensure_balls(range(graph.n))
        assert len(cache) == graph.n
        off = np.flatnonzero(~mask)
        mask[off[0]] = True
        indptr2, nbr2, _ = graph.subgraph(mask).adjacency()
        with pytest.raises(ValueError, match="invalidate"):
            cache.attach_subgraph(indptr2, nbr2)
        # The touched set makes the same attach legal...
        touched = [int(graph.u[off[0]]), int(graph.v[off[0]])]
        cache.attach_subgraph(indptr2, nbr2, invalidate=touched)
        # ... and re-attaching an UNCHANGED adjacency never needs one.
        cache.attach_subgraph(indptr2, nbr2)

    def test_changed_adjacency_with_empty_cache_is_fine(self, small_grid):
        graph = small_grid
        cache, mask = self._tree_cache(graph)
        off = np.flatnonzero(~mask)
        mask[off[0]] = True
        indptr2, nbr2, _ = graph.subgraph(mask).adjacency()
        cache.attach_subgraph(indptr2, nbr2)  # nothing cached yet

    def test_deletion_invalidation_matches_fresh_cache(self, small_mesh):
        """Warm scores after edge *deletions* == cold-cache scores.

        Deletions grow distances, so only the OLD adjacency's balls
        reach every entry whose routes ran through the removed edges —
        the direction the insert-shaped test above cannot catch."""
        graph = small_mesh
        shift = regularization_shift(graph)
        forest = RootedForest(graph, mewst(graph))
        mask = forest.tree_edge_mask().copy()
        off = np.flatnonzero(~mask)
        extra = off[:8]          # densify, then delete a few of these
        mask[extra] = True
        beta = 4

        cache = BallCache(beta)
        sub1 = graph.subgraph(mask)
        f1 = cholesky(regularized_laplacian(sub1, shift))
        Z1 = sparse_approximate_inverse(f1.L, delta=0.1)
        indptr1, nbr1, _ = sub1.adjacency()
        cache.attach_subgraph(indptr1, nbr1)
        ranker1 = ApproxRanker(graph, sub1, f1, Z1, beta=beta,
                               cache=cache)
        ranker1.score_batch(off[8:])
        assert len(cache) > 0

        deleted = extra[:4]
        mask[deleted] = False
        touched = np.unique(
            np.concatenate([graph.u[deleted], graph.v[deleted]])
        )
        remaining = np.flatnonzero(~mask)

        sub2 = graph.subgraph(mask)
        f2 = cholesky(regularized_laplacian(sub2, shift))
        Z2 = sparse_approximate_inverse(f2.L, delta=0.1)
        indptr2, nbr2, _ = sub2.adjacency()
        cache.attach_subgraph(indptr2, nbr2, invalidate=touched)
        warm = ApproxRanker(graph, sub2, f2, Z2, beta=beta, cache=cache)
        cold = ApproxRanker(graph, sub2, f2, Z2, beta=beta)
        assert np.array_equal(
            warm.score_batch(remaining), cold.score_batch(remaining)
        )

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(0, 2**16), beta=st.integers(1, 3),
           n_delete=st.integers(1, 6))
    def test_property_delta_balls_match_cold_rebuild(self, seed, beta,
                                                     n_delete):
        """Every ball served after invalidate= equals a cold cache's.

        Random mixed batches (deletions of kept off-tree edges plus
        wedge re-insertions) against a grid: the delta-path cache must
        be indistinguishable from one built fresh on the new adjacency.
        """
        graph = grid2d(7, 7, weights="uniform", seed=seed % 1000)
        rng = np.random.default_rng(seed)
        forest = RootedForest(graph, mewst(graph))
        mask = forest.tree_edge_mask().copy()
        off = np.flatnonzero(~mask)
        keep = rng.choice(off, size=min(10, len(off)), replace=False)
        mask[keep] = True

        cache = BallCache(beta)
        indptr, nbr, _ = graph.subgraph(mask).adjacency()
        cache.attach_subgraph(indptr, nbr)
        cache.ensure_balls(range(graph.n))

        mutated = rng.choice(keep, size=min(n_delete, len(keep)),
                             replace=False)
        mask[mutated] = False
        readd = mutated[: len(mutated) // 2]
        mask[readd] = True       # delete + re-insert in one batch
        touched = np.unique(np.concatenate(
            [graph.u[mutated], graph.v[mutated]]
        ))
        indptr2, nbr2, _ = graph.subgraph(mask).adjacency()
        cache.attach_subgraph(indptr2, nbr2, invalidate=touched)

        fresh = BallCache(beta)
        fresh.attach_subgraph(indptr2, nbr2)
        for node in range(graph.n):
            assert np.array_equal(cache.ball(node), fresh.ball(node)), (
                f"stale ball at node {node}"
            )
