"""Shard-parallel pipeline: partition, stitch quality, determinism."""

import numpy as np
import pytest

from repro.api import RunRecord, SparsifierSession, list_methods, sparsify
from repro.core import (
    ShardPlan,
    evaluate_sparsifier,
    induced_subgraph,
    parallel_map,
    partition_shards,
    select_boundary_edges,
    sharded_sparsify,
    trace_reduction_sparsify,
)
from repro.exceptions import GraphError
from repro.graph import Graph, grid2d, is_connected, make_case

pytestmark = pytest.mark.filterwarnings(
    # A sandboxed runner may lose the fork pool; results are identical.
    "ignore::RuntimeWarning"
)


@pytest.fixture(scope="module")
def grid():
    return grid2d(24, 24, weights="uniform", seed=5)


# ---------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
def test_partition_covers_every_node(grid, shards):
    plan = partition_shards(grid, shards, seed=0)
    assert plan.shards == shards
    assert sorted(plan.labels.tolist()) == sorted(
        label for s in range(shards) for label in [s] * len(plan.shard_nodes[s])
    )
    covered = np.concatenate(plan.shard_nodes)
    assert sorted(covered.tolist()) == list(range(grid.n))
    for nodes in plan.shard_nodes:
        assert len(nodes) > 0


def test_partition_is_deterministic(grid):
    a = partition_shards(grid, 4, seed=0)
    b = partition_shards(grid, 4, seed=0)
    np.testing.assert_array_equal(a.labels, b.labels)


def test_partition_is_roughly_balanced(grid):
    plan = partition_shards(grid, 4, seed=0)
    sizes = [len(nodes) for nodes in plan.shard_nodes]
    assert max(sizes) <= 2 * min(sizes)


def test_partition_rejects_bad_shard_counts(grid):
    with pytest.raises(GraphError):
        partition_shards(grid, 0)
    with pytest.raises(GraphError):
        partition_shards(grid, grid.n + 1)


def test_partition_packs_whole_components(forest_graph):
    """A disconnected block is split along component boundaries."""
    plan = partition_shards(forest_graph, 2, seed=0)
    labels = plan.labels
    # The two components {0,1,2} and {3,4,5} must not be cut.
    assert len(set(labels[:3].tolist())) == 1
    assert len(set(labels[3:].tolist())) == 1
    assert len(plan.boundary_edge_ids) == 0


def test_partition_labels_cached_in_session_store(grid):
    from repro.core import ArtifactStore

    store = ArtifactStore()
    partition_shards(grid, 4, seed=0, artifacts=store)
    partition_shards(grid, 4, seed=0, artifacts=store)
    assert store.hits["shard_labels"] == 1


def test_induced_subgraph_maps_back(grid):
    nodes = np.arange(0, grid.n, 2)
    sub, edge_ids = induced_subgraph(grid, nodes)
    assert sub.n == len(nodes)
    np.testing.assert_array_equal(nodes[sub.u], grid.u[edge_ids])
    np.testing.assert_array_equal(nodes[sub.v], grid.v[edge_ids])
    np.testing.assert_array_equal(sub.w, grid.w[edge_ids])


def test_shard_plan_summary_is_json_native(grid):
    import json

    plan = partition_shards(grid, 3, seed=0)
    summary = plan.summary()
    assert json.loads(json.dumps(summary)) == summary
    assert summary["shards"] == 3
    assert sum(summary["shard_nodes"]) == grid.n


def test_shard_plan_rejects_bad_labels(grid):
    with pytest.raises(GraphError):
        ShardPlan(grid, np.zeros(grid.n - 1, dtype=np.int64), 1)
    with pytest.raises(GraphError):
        # Shard 1 empty.
        ShardPlan(grid, np.zeros(grid.n, dtype=np.int64), 2)
    # Out-of-range labels would make edges vanish from the stitch.
    stray = np.zeros(grid.n, dtype=np.int64)
    stray[0] = 1
    stray[1] = 5
    with pytest.raises(GraphError, match=r"\[0, 2\)"):
        ShardPlan(grid, stray, 2)
    with pytest.raises(GraphError):
        ShardPlan(grid, stray - 1, 2)


# ---------------------------------------------------------------------
# sharded sparsification: identity, determinism, validity
# ---------------------------------------------------------------------
def test_shards_one_is_bit_identical_to_unsharded(grid):
    sharded = sparsify(grid, "proposed", edge_fraction=0.1, rounds=2,
                       shards=1)
    legacy = trace_reduction_sparsify(grid, edge_fraction=0.1, rounds=2)
    np.testing.assert_array_equal(sharded.edge_mask, legacy.edge_mask)
    assert sharded.sharding is None


@pytest.mark.parametrize("method", sorted(list_methods()))
def test_every_method_runs_sharded(grid, method):
    result = sparsify(grid, method, edge_fraction=0.1, shards=2)
    assert result.sharding["shards"] == 2
    assert result.edge_count > 0
    assert is_connected(result.sparsifier)


def test_sharded_output_is_deterministic(grid):
    runs = [
        sparsify(grid, "proposed", edge_fraction=0.1, rounds=2, shards=4)
        for _ in range(2)
    ]
    np.testing.assert_array_equal(runs[0].edge_mask, runs[1].edge_mask)
    np.testing.assert_array_equal(
        runs[0].recovered_edge_ids, runs[1].recovered_edge_ids
    )


def test_sharded_output_independent_of_workers(grid):
    serial = sparsify(grid, "proposed", edge_fraction=0.1, rounds=2,
                      shards=4, workers=1)
    pooled = sparsify(grid, "proposed", edge_fraction=0.1, rounds=2,
                      shards=4, workers=2)
    np.testing.assert_array_equal(serial.edge_mask, pooled.edge_mask)


def test_sharded_keep_policy_retains_every_cut_edge(grid):
    result = sparsify(grid, "proposed", edge_fraction=0.1, rounds=2,
                      shards=4)
    plan = partition_shards(grid, 4, seed=0)
    assert result.edge_mask[plan.boundary_edge_ids].all()
    cut = result.sharding["cut"]
    assert cut["kept_edges"] == cut["edges"] == len(plan.boundary_edge_ids)


def test_sharded_rounds_log_tags_shards(grid):
    result = sparsify(grid, "proposed", edge_fraction=0.1, rounds=2,
                      shards=3)
    shards_seen = {entry["shard"] for entry in result.rounds_log}
    assert shards_seen == {0, 1, 2}
    per_shard = result.sharding["per_shard"]
    assert [entry["shard"] for entry in per_shard] == [0, 1, 2]
    assert sum(entry["nodes"] for entry in per_shard) == grid.n


def test_sharded_tree_and_recovered_ids_are_kept_edges(grid):
    result = sparsify(grid, "proposed", edge_fraction=0.1, rounds=2,
                      shards=4)
    assert result.edge_mask[result.tree_edge_ids].all()
    assert result.edge_mask[result.recovered_edge_ids].all()
    # Tree/recovered edges are intra-shard by construction.
    plan = partition_shards(grid, 4, seed=0)
    labels = plan.labels
    for ids in (result.tree_edge_ids, result.recovered_edge_ids):
        np.testing.assert_array_equal(
            labels[result.graph.u[ids]], labels[result.graph.v[ids]]
        )


def test_sharded_run_on_disconnected_graph(forest_graph):
    result = sparsify(forest_graph, "proposed", edge_fraction=0.5,
                      shards=2)
    assert result.edge_count > 0


def test_too_many_shards_raise(grid):
    with pytest.raises(GraphError):
        sparsify(grid, "proposed", shards=grid.n + 1)


def test_boundary_policy_validated(grid):
    with pytest.raises(GraphError):
        sparsify(grid, "proposed", shards=2, boundary_policy="nope")
    with pytest.raises(GraphError):
        sparsify(grid, "proposed", shards=0)


# ---------------------------------------------------------------------
# boundary sampling
# ---------------------------------------------------------------------
def test_sample_policy_is_subset_and_connected(grid):
    kept_all = sparsify(grid, "proposed", edge_fraction=0.1, rounds=2,
                        shards=4)
    sampled = sparsify(grid, "proposed", edge_fraction=0.1, rounds=2,
                       shards=4, boundary_policy="sample")
    cut_all = kept_all.sharding["cut"]
    cut_sampled = sampled.sharding["cut"]
    assert cut_sampled["kept_edges"] < cut_all["kept_edges"]
    assert cut_sampled["kept_weight"] <= cut_all["kept_weight"]
    assert is_connected(sampled.sparsifier)


def test_sample_policy_deterministic(grid):
    plan = partition_shards(grid, 4, seed=0)
    a = select_boundary_edges(grid, plan, "sample", 0.1, seed=3)
    b = select_boundary_edges(grid, plan, "sample", 0.1, seed=3)
    np.testing.assert_array_equal(a, b)
    kept = select_boundary_edges(grid, plan, "keep", 0.1, seed=3)
    np.testing.assert_array_equal(kept, plan.boundary_edge_ids)
    assert set(a.tolist()) <= set(kept.tolist())


def test_sample_backbone_spans_stranded_components():
    """A shard component attached only through the cut must stay
    attached: the backbone works per component, not per shard."""
    # Two "columns" (shards) of two nodes each; the right column is
    # internally disconnected and hangs off the left one by two weak
    # cut edges — both must survive any sampling.
    graph = Graph.from_edges(4, [
        (0, 1, 10.0),   # left column (one component)
        (0, 2, 0.1),    # cut edge to right node 2
        (1, 3, 0.1),    # cut edge to right node 3
    ])
    labels = np.array([0, 0, 1, 1])
    plan = ShardPlan(graph, labels, 2)
    kept = select_boundary_edges(graph, plan, "sample", 0.0, seed=0)
    assert set(kept.tolist()) == {1, 2}


# ---------------------------------------------------------------------
# stitch quality
# ---------------------------------------------------------------------
@pytest.mark.parametrize("case", ["ecology2", "tmt_sym"])
def test_sharded_kappa_within_bounded_factor(case):
    graph, _ = make_case(case, scale=0.06, seed=0)
    baseline = sparsify(graph, "proposed", edge_fraction=0.1, rounds=2)
    sharded = sparsify(graph, "proposed", edge_fraction=0.1, rounds=2,
                       shards=4)
    kappa_base = evaluate_sparsifier(
        graph, baseline.sparsifier, seed=1
    ).kappa
    kappa_shard = evaluate_sparsifier(
        graph, sharded.sparsifier, seed=1
    ).kappa
    # "keep" retains the whole cut, so the stitched sparsifier must be
    # in the same quality regime as the monolithic run.
    assert kappa_shard <= 3.0 * kappa_base
    sampled = sparsify(graph, "proposed", edge_fraction=0.1, rounds=2,
                       shards=4, boundary_policy="sample")
    kappa_sampled = evaluate_sparsifier(
        graph, sampled.sparsifier, seed=1
    ).kappa
    # The sampled cut trades quality for size; it must stay bounded.
    assert np.isfinite(kappa_sampled)
    assert kappa_sampled <= 50.0 * kappa_base


# ---------------------------------------------------------------------
# records, sessions, restore split
# ---------------------------------------------------------------------
def test_sharding_block_round_trips_through_json(grid):
    session = SparsifierSession(grid, label="grid24")
    record = session.run("proposed", edge_fraction=0.1, rounds=2, shards=3)
    assert record.sharding["shards"] == 3
    rebuilt = RunRecord.from_json(record.to_json())
    assert rebuilt == record
    assert rebuilt.sharding == record.sharding


def test_fingerprint_strips_shard_timings(grid):
    session = SparsifierSession(grid, label="grid24")
    record = session.run("proposed", edge_fraction=0.1, rounds=2, shards=2,
                         evaluate=False)
    fingerprint = record.fingerprint()

    def no_seconds(value):
        if isinstance(value, dict):
            return all(
                not (k == "seconds" or k.endswith("_seconds"))
                and no_seconds(v)
                for k, v in value.items()
            )
        if isinstance(value, list):
            return all(no_seconds(v) for v in value)
        return True

    assert no_seconds(fingerprint)


def test_sharded_warm_run_matches_cold_fingerprint(grid, tmp_path):
    cold = SparsifierSession(grid, label="grid24", cache_dir=tmp_path)
    warm = SparsifierSession(grid, label="grid24", cache_dir=tmp_path)
    record_cold = cold.run("proposed", edge_fraction=0.1, rounds=2,
                           shards=3, evaluate=False)
    record_warm = warm.run("proposed", edge_fraction=0.1, rounds=2,
                           shards=3, evaluate=False)
    assert record_cold.fingerprint() == record_warm.fingerprint()
    # The warm session pulled the partition labels from disk.
    assert warm.stats()["disk"]["hits"].get("shard_labels", 0) >= 1


def test_restore_seconds_split_out_of_sparsify_seconds(grid, tmp_path):
    cold = SparsifierSession(grid, label="grid24", cache_dir=tmp_path)
    record_cold = cold.run("proposed", edge_fraction=0.1, rounds=2,
                           evaluate=False)
    warm = SparsifierSession(grid, label="grid24", cache_dir=tmp_path)
    record_warm = warm.run("proposed", edge_fraction=0.1, rounds=2,
                           evaluate=False)
    for record in (record_cold, record_warm):
        assert record.timings["restore_seconds"] > 0.0
        assert record.timings["sparsify_seconds"] >= 0.0
    # Session-less runs never touch the disk layer: no restore key.
    bare = RunRecord.from_result(
        trace_reduction_sparsify(grid, edge_fraction=0.1, rounds=2),
        method="proposed",
    )
    assert "restore_seconds" not in bare.timings


def test_shard_artifacts_reused_across_sweep_cells(grid):
    """A serial sweep derives each shard's setup once, not per cell:
    the per-shard sessions are memoized in the parent store and their
    artifact caches go warm from the second cell on."""
    session = SparsifierSession(grid, label="grid24")
    first = session.sparsify("proposed", edge_fraction=0.05, rounds=2,
                             shards=2)
    second = session.sparsify("proposed", edge_fraction=0.10, rounds=2,
                              shards=2)
    stats = session.stats()
    assert stats["hits"].get("shard_session", 0) >= 2
    assert stats["hits"].get("shard_labels", 0) >= 1
    # Reuse never changes results: rerun the second cell cold.
    cold = sparsify(grid, "proposed", edge_fraction=0.10, rounds=2,
                    shards=2)
    np.testing.assert_array_equal(second.edge_mask, cold.edge_mask)
    assert first.edge_count != second.edge_count


def test_memory_only_session_reports_restore_free_timings(grid):
    session = SparsifierSession(grid, label="grid24")
    record = session.run("proposed", edge_fraction=0.1, rounds=2,
                         evaluate=False)
    assert "restore_seconds" not in record.timings
    assert record.timings["sparsify_seconds"] > 0.0


# ---------------------------------------------------------------------
# parallel_map
# ---------------------------------------------------------------------
def test_parallel_map_preserves_order():
    assert parallel_map(lambda i: i * i, 5, workers=1) == [0, 1, 4, 9, 16]
    assert parallel_map(lambda i: i * i, 5, workers=3) == [0, 1, 4, 9, 16]


def test_parallel_map_empty_and_errors():
    assert parallel_map(lambda i: i, 0, workers=4) == []
    with pytest.raises(ValueError):
        parallel_map(lambda i: i, -1)
    with pytest.raises(ValueError):
        parallel_map(lambda i: i, 3, workers=-1)


def _nested_task(index):
    # Module-level so forked workers resolve it; the inner map must not
    # deadlock on pool state inherited from the parent.
    return sum(parallel_map(lambda j: index * j, 3, workers=2))


def test_parallel_map_tasks_may_nest_worker_pools():
    assert parallel_map(_nested_task, 4, workers=2) == [0, 3, 6, 9]


def test_sharded_sparsify_direct_entry(grid):
    """The module-level entry point mirrors the facade routing."""
    via_facade = sparsify(grid, "proposed", edge_fraction=0.1, rounds=2,
                          shards=2)
    direct = sharded_sparsify(grid, "proposed", edge_fraction=0.1,
                              rounds=2, shards=2)
    np.testing.assert_array_equal(via_facade.edge_mask, direct.edge_mask)
    # shards=1 through the direct entry falls back to the plain path.
    one = sharded_sparsify(grid, "proposed", edge_fraction=0.1, rounds=2)
    legacy = trace_reduction_sparsify(grid, edge_fraction=0.1, rounds=2)
    np.testing.assert_array_equal(one.edge_mask, legacy.edge_mask)
