"""Tests for the similarity-exclusion marker."""

import numpy as np
import pytest

from repro.core import SimilarityMarker
from repro.graph import Graph


@pytest.fixture()
def ladder():
    """Ladder graph: two rails 0-1-2-3 and 4-5-6-7 plus rungs."""
    edges = []
    for k in range(3):
        edges.append((k, k + 1, 1.0))
        edges.append((k + 4, k + 5, 1.0))
    for k in range(4):
        edges.append((k, k + 4, 1.0))
    return Graph.from_edges(8, edges)


def test_requires_attach(ladder):
    marker = SimilarityMarker(ladder, gamma=1)
    with pytest.raises(RuntimeError):
        marker.mark_similar(0, 4)


def test_marks_parallel_edges(ladder):
    """Marking rung (1,5) should mark the neighboring rungs too."""
    marker = SimilarityMarker(ladder, gamma=1)
    marker.attach_subgraph(ladder)
    marker.mark_similar(1, 5)
    lookup = ladder.edge_lookup()
    assert marker.is_marked(lookup[(1, 5)])
    assert marker.is_marked(lookup[(0, 4)])
    assert marker.is_marked(lookup[(2, 6)])
    # A far rung is outside gamma=1 balls.
    assert not marker.is_marked(lookup[(3, 7)])


def test_gamma_zero_marks_only_direct_edge(ladder):
    marker = SimilarityMarker(ladder, gamma=0)
    marker.attach_subgraph(ladder)
    marker.mark_similar(1, 5)
    lookup = ladder.edge_lookup()
    assert marker.is_marked(lookup[(1, 5)])
    assert not marker.is_marked(lookup[(0, 4)])


def test_marks_accumulate(ladder):
    marker = SimilarityMarker(ladder, gamma=0)
    marker.attach_subgraph(ladder)
    marker.mark_similar(0, 4)
    marker.mark_similar(3, 7)
    lookup = ladder.edge_lookup()
    assert marker.is_marked(lookup[(0, 4)])
    assert marker.is_marked(lookup[(3, 7)])


def test_mark_count_returned(ladder):
    marker = SimilarityMarker(ladder, gamma=1)
    marker.attach_subgraph(ladder)
    first = marker.mark_similar(1, 5)
    assert first >= 3
    # Re-marking the same region adds nothing new.
    second = marker.mark_similar(1, 5)
    assert second == 0


def test_balls_in_subgraph_not_graph(ladder):
    """Balls grow in the attached subgraph, not in the full graph."""
    # Attach only the bottom rail: balls around 1 and 5 cannot meet
    # through rungs, so no rung except... none are subgraph edges, but
    # marking uses *graph* edges between ball nodes.
    rail = ladder.subgraph(
        np.array([k for k in range(ladder.edge_count)
                  if ladder.v[k] == ladder.u[k] + 1])
    )
    marker = SimilarityMarker(ladder, gamma=1)
    marker.attach_subgraph(rail)
    marker.mark_similar(1, 5)
    lookup = ladder.edge_lookup()
    # Ball(1) = {0,1,2} along the rail; ball(5) = {4,5,6}; graph edges
    # joining them are exactly the rungs (0,4), (1,5), (2,6).
    assert marker.is_marked(lookup[(0, 4)])
    assert marker.is_marked(lookup[(1, 5)])
    assert marker.is_marked(lookup[(2, 6)])
    assert not marker.is_marked(lookup[(3, 7)])


def test_rejects_negative_gamma(ladder):
    with pytest.raises(ValueError):
        SimilarityMarker(ladder, gamma=-1)
