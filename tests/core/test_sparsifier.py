"""Tests for Algorithm 2 (the full trace-reduction sparsifier)."""

import numpy as np
import pytest

from repro.core import (
    SparsifierConfig,
    evaluate_sparsifier,
    trace_reduction_sparsify,
)
from repro.exceptions import GraphError
from repro.graph import connected_components, grid2d, triangular_mesh


@pytest.fixture(scope="module")
def grid():
    return grid2d(15, 15, seed=51)


@pytest.fixture(scope="module")
def result(grid):
    return trace_reduction_sparsify(grid, edge_fraction=0.10, rounds=3, seed=0)


def test_budget_respected(grid, result):
    budget = int(round(0.10 * grid.n))
    assert len(result.recovered_edge_ids) <= budget + 3  # per-round ceil slack
    assert result.edge_count == len(result.tree_edge_ids) + len(
        result.recovered_edge_ids
    )


def test_sparsifier_is_spanning_connected(grid, result):
    sparsifier = result.sparsifier
    count, _ = connected_components(sparsifier)
    assert count == 1
    assert sparsifier.n == grid.n


def test_contains_tree(result):
    assert result.edge_mask[result.tree_edge_ids].all()


def test_recovered_edges_disjoint_from_tree(result):
    assert not set(result.recovered_edge_ids) & set(result.tree_edge_ids)


def test_rounds_logged(result):
    assert len(result.rounds_log) == 3
    assert result.rounds_log[0]["phase"] == "tree"
    assert all(entry["phase"] == "general" for entry in result.rounds_log[1:])
    assert result.setup_seconds > 0


def test_rounds_log_trace_accounting(result):
    """Each round reports the (approximate) trace it removed."""
    for entry in result.rounds_log:
        assert entry["trace_reduction"] > 0
        assert np.isfinite(entry["trace_reduction"])


def test_single_round_is_tree_phase_only(grid):
    result = trace_reduction_sparsify(grid, edge_fraction=0.05, rounds=1)
    assert len(result.rounds_log) == 1
    assert result.rounds_log[0]["phase"] == "tree"


def test_zero_fraction_returns_tree(grid):
    result = trace_reduction_sparsify(grid, edge_fraction=0.0)
    assert result.edge_count == len(result.tree_edge_ids)


def test_full_budget_caps_at_graph(grid):
    """Asking for more edges than exist recovers everything available."""
    result = trace_reduction_sparsify(grid, edge_fraction=10.0, rounds=2)
    assert result.edge_count <= grid.edge_count


def test_more_edges_lower_kappa(grid):
    sparse = trace_reduction_sparsify(grid, edge_fraction=0.02, rounds=2)
    dense = trace_reduction_sparsify(grid, edge_fraction=0.20, rounds=2)
    q_sparse = evaluate_sparsifier(grid, sparse.sparsifier)
    q_dense = evaluate_sparsifier(grid, dense.sparsifier)
    assert q_dense.kappa < q_sparse.kappa


def test_beats_tree_alone(grid):
    from repro.graph import regularization_shift, regularized_laplacian
    from repro.linalg import cholesky, relative_condition_number

    result = trace_reduction_sparsify(grid, edge_fraction=0.10, rounds=3)
    shift = regularization_shift(grid)
    L_G = regularized_laplacian(grid, shift)
    tree = grid.subgraph(result.tree_edge_ids)
    L_T = regularized_laplacian(tree, shift)
    kappa_tree = relative_condition_number(L_G, cholesky(L_T), L_T)
    q = evaluate_sparsifier(grid, result.sparsifier)
    assert q.kappa < kappa_tree


def test_works_on_mesh():
    mesh = triangular_mesh(150, seed=5)
    result = trace_reduction_sparsify(mesh, edge_fraction=0.10, rounds=2)
    count, _ = connected_components(result.sparsifier)
    assert count == 1


def test_works_on_disconnected(forest_graph):
    result = trace_reduction_sparsify(forest_graph, edge_fraction=0.2, rounds=2)
    count, _ = connected_components(result.sparsifier)
    assert count == 2


def test_tree_method_options(grid):
    for method in ("mewst", "max_weight", "bfs"):
        result = trace_reduction_sparsify(
            grid, edge_fraction=0.02, rounds=1, tree_method=method
        )
        assert result.edge_count > 0


def test_config_validation():
    with pytest.raises(GraphError):
        SparsifierConfig(rounds=0).validate()
    with pytest.raises(GraphError):
        SparsifierConfig(beta=0).validate()
    with pytest.raises(GraphError):
        SparsifierConfig(tree_method="magic").validate()
    with pytest.raises(GraphError):
        SparsifierConfig(edge_fraction=-1.0).validate()


def test_config_and_overrides_conflict(grid):
    with pytest.raises(GraphError):
        trace_reduction_sparsify(grid, SparsifierConfig(), edge_fraction=0.1)


def test_deterministic(grid):
    a = trace_reduction_sparsify(grid, edge_fraction=0.05, rounds=2, seed=3)
    b = trace_reduction_sparsify(grid, edge_fraction=0.05, rounds=2, seed=3)
    np.testing.assert_array_equal(a.edge_mask, b.edge_mask)


def test_similarity_off_recovers_same_count(grid):
    result = trace_reduction_sparsify(
        grid, edge_fraction=0.05, rounds=2, use_similarity=False
    )
    budget = int(round(0.05 * grid.n))
    assert len(result.recovered_edge_ids) >= budget - 1
