"""Tests for trace estimators and effective resistances."""

import numpy as np
import pytest

from repro.core import (
    effective_resistance,
    effective_resistances,
    trace_ratio,
    trace_ratio_exact,
    trace_ratio_hutchinson,
)
from repro.graph import (
    Graph,
    laplacian,
    regularization_shift,
    regularized_laplacian,
)
from repro.linalg import cholesky
from repro.tree import RootedForest, mewst


class TestEffectiveResistance:
    def test_series_resistors(self, path_graph):
        """R(0,4) on a path = sum of 1/w."""
        shift = regularization_shift(path_graph, 1e-9)
        L = regularized_laplacian(path_graph, shift)
        factor = cholesky(L)
        r = effective_resistance(factor.solve, 0, 4, path_graph.n)
        assert r == pytest.approx(1 + 0.5 + 0.25 + 2.0, rel=1e-5)

    def test_parallel_resistors(self):
        """Two parallel unit edges between the same nodes -> R = 1/2."""
        # Model with a 2-path of weight 2 each, in parallel with an edge.
        g = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 2.0), (0, 2, 1.0)])
        shift = regularization_shift(g, 1e-9)
        factor = cholesky(regularized_laplacian(g, shift))
        r = effective_resistance(factor.solve, 0, 2, 3)
        assert r == pytest.approx(0.5, rel=1e-5)

    def test_matches_tree_resistance_on_tree(self, small_grid):
        tree_ids = mewst(small_grid)
        forest = RootedForest(small_grid, tree_ids)
        shift = regularization_shift(small_grid, 1e-9)
        factor = cholesky(
            regularized_laplacian(small_grid.subgraph(tree_ids), shift)
        )
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, small_grid.n, size=(10, 2))
        rs = effective_resistances(factor.solve, pairs, small_grid.n)
        for k, (p, q) in enumerate(pairs):
            assert rs[k] == pytest.approx(
                forest.tree_resistance(int(p), int(q)), rel=1e-4, abs=1e-9
            )

    def test_subgraph_resistance_dominates(self, small_grid):
        """Removing edges can only increase effective resistance."""
        shift = regularization_shift(small_grid, 1e-9)
        full = cholesky(regularized_laplacian(small_grid, shift))
        tree = cholesky(
            regularized_laplacian(small_grid.subgraph(mewst(small_grid)), shift)
        )
        rng = np.random.default_rng(1)
        for _ in range(10):
            p, q = rng.integers(0, small_grid.n, size=2)
            if p == q:
                continue
            r_full = effective_resistance(full.solve, int(p), int(q), small_grid.n)
            r_tree = effective_resistance(tree.solve, int(p), int(q), small_grid.n)
            assert r_tree >= r_full - 1e-9


class TestTraceRatio:
    def test_identical_graphs_trace_is_n(self, small_grid):
        shift = regularization_shift(small_grid)
        L = regularized_laplacian(small_grid, shift)
        assert trace_ratio_exact(L, L) == pytest.approx(small_grid.n)

    def test_exact_vs_hutchinson(self, small_grid):
        shift = regularization_shift(small_grid)
        L_G = regularized_laplacian(small_grid, shift)
        tree = small_grid.subgraph(mewst(small_grid))
        L_T = regularized_laplacian(tree, shift)
        factor = cholesky(L_T)
        exact = trace_ratio_exact(L_G, L_T)
        estimate = trace_ratio_hutchinson(L_G, factor.solve, probes=400, seed=0)
        assert estimate == pytest.approx(exact, rel=0.15)

    def test_trace_upper_bounds_kappa(self, small_grid):
        """Eq. (5): kappa <= Trace."""
        import scipy.linalg as sla

        shift = regularization_shift(small_grid)
        L_G = regularized_laplacian(small_grid, shift)
        tree = small_grid.subgraph(mewst(small_grid))
        L_T = regularized_laplacian(tree, shift)
        trace = trace_ratio_exact(L_G, L_T)
        eigenvalues = sla.eigh(L_G.toarray(), L_T.toarray(), eigvals_only=True)
        assert eigenvalues.max() <= trace + 1e-9

    def test_dispatcher(self, small_grid):
        shift = regularization_shift(small_grid)
        L_G = regularized_laplacian(small_grid, shift)
        tree = small_grid.subgraph(mewst(small_grid))
        L_T = regularized_laplacian(tree, shift)
        factor = cholesky(L_T)
        small = trace_ratio(L_G, L_T)
        assert small == pytest.approx(trace_ratio_exact(L_G, L_T))
        stochastic = trace_ratio(
            L_G, L_T, solve=factor.solve, dense_limit=1, probes=300, seed=1
        )
        assert stochastic == pytest.approx(small, rel=0.2)
        with pytest.raises(ValueError):
            trace_ratio(L_G, L_T, dense_limit=1)
