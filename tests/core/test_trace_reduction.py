"""Tests for the trace-reduction criticality metrics (Eqs. 6-12, 20)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    approximate_trace_reduction,
    exact_trace_reduction,
    exact_trace_reduction_batch,
    truncated_trace_reduction_reference,
)
from repro.core.trace import trace_ratio_exact
from repro.graph import grid2d, regularization_shift, regularized_laplacian
from repro.linalg import cholesky, sparse_approximate_inverse
from repro.tree import mewst


@pytest.fixture(scope="module")
def setting():
    g = grid2d(7, 7, seed=31)
    shift = regularization_shift(g, 1e-6)
    L_G = regularized_laplacian(g, shift)
    tree_ids = mewst(g)
    tree = g.subgraph(tree_ids)
    L_T = regularized_laplacian(tree, shift)
    factor = cholesky(L_T)
    off = np.setdiff1d(np.arange(g.edge_count), tree_ids)
    return g, shift, L_G, tree_ids, tree, L_T, factor, off


def test_sherman_morrison_identity(setting):
    """Eq. (10): adding edge e reduces the trace by exactly TrRed(e)."""
    g, shift, L_G, tree_ids, tree, L_T, factor, off = setting
    base = trace_ratio_exact(L_G, L_T)
    for edge in off[:6]:
        trred = exact_trace_reduction(
            g, factor.solve, int(g.u[edge]), int(g.v[edge]), float(g.w[edge])
        )
        grown = np.sort(np.concatenate([tree_ids, [edge]]))
        L_grown = regularized_laplacian(g.subgraph(grown), shift)
        after = trace_ratio_exact(L_G, L_grown)
        assert base - trred == pytest.approx(after, rel=1e-5)


def test_trace_reduction_positive(setting):
    g, _, _, _, _, _, factor, off = setting
    values = exact_trace_reduction_batch(g, factor.solve, off)
    assert (values > 0).all()


def test_batch_matches_single(setting):
    g, _, _, _, _, _, factor, off = setting
    batch = exact_trace_reduction_batch(g, factor.solve, off[:5])
    for k, edge in enumerate(off[:5]):
        single = exact_trace_reduction(
            g, factor.solve, int(g.u[edge]), int(g.v[edge]), float(g.w[edge])
        )
        assert batch[k] == pytest.approx(single)


def test_truncated_below_exact(setting):
    """Truncation drops nonnegative terms, so truncated <= exact."""
    g, _, _, _, tree, _, factor, off = setting
    exact = exact_trace_reduction_batch(g, factor.solve, off)
    for beta in (1, 2, 4):
        truncated = truncated_trace_reduction_reference(
            g, tree, factor.solve, off, beta=beta
        )
        assert (truncated <= exact * (1 + 1e-9)).all()


def test_truncated_monotone_in_beta(setting):
    """Larger balls can only add terms."""
    g, _, _, _, tree, _, factor, off = setting
    previous = None
    for beta in (1, 2, 3, 5):
        current = truncated_trace_reduction_reference(
            g, tree, factor.solve, off, beta=beta
        )
        if previous is not None:
            assert (current >= previous - 1e-12).all()
        previous = current


def test_truncated_converges_to_exact(setting):
    """With beta >= diameter the truncation vanishes."""
    g, _, _, _, tree, _, factor, off = setting
    exact = exact_trace_reduction_batch(g, factor.solve, off)
    truncated = truncated_trace_reduction_reference(
        g, tree, factor.solve, off, beta=100
    )
    np.testing.assert_allclose(truncated, exact, rtol=1e-9)


def test_approximate_equals_reference_when_unpruned(setting):
    """Eq. (20) with the exact inverse reproduces Eq. (12) exactly."""
    g, shift, _, tree_ids, _, _, _, off = setting
    ids = np.sort(np.concatenate([tree_ids, off[:10]]))
    subgraph = g.subgraph(ids)
    L_S = regularized_laplacian(subgraph, shift)
    factor = cholesky(L_S)
    Z = sparse_approximate_inverse(factor.L, delta=0.0, keep_threshold=10**9)
    candidates = np.setdiff1d(off, off[:10])
    approx = approximate_trace_reduction(g, subgraph, factor, Z, candidates, beta=3)
    reference = truncated_trace_reduction_reference(
        g, subgraph, factor.solve, candidates, beta=3
    )
    np.testing.assert_allclose(approx, reference, rtol=1e-8)


def test_approximate_with_pruning_preserves_top_edges(setting):
    """delta=0.1 pruning must keep the top-ranked candidates stable."""
    g, shift, _, tree_ids, _, _, _, off = setting
    ids = np.sort(np.concatenate([tree_ids, off[:8]]))
    subgraph = g.subgraph(ids)
    L_S = regularized_laplacian(subgraph, shift)
    factor = cholesky(L_S)
    Z = sparse_approximate_inverse(factor.L, delta=0.1)
    candidates = np.setdiff1d(off, off[:8])
    approx = approximate_trace_reduction(g, subgraph, factor, Z, candidates, beta=3)
    reference = truncated_trace_reduction_reference(
        g, subgraph, factor.solve, candidates, beta=3
    )
    k = max(3, len(candidates) // 4)
    top_approx = set(np.argsort(-approx)[:k].tolist())
    top_ref = set(np.argsort(-reference)[:k].tolist())
    overlap = len(top_approx & top_ref) / k
    assert overlap >= 0.5


def test_approximate_nonnegative(setting):
    g, shift, _, tree_ids, _, _, _, off = setting
    subgraph = g.subgraph(tree_ids)
    L_S = regularized_laplacian(subgraph, shift)
    factor = cholesky(L_S)
    Z = sparse_approximate_inverse(factor.L, delta=0.1)
    approx = approximate_trace_reduction(g, subgraph, factor, Z, off, beta=5)
    assert (approx >= 0).all()


def test_heavier_parallel_edge_more_critical():
    """On a dumbbell, the heavier of two parallel off-tree edges wins."""
    from repro.graph import Graph

    # Path 0-1-2-3 plus two off-tree shortcuts with different weights.
    edges = [
        (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0),  # tree
        (0, 3, 0.1),                            # light shortcut
        (0, 2, 2.0),                            # heavy shortcut
    ]
    g = Graph.from_edges(4, edges)
    shift = regularization_shift(g, 1e-6)
    L_T = regularized_laplacian(g.subgraph(np.array([0, 1, 2])), shift)
    factor = cholesky(L_T)
    light = exact_trace_reduction(g, factor.solve, 0, 3, 0.1)
    heavy = exact_trace_reduction(g, factor.solve, 0, 2, 2.0)
    assert heavy > light


@given(seed=st.integers(0, 40))
@settings(max_examples=10, deadline=None)
def test_trace_monotone_under_edge_addition(seed):
    """Trace(L_S^-1 L_G) strictly decreases as off-tree edges are added."""
    rng = np.random.default_rng(seed)
    g = grid2d(5, 5, seed=seed)
    shift = regularization_shift(g, 1e-6)
    L_G = regularized_laplacian(g, shift)
    tree_ids = mewst(g)
    off = np.setdiff1d(np.arange(g.edge_count), tree_ids)
    rng.shuffle(off)
    ids = tree_ids
    previous = trace_ratio_exact(L_G, regularized_laplacian(g.subgraph(ids), shift))
    for edge in off[:4]:
        ids = np.sort(np.concatenate([ids, [edge]]))
        current = trace_ratio_exact(
            L_G, regularized_laplacian(g.subgraph(ids), shift)
        )
        assert current < previous + 1e-9
        previous = current
