"""Tests for the incremental trace tracker (Eqs. 6-10 as a feature)."""

import numpy as np
import pytest

from repro.core import TraceTracker, exact_trace_reduction
from repro.core.trace import trace_ratio_exact
from repro.graph import grid2d, regularization_shift, regularized_laplacian
from repro.linalg import cholesky
from repro.tree import mewst


@pytest.fixture()
def setting():
    g = grid2d(7, 7, seed=91)
    shift = regularization_shift(g, 1e-7)
    L_G = regularized_laplacian(g, shift)
    tree_ids = mewst(g)
    L_T = regularized_laplacian(g.subgraph(tree_ids), shift)
    off = np.setdiff1d(np.arange(g.edge_count), tree_ids)
    return g, shift, L_G, tree_ids, L_T, off


def test_exact_accounting_matches_fresh_trace(setting):
    """Tracker trajectory == independently measured traces (Eq. 10)."""
    g, shift, L_G, tree_ids, L_T, off = setting
    tracker = TraceTracker(g, trace_ratio_exact(L_G, L_T))
    ids = tree_ids
    for edge in off[:5]:
        factor = cholesky(regularized_laplacian(g.subgraph(ids), shift))
        tracker.account_exact(factor.solve, edge)
        ids = np.sort(np.concatenate([ids, [edge]]))
        actual = trace_ratio_exact(
            L_G, regularized_laplacian(g.subgraph(ids), shift)
        )
        assert tracker.current == pytest.approx(actual, rel=1e-5)


def test_history_monotone_decreasing(setting):
    g, shift, L_G, tree_ids, L_T, off = setting
    tracker = TraceTracker(g, trace_ratio_exact(L_G, L_T))
    factor = cholesky(L_T)
    for edge in off[:4]:
        reduction = exact_trace_reduction(
            g, factor.solve, int(g.u[edge]), int(g.v[edge]), float(g.w[edge])
        )
        tracker.account(edge, reduction * 0.9)  # approximate inputs
    history = tracker.history
    assert all(b <= a + 1e-12 for a, b in zip(history, history[1:]))
    assert tracker.accounted_edges == [int(e) for e in off[:4]]


def test_clamped_at_n(setting):
    g, _, L_G, _, L_T, _ = setting
    tracker = TraceTracker(g, trace_ratio_exact(L_G, L_T))
    tracker.account(0, 1e12)  # absurd over-estimate
    assert tracker.current == g.n


def test_rejects_bad_inputs(setting):
    g, _, L_G, _, L_T, _ = setting
    with pytest.raises(ValueError):
        TraceTracker(g, g.n * 0.5)  # below the n floor
    tracker = TraceTracker(g, trace_ratio_exact(L_G, L_T))
    with pytest.raises(ValueError):
        tracker.account(0, -1.0)


def test_verify_measures_drift(setting):
    g, shift, L_G, tree_ids, L_T, off = setting
    tracker = TraceTracker(g, trace_ratio_exact(L_G, L_T))
    factor = cholesky(L_T)
    tracker.account_exact(factor.solve, off[0])
    ids = np.sort(np.concatenate([tree_ids, [off[0]]]))
    L_S = regularized_laplacian(g.subgraph(ids), shift)
    drift = tracker.verify(L_G, L_S)
    assert drift < 1e-5
