"""Tests for the tree-phase truncated trace reduction (Eqs. 13-15)."""

import numpy as np
import pytest

from repro.core import tree_truncated_trace_reduction
from repro.core.trace_reduction import (
    exact_trace_reduction_batch,
    truncated_trace_reduction_reference,
)
from repro.graph import (
    grid2d,
    regularization_shift,
    regularized_laplacian,
    triangular_mesh,
)
from repro.linalg import cholesky
from repro.tree import RootedForest, mewst


@pytest.fixture(scope="module", params=["grid", "mesh"])
def setting(request):
    if request.param == "grid":
        g = grid2d(8, 8, seed=41)
    else:
        g = triangular_mesh(80, seed=41)
    tree_ids = mewst(g)
    forest = RootedForest(g, tree_ids)
    shift = regularization_shift(g, 1e-8)
    L_T = regularized_laplacian(g.subgraph(tree_ids), shift)
    factor = cholesky(L_T)
    return g, forest, factor


def test_matches_solve_based_reference(setting):
    """BFS voltage propagation == solve-based Eq. (12) on the tree."""
    g, forest, factor = setting
    for beta in (1, 3, 6):
        crit, candidates, _ = tree_truncated_trace_reduction(
            g, forest, beta=beta
        )
        reference = truncated_trace_reduction_reference(
            g, forest.tree, factor.solve, candidates, beta=beta
        )
        np.testing.assert_allclose(crit, reference, rtol=5e-4, atol=1e-10)


def test_resistances_returned(setting):
    g, forest, _ = setting
    crit, candidates, resistances = tree_truncated_trace_reduction(g, forest)
    for k in range(0, len(candidates), 7):
        e = candidates[k]
        expected = forest.tree_resistance(int(g.u[e]), int(g.v[e]))
        assert resistances[k] == pytest.approx(expected)


def test_large_beta_matches_exact(setting):
    g, forest, factor = setting
    crit, candidates, _ = tree_truncated_trace_reduction(g, forest, beta=500)
    exact = exact_trace_reduction_batch(g, factor.solve, candidates)
    np.testing.assert_allclose(crit, exact, rtol=5e-4)


def test_nonnegative_and_finite(setting):
    g, forest, _ = setting
    crit, _, _ = tree_truncated_trace_reduction(g, forest, beta=5)
    assert np.isfinite(crit).all()
    assert (crit >= 0).all()


def test_explicit_candidates_subset(setting):
    g, forest, _ = setting
    mask = forest.tree_edge_mask()
    all_off = np.flatnonzero(~mask)
    subset = all_off[::3]
    crit_sub, returned, _ = tree_truncated_trace_reduction(
        g, forest, edge_ids=subset, beta=4
    )
    crit_all, all_returned, _ = tree_truncated_trace_reduction(
        g, forest, beta=4
    )
    lookup = {int(e): c for e, c in zip(all_returned, crit_all)}
    for e, c in zip(returned, crit_sub):
        assert c == pytest.approx(lookup[int(e)])


def test_empty_candidates(setting):
    g, forest, _ = setting
    crit, ids, res = tree_truncated_trace_reduction(g, forest, edge_ids=[])
    assert len(crit) == len(ids) == len(res) == 0


def test_path_voltage_drop_hand_example():
    """Hand-checkable: path 0-1-2 with shortcut (0,2)."""
    from repro.graph import Graph

    g = Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])
    tree_ids = np.array([0, 1])  # the path
    forest = RootedForest(g, tree_ids)
    crit, candidates, resistances = tree_truncated_trace_reduction(
        g, forest, beta=5
    )
    # R_T(0,2) = 1 + 1/2 = 1.5
    assert resistances[0] == pytest.approx(1.5)
    # Voltages: v0=1.5, v1=0.5, v2=0. Numerator terms over all edges:
    # (0,1): 1*(1.5-0.5)^2 = 1 ; (1,2): 2*(0.5)^2 = 0.5 ; (0,2): 4*(1.5)^2 = 9
    # TrRed = 4 * (1 + 0.5 + 9) / (1 + 4*1.5) = 4*10.5/7 = 6.0
    assert crit[0] == pytest.approx(6.0)
