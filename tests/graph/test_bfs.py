"""Tests for BFS kernels (BallFinder and bfs_tree_order)."""

import numpy as np

from repro.graph import BallFinder, bfs_tree_order


def _finder(graph, with_eids=False):
    indptr, nbr, eid = graph.adjacency()
    if with_eids:
        return BallFinder(indptr, nbr, edge_ids=eid)
    return BallFinder(indptr, nbr)


def test_ball_zero_layers(path_graph):
    nodes, pred, _ = _finder(path_graph).ball(2, 0)
    assert nodes.tolist() == [2]
    assert pred.tolist() == [-1]


def test_ball_one_layer(path_graph):
    nodes, pred, _ = _finder(path_graph).ball(2, 1)
    assert set(nodes.tolist()) == {1, 2, 3}


def test_ball_covers_path(path_graph):
    nodes, _, _ = _finder(path_graph).ball(0, 4)
    assert set(nodes.tolist()) == {0, 1, 2, 3, 4}


def test_ball_distances_on_grid(medium_grid):
    """Ball(k) on a grid is exactly the L1 diamond of radius k."""
    finder = _finder(medium_grid)
    side = 20
    center = 10 * side + 10
    for layers in (1, 2, 3):
        nodes, _, _ = finder.ball(center, layers)
        expected = 0
        for i in range(side):
            for j in range(side):
                if abs(i - 10) + abs(j - 10) <= layers:
                    expected += 1
        assert len(nodes) == expected


def test_ball_predecessors_precede(medium_grid):
    """Each node's predecessor appears earlier in the BFS order."""
    finder = _finder(medium_grid)
    nodes, pred, _ = finder.ball(25, 4)
    position = {int(n): k for k, n in enumerate(nodes)}
    for k in range(1, len(nodes)):
        assert position[int(pred[k])] < k


def test_ball_edge_ids(path_graph):
    nodes, pred, eids = _finder(path_graph, with_eids=True).ball(1, 1)
    lookup = path_graph.edge_lookup()
    for k in range(1, len(nodes)):
        a, b = sorted((int(nodes[k]), int(pred[k])))
        assert eids[k] == lookup[(a, b)]


def test_ball_reuse_is_clean(path_graph):
    """Stamp reuse: consecutive queries do not leak state."""
    finder = _finder(path_graph)
    first, _, _ = finder.ball(0, 1)
    second, _, _ = finder.ball(4, 1)
    assert set(second.tolist()) == {3, 4}


def test_bfs_tree_order_visits_all(medium_grid):
    indptr, nbr, _ = medium_grid.adjacency()
    order, pred = bfs_tree_order(indptr, nbr, [0], n=medium_grid.n)
    assert len(order) == medium_grid.n
    assert pred[0] == -1
    assert (pred[order[1:]] >= 0).all()


def test_bfs_tree_order_multiple_roots(forest_graph):
    indptr, nbr, _ = forest_graph.adjacency()
    order, pred = bfs_tree_order(indptr, nbr, [0, 3], n=forest_graph.n)
    assert len(order) == forest_graph.n
    assert pred[0] == -1 and pred[3] == -1


def test_bfs_tree_order_unreachable(forest_graph):
    indptr, nbr, _ = forest_graph.adjacency()
    order, pred = bfs_tree_order(indptr, nbr, [0], n=forest_graph.n)
    assert set(order.tolist()) == {0, 1, 2}
    assert (pred[[3, 4, 5]] == -2).all()
