"""Tests for connected-component utilities."""

import numpy as np

from repro.graph import Graph, connected_components, is_connected
from repro.graph.components import component_roots


def test_connected_grid(small_grid):
    count, labels = connected_components(small_grid)
    assert count == 1
    assert (labels == 0).all()
    assert is_connected(small_grid)


def test_two_components(forest_graph):
    count, labels = connected_components(forest_graph)
    assert count == 2
    assert labels[0] == labels[1] == labels[2]
    assert labels[3] == labels[4] == labels[5]
    assert labels[0] != labels[3]
    assert not is_connected(forest_graph)


def test_isolated_nodes():
    g = Graph(4, [0], [1], [1.0])
    count, labels = connected_components(g)
    assert count == 3  # {0,1}, {2}, {3}


def test_component_roots(forest_graph):
    _, labels = connected_components(forest_graph)
    roots = component_roots(labels)
    assert roots.tolist() == [0, 3]


def test_labels_ordered_by_first_node():
    g = Graph(5, [3, 0], [4, 1], [1.0, 1.0])
    _, labels = connected_components(g)
    # Component of node 0 gets label 0, node 2 label 1, nodes 3-4 label 2.
    assert labels[0] == 0 and labels[2] == 1 and labels[3] == 2
