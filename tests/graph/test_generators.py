"""Tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import (
    circuit_grid,
    connected_components,
    grid2d,
    grid3d,
    is_connected,
    random_geometric_graph,
    triangular_mesh,
)
from repro.graph.generators import edge_weights


class TestGrid2D:
    def test_size_and_edges(self):
        g = grid2d(5, 7)
        assert g.n == 35
        assert g.edge_count == 4 * 7 + 5 * 6

    def test_diagonals_add_edges(self):
        plain = grid2d(6, 6)
        diag = grid2d(6, 6, diagonals=True)
        assert diag.edge_count == plain.edge_count + 25

    def test_connected(self):
        assert is_connected(grid2d(9, 4, seed=3))

    def test_deterministic(self):
        a = grid2d(4, 4, seed=5)
        b = grid2d(4, 4, seed=5)
        np.testing.assert_allclose(a.w, b.w)

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            grid2d(0, 3)

    def test_degenerate_1d(self):
        g = grid2d(1, 10)
        assert g.edge_count == 9

    def test_weight_band_is_respected(self):
        g = grid2d(8, 8, weights="smooth", seed=1, w_min=0.5, w_max=2.0)
        assert g.w.min() >= 0.5 - 1e-12
        assert g.w.max() <= 2.0 + 1e-12

    def test_narrow_band_shrinks_spread(self):
        wide = grid2d(8, 8, weights="smooth", seed=1)
        narrow = grid2d(8, 8, weights="smooth", seed=1, w_min=0.5, w_max=2.0)
        assert narrow.w.max() / narrow.w.min() < wide.w.max() / wide.w.min()


class TestGrid3D:
    def test_size_and_edges(self):
        g = grid3d(3, 4, 5)
        assert g.n == 60
        assert g.edge_count == 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4

    def test_connected(self):
        assert is_connected(grid3d(3, 3, 3, seed=1))


class TestTriangularMesh:
    def test_basic_properties(self):
        g = triangular_mesh(300, shape="square", seed=2)
        assert g.n == 300
        # Delaunay: m ~ 3n.
        assert 2.0 * g.n < g.edge_count < 3.2 * g.n
        assert is_connected(g)

    @pytest.mark.parametrize(
        "shape", ["square", "disk", "annulus", "airfoil", "wing", "lshape"]
    )
    def test_all_shapes_build(self, shape):
        g = triangular_mesh(150, shape=shape, seed=4)
        assert g.n == 150
        assert g.edge_count > g.n

    def test_unknown_shape(self):
        with pytest.raises(GraphError):
            triangular_mesh(100, shape="dodecahedron")

    def test_too_few_points(self):
        with pytest.raises(GraphError):
            triangular_mesh(2)


class TestRandomGeometric:
    def test_default_radius_connects(self):
        g = random_geometric_graph(150, seed=7)
        count, _ = connected_components(g)
        assert count <= 3  # near-threshold radius; almost surely connected

    def test_tiny_radius_raises(self):
        with pytest.raises(GraphError):
            random_geometric_graph(50, radius=1e-6, seed=1)


class TestCircuitGrid:
    def test_layers_and_vias(self):
        g = circuit_grid(6, 6, layers=3, via_density=0.1, seed=9)
        assert g.n == 108
        per_layer_edges = 2 * 6 * 5
        vias = g.edge_count - 3 * per_layer_edges
        assert vias == 2 * max(1, int(0.1 * 36))

    def test_single_layer(self):
        g = circuit_grid(4, 4, layers=1, seed=0)
        assert g.n == 16
        assert is_connected(g)

    def test_rejects_zero_layers(self):
        with pytest.raises(GraphError):
            circuit_grid(4, 4, layers=0)


class TestEdgeWeights:
    def test_unit(self):
        rng = np.random.default_rng(0)
        w = edge_weights("unit", np.zeros((5, 2)), rng)
        np.testing.assert_allclose(w, 1.0)

    def test_uniform_within_bounds(self):
        rng = np.random.default_rng(0)
        w = edge_weights("uniform", np.zeros((500, 2)), rng, w_min=0.5, w_max=2.0)
        assert w.min() >= 0.5 and w.max() <= 2.0

    def test_smooth_is_spatially_correlated(self):
        rng = np.random.default_rng(3)
        points = np.linspace(0, 1, 400)[:, None] * np.ones((1, 2))
        w = edge_weights("smooth", points, rng, w_min=0.1, w_max=10.0)
        # Neighboring points should have similar weights.
        ratio = np.abs(np.diff(np.log(w))).max()
        assert ratio < 0.5

    def test_unknown_kind(self):
        rng = np.random.default_rng(0)
        with pytest.raises(GraphError):
            edge_weights("nope", np.zeros((3, 2)), rng)
