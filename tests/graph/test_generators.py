"""Tests for synthetic graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph import (
    GENERATOR_REGISTRY,
    barabasi_albert,
    bipartite_recommender,
    circuit_grid,
    configuration_model,
    connected_components,
    grid2d,
    grid3d,
    is_connected,
    kronecker_expected_edges,
    list_families,
    make_family_graph,
    planted_labels,
    random_geometric_graph,
    stochastic_kronecker,
    triangular_mesh,
    watts_strogatz,
)
from repro.graph.generators import edge_weights


class TestGrid2D:
    def test_size_and_edges(self):
        g = grid2d(5, 7)
        assert g.n == 35
        assert g.edge_count == 4 * 7 + 5 * 6

    def test_diagonals_add_edges(self):
        plain = grid2d(6, 6)
        diag = grid2d(6, 6, diagonals=True)
        assert diag.edge_count == plain.edge_count + 25

    def test_connected(self):
        assert is_connected(grid2d(9, 4, seed=3))

    def test_deterministic(self):
        a = grid2d(4, 4, seed=5)
        b = grid2d(4, 4, seed=5)
        np.testing.assert_allclose(a.w, b.w)

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            grid2d(0, 3)

    def test_degenerate_1d(self):
        g = grid2d(1, 10)
        assert g.edge_count == 9

    def test_weight_band_is_respected(self):
        g = grid2d(8, 8, weights="smooth", seed=1, w_min=0.5, w_max=2.0)
        assert g.w.min() >= 0.5 - 1e-12
        assert g.w.max() <= 2.0 + 1e-12

    def test_narrow_band_shrinks_spread(self):
        wide = grid2d(8, 8, weights="smooth", seed=1)
        narrow = grid2d(8, 8, weights="smooth", seed=1, w_min=0.5, w_max=2.0)
        assert narrow.w.max() / narrow.w.min() < wide.w.max() / wide.w.min()


class TestGrid3D:
    def test_size_and_edges(self):
        g = grid3d(3, 4, 5)
        assert g.n == 60
        assert g.edge_count == 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4

    def test_connected(self):
        assert is_connected(grid3d(3, 3, 3, seed=1))


class TestTriangularMesh:
    def test_basic_properties(self):
        g = triangular_mesh(300, shape="square", seed=2)
        assert g.n == 300
        # Delaunay: m ~ 3n.
        assert 2.0 * g.n < g.edge_count < 3.2 * g.n
        assert is_connected(g)

    @pytest.mark.parametrize(
        "shape", ["square", "disk", "annulus", "airfoil", "wing", "lshape"]
    )
    def test_all_shapes_build(self, shape):
        g = triangular_mesh(150, shape=shape, seed=4)
        assert g.n == 150
        assert g.edge_count > g.n

    def test_unknown_shape(self):
        with pytest.raises(GraphError):
            triangular_mesh(100, shape="dodecahedron")

    def test_too_few_points(self):
        with pytest.raises(GraphError):
            triangular_mesh(2)


class TestRandomGeometric:
    def test_default_radius_connects(self):
        g = random_geometric_graph(150, seed=7)
        count, _ = connected_components(g)
        assert count <= 3  # near-threshold radius; almost surely connected

    def test_tiny_radius_raises(self):
        with pytest.raises(GraphError):
            random_geometric_graph(50, radius=1e-6, seed=1)


class TestCircuitGrid:
    def test_layers_and_vias(self):
        g = circuit_grid(6, 6, layers=3, via_density=0.1, seed=9)
        assert g.n == 108
        per_layer_edges = 2 * 6 * 5
        vias = g.edge_count - 3 * per_layer_edges
        assert vias == 2 * max(1, int(0.1 * 36))

    def test_single_layer(self):
        g = circuit_grid(4, 4, layers=1, seed=0)
        assert g.n == 16
        assert is_connected(g)

    def test_rejects_zero_layers(self):
        with pytest.raises(GraphError):
            circuit_grid(4, 4, layers=0)


class TestEdgeWeights:
    def test_unit(self):
        rng = np.random.default_rng(0)
        w = edge_weights("unit", np.zeros((5, 2)), rng)
        np.testing.assert_allclose(w, 1.0)

    def test_uniform_within_bounds(self):
        rng = np.random.default_rng(0)
        w = edge_weights("uniform", np.zeros((500, 2)), rng, w_min=0.5, w_max=2.0)
        assert w.min() >= 0.5 and w.max() <= 2.0

    def test_smooth_is_spatially_correlated(self):
        rng = np.random.default_rng(3)
        points = np.linspace(0, 1, 400)[:, None] * np.ones((1, 2))
        w = edge_weights("smooth", points, rng, w_min=0.1, w_max=10.0)
        # Neighboring points should have similar weights.
        ratio = np.abs(np.diff(np.log(w))).max()
        assert ratio < 0.5

    def test_unknown_kind(self):
        rng = np.random.default_rng(0)
        with pytest.raises(GraphError):
            edge_weights("nope", np.zeros((3, 2)), rng)


# ----------------------------------------------------------------------
# workload-family property suite (hypothesis, registry-driven)
# ----------------------------------------------------------------------

class TestFamilyContract:
    """Seed/weights contract for EVERY registered workload family."""

    @pytest.mark.parametrize("family", list_families())
    @given(seed=st.integers(0, 500))
    @settings(max_examples=6, deadline=None)
    def test_canonical_edges_and_determinism(self, family, seed):
        a = make_family_graph(family, 60, seed=seed)
        b = make_family_graph(family, 60, seed=seed)
        # Per-seed determinism: identical topology and weights.
        np.testing.assert_array_equal(a.u, b.u)
        np.testing.assert_array_equal(a.v, b.v)
        np.testing.assert_allclose(a.w, b.w)
        # Canonical form: u < v, no self loops, no duplicates.
        assert np.all(a.u < a.v)
        keys = a.u.astype(np.int64) * a.n + a.v
        assert len(np.unique(keys)) == len(keys)
        assert np.all(a.u >= 0) and np.all(a.v < a.n)

    @pytest.mark.parametrize("family", list_families())
    @pytest.mark.parametrize("weights", ["unit", "uniform", "smooth"])
    def test_weight_models_finite_positive(self, family, weights):
        g = make_family_graph(family, 80, seed=3, weights=weights)
        assert np.all(np.isfinite(g.w))
        assert np.all(g.w > 0)
        # mesh rescales by edge length and circuit vias carry a fixed
        # conductance, so literal all-ones only holds elsewhere.
        if weights == "unit" and family not in ("mesh", "circuit"):
            np.testing.assert_allclose(g.w, 1.0)

    @pytest.mark.parametrize("family", list_families())
    @given(seed=st.integers(0, 200))
    @settings(max_examples=4, deadline=None)
    def test_default_family_is_connected(self, family, seed):
        # Every registry default must yield a usable Laplacian workload.
        assert is_connected(make_family_graph(family, 64, seed=seed))

    @pytest.mark.parametrize(
        "family", ["mesh", "geometric", "ba", "smallworld", "configmodel",
                   "bipartite"]
    )
    def test_exact_node_contract(self, family):
        for n in (40, 97, 150):
            assert make_family_graph(family, n, seed=1).n == n

    def test_kronecker_node_contract_power_of_two(self):
        assert make_family_graph("kronecker", 300, seed=0).n == 512
        assert make_family_graph("kronecker", 512, seed=0).n == 512

    def test_unknown_family_raises(self):
        with pytest.raises(GraphError, match="unknown workload family"):
            make_family_graph("smallword", 64)

    def test_unknown_option_raises(self):
        with pytest.raises(GraphError, match="does not accept"):
            make_family_graph("ba", 64, radius=0.2)

    def test_options_reach_the_builder(self):
        plain = make_family_graph("grid2d", 36, seed=0)
        diag = make_family_graph("grid2d", 36, seed=0, diagonals=True)
        assert diag.edge_count > plain.edge_count

    def test_registry_specs_are_complete(self):
        for name, spec in GENERATOR_REGISTRY.items():
            assert spec.name == name
            assert spec.description
            assert callable(spec.builder)


class TestBarabasiAlbert:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_always_connected(self, seed):
        assert is_connected(barabasi_albert(120, attach=3, seed=seed))

    def test_edge_count_matches_attachment(self):
        n, attach = 200, 4
        g = barabasi_albert(n, attach=attach)
        core = attach + 1
        assert g.edge_count == core * (core - 1) // 2 + (n - core) * attach

    def test_degenerates_to_complete_graph(self):
        g = barabasi_albert(4, attach=8)
        assert g.edge_count == 6

    def test_rejects_bad_arguments(self):
        with pytest.raises(GraphError):
            barabasi_albert(1)
        with pytest.raises(GraphError):
            barabasi_albert(10, attach=0)


class TestWattsStrogatz:
    @given(seed=st.integers(0, 500),
           p=st.sampled_from([0.0, 0.1, 0.5, 1.0]))
    @settings(max_examples=15, deadline=None)
    def test_always_connected_for_any_p(self, seed, p):
        # The offset-1 ring backbone is never rewired: connectivity is a
        # contract, not a probability.
        assert is_connected(watts_strogatz(90, k=4, p=p, seed=seed))

    def test_no_rewiring_is_the_ring_lattice(self):
        g = watts_strogatz(50, k=6, p=0.0, seed=3)
        assert g.edge_count == 50 * 3

    def test_rejects_bad_arguments(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, k=3)          # odd k
        with pytest.raises(GraphError):
            watts_strogatz(4, k=4)           # k >= n
        with pytest.raises(GraphError):
            watts_strogatz(10, k=4, p=1.5)   # p outside [0, 1]


class TestStochasticKronecker:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_connected_knob(self, seed):
        g = stochastic_kronecker(8, seed=seed, connected=True)
        assert g.n == 256
        assert is_connected(g)
        raw = stochastic_kronecker(8, seed=seed, connected=False)
        assert raw.n == 256  # node count stays exact either way

    def test_rejects_bad_initiator(self):
        with pytest.raises(GraphError):
            stochastic_kronecker(4, initiator=((0.5, 0.5, 0.5),))
        with pytest.raises(GraphError):
            stochastic_kronecker(4, initiator=((1.5, 0.2), (0.2, 0.1)))
        with pytest.raises(GraphError):
            stochastic_kronecker(0)


class TestConfigurationModel:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_connected_knob(self, seed):
        g = configuration_model(150, seed=seed, connected=True)
        assert g.n == 150
        assert is_connected(g)
        raw = configuration_model(150, seed=seed, connected=False)
        assert raw.n == 150

    def test_explicit_degree_sequence(self):
        degrees = np.full(40, 3)
        g = configuration_model(40, degrees=degrees, connected=False)
        realized = np.zeros(40, dtype=int)
        np.add.at(realized, g.u, 1)
        np.add.at(realized, g.v, 1)
        # Erasure only removes stubs; realized degrees never exceed the
        # drawn sequence (+1 on one node if the stub sum was odd).
        assert realized.max() <= 4

    def test_rejects_bad_arguments(self):
        with pytest.raises(GraphError):
            configuration_model(10, degrees=np.full(3, 2))
        with pytest.raises(GraphError):
            configuration_model(10, degrees=np.array([-1] + [2] * 9))
        with pytest.raises(GraphError):
            configuration_model(10, mean_degree=0.0)


class TestBipartiteRecommender:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_bipartite_except_bridges(self, seed):
        n_users = 60
        g = bipartite_recommender(n_users, 80, groups=4, seed=seed)
        assert g.n == 140
        assert is_connected(g)
        # Only bridge edges may violate bipartiteness; the random block
        # model itself only emits user-item pairs.
        same_side = (g.u < n_users) == (g.v < n_users)
        assert same_side.sum() <= 4  # at most one bridge per stray part

    def test_planted_labels_round_robin(self):
        labels = planted_labels(5, 4, groups=3)
        np.testing.assert_array_equal(labels, [0, 1, 2, 0, 1, 0, 1, 2, 0])

    def test_rejects_bad_arguments(self):
        with pytest.raises(GraphError):
            bipartite_recommender(0, 10)
        with pytest.raises(GraphError):
            bipartite_recommender(10, 10, groups=20)
        with pytest.raises(GraphError):
            bipartite_recommender(10, 10, p_in=0.0)


# ----------------------------------------------------------------------
# statistical acceptance: each family is what it claims to be
# ----------------------------------------------------------------------

def _degree_sequence(g):
    degrees = np.zeros(g.n, dtype=np.int64)
    np.add.at(degrees, g.u, 1)
    np.add.at(degrees, g.v, 1)
    return degrees


def _clustering_coefficient(g):
    """Mean local clustering coefficient (nodes with degree >= 2)."""
    adjacency = [set() for _ in range(g.n)]
    for a, b in zip(g.u, g.v):
        adjacency[a].add(int(b))
        adjacency[b].add(int(a))
    total, counted = 0.0, 0
    for node in range(g.n):
        neighbors = list(adjacency[node])
        k = len(neighbors)
        if k < 2:
            continue
        links = sum(
            1
            for i in range(k)
            for j in range(i + 1, k)
            if neighbors[j] in adjacency[neighbors[i]]
        )
        total += 2.0 * links / (k * (k - 1))
        counted += 1
    return total / max(counted, 1)


class TestStatisticalAcceptance:
    """Seeded distribution checks — deterministic, no flaky tolerances."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ba_tail_heavier_than_poisson_baseline(self, seed):
        # Same size, same mean degree (2 * attach): the BA maximum and
        # 99.5th-percentile degree must dwarf the memoryless baseline.
        n, attach = 2000, 4
        ba = _degree_sequence(barabasi_albert(n, attach=attach, seed=seed))
        poisson = _degree_sequence(
            configuration_model(n, mean_degree=2.0 * attach, seed=seed,
                                connected=False)
        )
        assert ba.max() >= 3 * poisson.max()
        assert np.percentile(ba, 99.5) >= 2 * np.percentile(poisson, 99.5)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ws_clustering_decays_with_rewiring(self, seed):
        coefficients = [
            _clustering_coefficient(
                watts_strogatz(600, k=6, p=p, seed=seed)
            )
            for p in (0.0, 0.1, 1.0)
        ]
        # Monotone decay from the lattice value toward the random-graph
        # value; the lattice itself has C = 3(k-2)/(4(k-1)) = 0.6.
        assert coefficients[0] == pytest.approx(0.6, abs=1e-9)
        assert coefficients[0] > coefficients[1] > coefficients[2]
        assert coefficients[2] < 0.05

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("levels", [9, 10])
    def test_kronecker_edge_count_tracks_initiator(self, seed, levels):
        # connected=False: the raw sample, whose realized simple edge
        # count sits below the initiator expectation by only the
        # self-loop/duplicate losses (a few percent).
        g = stochastic_kronecker(levels, seed=seed, connected=False)
        expected = kronecker_expected_edges(levels=levels)
        assert 0.93 * expected <= g.edge_count <= expected
