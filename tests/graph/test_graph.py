"""Tests for the Graph data structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph import Graph


def test_edges_are_canonicalized():
    g = Graph(3, [2, 1], [0, 0], [1.0, 2.0])
    assert (g.u <= g.v).all()
    assert g.edge_key_set() == {(0, 2), (0, 1)}


def test_edge_and_node_counts(small_grid):
    assert small_grid.node_count == 64
    assert small_grid.edge_count == 2 * 8 * 7


def test_from_edges_roundtrip(triangle_graph):
    assert triangle_graph.edge_count == 3
    assert triangle_graph.n == 3


def test_from_scipy_adjacency(triangle_graph):
    adjacency = triangle_graph.to_scipy_adjacency()
    back = Graph.from_scipy_adjacency(adjacency)
    assert back.edge_key_set() == triangle_graph.edge_key_set()
    np.testing.assert_allclose(np.sort(back.w), np.sort(triangle_graph.w))


def test_validation_rejects_self_loop():
    with pytest.raises(GraphError):
        Graph(3, [0], [0], [1.0])


def test_validation_rejects_duplicate_edges():
    with pytest.raises(GraphError):
        Graph(3, [0, 1], [1, 0], [1.0, 2.0])


def test_validation_rejects_nonpositive_weight():
    with pytest.raises(GraphError):
        Graph(3, [0], [1], [0.0])
    with pytest.raises(GraphError):
        Graph(3, [0], [1], [-1.0])


def test_validation_rejects_out_of_range():
    with pytest.raises(GraphError):
        Graph(3, [0], [5], [1.0])


def test_validation_rejects_length_mismatch():
    with pytest.raises(GraphError):
        Graph(3, [0, 1], [1], [1.0])


def test_weighted_degrees(triangle_graph):
    deg = triangle_graph.weighted_degrees()
    np.testing.assert_allclose(deg, [4.0, 3.0, 5.0])


def test_degrees(path_graph):
    np.testing.assert_array_equal(path_graph.degrees(), [1, 2, 2, 2, 1])


def test_adjacency_structure(path_graph):
    indptr, nbr, eid = path_graph.adjacency()
    assert len(indptr) == path_graph.n + 1
    assert indptr[-1] == 2 * path_graph.edge_count
    # Node 1's neighbors are 0 and 2.
    assert set(path_graph.neighbors(1).tolist()) == {0, 2}


def test_adjacency_edge_ids_consistent(small_grid):
    indptr, nbr, eid = small_grid.adjacency()
    for node in (0, 17, 63):
        for k in range(indptr[node], indptr[node + 1]):
            edge = eid[k]
            endpoints = {small_grid.u[edge], small_grid.v[edge]}
            assert endpoints == {node, nbr[k]}


def test_incident_edges(triangle_graph):
    ids = triangle_graph.incident_edges(0)
    assert len(ids) == 2


def test_subgraph_by_mask(small_grid):
    mask = np.zeros(small_grid.edge_count, dtype=bool)
    mask[:10] = True
    sub = small_grid.subgraph(mask)
    assert sub.edge_count == 10
    assert sub.n == small_grid.n


def test_subgraph_by_ids(small_grid):
    sub = small_grid.subgraph(np.array([3, 5, 7]))
    assert sub.edge_count == 3
    np.testing.assert_allclose(sub.w, small_grid.w[[3, 5, 7]])


def test_subgraph_mask_length_mismatch(small_grid):
    with pytest.raises(GraphError):
        small_grid.subgraph(np.zeros(3, dtype=bool))


def test_reweighted(triangle_graph):
    new = triangle_graph.reweighted([5.0, 6.0, 7.0])
    np.testing.assert_allclose(new.w, [5.0, 6.0, 7.0])
    assert new.edge_key_set() == triangle_graph.edge_key_set()
    with pytest.raises(GraphError):
        triangle_graph.reweighted([1.0])


def test_to_scipy_adjacency_symmetric(small_grid):
    adjacency = small_grid.to_scipy_adjacency()
    diff = adjacency - adjacency.T
    assert abs(diff.data).max() if diff.nnz else 0 == 0


def test_edge_lookup(triangle_graph):
    lookup = triangle_graph.edge_lookup()
    for edge_id, (a, b) in enumerate(zip(triangle_graph.u, triangle_graph.v)):
        assert lookup[(int(a), int(b))] == edge_id


def test_single_node_graph():
    g = Graph(1, [], [], [])
    assert g.edge_count == 0
    assert g.weighted_degrees().tolist() == [0.0]


@given(
    n=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_random_graph_invariants(n, seed):
    """Adjacency is an involution: each edge appears exactly twice."""
    rng = np.random.default_rng(seed)
    pairs = set()
    for _ in range(rng.integers(0, n * 2)):
        a, b = rng.integers(0, n, size=2)
        if a != b:
            pairs.add((min(a, b), max(a, b)))
    pairs = sorted(pairs)
    if pairs:
        u, v = zip(*pairs)
    else:
        u, v = [], []
    g = Graph(n, u, v, np.ones(len(pairs)))
    indptr, nbr, eid = g.adjacency()
    assert indptr[-1] == 2 * g.edge_count
    # Degree sum equals twice the edge count.
    assert g.degrees().sum() == 2 * g.edge_count
