"""Tests for Laplacian assembly and regularization (Eq. 1, footnote 1)."""

import numpy as np
import pytest
import scipy.linalg as sla
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph import (
    Graph,
    graph_from_sdd_matrix,
    incidence_matrix,
    laplacian,
    regularization_shift,
    regularized_laplacian,
)


def test_laplacian_matches_definition(triangle_graph):
    L = laplacian(triangle_graph).toarray()
    expected = np.array(
        [[4.0, -1.0, -3.0], [-1.0, 3.0, -2.0], [-3.0, -2.0, 5.0]]
    )
    np.testing.assert_allclose(L, expected)


def test_laplacian_row_sums_zero(small_grid):
    L = laplacian(small_grid)
    np.testing.assert_allclose(np.asarray(L.sum(axis=1)).ravel(), 0, atol=1e-12)


def test_laplacian_psd(small_mesh):
    L = laplacian(small_mesh).toarray()
    eigenvalues = np.linalg.eigvalsh(L)
    assert eigenvalues.min() > -1e-9


def test_laplacian_quadratic_form(small_grid):
    """x^T L x == sum w_ij (x_i - x_j)^2."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal(small_grid.n)
    L = laplacian(small_grid)
    direct = float(x @ (L @ x))
    by_edges = float(
        np.sum(small_grid.w * (x[small_grid.u] - x[small_grid.v]) ** 2)
    )
    assert direct == pytest.approx(by_edges, rel=1e-10)


def test_laplacian_scalar_shift(triangle_graph):
    L = laplacian(triangle_graph, shift=0.5).toarray()
    np.testing.assert_allclose(np.diag(L), [4.5, 3.5, 5.5])


def test_incidence_matrix_btb_equals_laplacian(small_grid):
    B = incidence_matrix(small_grid, weighted=True)
    L = laplacian(small_grid)
    np.testing.assert_allclose((B.T @ B).toarray(), L.toarray(), atol=1e-12)


def test_incidence_unweighted_rows(path_graph):
    B = incidence_matrix(path_graph, weighted=False)
    assert B.shape == (path_graph.edge_count, path_graph.n)
    np.testing.assert_allclose(np.asarray(B.sum(axis=1)).ravel(), 0)


def test_regularization_shift_positive(small_grid):
    shift = regularization_shift(small_grid)
    assert (shift > 0).all()
    assert shift.shape == (small_grid.n,)


def test_regularization_shift_rejects_bad_rel(small_grid):
    with pytest.raises(GraphError):
        regularization_shift(small_grid, rel=0)


def test_regularization_handles_isolated_nodes():
    g = Graph(3, [0], [1], [2.0])  # node 2 isolated
    shift = regularization_shift(g)
    assert shift[2] > 0


def test_smallest_generalized_eigenvalue_is_one(small_grid):
    """Footnote 1: same shift on L_G and L_S pins lambda_min at 1."""
    shift = regularization_shift(small_grid, rel=1e-5)
    L_G = regularized_laplacian(small_grid, shift).toarray()
    sub = small_grid.subgraph(np.arange(small_grid.edge_count) % 3 != 0)
    L_S = regularized_laplacian(sub, shift).toarray()
    eigenvalues = sla.eigh(L_G, L_S, eigvals_only=True)
    assert eigenvalues.min() == pytest.approx(1.0, abs=1e-6)
    assert eigenvalues.max() >= 1.0


def test_regularized_laplacian_validates_shift(small_grid):
    with pytest.raises(GraphError):
        regularized_laplacian(small_grid, np.zeros(small_grid.n))
    with pytest.raises(GraphError):
        regularized_laplacian(small_grid, np.ones(3))


def test_graph_from_sdd_matrix_roundtrip(small_grid):
    excess_in = np.linspace(0.1, 0.2, small_grid.n)
    L = laplacian(small_grid, shift=excess_in)
    g, excess = graph_from_sdd_matrix(L)
    assert g.edge_key_set() == small_grid.edge_key_set()
    np.testing.assert_allclose(excess, excess_in, atol=1e-12)


def test_graph_from_sdd_matrix_rejects_positive_offdiag():
    bad = sp.csr_matrix(np.array([[1.0, 0.5], [0.5, 1.0]]))
    with pytest.raises(GraphError):
        graph_from_sdd_matrix(bad)
