"""Tests for Matrix Market I/O, including the streaming reader."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import (
    grid2d,
    iter_mtx_entries,
    read_graph_mtx,
    read_graph_mtx_streaming,
    read_mtx_boundary,
    read_mtx_header,
    read_mtx_shard,
    write_graph_mtx,
)


def test_laplacian_roundtrip(tmp_path, small_grid):
    path = tmp_path / "grid.mtx"
    write_graph_mtx(path, small_grid, as_laplacian=True)
    graph, excess = read_graph_mtx(path)
    assert graph.edge_key_set() == small_grid.edge_key_set()
    # Pure Laplacian: diagonal fully explained by edges.
    np.testing.assert_allclose(excess, 0, atol=1e-9)


def test_adjacency_roundtrip(tmp_path, triangle_graph):
    path = tmp_path / "tri.mtx"
    write_graph_mtx(path, triangle_graph, as_laplacian=False)
    graph, excess = read_graph_mtx(path, mode="adjacency")
    assert excess is None
    assert graph.edge_key_set() == triangle_graph.edge_key_set()
    np.testing.assert_allclose(np.sort(graph.w), np.sort(triangle_graph.w))


def test_auto_mode_detects_laplacian(tmp_path, path_graph):
    path = tmp_path / "p.mtx"
    write_graph_mtx(path, path_graph, as_laplacian=True)
    graph, excess = read_graph_mtx(path, mode="auto")
    assert excess is not None  # Laplacian branch taken
    assert graph.edge_count == path_graph.edge_count


def test_auto_mode_detects_adjacency(tmp_path, path_graph):
    path = tmp_path / "a.mtx"
    write_graph_mtx(path, path_graph, as_laplacian=False)
    graph, excess = read_graph_mtx(path, mode="auto")
    assert excess is None


def test_unknown_mode(tmp_path, path_graph):
    path = tmp_path / "x.mtx"
    write_graph_mtx(path, path_graph)
    with pytest.raises(GraphError):
        read_graph_mtx(path, mode="bogus")
    with pytest.raises(GraphError):
        read_graph_mtx_streaming(path, mode="bogus")


# ---------------------------------------------------------------------
# streaming reader
# ---------------------------------------------------------------------
def _canonical(graph):
    return sorted(zip(graph.u.tolist(), graph.v.tolist(), graph.w.tolist()))


@pytest.mark.parametrize("as_laplacian", [True, False])
@pytest.mark.parametrize("chunk_nnz", [7, 100_000])
def test_streaming_matches_mmread(tmp_path, small_grid, as_laplacian,
                                  chunk_nnz):
    """Chunked parsing must reproduce the read-all-at-once graph for
    every chunk size (including one covering the whole file)."""
    path = tmp_path / "g.mtx"
    write_graph_mtx(path, small_grid, as_laplacian=as_laplacian)
    whole, excess_whole = read_graph_mtx(path)
    chunked, excess_chunked = read_graph_mtx_streaming(
        path, chunk_nnz=chunk_nnz
    )
    assert chunked.n == whole.n
    assert _canonical(chunked) == _canonical(whole)
    if excess_whole is None:
        assert excess_chunked is None
    else:
        # Same text parsed either way; only the summation order of the
        # diagonal-excess accumulation differs (1e-15-scale residue).
        np.testing.assert_allclose(excess_chunked, excess_whole,
                                   atol=1e-12)


def test_streaming_header(tmp_path, small_grid):
    path = tmp_path / "g.mtx"
    write_graph_mtx(path, small_grid)
    header = read_mtx_header(path)
    assert header.rows == header.cols == small_grid.n
    assert header.symmetry == "symmetric"
    assert header.field in ("real", "double")


def test_streaming_entry_iterator_counts(tmp_path, path_graph):
    path = tmp_path / "p.mtx"
    write_graph_mtx(path, path_graph, as_laplacian=False)
    chunks = list(iter_mtx_entries(path, chunk_nnz=2))
    header, chunks = chunks[0], chunks[1:]
    assert sum(len(rows) for rows, _, _ in chunks) == header.entries
    assert all(len(rows) <= 2 for rows, _, _ in chunks)


def test_streaming_rejects_truncated_file(tmp_path, small_grid):
    path = tmp_path / "g.mtx"
    write_graph_mtx(path, small_grid)
    text = path.read_text().splitlines()
    (tmp_path / "cut.mtx").write_text("\n".join(text[:-3]) + "\n")
    with pytest.raises(GraphError, match="truncated"):
        read_graph_mtx_streaming(tmp_path / "cut.mtx")


def test_streaming_rejects_non_matrix_market(tmp_path):
    bogus = tmp_path / "bogus.mtx"
    bogus.write_text("hello\n1 2 3\n")
    with pytest.raises(GraphError, match="not a MatrixMarket"):
        read_graph_mtx_streaming(bogus)


def test_streaming_rejects_out_of_range_entry(tmp_path):
    bad = tmp_path / "bad.mtx"
    bad.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 -1.0\n"
    )
    with pytest.raises(GraphError, match="out of range"):
        read_graph_mtx_streaming(bad)


def test_streaming_pattern_field(tmp_path):
    pattern = tmp_path / "pat.mtx"
    pattern.write_text(
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "3 3 2\n"
        "2 1\n"
        "3 2\n"
    )
    graph, excess = read_graph_mtx_streaming(pattern, mode="adjacency")
    assert excess is None
    assert graph.edge_key_set() == {(0, 1), (1, 2)}
    np.testing.assert_allclose(graph.w, 1.0)


def test_streaming_sign_check_sees_dropped_triangle(tmp_path):
    """Mode detection and the Laplacian sign check are defined over
    *every* stored off-diagonal — including lower-triangle entries of
    general files that the edge extraction drops — matching
    read_graph_mtx."""
    mixed = tmp_path / "mixed.mtx"
    mixed.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 3\n"
        "1 2 -1.0\n"
        "2 1 1.0\n"     # positive, lower triangle: dropped as an edge
        "1 1 1.0\n"
    )
    with pytest.raises(GraphError, match="positive off-diagonal"):
        read_graph_mtx_streaming(mixed, mode="laplacian")
    graph, excess = read_graph_mtx_streaming(mixed, mode="auto")
    assert excess is None  # auto resolves to adjacency, like mmread
    labels = np.array([0, 1])
    with pytest.raises(GraphError, match="positive off-diagonal"):
        read_mtx_shard(mixed, labels, 0, mode="laplacian")
    with pytest.raises(GraphError, match="positive off-diagonal"):
        read_mtx_boundary(mixed, labels, mode="laplacian")


def test_streaming_general_symmetry_keeps_upper_triangle(tmp_path):
    """A symmetric matrix stored in full (symmetry=general) must yield
    each edge exactly once, matching read_graph_mtx."""
    full = tmp_path / "full.mtx"
    full.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 4\n"
        "1 1 2.0\n"
        "2 2 2.0\n"
        "1 2 -2.0\n"
        "2 1 -2.0\n"
    )
    whole, excess_whole = read_graph_mtx(full)
    chunked, excess_chunked = read_graph_mtx_streaming(full)
    assert _canonical(chunked) == _canonical(whole) == [(0, 1, 2.0)]
    np.testing.assert_allclose(excess_chunked, excess_whole)


# ---------------------------------------------------------------------
# shard-by-shard loading
# ---------------------------------------------------------------------
@pytest.mark.parametrize("as_laplacian", [True, False])
def test_shards_plus_boundary_reconstruct_graph(tmp_path, as_laplacian):
    from repro.core import induced_subgraph, partition_shards

    graph = grid2d(13, 13, weights="uniform", seed=9)
    path = tmp_path / "g.mtx"
    write_graph_mtx(path, graph, as_laplacian=as_laplacian)
    plan = partition_shards(graph, 3, seed=0)

    total_intra = 0
    for shard in range(3):
        sub, node_ids = read_mtx_shard(
            path, plan.labels, shard, chunk_nnz=41
        )
        np.testing.assert_array_equal(node_ids, plan.shard_nodes[shard])
        reference, _ = induced_subgraph(graph, node_ids)
        assert _canonical(sub) == _canonical(reference)
        total_intra += sub.edge_count
    u, v, w = read_mtx_boundary(path, plan.labels, chunk_nnz=41)
    assert total_intra + len(u) == graph.edge_count
    boundary_ref = graph.subgraph(plan.boundary_edge_ids)
    assert sorted(zip(u.tolist(), v.tolist(), w.tolist())) == _canonical(
        boundary_ref
    )


def test_shard_reader_rejects_label_mismatch(tmp_path, small_grid):
    path = tmp_path / "g.mtx"
    write_graph_mtx(path, small_grid)
    short = np.zeros(small_grid.n - 1, dtype=np.int64)
    with pytest.raises(GraphError, match="labels cover"):
        read_mtx_shard(path, short, 0)
    with pytest.raises(GraphError, match="labels cover"):
        read_mtx_boundary(path, short)
    with pytest.raises(GraphError, match="no nodes"):
        read_mtx_shard(
            path, np.zeros(small_grid.n, dtype=np.int64), 5
        )
