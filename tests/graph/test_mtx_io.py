"""Tests for Matrix Market I/O."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import read_graph_mtx, write_graph_mtx


def test_laplacian_roundtrip(tmp_path, small_grid):
    path = tmp_path / "grid.mtx"
    write_graph_mtx(path, small_grid, as_laplacian=True)
    graph, excess = read_graph_mtx(path)
    assert graph.edge_key_set() == small_grid.edge_key_set()
    # Pure Laplacian: diagonal fully explained by edges.
    np.testing.assert_allclose(excess, 0, atol=1e-9)


def test_adjacency_roundtrip(tmp_path, triangle_graph):
    path = tmp_path / "tri.mtx"
    write_graph_mtx(path, triangle_graph, as_laplacian=False)
    graph, excess = read_graph_mtx(path, mode="adjacency")
    assert excess is None
    assert graph.edge_key_set() == triangle_graph.edge_key_set()
    np.testing.assert_allclose(np.sort(graph.w), np.sort(triangle_graph.w))


def test_auto_mode_detects_laplacian(tmp_path, path_graph):
    path = tmp_path / "p.mtx"
    write_graph_mtx(path, path_graph, as_laplacian=True)
    graph, excess = read_graph_mtx(path, mode="auto")
    assert excess is not None  # Laplacian branch taken
    assert graph.edge_count == path_graph.edge_count


def test_auto_mode_detects_adjacency(tmp_path, path_graph):
    path = tmp_path / "a.mtx"
    write_graph_mtx(path, path_graph, as_laplacian=False)
    graph, excess = read_graph_mtx(path, mode="auto")
    assert excess is None


def test_unknown_mode(tmp_path, path_graph):
    path = tmp_path / "x.mtx"
    write_graph_mtx(path, path_graph)
    with pytest.raises(GraphError):
        read_graph_mtx(path, mode="bogus")
