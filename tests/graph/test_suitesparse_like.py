"""Tests for the named SuiteSparse stand-in cases."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import CASE_REGISTRY, is_connected, make_case
from repro.graph.suitesparse_like import scaled_size


def test_registry_has_all_paper_cases():
    paper_cases = {
        "ecology2", "thermal2", "parabolic", "tmt_sym", "G3_circuit",
        "NACA0015", "M6", "333SP", "AS365", "NLR",
    }
    family_cases = {
        "ba_social", "smallworld", "kron_rmat", "configmodel",
        "bipartite_rec",
    }
    assert set(CASE_REGISTRY) == paper_cases | family_cases


@pytest.mark.parametrize("name", sorted(CASE_REGISTRY))
def test_every_case_builds_small(name):
    graph, spec = make_case(name, scale=0.02, seed=1)
    assert spec.name == name
    assert graph.n >= 64
    assert graph.edge_count > graph.n * 0.9
    assert is_connected(graph)


def test_unknown_case():
    with pytest.raises(GraphError):
        make_case("not_a_case")


def test_scaled_size_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert scaled_size(1000) == 500
    monkeypatch.delenv("REPRO_SCALE")
    assert scaled_size(1000) == 1000


def test_scaled_size_floor():
    assert scaled_size(1000, scale=1e-9) == 64


def test_scaled_size_rejects_nonpositive():
    with pytest.raises(GraphError):
        scaled_size(100, scale=0)


def test_case_determinism():
    a, _ = make_case("ecology2", scale=0.02, seed=5)
    b, _ = make_case("ecology2", scale=0.02, seed=5)
    np.testing.assert_allclose(a.w, b.w)


def test_mesh_cases_have_fem_density():
    graph, _ = make_case("M6", scale=0.05, seed=0)
    assert 2.5 < graph.edge_count / graph.n < 3.2
