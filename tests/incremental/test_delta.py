"""Tests for the edge-batch wire format and the delta log."""

import pytest

from repro.exceptions import IncrementalError
from repro.incremental import DeltaRecord, EdgeBatch, normalize_batch


class TestNormalizeBatch:
    def test_canonicalizes_endpoints(self):
        eb = normalize_batch([(3, 1, 2.0)], [(5, 2)])
        assert eb.inserts == ((1, 3, 2.0),)
        assert eb.deletes == ((2, 5),)
        assert eb.touched_nodes == (1, 2, 3, 5)

    def test_accepts_wire_dict(self):
        eb = normalize_batch(
            batch={"insert": [[0, 7, 1.5]], "delete": [[2, 1]]}
        )
        assert eb.inserts == ((0, 7, 1.5),)
        assert eb.deletes == ((1, 2),)

    def test_wire_dict_round_trips(self):
        eb = normalize_batch([(4, 0, 0.5), (1, 2, 3.0)], [(9, 8)])
        assert normalize_batch(batch=eb.to_dict()) == eb

    def test_batch_and_kwargs_conflict(self):
        with pytest.raises(IncrementalError, match="not both"):
            normalize_batch([(0, 1, 1.0)], batch={"insert": []})

    def test_rejects_non_dict_batch(self):
        with pytest.raises(IncrementalError, match="must be a dict"):
            normalize_batch(batch=[[0, 1, 1.0]])

    def test_rejects_unknown_keys(self):
        with pytest.raises(IncrementalError,
                           match="valid keys: delete, insert"):
            normalize_batch(batch={"inserts": [[0, 1, 1.0]]})

    def test_rejects_self_loop(self):
        with pytest.raises(IncrementalError, match="self loop"):
            normalize_batch([(3, 3, 1.0)])

    @pytest.mark.parametrize("weight",
                             [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_bad_weights(self, weight):
        with pytest.raises(IncrementalError,
                           match="finite and positive"):
            normalize_batch([(0, 1, weight)])

    def test_rejects_malformed_entries(self):
        with pytest.raises(IncrementalError, match="triples"):
            normalize_batch([(0, 1)])
        with pytest.raises(IncrementalError, match="pairs"):
            normalize_batch(deletes=[(0, 1, 2.0)])

    def test_rejects_duplicates_across_orientations(self):
        with pytest.raises(IncrementalError, match="appears twice"):
            normalize_batch([(0, 1, 1.0), (1, 0, 2.0)])
        with pytest.raises(IncrementalError, match="appears twice"):
            normalize_batch(deletes=[(0, 1), (1, 0)])

    def test_same_edge_in_both_halves_is_a_reweight(self):
        # Delete-then-insert is the documented atomic re-weight.
        eb = normalize_batch([(0, 1, 2.0)], [(1, 0)])
        assert eb.inserts == ((0, 1, 2.0),)
        assert eb.deletes == ((0, 1),)


class TestDeltaRecord:
    def _record(self):
        record = DeltaRecord(
            method="proposed", label="g", config={"edge_fraction": 0.2},
            drift_budget=32.0, graph={"nodes": 64, "edges": 112},
        )
        record.append({"inserted": 1, "deleted": 0, "rebuild": False,
                       "drift_estimate": 1.5})
        record.append({"inserted": 0, "deleted": 2, "rebuild": True,
                       "drift_estimate": 40.0})
        return record

    def test_append_stamps_batch_index(self):
        record = self._record()
        assert [e["batch"] for e in record.entries] == [0, 1]
        assert record.batches == 2
        assert record.rebuilds == 1

    def test_json_round_trip_is_lossless(self):
        record = self._record()
        assert DeltaRecord.from_json(record.to_json()) == record

    def test_dict_round_trip_is_lossless(self):
        record = self._record()
        assert DeltaRecord.from_dict(record.to_dict()) == record
