"""Tests for the evolving sparsifier (repro.incremental.evolving)."""

import numpy as np
import pytest

import repro
from repro.api import sparsify as api_sparsify
from repro.api.records import RunRecord
from repro.core.metrics import evaluate_sparsifier
from repro.exceptions import IncrementalError
from repro.graph import grid2d
from repro.incremental import EvolvingSparsifier, sparsify_delta

OPTIONS = {"edge_fraction": 0.2}


def _evolving(graph, **overrides):
    kwargs = {**OPTIONS, **overrides}
    return EvolvingSparsifier(graph, "proposed", **kwargs)


def _is_spanning_forest(n, pairs):
    """True when *pairs* form a cycle-free cover of all *n* nodes."""
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in pairs:
        ru, rv = find(u), find(v)
        if ru == rv:
            return False  # cycle
        parent[ru] = rv
    return len(pairs) == n - 1  # spanning (graph is connected)


class TestLifecycle:
    def test_base_build_matches_direct_sparsify(self, small_grid):
        evolving = _evolving(small_grid)
        # The evolving state holds a canonically (u, v)-sorted
        # materialization of the edge map; the direct run must see the
        # same graph object to be fingerprint-comparable.
        direct = RunRecord.from_result(
            api_sparsify(evolving.graph, "proposed", **OPTIONS),
            method="proposed",
        )
        assert evolving.base_record.fingerprint() == direct.fingerprint()

    def test_apply_batch_mutates_graph(self, small_grid):
        evolving = _evolving(small_grid)
        before = small_grid.edge_count
        entry = evolving.apply_batch(inserts=[(0, 27, 1.0)],
                                     deletes=[(0, 1)])
        assert evolving.graph.edge_count == before
        assert (0, 27) in evolving._edges
        assert (0, 1) not in evolving._edges
        assert entry["inserted"] == 1 and entry["deleted"] == 1
        assert entry["touched_nodes"] >= 3
        assert evolving.record.batches == 1

    def test_delete_then_insert_reweights_in_one_batch(self, small_grid):
        evolving = _evolving(small_grid)
        evolving.apply_batch(inserts=[(0, 1, 9.0)], deletes=[(0, 1)])
        assert evolving._edges[(0, 1)] == 9.0

    def test_rejects_duplicate_insert_and_absent_delete(self, small_grid):
        evolving = _evolving(small_grid)
        with pytest.raises(IncrementalError, match="already exists"):
            evolving.apply_batch(inserts=[(0, 1, 1.0)])
        with pytest.raises(IncrementalError, match="absent edge"):
            evolving.apply_batch(deletes=[(0, 27)])
        # A rejected batch must not modify the graph or the log.
        assert evolving.graph.edge_count == small_grid.edge_count
        assert evolving.record.batches == 0

    def test_rejects_non_incremental_method(self, small_grid):
        with pytest.raises(IncrementalError,
                           match="does not support incremental"):
            EvolvingSparsifier(small_grid, "grass", **OPTIONS)

    def test_rejects_bad_knobs(self, small_grid):
        with pytest.raises(IncrementalError, match="drift_budget"):
            _evolving(small_grid, drift_budget=1.0)
        with pytest.raises(IncrementalError, match="locality_beta"):
            _evolving(small_grid, locality_beta=0)


class TestForestMaintenance:
    def test_forest_survives_tree_edge_deletion(self, small_grid):
        evolving = _evolving(small_grid)
        u, v = evolving.forest_edges[0]
        entry = evolving.apply_batch(deletes=[(u, v)])
        assert (u, v) not in evolving.forest_edges
        assert _is_spanning_forest(small_grid.n, evolving.forest_edges)
        assert entry["forest_replacements"] >= 1 or entry["rebuild"]

    def test_forest_absorbs_inserted_edges_across_deletions(self,
                                                            small_grid):
        evolving = _evolving(small_grid)
        for batch in ([(0, 27, 1.0)], [(5, 40, 2.0)]):
            evolving.apply_batch(inserts=batch)
        pairs = {(u, v) for u, v, _ in
                 [(0, 27, None), (5, 40, None)]}
        evolving.apply_batch(deletes=sorted(pairs))
        assert _is_spanning_forest(small_grid.n, evolving.forest_edges)

    def test_forest_is_always_spanning_under_a_stream(self, medium_grid):
        evolving = _evolving(medium_grid)
        rng = np.random.default_rng(7)
        inserted = []
        for step in range(5):
            u = int(rng.integers(0, medium_grid.n))
            v = int((u + 21 + step) % medium_grid.n)
            if u == v or (min(u, v), max(u, v)) in evolving._edges:
                continue
            pair = (min(u, v), max(u, v))
            evolving.apply_batch(inserts=[(pair[0], pair[1], 1.0)])
            inserted.append(pair)
        for pair in inserted[:2]:
            evolving.apply_batch(deletes=[pair])
        assert _is_spanning_forest(medium_grid.n,
                                   evolving.forest_edges)


class TestRebuildAndDrift:
    def test_forced_rebuild_is_fingerprint_identical(self, small_grid):
        evolving = _evolving(small_grid)
        evolving.apply_batch(inserts=[(0, 27, 1.0)], deletes=[(0, 1)])
        record = evolving.rebuild()
        direct = RunRecord.from_result(
            api_sparsify(evolving.graph, "proposed", **OPTIONS),
            method="proposed",
        )
        assert record.fingerprint() == direct.fingerprint()
        assert evolving.base_record is record
        assert evolving.record.entries[-1]["rebuild"] is True

    def test_tiny_budget_forces_rebuild(self, small_grid):
        evolving = _evolving(small_grid, drift_budget=1.0 + 1e-9)
        entry = evolving.apply_batch(inserts=[(0, 27, 5.0)],
                                     deletes=[(0, 1)])
        assert entry["rebuild"] is True
        assert evolving.drift_estimate == 1.0  # reset by the rebuild

    def test_rebuild_refreshes_base_record(self, small_grid):
        evolving = _evolving(small_grid, drift_budget=1.0 + 1e-9)
        stale = evolving.base_record
        evolving.apply_batch(inserts=[(0, 27, 5.0)], deletes=[(0, 1)])
        assert evolving.base_record is not stale

    def test_drift_estimate_grows_monotonically_between_rebuilds(
            self, small_grid):
        evolving = _evolving(small_grid, drift_budget=1e9)
        last = evolving.drift_estimate
        for pair in ((0, 27), (3, 44), (10, 61)):
            evolving.apply_batch(inserts=[(pair[0], pair[1], 1.0)])
            assert evolving.drift_estimate >= last
            last = evolving.drift_estimate

    def test_kappa_stays_within_drift_budget_of_scratch(self,
                                                        medium_grid):
        """The acceptance bound: after any batch sequence the kept

        sparsifier's kappa is within the drift budget of a
        from-scratch run on the same mutated graph."""
        evolving = _evolving(medium_grid)
        rng = np.random.default_rng(3)
        for _ in range(4):
            u = int(rng.integers(0, medium_grid.n))
            v = int((u + 19) % medium_grid.n)
            pair = (min(u, v), max(u, v))
            if u == v or pair in evolving._edges:
                continue
            evolving.apply_batch(inserts=[(pair[0], pair[1], 1.0)])
        kappa = evaluate_sparsifier(
            evolving.graph, evolving.sparsifier
        ).kappa
        scratch = api_sparsify(evolving.graph, "proposed", **OPTIONS)
        kappa_scratch = evaluate_sparsifier(
            evolving.graph, scratch.sparsifier
        ).kappa
        assert kappa <= evolving.drift_budget * kappa_scratch


class TestFacade:
    def test_sparsify_delta_replays_batches(self):
        ev = repro.sparsify_delta(
            grid2d(8, 8, weights="uniform", seed=11),
            batches=[
                {"insert": [[0, 27, 1.0]], "delete": [[0, 1]]},
                {"insert": [[5, 40, 2.0]]},
            ],
            edge_fraction=0.2,
        )
        assert ev.record.batches == 2
        assert ev.sparsifier.edge_count > 0

    def test_facade_is_exported(self):
        assert repro.sparsify_delta is sparsify_delta

    def test_registry_capability_flag(self):
        from repro.api import sparsifier_methods

        flags = {name: spec.supports_incremental
                 for name, spec in sparsifier_methods().items()}
        assert flags["proposed"] is True
        assert flags["grass"] is False
